bin/circuit_arg.ml: Circuit Cmdliner Format Printf Sys
