bin/lsiq.mli:
