bin/lsiq.ml: Arg Array Circuit Circuit_arg Cmd Cmdliner Experiments Fab Faults Format Fsim List Printf Quality Report Stats Term Tpg
