(* Fine-line technology study: the paper's Section 8 prediction.

   Shrinking a fixed design lowers its area (yield rises at constant
   defect density) while each physical defect wipes out more logic
   (n0 rises).  Both effects *relax* the required fault coverage — the
   opposite of the intuition that denser chips need stronger tests.
   The second half adds the Griffin mixed-Poisson view: a line whose n0
   wanders between lots needs slightly more coverage than its average
   n0 suggests.

   Run with:  dune exec examples/fine_line_study.exe *)

let () =
  print_endline "shrink sweep (base: y = 0.07, n0 = 8, r = 0.001):";
  let rows =
    Experiments.Fineline.sweep ~shrinks:[ 1.0; 0.9; 0.8; 0.7; 0.6; 0.5 ] ()
  in
  List.iter
    (fun r ->
      Printf.printf
        "  shrink %.1f: yield %.3f, n0 %.2f, required coverage %.1f%%\n"
        r.Experiments.Fineline.shrink r.Experiments.Fineline.yield_
        r.Experiments.Fineline.n0
        (100.0 *. r.Experiments.Fineline.required_coverage))
    rows;

  print_newline ();
  print_endline "line dispersion (Griffin mixed-Poisson extension):";
  List.iter
    (fun row ->
      Printf.printf
        "  dispersion %.1f: fixed-n0 model %.1f%%, mixed model %.1f%%\n"
        row.Experiments.Ablation.dispersion
        (100.0 *. row.Experiments.Ablation.required_base)
        (100.0 *. row.Experiments.Ablation.required_mixed))
    (Experiments.Ablation.griffin_dispersion ());

  (* A wafer map visualization of why mixing happens: defect density is
     not uniform across a wafer. *)
  print_newline ();
  print_endline "simulated wafer (edge dies see 3x the defect density):";
  let rng = Stats.Rng.create ~seed:3 () in
  let yield_model =
    Fab.Yield_model.create
      ~defect_density:(Fab.Yield_model.solve_defect_density ~target_yield:0.5
                         ~area:1.0 ~variance_ratio:0.25)
      ~area:1.0 ~variance_ratio:0.25
  in
  let defect =
    Fab.Defect.create ~yield_model ~fault_multiplicity:2.0 ~universe_size:500 ()
  in
  let wafer = Fab.Wafer.fabricate defect rng ~diameter:25 () in
  print_string (Fab.Wafer.render_map wafer);
  Array.iter
    (fun (r, y) -> Printf.printf "  ring r = %.2f: yield %.3f\n" r y)
    (Fab.Wafer.yield_by_ring wafer ~rings:4)
