(* Fault diagnosis: locating the defect in a failing chip.

   Builds an ALU, generates and compacts a test program, precomputes
   the full-response fault dictionary, then plays tester: a "customer
   return" with an unknown stuck-at fault is probed and its signature
   looked up in the dictionary.

   Run with:  dune exec examples/diagnosis_demo.exe *)

let () =
  let circuit = Circuit.Generators.alu ~bits:4 in
  Format.printf "%a@." Circuit.Netlist.pp_summary circuit;
  let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
  let universe = Faults.Collapse.representatives classes in

  (* Test program: ATPG, then static compaction. *)
  let report = Tpg.Atpg.run circuit universe in
  let compacted = Tpg.Compact.reverse_order circuit universe report.Tpg.Atpg.patterns in
  Printf.printf "test program: %d patterns compacted to %d (%.0f%%), coverage %.2f%%\n"
    compacted.Tpg.Compact.original_count
    (Array.length compacted.Tpg.Compact.kept)
    (100.0 *. Tpg.Compact.compaction_ratio compacted)
    (100.0 *. Tpg.Atpg.coverage report);
  let patterns = compacted.Tpg.Compact.patterns in

  (* The dictionary is computed once per program. *)
  let dictionary = Fsim.Diagnosis.build circuit universe patterns in
  let distinguishable, total = Fsim.Diagnosis.distinguishable_pairs dictionary in
  Printf.printf "diagnostic resolution: %d of %d fault pairs distinguishable (%.1f%%)\n"
    distinguishable total
    (100.0 *. float_of_int distinguishable /. float_of_int total);

  (* A chip comes back from the field with a mystery defect. *)
  let rng = Stats.Rng.create ~seed:424 () in
  let culprit_index = Stats.Rng.int rng (Array.length universe) in
  let culprit = universe.(culprit_index) in
  Printf.printf "\n(field defect, hidden from the diagnoser: %s)\n"
    (Faults.Fault.to_string circuit culprit);

  let observation = Fsim.Diagnosis.observe circuit [| culprit |] patterns in
  Printf.printf "tester observes %d failing patterns\n" (List.length observation);

  (match Fsim.Diagnosis.exact_matches dictionary observation with
  | [] -> print_endline "no single modeled fault explains the signature"
  | candidates ->
    Printf.printf "exact dictionary matches (%d):\n" (List.length candidates);
    List.iter
      (fun i ->
        Printf.printf "  %s%s\n"
          (Faults.Fault.to_string circuit universe.(i))
          (if i = culprit_index then "   <- the actual defect" else ""))
      candidates);

  (* A two-fault chip defeats exact lookup; ranked matching still points
     at the right neighbourhood. *)
  let second = universe.((culprit_index + 7) mod Array.length universe) in
  let observation2 = Fsim.Diagnosis.observe circuit [| culprit; second |] patterns in
  Printf.printf "\ndouble defect (%s + %s): exact matches = %d\n"
    (Faults.Fault.to_string circuit culprit)
    (Faults.Fault.to_string circuit second)
    (List.length (Fsim.Diagnosis.exact_matches dictionary observation2));
  print_endline "closest single-fault explanations:";
  List.iter
    (fun (i, distance) ->
      Printf.printf "  %-18s distance %d\n"
        (Faults.Fault.to_string circuit universe.(i))
        distance)
    (Fsim.Diagnosis.ranked_matches dictionary observation2 ~count:5)
