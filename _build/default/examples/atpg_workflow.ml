(* ATPG workflow: exercising the substrate libraries directly.

   Builds an 8-bit array multiplier, enumerates and collapses its
   stuck-at universe, generates a full test set (random phase + PODEM
   clean-up), verifies every generated pattern on the fault simulator,
   and round-trips the netlist through the .bench format.

   Run with:  dune exec examples/atpg_workflow.exe *)

let () =
  let circuit = Circuit.Generators.array_multiplier ~bits:8 in
  Format.printf "%a@." Circuit.Netlist.pp_summary circuit;
  List.iter
    (fun (kind, count) ->
      Printf.printf "  %-6s x %d\n" (Circuit.Gate.to_string kind) count)
    (Circuit.Netlist.gate_census circuit);

  (* Fault universe and structural collapsing. *)
  let universe = Faults.Universe.all circuit in
  let classes = Faults.Collapse.equivalence circuit universe in
  let reps = Faults.Collapse.representatives classes in
  Printf.printf "faults: %d lines x 2 = %d, collapsed to %d classes (%.0f%%)\n"
    (Circuit.Netlist.line_count circuit) (Array.length universe)
    (Array.length reps)
    (100.0 *. Faults.Collapse.collapse_ratio classes);

  (* Test generation. *)
  let report = Tpg.Atpg.run circuit reps in
  Printf.printf "test set: %d patterns (%d random, %d PODEM), coverage %.2f%%\n"
    (Array.length report.Tpg.Atpg.patterns) report.Tpg.Atpg.random_patterns
    report.Tpg.Atpg.deterministic_patterns
    (100.0 *. Tpg.Atpg.coverage report);
  Printf.printf "untestable: %d, aborted: %d\n" report.Tpg.Atpg.untestable
    report.Tpg.Atpg.aborted;

  (* Independent verification: re-grade the final pattern set with the
     *serial* fault simulator (different engine than ATPG used). *)
  let verified = Fsim.Serial.run circuit reps report.Tpg.Atpg.patterns in
  let detected =
    Array.fold_left (fun acc d -> if d <> None then acc + 1 else acc) 0 verified
  in
  Printf.printf "serial re-verification: %d/%d detected (matches: %b)\n" detected
    (Array.length reps)
    (detected = Fsim.Coverage.detected_count report.Tpg.Atpg.profile);

  (* Pick one hard fault and show PODEM's search effort. *)
  let undetected_by_random =
    Array.to_list
      (Array.mapi (fun i d -> (i, d)) report.Tpg.Atpg.profile.Fsim.Coverage.first_detection)
    |> List.filter_map (fun (i, d) ->
           match d with
           | Some k when k >= report.Tpg.Atpg.random_patterns -> Some i
           | Some _ | None -> None)
  in
  (match undetected_by_random with
  | [] -> print_endline "random patterns caught everything; no PODEM story to tell"
  | i :: _ ->
    let fault = reps.(i) in
    let result, stats = Tpg.Podem.generate circuit fault in
    Printf.printf "hard fault %s: PODEM %s after %d backtracks, %d implications\n"
      (Faults.Fault.to_string circuit fault)
      (match result with
      | Tpg.Podem.Test _ -> "found a test"
      | Tpg.Podem.Untestable -> "proved it redundant"
      | Tpg.Podem.Aborted -> "gave up")
      stats.Tpg.Podem.backtracks stats.Tpg.Podem.implications);

  (* Netlist round-trip through the interchange format. *)
  let text = Circuit.Bench_format.to_string circuit in
  let reparsed = Circuit.Bench_format.parse_string ~name:"roundtrip" text in
  Printf.printf ".bench round-trip: %d -> %d nodes, %d -> %d gates\n"
    (Circuit.Netlist.num_nodes circuit)
    (Circuit.Netlist.num_nodes reparsed)
    (Circuit.Netlist.num_gates circuit)
    (Circuit.Netlist.num_gates reparsed)
