examples/lot_characterization.mli:
