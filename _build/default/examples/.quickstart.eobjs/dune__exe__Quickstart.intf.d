examples/quickstart.mli:
