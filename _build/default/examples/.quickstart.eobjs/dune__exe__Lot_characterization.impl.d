examples/lot_characterization.ml: Experiments List Printf Quality Tester
