examples/scan_economics.ml: Array Circuit Faults Format List Logicsim Printf Quality Tpg
