examples/scan_economics.mli:
