examples/atpg_workflow.ml: Array Circuit Faults Format Fsim List Printf Tpg
