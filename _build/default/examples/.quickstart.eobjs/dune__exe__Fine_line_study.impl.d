examples/fine_line_study.ml: Array Experiments Fab List Printf Stats
