examples/atpg_workflow.mli:
