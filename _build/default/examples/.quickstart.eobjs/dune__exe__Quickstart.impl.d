examples/quickstart.ml: List Printf Quality
