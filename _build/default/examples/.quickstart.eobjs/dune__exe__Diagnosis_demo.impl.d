examples/diagnosis_demo.ml: Array Circuit Faults Format Fsim List Printf Stats Tpg
