examples/fine_line_study.mli:
