(* Scan-design economics: sequential circuits meet the cost model.

   The paper's chip was sequential; production test of sequential logic
   today means scan design, where every test pattern costs
   (flops + 1) tester cycles to shift in and capture.  This demo builds
   a sequential accumulator, verifies it cycle-accurately, generates
   and compacts a scan test set, and prices the program with the
   economics extension — showing how compaction and flop count move the
   optimal coverage point.

   Run with:  dune exec examples/scan_economics.exe *)

module Seq = Logicsim.Sequential

let () =
  let machine = Seq.accumulator ~bits:8 in
  let core = Seq.scan_view machine in
  Format.printf "sequential accumulator: %a@." Circuit.Netlist.pp_summary core;
  Printf.printf "flops: %d, primary inputs: %d, primary outputs: %d\n"
    (Seq.flop_count machine)
    (Seq.primary_input_count machine)
    (Seq.primary_output_count machine);

  (* Sanity: clock the real machine. *)
  let pulses =
    Array.init 10 (fun _ ->
        Array.append (Array.init 8 (fun i -> i = 0)) [| true |])
  in
  let _, final = Seq.simulate machine pulses in
  let value =
    Array.to_list final |> List.rev
    |> List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0
  in
  Printf.printf "after 10 increments the register reads %d\n" value;

  (* Scan test generation on the combinational core. *)
  let classes = Faults.Collapse.equivalence core (Faults.Universe.all core) in
  let universe = Faults.Collapse.representatives classes in
  let report = Tpg.Atpg.run core universe in
  let compacted = Tpg.Compact.reverse_order core universe report.Tpg.Atpg.patterns in
  let patterns_before = Array.length report.Tpg.Atpg.patterns in
  let patterns_after = Array.length compacted.Tpg.Compact.kept in
  Printf.printf "scan test set: %d patterns (%.1f%% coverage), compacted to %d\n"
    patterns_before
    (100.0 *. Tpg.Atpg.coverage report)
    patterns_after;
  Printf.printf "tester cycles: %d before compaction, %d after\n"
    (Seq.scan_test_cycles machine ~patterns:patterns_before)
    (Seq.scan_test_cycles machine ~patterns:patterns_after);

  (* Price the program: per-pattern cost scales with the scan chain. *)
  print_newline ();
  print_endline "optimal coverage vs flop count (fixed escape cost of 200k cycle-equivalents):";
  List.iter
    (fun flops ->
      let cycles_per_pattern = float_of_int (flops + 1) in
      let model =
        Quality.Economics.create ~yield_:0.07 ~n0:8.0
          ~pattern_cost:cycles_per_pattern ~patterns_per_decade:50.0
          ~escape_cost:200_000.0
      in
      let f_star = Quality.Economics.optimal_coverage model in
      Printf.printf
        "  %4d flops: optimal coverage %.1f%%, reject there %.5f\n" flops
        (100.0 *. f_star)
        (Quality.Reject.reject_rate ~yield_:0.07 ~n0:8.0 f_star))
    [ 0; 8; 64; 512 ];
  print_endline
    "longer scan chains make each pattern dearer, pulling the economic\n\
     optimum below the quality target - the cost pressure the paper's\n\
     introduction describes."
