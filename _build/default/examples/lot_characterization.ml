(* Lot characterization: the paper's Section 5 procedure, end to end.

   1. Take a chip design (here a generated ~1000-gate "LSI" block).
   2. Build its collapsed stuck-at fault universe.
   3. Produce an ordered production test program (functional walk +
      random + PODEM) and grade it on the fault simulator to get the
      cumulative coverage curve.
   4. Fabricate a lot on the simulated line, probe every chip to its
      first failing pattern on the virtual tester.
   5. Plot fraction-failed vs coverage against the P(f) family and
      estimate n0 two ways; then answer the coverage-requirement
      question with the freshly estimated parameter.

   Run with:  dune exec examples/lot_characterization.exe *)

let () =
  let config =
    { Experiments.Pipeline.default_config with
      Experiments.Pipeline.scale = 6;   (* keep the example snappy *)
      lot_size = 200;
      seed = 7 }
  in
  print_endline "running the end-to-end characterization pipeline...";
  let run = Experiments.Pipeline.execute config in
  print_newline ();
  print_string (Experiments.Pipeline.summary run);

  (* The data a test floor would plot (paper Fig. 5 / Table 1). *)
  let points = Experiments.Fig5.simulated_estimate_points run in
  print_newline ();
  print_endline "checkpoints (coverage, fraction of lot failed):";
  List.iter
    (fun p ->
      Printf.printf "  f = %.3f   failed = %.3f\n" p.Quality.Estimate.coverage
        p.Quality.Estimate.fraction_failed)
    points;

  (* Estimate n0 from the data, as the paper prescribes. *)
  let y = Experiments.Pipeline.true_yield run in
  let n0_fit, residual = Quality.Estimate.fit_n0 ~yield_:y points in
  Printf.printf "\nleast-squares fit of the P(f) family: n0 = %.2f (residual %.2e)\n"
    n0_fit residual;
  Printf.printf "ground truth from the (simulated) lot:  n0 = %.2f\n"
    (Experiments.Pipeline.true_n0 run);

  (* Close the loop: what coverage does this line need? *)
  List.iter
    (fun reject ->
      match Quality.Requirement.required_coverage ~yield_:y ~n0:n0_fit ~reject with
      | Some f ->
        Printf.printf "for reject rate %g the program needs %.1f%% coverage\n"
          reject (100.0 *. f)
      | None -> ())
    [ 0.01; 0.001 ];
  let achieved = Tester.Pattern_set.final_coverage run.Experiments.Pipeline.program in
  Printf.printf "the generated program achieves %.1f%% -> predicted reject rate %.5f\n"
    (100.0 *. achieved)
    (Quality.Reject.reject_rate ~yield_:y ~n0:n0_fit achieved)
