(* Quickstart: the paper's headline question, answered in a few lines.

   "Our process yield is 7%; a characterization lot told us a defective
   chip carries 8 faults on average.  What stuck-at coverage do our
   tests need for a field reject rate of 1-in-1000, and what would the
   older single-fault model (Wadsack) have demanded?"

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let yield_ = 0.07 in
  let n0 = 8.0 in

  (* How bad is shipping untested silicon? *)
  let untested_reject = Quality.Reject.reject_rate ~yield_ ~n0 0.0 in
  Printf.printf "with no testing, %.0f%% of shipped chips are defective\n"
    (100.0 *. untested_reject);

  (* Reject rate at a typical coverage. *)
  let f = 0.80 in
  Printf.printf "at %.0f%% fault coverage the field reject rate is %.4f (1 in %.0f)\n"
    (100.0 *. f)
    (Quality.Reject.reject_rate ~yield_ ~n0 f)
    (1.0 /. Quality.Reject.reject_rate ~yield_ ~n0 f);

  (* The design question: coverage needed for a quality target. *)
  List.iter
    (fun reject ->
      match Quality.Requirement.required_coverage ~yield_ ~n0 ~reject with
      | Some f ->
        let wadsack =
          match Quality.Wadsack.required_coverage ~yield_ ~reject with
          | Some w -> w
          | None -> nan
        in
        Printf.printf
          "reject rate %-6g -> need %.1f%% coverage (Wadsack baseline: %.2f%%)\n"
          reject (100.0 *. f) (100.0 *. wadsack)
      | None -> assert false)
    [ 0.01; 0.005; 0.001 ];

  (* And the reason the two models disagree: the escape probability of a
     chip with several faults collapses geometrically (Eq. 5). *)
  Printf.printf "\nescape probability of a chip with n faults at 80%% coverage:\n";
  List.iter
    (fun n ->
      Printf.printf "  n = %2d: %.4g\n" n
        (Quality.Escape.q0_simple ~faulty:n ~coverage:0.80))
    [ 1; 2; 4; 8 ]
