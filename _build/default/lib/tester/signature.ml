type t = { width : int; polynomial : int64 }

(* Primitive polynomials (tap masks, excluding the x^w term) for common
   widths; the LSB is the x^0 term. *)
let standard_polynomials =
  [ (4, 0b0011L);                 (* x^4 + x + 1 *)
    (8, 0b0001_1101L);            (* x^8 + x^4 + x^3 + x^2 + 1 *)
    (16, 0x100BL);                (* x^16 + x^12 + x^3 + x + 1 *)
    (24, 0x5D_6DCBL);
    (32, 0x04C1_1DB7L) ]          (* CRC-32 *)

let create ~width =
  if width < 2 || width > 63 then invalid_arg "Signature.create: width outside 2..63";
  let polynomial =
    match List.assoc_opt width standard_polynomials with
    | Some p -> p
    | None -> 0b11L (* x^w + x + 1 *)
  in
  { width; polynomial }

let mask t = Int64.sub (Int64.shift_left 1L t.width) 1L

let step t state inputs =
  let feedback = Logicsim.Packed.bit state (t.width - 1) in
  let shifted = Int64.logand (Int64.shift_left state 1) (mask t) in
  let with_feedback =
    if feedback then Int64.logxor shifted (Int64.logor t.polynomial 1L) else shifted
  in
  Int64.logand (Int64.logxor with_feedback inputs) (mask t)

let fold_outputs t outputs =
  let word = ref 0L in
  Array.iteri
    (fun i v ->
      if v then
        word := Int64.logxor !word (Int64.shift_left 1L (i mod t.width)))
    outputs;
  !word

let signature_of_stream t output_stream =
  Array.fold_left (fun state outputs -> step t state (fold_outputs t outputs)) 0L
    output_stream

let good_signature t c patterns =
  signature_of_stream t (Array.map (fun p -> Logicsim.Refsim.outputs c p) patterns)

let faulty_signature t (c : Circuit.Netlist.t) fault patterns =
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  let stream = ref [] in
  List.iter
    (fun block ->
      let values = Fsim.Serial.eval_with_fault c fault block in
      for bit = 0 to block.Logicsim.Packed.pattern_count - 1 do
        let outputs =
          Array.map (fun out -> Logicsim.Packed.bit values.(out) bit) c.outputs
        in
        stream := outputs :: !stream
      done)
    blocks;
  signature_of_stream t (Array.of_list (List.rev !stream))

type aliasing_report = {
  detected_by_compare : int;
  detected_by_signature : int;
  aliased : int;
  aliasing_rate : float;
}

let aliasing_study t c universe patterns =
  let reference = good_signature t c patterns in
  let first_detection = Fsim.Ppsfp.run c universe patterns in
  let detected_by_compare = ref 0 in
  let detected_by_signature = ref 0 in
  let aliased = ref 0 in
  Array.iteri
    (fun i fault ->
      if first_detection.(i) <> None then begin
        incr detected_by_compare;
        if faulty_signature t c fault patterns <> reference then
          incr detected_by_signature
        else incr aliased
      end)
    universe;
  { detected_by_compare = !detected_by_compare;
    detected_by_signature = !detected_by_signature;
    aliased = !aliased;
    aliasing_rate =
      (if !detected_by_compare = 0 then 0.0
       else float_of_int !aliased /. float_of_int !detected_by_compare) }

let effective_reject_rate ~yield_ ~n0 ~signature_width f =
  if signature_width < 2 || signature_width > 63 then
    invalid_arg "Signature.effective_reject_rate: width outside 2..63";
  let escape = Quality.Reject.ybg ~yield_ ~n0 f in
  (* Defective chips the comparison would have caught, aliased back. *)
  let caught = 1.0 -. yield_ -. escape in
  let aliasing = 2.0 ** float_of_int (-signature_width) in
  let shipped_bad = escape +. (caught *. aliasing) in
  shipped_bad /. (yield_ +. shipped_bad)
