lib/tester/wafer_test.ml: Array Fab Fsim List Option Pattern_set
