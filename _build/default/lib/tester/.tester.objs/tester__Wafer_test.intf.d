lib/tester/wafer_test.mli: Circuit Fab Faults Pattern_set
