lib/tester/pattern_set.mli: Circuit Faults Fsim
