lib/tester/pattern_set.ml: Array Fsim
