lib/tester/signature.ml: Array Circuit Fsim Int64 List Logicsim Quality
