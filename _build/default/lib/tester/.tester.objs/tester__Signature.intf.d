lib/tester/signature.mli: Circuit Faults
