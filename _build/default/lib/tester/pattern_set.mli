(** An ordered production test program.

    Bundles the pattern sequence with its fault-simulation results: the
    cumulative coverage curve (what the paper's Section 5 reads off the
    fault simulator) and the per-fault first-detection index (what lets
    the virtual tester find a defective chip's first failing pattern in
    O(faults-on-chip) instead of re-simulating it). *)

type t = {
  patterns : bool array array;
  profile : Fsim.Coverage.profile;
}

val make : bool array array -> Fsim.Coverage.profile -> t

val of_simulation :
  ?engine:Fsim.Coverage.engine ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> t
(** Fault-simulate the given ordered patterns and bundle the result
    (default engine {!Fsim.Coverage.Parallel}; all engines produce
    identical profiles). *)

val pattern_count : t -> int

val coverage_after : t -> int -> float
(** Cumulative fault coverage after the first [k] patterns. *)

val final_coverage : t -> float

val first_fail : t -> int array -> int option
(** [first_fail t chip_faults] is the index of the first pattern that
    detects any of the chip's faults — the pattern at which the tester
    rejects the chip — or [None] if the chip passes the whole program.
    Fault indices refer to the universe the profile was built from. *)
