type mode = Table_lookup | Exact_multifault

type outcome = { chip_id : int; fault_count : int; first_fail : int option }

type result = { outcomes : outcome array; pattern_count : int; lot_size : int }

let test_chip mode c universe program (chip : Fab.Lot.chip) =
  let fault_count = Array.length chip.Fab.Lot.fault_indices in
  let first_fail =
    if fault_count = 0 then None
    else
      match mode with
      | Table_lookup -> Pattern_set.first_fail program chip.Fab.Lot.fault_indices
      | Exact_multifault ->
        let faults = Array.map (fun i -> universe.(i)) chip.Fab.Lot.fault_indices in
        Fsim.Serial.first_fail_with_fault_set c faults program.Pattern_set.patterns
  in
  { chip_id = chip.Fab.Lot.chip_id; fault_count; first_fail }

let test_lot ?(mode = Table_lookup) c universe program (lot : Fab.Lot.t) =
  if lot.Fab.Lot.universe_size <> Array.length universe then
    invalid_arg "Wafer_test.test_lot: lot was manufactured against a different universe";
  { outcomes = Array.map (test_chip mode c universe program) lot.Fab.Lot.chips;
    pattern_count = Pattern_set.pattern_count program;
    lot_size = Array.length lot.Fab.Lot.chips }

let failed_by result k =
  Array.fold_left
    (fun acc o ->
      match o.first_fail with Some i when i < k -> acc + 1 | Some _ | None -> acc)
    0 result.outcomes

let fraction_failed_by result k =
  float_of_int (failed_by result k) /. float_of_int result.lot_size

let apparent_yield result =
  let passed =
    Array.fold_left
      (fun acc o -> if o.first_fail = None then acc + 1 else acc)
      0 result.outcomes
  in
  float_of_int passed /. float_of_int result.lot_size

let test_escapes result =
  Array.fold_left
    (fun acc o ->
      if o.first_fail = None && o.fault_count > 0 then acc + 1 else acc)
    0 result.outcomes

type row = {
  coverage : float;
  patterns_applied : int;
  cumulative_failed : int;
  fraction_failed : float;
}

let row_at result program k =
  { coverage = Pattern_set.coverage_after program k;
    patterns_applied = k;
    cumulative_failed = failed_by result k;
    fraction_failed = fraction_failed_by result k }

let rows_at_patterns result program ~checkpoints =
  List.map (row_at result program) checkpoints

let rows_at_coverages result program ~coverages =
  let total = result.pattern_count in
  List.filter_map
    (fun target ->
      (* First k with coverage(k) >= target. *)
      let rec search k =
        if k > total then None
        else if Pattern_set.coverage_after program k >= target then Some k
        else search (k + 1)
      in
      Option.map (row_at result program) (search 1))
    coverages
