(** Output-response compaction with a MISR (multiple-input signature
    register) and its aliasing cost.

    Instead of comparing every output on every pattern, production
    testers often compress the whole response stream into a short
    signature and compare once.  Compression can {e alias}: a faulty
    response stream may compress to the good signature, turning a
    detected fault back into an escape.  For a [w]-bit register the
    classical aliasing probability is ≈ 2^{-w}, which composes with the
    paper's model: the effective field reject rate of a
    signature-tested lot is the Eq. 8 value plus an aliasing term —
    {!effective_reject_rate} below.  The empirical aliasing study in the
    tests measures the 2^{-w} law on real faulty machines. *)

type t = {
  width : int;          (** Signature bits (<= 63). *)
  polynomial : int64;   (** Feedback tap mask. *)
}

val create : width:int -> t
(** A register with a standard primitive feedback polynomial for widths
    4, 8, 16, 24, 32; other widths (2..63) get x^w + x + 1. *)

val step : t -> int64 -> int64 -> int64
(** [step t state inputs] clocks the MISR once with the (already
    width-masked) parallel input word. *)

val fold_outputs : t -> bool array -> int64
(** XOR-fold a per-output response vector into the register width. *)

val good_signature : t -> Circuit.Netlist.t -> bool array array -> int64
(** Signature of the fault-free machine over the pattern stream. *)

val faulty_signature :
  t -> Circuit.Netlist.t -> Faults.Fault.t -> bool array array -> int64
(** Signature of the machine carrying one stuck-at fault. *)

type aliasing_report = {
  detected_by_compare : int;  (** Faults the full comparison detects. *)
  detected_by_signature : int;
  aliased : int;              (** Detected by compare, masked by the MISR. *)
  aliasing_rate : float;      (** aliased / detected_by_compare. *)
}

val aliasing_study :
  t -> Circuit.Netlist.t -> Faults.Fault.t array -> bool array array ->
  aliasing_report

val effective_reject_rate :
  yield_:float -> n0:float -> signature_width:int -> float -> float
(** The paper's Eq. 8 reject rate at coverage [f], plus the aliasing
    escapes of a [signature_width]-bit MISR: detected defective chips
    alias back into the shipped stream with probability 2^{-w}. *)
