type t = { patterns : bool array array; profile : Fsim.Coverage.profile }

let make patterns profile =
  if Array.length patterns <> profile.Fsim.Coverage.pattern_count then
    invalid_arg "Pattern_set.make: profile does not match pattern count";
  { patterns; profile }

let of_simulation ?engine c faults patterns =
  { patterns; profile = Fsim.Coverage.profile ?engine c faults patterns }

let pattern_count t = Array.length t.patterns

let coverage_after t k = Fsim.Coverage.coverage_after t.profile k

let final_coverage t = Fsim.Coverage.final_coverage t.profile

let first_fail t chip_faults =
  Array.fold_left
    (fun acc fault_index ->
      match t.profile.Fsim.Coverage.first_detection.(fault_index) with
      | None -> acc
      | Some k ->
        (match acc with Some best when best <= k -> acc | Some _ | None -> Some k))
    None chip_faults
