type response = { pattern : int; failing_outputs : int array }

type signature = response list

type t = {
  signatures : signature array;
  (* Set of (pattern, output) pairs per fault, for distance queries. *)
  pair_sets : (int * int, unit) Hashtbl.t array;
}

let responses_of_output_diffs ~block_start ~live diffs_per_output =
  (* [diffs_per_output]: per primary output, the 64-bit pattern mask of
     mismatches within the block.  Regroup by pattern. *)
  let responses = ref [] in
  for bit = 63 downto 0 do
    if Logicsim.Packed.bit live bit then begin
      let failing = ref [] in
      Array.iteri
        (fun out_index word ->
          if Logicsim.Packed.bit word bit then failing := out_index :: !failing)
        diffs_per_output;
      match !failing with
      | [] -> ()
      | outs ->
        responses :=
          { pattern = block_start + bit;
            failing_outputs = Array.of_list (List.sort compare outs) }
          :: !responses
    end
  done;
  !responses

let signature_of_simulation c blocks ~faulty_values_of_block =
  let _, responses =
    List.fold_left
      (fun (block_start, acc) block ->
        let good = Logicsim.Packed.eval_block c block in
        let good_outputs = Logicsim.Packed.output_words c good in
        let faulty = faulty_values_of_block block in
        let live = Logicsim.Packed.live_mask block in
        let diffs =
          Array.mapi
            (fun i out ->
              Int64.logand live (Int64.logxor good_outputs.(i) faulty.(out)))
            c.Circuit.Netlist.outputs
        in
        ( block_start + block.Logicsim.Packed.pattern_count,
          acc @ responses_of_output_diffs ~block_start ~live diffs ))
      (0, []) blocks
  in
  List.sort (fun a b -> compare a.pattern b.pattern) responses

let pair_set_of_signature signature =
  let table = Hashtbl.create 32 in
  List.iter
    (fun { pattern; failing_outputs } ->
      Array.iter (fun out -> Hashtbl.replace table (pattern, out) ()) failing_outputs)
    signature;
  table

let build c faults patterns =
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  let signatures =
    Array.map
      (fun fault ->
        signature_of_simulation c blocks ~faulty_values_of_block:(fun block ->
            Serial.eval_with_fault c fault block))
      faults
  in
  { signatures; pair_sets = Array.map pair_set_of_signature signatures }

let fault_signature t i = t.signatures.(i)

let observe c fault_set patterns =
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  signature_of_simulation c blocks ~faulty_values_of_block:(fun block ->
      Serial.eval_with_fault_set c fault_set block)

let exact_matches t observation =
  let matches = ref [] in
  Array.iteri
    (fun i s -> if s = observation then matches := i :: !matches)
    t.signatures;
  List.rev !matches

let signature_distance pair_set observation_set =
  let missing = ref 0 in
  Hashtbl.iter
    (fun key () -> if not (Hashtbl.mem observation_set key) then incr missing)
    pair_set;
  let extra = ref 0 in
  Hashtbl.iter
    (fun key () -> if not (Hashtbl.mem pair_set key) then incr extra)
    observation_set;
  !missing + !extra

let ranked_matches t observation ~count =
  let observation_set = pair_set_of_signature observation in
  Array.to_list (Array.mapi (fun i set -> (i, signature_distance set observation_set)) t.pair_sets)
  |> List.sort (fun (_, a) (_, b) -> compare a b)
  |> List.filteri (fun i _ -> i < count)

let distinguishable_pairs t =
  let n = Array.length t.signatures in
  let distinguishable = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr total;
      if t.signatures.(i) <> t.signatures.(j) then incr distinguishable
    done
  done;
  (!distinguishable, !total)
