(** Parallel-pattern single-fault propagation (PPSFP) fault simulation.

    For each 64-pattern block the good machine is simulated once; each
    live fault is then propagated only through its fanout cone, level by
    level, with copy-on-write faulty values.  A fault whose effect dies
    out is abandoned early, and detected faults are dropped.  Produces
    byte-identical results to {!Serial.run} (differential-tested), at a
    fraction of the cost on large circuits. *)

val run :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> int option array
(** Same contract as {!Serial.run}: per fault, first detecting pattern
    index, with fault dropping. *)

(** {2 Propagation core}

    The single-fault propagation machinery is exposed so that {!Par}
    can run the identical copy-on-write cone walk from several domains,
    each with its own [state], over a shared read-only good-value
    block. *)

type state
(** Per-simulation scratch (copy-on-write faulty values, schedule
    buckets).  Not thread-safe: one [state] per domain. *)

val make_state : Circuit.Netlist.t -> state

val propagate :
  state -> int64 array -> live:int64 -> Faults.Fault.t -> int64
(** [propagate st good ~live fault] walks the fault's fanout cone over
    one 64-pattern block whose good-machine node values are [good], and
    returns the mask of patterns (within [live]) on which some primary
    output diverges. *)

val lowest_set_bit : int64 -> int
(** Index of the lowest set bit (constant time; raises
    [Invalid_argument] on zero).  Bit [i] is pattern [i] of a block. *)

val run_curve :
  Circuit.Netlist.t ->
  Faults.Fault.t array ->
  bool array array ->
  int option array * (int * int) list
(** Like {!run} but also returns the cumulative detection counts as
    [(patterns_applied, faults_detected)] checkpoints after every block
    — the "cumulative fault coverage as a function of the number of test
    patterns" the paper's Section 5 procedure asks the fault simulator
    for. *)
