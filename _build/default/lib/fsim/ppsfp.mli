(** Parallel-pattern single-fault propagation (PPSFP) fault simulation.

    For each 64-pattern block the good machine is simulated once; each
    live fault is then propagated only through its fanout cone, level by
    level, with copy-on-write faulty values.  A fault whose effect dies
    out is abandoned early, and detected faults are dropped.  Produces
    byte-identical results to {!Serial.run} (differential-tested), at a
    fraction of the cost on large circuits. *)

val run :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> int option array
(** Same contract as {!Serial.run}: per fault, first detecting pattern
    index, with fault dropping. *)

val run_curve :
  Circuit.Netlist.t ->
  Faults.Fault.t array ->
  bool array array ->
  int option array * (int * int) list
(** Like {!run} but also returns the cumulative detection counts as
    [(patterns_applied, faults_detected)] checkpoints after every block
    — the "cumulative fault coverage as a function of the number of test
    patterns" the paper's Section 5 procedure asks the fault simulator
    for. *)
