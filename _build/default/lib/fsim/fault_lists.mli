(** Shared fault-list machinery for the deductive and concurrent
    engines: site-indexed fault lookup, the stuck-at insertion/removal
    rule, and the per-gate flip-list propagation rules. *)

module Int_set : Set.S with type elt = int

type site_index
(** Faults of a universe, indexed by the line they sit on. *)

val index : Faults.Fault.t array -> site_index

val stem_faults : site_index -> int -> (int * bool) list
(** [(fault index, stuck value)] pairs on a node's stem. *)

val branch_faults : site_index -> gate:int -> pin:int -> (int * bool) list

val adjust_for_site :
  (int * bool) list -> good:bool -> alive:bool array -> Int_set.t -> Int_set.t
(** Insert each live site fault whose stuck value differs from the
    line's good value; remove the ones that agree (they force the line
    to its good value, overriding any upstream flip). *)

val gate_flip_list :
  Circuit.Gate.kind ->
  pin_values:bool array ->
  pin_lists:Int_set.t array ->
  Int_set.t
(** The set of faults that complement the gate output, given per-pin
    good values and flip lists:
    controlling-value analysis for AND/OR families, parity
    (symmetric-difference fold) for XOR families. *)
