lib/fsim/deductive.ml: Array Circuit Fault_lists
