lib/fsim/stafan.mli: Circuit Faults
