lib/fsim/diagnosis.mli: Circuit Faults
