lib/fsim/par.mli: Circuit Faults
