lib/fsim/ppsfp.ml: Array Circuit Faults Int64 List Logicsim
