lib/fsim/fault_lists.mli: Circuit Faults Set
