lib/fsim/coverage.ml: Array Concurrent Deductive List Ppsfp Serial
