lib/fsim/coverage.ml: Array Concurrent Deductive List Par Ppsfp Serial
