lib/fsim/ppsfp.mli: Circuit Faults
