lib/fsim/sampling.ml: Array Coverage Stats
