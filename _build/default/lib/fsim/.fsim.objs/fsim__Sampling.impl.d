lib/fsim/sampling.ml: Array Ppsfp Stats
