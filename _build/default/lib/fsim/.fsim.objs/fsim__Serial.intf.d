lib/fsim/serial.mli: Circuit Faults Logicsim
