lib/fsim/concurrent.ml: Array Circuit Fault_lists List
