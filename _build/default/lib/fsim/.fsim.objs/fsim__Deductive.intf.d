lib/fsim/deductive.mli: Circuit Faults
