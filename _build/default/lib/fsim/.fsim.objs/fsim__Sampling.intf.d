lib/fsim/sampling.mli: Circuit Coverage Faults Stats
