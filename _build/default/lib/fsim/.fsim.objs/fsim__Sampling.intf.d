lib/fsim/sampling.mli: Circuit Faults Stats
