lib/fsim/par.ml: Array Domain List Logicsim Ppsfp
