lib/fsim/diagnosis.ml: Array Circuit Hashtbl Int64 List Logicsim Serial
