lib/fsim/fault_lists.ml: Array Circuit Faults Hashtbl Int List Option Set
