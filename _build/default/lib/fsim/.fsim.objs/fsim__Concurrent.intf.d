lib/fsim/concurrent.mli: Circuit Faults
