lib/fsim/serial.ml: Array Circuit Faults Hashtbl Int64 List Logicsim
