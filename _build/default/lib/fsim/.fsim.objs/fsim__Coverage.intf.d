lib/fsim/coverage.mli: Circuit Faults
