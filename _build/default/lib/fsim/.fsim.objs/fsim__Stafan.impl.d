lib/fsim/stafan.ml: Array Circuit Faults Int64 List Logicsim
