module Int_set = Set.Make (Int)

type site_index = {
  stem : (int, (int * bool) list) Hashtbl.t;
  branch : (int * int, (int * bool) list) Hashtbl.t;
}

let index faults =
  let t = { stem = Hashtbl.create 64; branch = Hashtbl.create 64 } in
  Array.iteri
    (fun i fault ->
      let stuck = Faults.Fault.polarity_bit fault.Faults.Fault.polarity in
      match fault.Faults.Fault.site with
      | Faults.Fault.Stem v ->
        Hashtbl.replace t.stem v
          ((i, stuck) :: Option.value ~default:[] (Hashtbl.find_opt t.stem v))
      | Faults.Fault.Branch { gate; pin } ->
        Hashtbl.replace t.branch (gate, pin)
          ((i, stuck)
          :: Option.value ~default:[] (Hashtbl.find_opt t.branch (gate, pin))))
    faults;
  t

let stem_faults t node = Option.value ~default:[] (Hashtbl.find_opt t.stem node)

let branch_faults t ~gate ~pin =
  Option.value ~default:[] (Hashtbl.find_opt t.branch (gate, pin))

let adjust_for_site site_list ~good ~alive list =
  List.fold_left
    (fun acc (fault_index, stuck) ->
      if not alive.(fault_index) then acc
      else if good <> stuck then Int_set.add fault_index acc
      else Int_set.remove fault_index acc)
    list site_list

let symmetric_difference a b = Int_set.union (Int_set.diff a b) (Int_set.diff b a)

let gate_flip_list kind ~pin_values ~pin_lists =
  match Circuit.Gate.controlling_value kind with
  | None ->
    (match kind with
    | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> Int_set.empty
    | Circuit.Gate.Buf | Circuit.Gate.Not -> pin_lists.(0)
    | Circuit.Gate.Xor | Circuit.Gate.Xnor ->
      Array.fold_left symmetric_difference Int_set.empty pin_lists
    | Circuit.Gate.Input -> Int_set.empty
    | Circuit.Gate.And | Circuit.Gate.Nand | Circuit.Gate.Or | Circuit.Gate.Nor ->
      assert false)
  | Some controlling ->
    let controlling_pins = ref [] in
    let noncontrolling_union = ref Int_set.empty in
    Array.iteri
      (fun pin v ->
        if v = controlling then controlling_pins := pin_lists.(pin) :: !controlling_pins
        else noncontrolling_union := Int_set.union !noncontrolling_union pin_lists.(pin))
      pin_values;
    (match !controlling_pins with
    | [] -> !noncontrolling_union
    | first :: rest ->
      Int_set.diff (List.fold_left Int_set.inter first rest) !noncontrolling_union)
