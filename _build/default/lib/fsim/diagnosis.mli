(** Fault dictionaries and cause-effect diagnosis.

    The same fault-simulation machinery that grades a test program can
    precompute, for every modeled fault, the {e signature} a chip
    carrying that fault would produce on the tester — which patterns
    fail, and on which outputs.  Matching an observed signature against
    the dictionary localizes the defect (1981-era cause-effect
    diagnosis; the paper's tester logged exactly this per-pattern
    fail data).

    Faults that are detection-equivalent on the given pattern set
    necessarily share a signature; diagnosis returns the whole match
    set, never an arbitrary member. *)

type response = {
  pattern : int;               (** Failing pattern index. *)
  failing_outputs : int array; (** Output positions (sorted) that differ. *)
}

type signature = response list
(** Failing patterns in increasing order; passing chips have []. *)

type t
(** A full-response fault dictionary. *)

val build :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> t
(** Simulate every fault against the full pattern set and record its
    signature.  O(|faults| · |patterns| · |circuit|) — dictionaries are
    precomputed once per test program. *)

val fault_signature : t -> int -> signature
(** Signature of fault [i] of the universe the dictionary was built
    from. *)

val observe :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> signature
(** What the tester sees for a chip carrying the given fault {e set}
    (multiple faults allowed — the realistic defective chip). *)

val exact_matches : t -> signature -> int list
(** Fault indices whose dictionary signature equals the observation;
    [[]] means no single modeled fault explains the behaviour (e.g. a
    multi-fault chip or an unmodeled defect). *)

val ranked_matches : t -> signature -> count:int -> (int * int) list
(** Best [count] candidates by signature distance (symmetric-difference
    cardinality over (pattern, output) pairs), closest first.  Useful
    when {!exact_matches} is empty. *)

val distinguishable_pairs : t -> int * int
(** (distinguishable, total) over all fault pairs — the diagnostic
    resolution of the pattern set. *)
