(* Multicore PPSFP: shard the fault universe across domains, each
   running the serial engine's copy-on-write propagation over its shard
   with a private Ppsfp.state.  The good-machine blocks are evaluated
   once up front and shared read-only.

   Per-fault results are independent of every other fault (dropping
   only skips already-detected faults), so any deterministic sharding
   merges to exactly the serial answer.  We use contiguous shards for
   cache locality; each worker writes its own disjoint slice of the
   shared results array, and Domain.join publishes the writes. *)

type slice = {
  block_start : int;   (* pattern index of bit 0 of this block *)
  live : int64;
  good : int64 array;  (* read-only good-machine values, by node id *)
}

let prepare c patterns =
  let slices = ref [] in
  let start = ref 0 in
  List.iter
    (fun block ->
      slices :=
        { block_start = !start;
          live = Logicsim.Packed.live_mask block;
          good = Logicsim.Packed.eval_block c block }
        :: !slices;
      start := !start + block.Logicsim.Packed.pattern_count)
    (Logicsim.Packed.blocks_of_patterns c patterns);
  List.rev !slices

(* Grade faults [lo, hi) of [faults] against every slice, with fault
   dropping, writing first detections into the shard's own slice of
   [results].  Mirrors Ppsfp.run_general's block loop exactly. *)
let run_shard c slices faults results lo hi =
  let st = Ppsfp.make_state c in
  let alive = ref (List.init (hi - lo) (fun i -> lo + i)) in
  List.iter
    (fun { block_start; live; good } ->
      if !alive <> [] then begin
        let survivors = ref [] in
        List.iter
          (fun fi ->
            let mask = Ppsfp.propagate st good ~live faults.(fi) in
            if mask = 0L then survivors := fi :: !survivors
            else results.(fi) <- Some (block_start + Ppsfp.lowest_set_bit mask))
          !alive;
        alive := List.rev !survivors
      end)
    slices

let run ?domains c faults patterns =
  let n = Array.length faults in
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  if requested < 1 then invalid_arg "Par.run: need at least one domain";
  let domains = max 1 (min requested n) in
  let results = Array.make n None in
  if n > 0 then begin
    let slices = prepare c patterns in
    let bounds d = d * n / domains in
    let workers =
      Array.init (domains - 1) (fun i ->
          let lo = bounds (i + 1) and hi = bounds (i + 2) in
          Domain.spawn (fun () -> run_shard c slices faults results lo hi))
    in
    run_shard c slices faults results 0 (bounds 1);
    Array.iter Domain.join workers
  end;
  results
