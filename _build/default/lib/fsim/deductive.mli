(** Deductive fault simulation (Armstrong, 1972) — the third engine.

    One true-value simulation per pattern, during which a {e fault
    list} is deduced for every node: the set of faults whose presence
    would complement that node under the current pattern.  List
    propagation rules per gate:

    - no input at the controlling value: any single flipping input
      flips the output → union of the input lists;
    - some inputs at the controlling value: the output flips iff every
      controlling input flips and no non-controlling input does →
      (∩ lists of controlling inputs) minus (∪ lists of the others);
    - XOR-class gates: an odd number of flips flips the output →
      fold of symmetric differences.

    A stem (branch) fault is inserted into / removed from its own
    line's list according to whether the stuck value differs from the
    line's good value.  Faults whose list reaches a primary output are
    detected.  Produces results identical to {!Serial.run} and
    {!Ppsfp.run} (differential-tested); the bench compares the three
    engines' cost profiles. *)

val run :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> int option array
(** Same contract as {!Serial.run}: per fault, the first detecting
    pattern index, with detected faults dropped from later patterns. *)
