(** Concurrent-style fault simulation — the fourth engine.

    Production simulators of the LAMP era (Ulrich–Baker concurrent
    simulation) kept per-gate lists of fault machines that diverge from
    the good machine and updated them {e event-driven}: when a new
    pattern changes only a few inputs, work happens only where good
    values or divergence lists actually change.  This implementation is
    the combinational, single-stuck-at specialization: each node
    carries its deductive flip list, and both the value and the list
    are re-evaluated only inside the cone of activity, through a
    level-ordered event wheel.

    On the random-walk "functional" programs used by the pipeline (one
    input flip per pattern) this beats the per-pattern full sweep of
    {!Deductive}; on independent random patterns activity is global and
    the advantage disappears — the micro bench shows both regimes.
    Results are identical to {!Serial.run} / {!Ppsfp.run} /
    {!Deductive.run} (differential-tested). *)

val run :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> int option array
(** Same contract as {!Serial.run}: per-fault first detecting pattern.

    Note on dropping: detected faults are removed from all lists
    lazily (a dead fault may linger in an unchanged cone's lists but is
    never re-reported and never causes extra events of its own). *)
