(** Section 7 — required coverage under this paper's model versus the
    Wadsack baseline, for the example chip (y = 0.07, n0 = 8). *)

type row = {
  reject : float;
  ours : float;       (** Required coverage, Eq. 8 model. *)
  wadsack : float;    (** Required coverage, r = (1-y)(1-f). *)
  williams_brown : float;
      (** Required coverage under DL = 1 - y^(1-f) — the other 1981
          defect-level model, added for context; the paper itself only
          contrasts with Wadsack. *)
  paper_ours : float option;    (** Value quoted in the paper, if any. *)
  paper_wadsack : float option;
}

val rows : ?yield_:float -> ?n0:float -> unit -> row list
(** Defaults: the paper's example (y = 0.07, n0 = 8) at
    r = 0.01, 0.005, 0.001. *)

val pessimism_series : yield_:float -> n0:float -> Report.Series.t
(** Wadsack-to-ours reject-rate ratio across coverage — how many times
    the old model over-predicts escapes. *)

val render : unit -> string
