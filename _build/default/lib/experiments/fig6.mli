(** Fig. 6 — the q0(n) escape-probability approximations (Appendix):
    exact (A.1), second-order (A.2) and simple [(1-f)^n] (A.3) versus
    coverage, for N = 1000 and a range of fault counts n. *)

val total_sites : int
(** N = 1000 as in the paper's figure. *)

val fault_counts : int list
(** n ∈ {1, 2, 4, 8, 16, 32}. *)

val series : unit -> Report.Series.t list
(** Exact curves for each n, plus the A.3 approximation for the largest
    n where its error is visible. *)

type error_row = {
  n : int;
  max_abs_error_a2 : float;   (** max |A.2 - A.1| over f. *)
  max_rel_error_a3 : float;
      (** max |A.3/A.1 - 1| over the f where A.3 is within its validity
          region n << sqrt(N(1-f)/f) and A.1 > 1e-12. *)
}

val error_table : unit -> error_row list
(** The paper's qualitative claim quantified: A.2 coincides with the
    exact value even for large n; A.3's error is small but noticeable. *)

val render : unit -> string
