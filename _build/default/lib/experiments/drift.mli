(** Multi-lot process-drift study (model-level Monte Carlo).

    The paper characterizes one lot.  Real lines drift: each lot has its
    own [n0].  This study samples many lots directly from the urn model
    — a chip with [n] faults fails by coverage [f] with probability
    [1-(1-f)^n], so its first-fail coverage is the minimum of [n]
    uniforms — runs the paper's estimation procedure per lot, and
    reports (a) how well the fit tracks per-lot truth at realistic lot
    sizes and (b) how much a pooled single-n0 fit misses when the line
    disperses, connecting to the {!Quality.Griffin} extension. *)

type lot_outcome = {
  true_n0 : float;     (** The lot's drawn n0. *)
  fitted_n0 : float;   (** Per-lot least-squares fit. *)
}

type study = {
  lots : lot_outcome list;
  mean_true_n0 : float;
  mean_fitted_n0 : float;
  fit_rmse : float;          (** RMS per-lot estimation error. *)
  pooled_fit_n0 : float;     (** Single fit over all lots' pooled data. *)
  dispersion : float;        (** Requested mixing dispersion. *)
}

val simulate :
  ?lots:int -> ?chips_per_lot:int -> ?yield_:float -> ?mean_n0:float ->
  ?dispersion:float -> ?seed:int -> unit -> study
(** Defaults: 40 lots of 277 chips, y = 0.07, mean n0 = 8,
    dispersion 2 (gamma-mixed n0 across lots). *)

type lot_size_row = {
  chips : int;
  rmse : float;       (** Per-lot n0 estimation error at this lot size. *)
  bias : float;       (** Mean (fit - truth). *)
}

val lot_size_study :
  ?lots:int -> ?yield_:float -> ?n0:float -> ?seed:int ->
  sizes:int list -> unit -> lot_size_row list
(** Estimation error versus lot size at a fixed line (no drift) — the
    quantitative version of the paper's advice that "100 to 200" chips
    suffice to characterize n0. *)

val render : unit -> string
