type row = {
  escape_to_test_ratio : float;
  optimal_coverage : float;
  reject_at_optimum : float;
  total_cost_at_optimum : float;
}

let sweep ?(yield_ = 0.07) ?(n0 = 8.0) ~ratios () =
  List.map
    (fun ratio ->
      if ratio <= 0.0 then invalid_arg "Economics_study.sweep: nonpositive ratio";
      let model =
        Quality.Economics.create ~yield_ ~n0 ~pattern_cost:1.0
          ~patterns_per_decade:50.0 ~escape_cost:(ratio *. 50.0)
      in
      let optimal_coverage = Quality.Economics.optimal_coverage model in
      { escape_to_test_ratio = ratio;
        optimal_coverage;
        reject_at_optimum = Quality.Reject.reject_rate ~yield_ ~n0 optimal_coverage;
        total_cost_at_optimum = Quality.Economics.total_cost model optimal_coverage })
    ratios

let render () =
  let rows = sweep ~ratios:[ 1.0; 10.0; 100.0; 1000.0; 10000.0 ] () in
  let quality_target =
    match Quality.Requirement.required_coverage ~yield_:0.07 ~n0:8.0 ~reject:0.001 with
    | Some f -> f
    | None -> nan
  in
  let table_rows =
    List.map
      (fun r ->
        [ Printf.sprintf "%g" r.escape_to_test_ratio;
          Report.Table.percent_cell r.optimal_coverage;
          Printf.sprintf "%.5f" r.reject_at_optimum;
          Report.Table.float_cell ~decimals:1 r.total_cost_at_optimum ])
      rows
  in
  "Economics extension: optimal coverage vs escape/test cost ratio (y=0.07, n0=8)\n\n"
  ^ Report.Table.render
      ~headers:
        [ "escape/test ratio"; "optimal coverage"; "reject at optimum"; "cost" ]
      table_rows
  ^ Printf.sprintf
      "\nfor contrast, the r = 0.001 quality target needs %.1f%% coverage\n"
      (100.0 *. quality_target)
