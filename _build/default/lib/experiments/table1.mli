(** Table 1 — result of chip test: cumulative chips failed versus fault
    coverage, paper data side by side with the simulated lot. *)

val paper_side : unit -> string list list
(** The paper's rows, formatted. *)

val simulated_side : Pipeline.run -> string list list
(** The reproduction's rows at the same coverage checkpoints where the
    simulated program reaches them. *)

type estimates = {
  fit_n0 : float;
  slope_nav : float;
  slope_n0 : float;
  true_n0 : float;
  empirical_yield : float;
}

val estimates : Pipeline.run -> estimates

val render : ?run:Pipeline.run -> unit -> string
