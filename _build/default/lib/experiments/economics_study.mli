(** Economics extension study: the optimal-coverage trade-off the
    paper's introduction gestures at ("test development and test
    application costs increase very rapidly" near 100 % coverage).

    Sweeps the escape-cost-to-pattern-cost ratio and reports the
    economically optimal coverage under the calibrated model
    (y = 0.07, n0 = 8), alongside the quality-target requirement for
    r = 0.001 for contrast. *)

type row = {
  escape_to_test_ratio : float;
  optimal_coverage : float;
  reject_at_optimum : float;
  total_cost_at_optimum : float;
}

val sweep : ?yield_:float -> ?n0:float -> ratios:float list -> unit -> row list

val render : unit -> string
