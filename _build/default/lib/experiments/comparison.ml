type row = {
  reject : float;
  ours : float;
  wadsack : float;
  williams_brown : float;
  paper_ours : float option;
  paper_wadsack : float option;
}

let paper_ours_value reject =
  (* Section 7 quotes ~80 % for r = 0.01 and ~95 % for r = 0.001. *)
  if reject = 0.01 then Some 0.80
  else if reject = 0.001 then Some 0.95
  else None

let paper_wadsack_value yield_ reject =
  List.find_map
    (fun (y, r, f) -> if y = yield_ && r = reject then Some f else None)
    Paper_data.wadsack_checkpoints

let rows ?(yield_ = 0.07) ?(n0 = 8.0) () =
  List.map
    (fun reject ->
      let ours =
        match Quality.Requirement.required_coverage ~yield_ ~n0 ~reject with
        | Some f -> f
        | None -> nan
      in
      let wadsack =
        match Quality.Wadsack.required_coverage ~yield_ ~reject with
        | Some f -> f
        | None -> nan
      in
      let williams_brown =
        match
          Quality.Williams_brown.required_coverage ~yield_ ~defect_level:reject
        with
        | Some f -> f
        | None -> nan
      in
      { reject; ours; wadsack; williams_brown;
        paper_ours = paper_ours_value reject;
        paper_wadsack = paper_wadsack_value yield_ reject })
    [ 0.01; 0.005; 0.001 ]

let pessimism_series ~yield_ ~n0 =
  Report.Series.of_fn ~label:"Wadsack r / our r"
    ~f:(fun f -> Quality.Wadsack.reject_ratio_vs_agrawal ~yield_ ~n0 f)
    ~lo:0.0 ~hi:0.99 ~steps:99

let render () =
  let opt = function
    | Some v -> Report.Table.percent_cell v
    | None -> "-"
  in
  let table_rows =
    List.map
      (fun r ->
        [ Printf.sprintf "%g" r.reject;
          Report.Table.percent_cell r.ours;
          opt r.paper_ours;
          Report.Table.percent_cell ~decimals:2 r.wadsack;
          opt r.paper_wadsack;
          Report.Table.percent_cell ~decimals:2 r.williams_brown ])
      (rows ())
  in
  "Section 7: required coverage, this model vs Wadsack baseline (y=0.07, n0=8)\n\n"
  ^ Report.Table.render
      ~headers:
        [ "reject rate"; "ours"; "ours (paper)"; "Wadsack"; "Wadsack (paper)";
          "Williams-Brown" ]
      table_rows
  ^ "\n"
  ^ Report.Ascii_plot.render ~y_scale:Report.Ascii_plot.Log10
      ~title:"Pessimism of the single-fault baseline (ratio of predicted reject rates)"
      ~x_label:"fault coverage f" ~y_label:"Wadsack r / our r (log)"
      [ pessimism_series ~yield_:0.07 ~n0:8.0 ]
