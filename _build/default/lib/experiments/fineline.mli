(** Section 8 — the fine-line technology prediction.

    Shrinking a design multiplies its area by a factor < 1 (raising
    yield at fixed defect density) while each physical defect spans
    more logic (raising n0).  Both movements lower the required fault
    coverage.  This experiment sweeps shrink factors through the fab
    model and the Eq. 8 requirement. *)

type row = {
  shrink : float;            (** Linear shrink; area scales by shrink². *)
  yield_ : float;            (** Stapper yield after the shrink. *)
  n0 : float;                (** Expected n0 from the defect model. *)
  required_coverage : float; (** For r = 0.001. *)
}

val sweep :
  ?reject:float ->
  ?base_yield:float ->
  ?base_n0:float ->
  ?variance_ratio:float ->
  shrinks:float list ->
  unit -> row list

val render : unit -> string
