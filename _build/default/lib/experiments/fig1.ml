let cases = [ (0.80, 2.0); (0.80, 10.0); (0.20, 2.0); (0.20, 10.0) ]

let series () =
  List.map
    (fun (y, n0) ->
      Report.Series.of_fn
        ~label:(Printf.sprintf "y=%.2f n0=%g" y n0)
        ~f:(fun f -> Quality.Reject.reject_rate ~yield_:y ~n0 f)
        ~lo:0.0 ~hi:1.0 ~steps:100)
    cases

let checkpoints () =
  List.filter_map
    (fun cp ->
      if cp.Paper_data.figure = "Fig.1" then begin
        let reproduced =
          match
            Quality.Requirement.required_coverage ~yield_:cp.Paper_data.yield_
              ~n0:cp.Paper_data.n0 ~reject:cp.Paper_data.reject
          with
          | Some f -> f
          | None -> nan
        in
        Some
          (Printf.sprintf "y=%.2f n0=%g r=%.3f" cp.Paper_data.yield_
             cp.Paper_data.n0 cp.Paper_data.reject,
           cp.Paper_data.coverage, reproduced)
      end
      else None)
    Paper_data.requirement_checkpoints

let render () =
  let plot =
    Report.Ascii_plot.render ~y_scale:Report.Ascii_plot.Log10
      ~title:"Fig. 1: field reject rate r(f) vs fault coverage (Eq. 8)"
      ~x_label:"fault coverage f" ~y_label:"field reject rate (log)"
      (series ())
  in
  let rows =
    List.map
      (fun (label, paper, ours) ->
        [ label; Report.Table.float_cell ~decimals:3 paper;
          Report.Table.float_cell ~decimals:3 ours;
          Report.Table.float_cell ~decimals:3 (abs_float (paper -. ours)) ])
      (checkpoints ())
  in
  plot ^ "\n"
  ^ Report.Table.render
      ~aligns:[ Report.Table.Left; Right; Right; Right ]
      ~headers:[ "case (coverage needed for r<=0.005)"; "paper"; "reproduced"; "|diff|" ]
      rows
