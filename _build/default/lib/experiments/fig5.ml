let n0_family = List.init 12 (fun i -> float_of_int (i + 1))

let family ~yield_ =
  List.map
    (fun n0 ->
      Report.Series.of_fn ~label:(Printf.sprintf "P(f) n0=%g" n0)
        ~f:(fun f -> Quality.Reject.p_reject ~yield_ ~n0 f)
        ~lo:0.0 ~hi:1.0 ~steps:100)
    n0_family

let paper_points () =
  Report.Series.make ~label:"paper Table 1"
    (Array.of_list
       (List.map (fun (f, frac) -> (f, frac)) Paper_data.table1_points))

let doubling_checkpoints total =
  let rec grow k acc = if k >= total then List.rev (total :: acc) else grow (2 * k) (k :: acc) in
  grow 1 [] |> List.sort_uniq compare

let simulated_rows run =
  let total = Tester.Pattern_set.pattern_count run.Pipeline.program in
  let rows =
    Tester.Wafer_test.rows_at_patterns run.Pipeline.outcome run.Pipeline.program
      ~checkpoints:(doubling_checkpoints total)
  in
  (* Several early prefixes can alias to the same coverage; keep the
     first occurrence of each coverage value. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun row ->
      let key = int_of_float (row.Tester.Wafer_test.coverage *. 1e6) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    rows

let simulated_points run =
  Report.Series.make ~label:"simulated lot"
    (Array.of_list
       (List.map
          (fun row ->
            (row.Tester.Wafer_test.coverage, row.Tester.Wafer_test.fraction_failed))
          (simulated_rows run)))

let simulated_estimate_points run =
  List.map
    (fun row ->
      { Quality.Estimate.coverage = row.Tester.Wafer_test.coverage;
        fraction_failed = row.Tester.Wafer_test.fraction_failed })
    (simulated_rows run)

let paper_estimate_points () =
  List.map
    (fun (f, frac) -> { Quality.Estimate.coverage = f; fraction_failed = frac })
    Paper_data.table1_points

let fit_paper () =
  Quality.Estimate.fit_n0 ~yield_:Paper_data.table1_yield (paper_estimate_points ())

let fit_simulated run =
  Quality.Estimate.fit_n0 ~yield_:(Pipeline.true_yield run)
    (simulated_estimate_points run)

let render ?run () =
  let overlays =
    paper_points ()
    :: (match run with Some r -> [ simulated_points r ] | None -> [])
  in
  let plot =
    Report.Ascii_plot.render
      ~title:"Fig. 5: P(f) family (y = 0.07, n0 = 1..12) with experimental points"
      ~x_label:"fault coverage f" ~y_label:"fraction of chips failed"
      (family ~yield_:Paper_data.table1_yield @ overlays)
  in
  let n0_paper, residual_paper = fit_paper () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf plot;
  Buffer.add_string buf
    (Printf.sprintf
       "\nfit to paper Table 1 (y=%.2f): n0 = %.2f (residual %.2e); paper chose n0 = %g\n"
       Paper_data.table1_yield n0_paper residual_paper Paper_data.fitted_n0);
  let slope_raw =
    Quality.Estimate.slope_nav ~points_used:1 (paper_estimate_points ())
  in
  let slope_corrected =
    Quality.Estimate.slope_n0 ~points_used:1 ~yield_:Paper_data.table1_yield
      (paper_estimate_points ())
  in
  Buffer.add_string buf
    (Printf.sprintf
       "slope estimate from first paper point: P'(0) = %.2f (paper 8.2), n0 = %.2f (paper 8.8)\n"
       slope_raw slope_corrected);
  (match run with
  | None -> ()
  | Some r ->
    let n0_sim, residual_sim = fit_simulated r in
    Buffer.add_string buf
      (Printf.sprintf
         "fit to simulated lot (y=%.3f): n0 = %.2f (residual %.2e); lot's true n0 = %.2f\n"
         (Pipeline.true_yield r) n0_sim residual_sim (Pipeline.true_n0 r)));
  Buffer.contents buf
