(** The numbers printed in the paper, kept verbatim as ground truth for
    the reproduction tables ("paper" column) and the regression tests. *)

type table1_row = {
  coverage_percent : float;      (** Fault coverage, percent. *)
  cumulative_failed : int;       (** Chips failed by this point. *)
  cumulative_fraction : float;   (** Fraction of the 277 chips. *)
}

val table1 : table1_row list
(** Table 1: the 277-chip wafer-test experiment, yield ≈ 0.07. *)

val table1_chip_count : int
val table1_yield : float

val table1_points : (float * float) list
(** Table 1 as (coverage, fraction failed) pairs on [0,1] scales. *)

val fitted_n0 : float
(** Section 7: the visually fitted value, n0 = 8. *)

val slope_n0_raw : float
(** Section 7: P'(0) ≈ 0.41/0.05 = 8.2. *)

val slope_n0_corrected : float
(** Section 7: 8.2 / 0.93 = 8.8 via Eq. 10. *)

type requirement_checkpoint = {
  figure : string;      (** Which figure the value is read from. *)
  yield_ : float;
  n0 : float;
  reject : float;
  coverage : float;     (** The paper's graph-read required coverage. *)
  tolerance : float;    (** Graph-reading slack for tests. *)
}

val requirement_checkpoints : requirement_checkpoint list
(** Every required-coverage number quoted in the running text
    (Sections 4, 6 and 7). *)

val wadsack_checkpoints : (float * float * float) list
(** Section 7 baseline numbers: (yield, reject, required coverage). *)
