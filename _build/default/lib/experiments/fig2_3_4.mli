(** Figs. 2, 3, 4 — required fault coverage versus yield for field
    reject rates 1/100, 1/200 and 1/1000, one curve per n0 = 1..12
    (Eq. 11 inverted). *)

val reject_rates : (string * float) list
(** [("Fig.2", 0.01); ("Fig.3", 0.005); ("Fig.4", 0.001)]. *)

val n0_family : float list
(** n0 = 1..12 as in Fig. 5's family. *)

val series : reject:float -> Report.Series.t list
(** Required-coverage-vs-yield curves for one figure. *)

val checkpoints : unit -> (string * float * float) list
(** Paper graph-read values vs reproduced, for the quoted points of
    Figs. 2 and 4. *)

val render_figure : name:string -> reject:float -> string

val render : unit -> string
(** All three figures plus the checkpoint table. *)
