let reject_rates = [ ("Fig.2", 0.01); ("Fig.3", 0.005); ("Fig.4", 0.001) ]

let n0_family = List.init 12 (fun i -> float_of_int (i + 1))

let series ~reject =
  List.map
    (fun n0 ->
      let f y =
        match Quality.Requirement.required_coverage ~yield_:y ~n0 ~reject with
        | Some f -> f
        | None -> 1.0
      in
      Report.Series.of_fn ~label:(Printf.sprintf "n0=%g" n0) ~f ~lo:0.005 ~hi:0.995
        ~steps:99)
    n0_family

let checkpoints () =
  List.filter_map
    (fun cp ->
      if cp.Paper_data.figure = "Fig.2" || cp.Paper_data.figure = "Fig.4" then begin
        let reproduced =
          match
            Quality.Requirement.required_coverage ~yield_:cp.Paper_data.yield_
              ~n0:cp.Paper_data.n0 ~reject:cp.Paper_data.reject
          with
          | Some f -> f
          | None -> nan
        in
        Some
          (Printf.sprintf "%s y=%.2f n0=%g r=%.3g" cp.Paper_data.figure
             cp.Paper_data.yield_ cp.Paper_data.n0 cp.Paper_data.reject,
           cp.Paper_data.coverage, reproduced)
      end
      else None)
    Paper_data.requirement_checkpoints

let render_figure ~name ~reject =
  Report.Ascii_plot.render
    ~title:
      (Printf.sprintf "%s: required coverage vs yield for r = %g (n0 = 1..12 top to bottom)"
         name reject)
    ~x_label:"yield y" ~y_label:"required fault coverage f" (series ~reject)

let render () =
  let figures =
    List.map (fun (name, reject) -> render_figure ~name ~reject) reject_rates
  in
  let rows =
    List.map
      (fun (label, paper, ours) ->
        [ label; Report.Table.float_cell ~decimals:3 paper;
          Report.Table.float_cell ~decimals:3 ours;
          Report.Table.float_cell ~decimals:3 (abs_float (paper -. ours)) ])
      (checkpoints ())
  in
  String.concat "\n" figures
  ^ "\n"
  ^ Report.Table.render
      ~aligns:[ Report.Table.Left; Right; Right; Right ]
      ~headers:[ "checkpoint"; "paper"; "reproduced"; "|diff|" ]
      rows
