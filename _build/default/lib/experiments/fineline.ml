type row = {
  shrink : float;
  yield_ : float;
  n0 : float;
  required_coverage : float;
}

let sweep ?(reject = 0.001) ?(base_yield = 0.07) ?(base_n0 = 8.0)
    ?(variance_ratio = 0.25) ~shrinks () =
  let defect_density =
    Fab.Yield_model.solve_defect_density ~target_yield:base_yield ~area:1.0
      ~variance_ratio
  in
  let base_model =
    Fab.Yield_model.create ~defect_density ~area:1.0 ~variance_ratio
  in
  let base_lambda = Fab.Yield_model.lambda base_model in
  let base_multiplicity = base_n0 *. (1.0 -. base_yield) /. base_lambda in
  List.map
    (fun shrink ->
      if shrink <= 0.0 || shrink > 1.0 then
        invalid_arg "Fineline.sweep: shrink must be in (0,1]";
      let area_factor = shrink *. shrink in
      (* Finer features: a defect of fixed physical size covers an area
         of circuitry that scales with 1/shrink² gate sites. *)
      let multiplicity_factor = 1.0 /. (shrink *. shrink) in
      let model =
        Fab.Yield_model.create ~defect_density ~area:area_factor ~variance_ratio
      in
      let yield_ = Fab.Yield_model.stapper_yield model in
      let lambda = Fab.Yield_model.lambda model in
      let multiplicity = max 1.0 (base_multiplicity *. multiplicity_factor) in
      let n0 =
        if lambda = 0.0 then multiplicity
        else multiplicity *. lambda /. (1.0 -. yield_)
      in
      let n0 = max 1.0 n0 in
      let required_coverage =
        match Quality.Requirement.required_coverage ~yield_ ~n0 ~reject with
        | Some f -> f
        | None -> 1.0
      in
      { shrink; yield_; n0; required_coverage })
    shrinks

let render () =
  let rows = sweep ~shrinks:[ 1.0; 0.9; 0.8; 0.7; 0.6; 0.5 ] () in
  let table_rows =
    List.map
      (fun r ->
        [ Printf.sprintf "%.1f" r.shrink;
          Report.Table.float_cell r.yield_;
          Report.Table.float_cell ~decimals:2 r.n0;
          Report.Table.percent_cell r.required_coverage ])
      rows
  in
  "Section 8: fine-line shrink study (r = 0.001, base y=0.07 n0=8)\n\n"
  ^ Report.Table.render
      ~headers:[ "linear shrink"; "yield"; "n0"; "required coverage" ]
      table_rows
