(** Fig. 1 — field reject rate versus fault coverage for yields 0.80
    and 0.20, each at n0 = 2 and n0 = 10 (semi-log, Eq. 8). *)

val cases : (float * float) list
(** The paper's four (yield, n0) combinations. *)

val series : unit -> Report.Series.t list
(** One r(f) curve per case, f swept over [0, 1]. *)

val checkpoints : unit -> (string * float * float) list
(** [(label, paper value, reproduced value)] for the four coverage
    numbers quoted in Section 4 (r ≤ 0.005 thresholds). *)

val render : unit -> string
(** Plot plus checkpoint table. *)
