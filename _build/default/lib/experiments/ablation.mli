(** Ablation studies for the design choices DESIGN.md calls out. *)

type closed_form_row = {
  yield_ : float;
  n0 : float;
  total_sites : int;
  max_abs_error : float;  (** max over f of |Eq.7 - Eq.6 exact sum|. *)
}

val closed_form_error : unit -> closed_form_row list
(** How much the paper's Eq. 7 closed form deviates from the exact
    finite-universe sum Eq. 6 — justifies using the closed form
    everywhere else. *)

type line_model_row = {
  line : string;
  true_n0 : float;
  fitted_n0 : float;
  slope_n0 : float;
  empirical_yield : float;
}

val line_model_bias : ?scale:int -> ?lot_size:int -> unit -> line_model_row list
(** Fit quality on the ideal (Eq. 1) line versus the clustered physical
    line: quantifies how defect clustering biases the estimators the
    paper proposes. *)

type tester_row = {
  mode : string;
  escapes : int;
  failed_total : int;
  mean_first_fail : float;
}

val tester_fidelity : ?scale:int -> ?lot_size:int -> unit -> tester_row list
(** Single-fault first-detection lookup versus exact multiple-fault
    simulation of each defective chip: measures how much fault masking
    (ignored by the paper's urn model) shifts the observed curve. *)

type dispersion_row = {
  dispersion : float;
  required_base : float;
  required_mixed : float;
}

val griffin_dispersion : ?yield_:float -> ?n0:float -> ?reject:float -> unit ->
  dispersion_row list
(** Required coverage under the fixed-n0 model versus the gamma-mixed
    (Griffin) model as line dispersion grows. *)

type atpg_engine_row = {
  engine : string;
  total_backtracks : int;
  total_implications : int;
  aborted_faults : int;
}

val atpg_engines : ?bits:int -> ?hardest:int -> unit -> atpg_engine_row list
(** Search effort of the deterministic engines — PODEM (level-guided),
    PODEM (SCOAP-guided) and the bidirectional-implication search — on
    the [hardest] faults (by SCOAP difficulty) of a [bits]-wide array
    multiplier. *)

val render : unit -> string
(** All studies (runs two small pipelines; a few seconds). *)
