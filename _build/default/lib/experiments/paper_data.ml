type table1_row = {
  coverage_percent : float;
  cumulative_failed : int;
  cumulative_fraction : float;
}

let table1 =
  [ { coverage_percent = 5.0; cumulative_failed = 113; cumulative_fraction = 0.41 };
    { coverage_percent = 8.0; cumulative_failed = 134; cumulative_fraction = 0.48 };
    { coverage_percent = 10.0; cumulative_failed = 144; cumulative_fraction = 0.52 };
    { coverage_percent = 15.0; cumulative_failed = 186; cumulative_fraction = 0.67 };
    { coverage_percent = 20.0; cumulative_failed = 209; cumulative_fraction = 0.75 };
    { coverage_percent = 30.0; cumulative_failed = 226; cumulative_fraction = 0.82 };
    { coverage_percent = 36.0; cumulative_failed = 242; cumulative_fraction = 0.87 };
    { coverage_percent = 45.0; cumulative_failed = 251; cumulative_fraction = 0.91 };
    { coverage_percent = 50.0; cumulative_failed = 256; cumulative_fraction = 0.92 };
    { coverage_percent = 65.0; cumulative_failed = 257; cumulative_fraction = 0.93 } ]

let table1_chip_count = 277

let table1_yield = 0.07

let table1_points =
  List.map
    (fun row -> (row.coverage_percent /. 100.0, row.cumulative_fraction))
    table1

let fitted_n0 = 8.0

let slope_n0_raw = 8.2

let slope_n0_corrected = 8.8

type requirement_checkpoint = {
  figure : string;
  yield_ : float;
  n0 : float;
  reject : float;
  coverage : float;
  tolerance : float;
}

let requirement_checkpoints =
  [ { figure = "Fig.1"; yield_ = 0.80; n0 = 2.0; reject = 0.005; coverage = 0.95;
      tolerance = 0.01 };
    { figure = "Fig.1"; yield_ = 0.80; n0 = 10.0; reject = 0.005; coverage = 0.38;
      tolerance = 0.01 };
    { figure = "Fig.1"; yield_ = 0.20; n0 = 2.0; reject = 0.005; coverage = 0.99;
      tolerance = 0.01 };
    { figure = "Fig.1"; yield_ = 0.20; n0 = 10.0; reject = 0.005; coverage = 0.63;
      tolerance = 0.01 };
    { figure = "Fig.2"; yield_ = 0.07; n0 = 8.0; reject = 0.01; coverage = 0.80;
      tolerance = 0.02 };
    { figure = "Fig.4"; yield_ = 0.30; n0 = 8.0; reject = 0.001; coverage = 0.85;
      tolerance = 0.02 };
    { figure = "Fig.4"; yield_ = 0.07; n0 = 8.0; reject = 0.001; coverage = 0.95;
      tolerance = 0.02 } ]

let wadsack_checkpoints =
  [ (0.07, 0.01, 0.99); (0.07, 0.001, 0.999) ]
