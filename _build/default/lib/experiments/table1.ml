let paper_side () =
  List.map
    (fun row ->
      [ Printf.sprintf "%.0f%%" row.Paper_data.coverage_percent;
        string_of_int row.Paper_data.cumulative_failed;
        Report.Table.float_cell ~decimals:2 row.Paper_data.cumulative_fraction ])
    Paper_data.table1

let simulated_side run =
  let coverages =
    List.map (fun row -> row.Paper_data.coverage_percent /. 100.0) Paper_data.table1
  in
  Tester.Wafer_test.rows_at_coverages run.Pipeline.outcome run.Pipeline.program
    ~coverages
  |> (fun rows ->
       (* Checkpoints the program cannot resolve alias to the same
          pattern prefix; keep the first occurrence only. *)
       let seen = Hashtbl.create 8 in
       List.filter
         (fun row ->
           let k = row.Tester.Wafer_test.patterns_applied in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             true
           end)
         rows)
  |> List.map (fun row ->
         [ Printf.sprintf "%.1f%%" (100.0 *. row.Tester.Wafer_test.coverage);
           string_of_int row.Tester.Wafer_test.cumulative_failed;
           Report.Table.float_cell ~decimals:2 row.Tester.Wafer_test.fraction_failed ])

type estimates = {
  fit_n0 : float;
  slope_nav : float;
  slope_n0 : float;
  true_n0 : float;
  empirical_yield : float;
}

let estimates run =
  let points = Fig5.simulated_estimate_points run in
  let empirical_yield = Pipeline.true_yield run in
  let fit_n0, _ = Quality.Estimate.fit_n0 ~yield_:empirical_yield points in
  { fit_n0;
    slope_nav = Quality.Estimate.slope_nav ~points_used:1 points;
    slope_n0 = Quality.Estimate.slope_n0 ~points_used:1 ~yield_:empirical_yield points;
    true_n0 = Pipeline.true_n0 run;
    empirical_yield }

let render ?run () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "Table 1 (paper): yield ~ %.2f, %d chips\n\n"
       Paper_data.table1_yield Paper_data.table1_chip_count);
  Buffer.add_string buf
    (Report.Table.render
       ~headers:[ "fault coverage"; "cum. failed"; "cum. fraction" ]
       (paper_side ()));
  (match run with
  | None -> ()
  | Some r ->
    Buffer.add_string buf
      (Printf.sprintf
         "\nTable 1 (reproduced): simulated lot of %d chips, empirical yield %.3f\n\n"
         (Fab.Lot.size r.Pipeline.lot) (Pipeline.true_yield r));
    Buffer.add_string buf
      (Report.Table.render
         ~headers:[ "fault coverage"; "cum. failed"; "cum. fraction" ]
         (simulated_side r));
    let e = estimates r in
    Buffer.add_string buf
      (Printf.sprintf
         "\nestimates on simulated lot: fit n0 = %.2f | slope P'(0) = %.2f | \
          slope n0 = %.2f | true n0 = %.2f\n"
         e.fit_n0 e.slope_nav e.slope_n0 e.true_n0));
  Buffer.contents buf
