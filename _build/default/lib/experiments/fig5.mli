(** Fig. 5 — determination of n0: the P(f) family (Eq. 9, n0 = 1..12)
    overlaid with experimental cumulative-fail points.

    Two data sources are overlaid, exactly mirroring the paper:
    the paper's own Table 1 measurements (digitized in
    {!Paper_data.table1}), and the reproduction's simulated wafer lot
    from a {!Pipeline.run}. *)

val n0_family : float list

val family : yield_:float -> Report.Series.t list
(** P(f) curves for each n0 in the family. *)

val paper_points : unit -> Report.Series.t
(** The paper's ten Table-1 points. *)

val simulated_rows : Pipeline.run -> Tester.Wafer_test.row list
(** The raw checkpoint rows behind {!simulated_points}. *)

val simulated_points : Pipeline.run -> Report.Series.t
(** Checkpoints of the simulated lot at doubling pattern prefixes
    (coverage-deduplicated). *)

val simulated_estimate_points : Pipeline.run -> Quality.Estimate.point list
(** The same checkpoints in estimator form. *)

val fit_paper : unit -> float * float
(** (n0, residual) fitted to the paper's Table 1 at y = 0.07; lands on
    ≈ 8, the paper's visually chosen value. *)

val fit_simulated : Pipeline.run -> float * float
(** (n0, residual) fitted to the simulated lot at its empirical yield. *)

val render : ?run:Pipeline.run -> unit -> string
(** Plot plus the estimate summary; with [run] absent only the paper
    overlay is shown (no simulation cost). *)
