type closed_form_row = {
  yield_ : float;
  n0 : float;
  total_sites : int;
  max_abs_error : float;
}

let closed_form_error () =
  let cases =
    [ (0.80, 2.0, 1000); (0.20, 10.0, 1000); (0.07, 8.0, 5000); (0.07, 8.0, 500) ]
  in
  List.map
    (fun (yield_, n0, total_sites) ->
      let max_err = ref 0.0 in
      for i = 0 to 100 do
        let f = float_of_int i /. 100.0 in
        let closed = Quality.Reject.ybg ~yield_ ~n0 f in
        let exact = Quality.Reject.ybg_exact ~total:total_sites ~yield_ ~n0 f in
        max_err := max !max_err (abs_float (closed -. exact))
      done;
      { yield_; n0; total_sites; max_abs_error = !max_err })
    cases

type line_model_row = {
  line : string;
  true_n0 : float;
  fitted_n0 : float;
  slope_n0 : float;
  empirical_yield : float;
}

let pipeline_config ~scale ~lot_size ~line =
  { Pipeline.default_config with
    Pipeline.scale;
    lot_size;
    line;
    seed = 2024;
    atpg = { Tpg.Atpg.default_config with Tpg.Atpg.backtrack_limit = 200 } }

let line_model_bias ?(scale = 6) ?(lot_size = 250) () =
  List.map
    (fun (label, line) ->
      let run = Pipeline.execute (pipeline_config ~scale ~lot_size ~line) in
      let points = Fig5.simulated_estimate_points run in
      let empirical_yield = Pipeline.true_yield run in
      let fitted_n0, _ = Quality.Estimate.fit_n0 ~yield_:empirical_yield points in
      { line = label;
        true_n0 = Pipeline.true_n0 run;
        fitted_n0;
        slope_n0 = Quality.Estimate.slope_n0 ~points_used:1 ~yield_:empirical_yield points;
        empirical_yield })
    [ ("ideal (Eq.1)", Pipeline.Ideal); ("clustered", Pipeline.Clustered) ]

type tester_row = {
  mode : string;
  escapes : int;
  failed_total : int;
  mean_first_fail : float;
}

let tester_fidelity ?(scale = 6) ?(lot_size = 150) () =
  let base = pipeline_config ~scale ~lot_size ~line:Pipeline.Clustered in
  let run_lookup = Pipeline.execute base in
  (* Re-test the same lot exactly (same seed) with the exact tester. *)
  let run_exact =
    Pipeline.execute { base with Pipeline.tester_mode = Tester.Wafer_test.Exact_multifault }
  in
  let summarize label (run : Pipeline.run) =
    let fails =
      Array.to_list run.Pipeline.outcome.Tester.Wafer_test.outcomes
      |> List.filter_map (fun o -> o.Tester.Wafer_test.first_fail)
    in
    { mode = label;
      escapes = Tester.Wafer_test.test_escapes run.Pipeline.outcome;
      failed_total = List.length fails;
      mean_first_fail =
        (if fails = [] then nan
         else
           float_of_int (List.fold_left ( + ) 0 fails)
           /. float_of_int (List.length fails)) }
  in
  [ summarize "table lookup (single-fault superposition)" run_lookup;
    summarize "exact multi-fault simulation" run_exact ]

type dispersion_row = {
  dispersion : float;
  required_base : float;
  required_mixed : float;
}

let griffin_dispersion ?(yield_ = 0.07) ?(n0 = 8.0) ?(reject = 0.001) () =
  let required_base =
    match Quality.Requirement.required_coverage ~yield_ ~n0 ~reject with
    | Some f -> f
    | None -> 1.0
  in
  List.map
    (fun dispersion ->
      let required_mixed =
        if dispersion <= 1.0 then required_base
        else begin
          let mixed = Quality.Griffin.of_mean_dispersion ~yield_ ~n0 ~dispersion in
          match Quality.Griffin.required_coverage mixed ~reject with
          | Some f -> f
          | None -> 1.0
        end
      in
      { dispersion; required_base; required_mixed })
    [ 1.0; 1.5; 2.0; 3.0; 5.0 ]

type atpg_engine_row = {
  engine : string;
  total_backtracks : int;
  total_implications : int;
  aborted_faults : int;
}

let atpg_engines ?(bits = 6) ?(hardest = 60) () =
  let c = Circuit.Generators.array_multiplier ~bits in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  let universe = Faults.Collapse.representatives classes in
  let scoap = Tpg.Scoap.analyze c in
  let targets =
    Tpg.Scoap.hardest_faults scoap c universe ~count:hardest |> List.map fst
  in
  let measure engine run =
    let backtracks = ref 0 and implications = ref 0 and aborted = ref 0 in
    List.iter
      (fun fault ->
        let b, i, a = run fault in
        backtracks := !backtracks + b;
        implications := !implications + i;
        if a then incr aborted)
      targets;
    { engine; total_backtracks = !backtracks; total_implications = !implications;
      aborted_faults = !aborted }
  in
  [ measure "PODEM (level-guided)" (fun fault ->
        let r, s = Tpg.Podem.generate ~backtrack_limit:5000 c fault in
        (s.Tpg.Podem.backtracks, s.Tpg.Podem.implications, r = Tpg.Podem.Aborted));
    measure "PODEM (SCOAP-guided)" (fun fault ->
        let r, s =
          Tpg.Podem.generate ~backtrack_limit:5000
            ~guidance:(Tpg.Podem.Scoap_based scoap) c fault
        in
        (s.Tpg.Podem.backtracks, s.Tpg.Podem.implications, r = Tpg.Podem.Aborted));
    measure "bidirectional implication" (fun fault ->
        let r, s = Tpg.Implication_atpg.generate ~backtrack_limit:5000 c fault in
        ( s.Tpg.Implication_atpg.backtracks,
          s.Tpg.Implication_atpg.implications,
          r = Tpg.Implication_atpg.Aborted )) ]

let render () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Ablation A: Eq.7 closed form vs Eq.6 exact sum\n\n";
  Buffer.add_string buf
    (Report.Table.render
       ~headers:[ "yield"; "n0"; "N sites"; "max |Eq.7 - Eq.6|" ]
       (List.map
          (fun r ->
            [ Report.Table.float_cell ~decimals:2 r.yield_;
              Printf.sprintf "%g" r.n0; string_of_int r.total_sites;
              Printf.sprintf "%.3g" r.max_abs_error ])
          (closed_form_error ())));
  Buffer.add_string buf "\nAblation B: estimator bias, ideal vs clustered line\n\n";
  Buffer.add_string buf
    (Report.Table.render
       ~aligns:[ Report.Table.Left; Right; Right; Right; Right ]
       ~headers:[ "line model"; "true n0"; "fitted n0"; "slope n0"; "yield" ]
       (List.map
          (fun r ->
            [ r.line; Report.Table.float_cell ~decimals:2 r.true_n0;
              Report.Table.float_cell ~decimals:2 r.fitted_n0;
              Report.Table.float_cell ~decimals:2 r.slope_n0;
              Report.Table.float_cell r.empirical_yield ])
          (line_model_bias ())));
  Buffer.add_string buf "\nAblation C: tester fidelity (fault masking)\n\n";
  Buffer.add_string buf
    (Report.Table.render
       ~aligns:[ Report.Table.Left; Right; Right; Right ]
       ~headers:[ "tester mode"; "escapes"; "chips failed"; "mean first-fail pattern" ]
       (List.map
          (fun r ->
            [ r.mode; string_of_int r.escapes; string_of_int r.failed_total;
              Report.Table.float_cell ~decimals:1 r.mean_first_fail ])
          (tester_fidelity ())));
  Buffer.add_string buf
    "\nAblation D: Griffin gamma-mixed model, required coverage vs dispersion\n\n";
  Buffer.add_string buf
    (Report.Table.render
       ~headers:[ "dispersion"; "fixed-n0 requirement"; "mixed requirement" ]
       (List.map
          (fun r ->
            [ Printf.sprintf "%g" r.dispersion;
              Report.Table.percent_cell r.required_base;
              Report.Table.percent_cell r.required_mixed ])
          (griffin_dispersion ())));
  Buffer.add_string buf "\nAblation E: deterministic ATPG engines on the hardest faults\n\n";
  Buffer.add_string buf
    (Report.Table.render
       ~aligns:[ Report.Table.Left; Right; Right; Right ]
       ~headers:[ "engine"; "backtracks"; "implications"; "aborted" ]
       (List.map
          (fun r ->
            [ r.engine; string_of_int r.total_backtracks;
              string_of_int r.total_implications; string_of_int r.aborted_faults ])
          (atpg_engines ())));
  Buffer.contents buf
