let total_sites = 1000

let fault_counts = [ 1; 2; 4; 8; 16; 32 ]

let coverage_grid = Array.init 99 (fun i -> float_of_int (i + 1) /. 100.0)

let series () =
  let exact =
    List.map
      (fun n ->
        Report.Series.make ~label:(Printf.sprintf "n=%d exact" n)
          (Array.map
             (fun f -> (f, Quality.Escape.q0_exact ~total:total_sites ~faulty:n ~coverage:f))
             coverage_grid))
      fault_counts
  in
  let approx =
    Report.Series.make ~label:"n=32 (1-f)^n"
      (Array.map
         (fun f -> (f, Quality.Escape.q0_simple ~faulty:32 ~coverage:f))
         coverage_grid)
  in
  exact @ [ approx ]

type error_row = {
  n : int;
  max_abs_error_a2 : float;
  max_rel_error_a3 : float;
}

let error_table () =
  List.map
    (fun n ->
      let max_abs_a2 = ref 0.0 and max_rel_a3 = ref 0.0 in
      Array.iter
        (fun f ->
          let exact = Quality.Escape.q0_exact ~total:total_sites ~faulty:n ~coverage:f in
          let a2 = Quality.Escape.q0_second_order ~total:total_sites ~faulty:n ~coverage:f in
          let a3 = Quality.Escape.q0_simple ~faulty:n ~coverage:f in
          max_abs_a2 := max !max_abs_a2 (abs_float (a2 -. exact));
          (* The paper only claims (1-f)^n inside its validity region
             n << sqrt(N(1-f)/f); report A.3's error there. *)
          let in_validity_region =
            float_of_int n
            < 0.5 *. Quality.Escape.q0_validity_bound ~total:total_sites ~coverage:f
          in
          if exact > 1e-12 && in_validity_region then
            max_rel_a3 := max !max_rel_a3 (abs_float ((a3 /. exact) -. 1.0)))
        coverage_grid;
      { n; max_abs_error_a2 = !max_abs_a2; max_rel_error_a3 = !max_rel_a3 })
    fault_counts

let render () =
  let plot =
    Report.Ascii_plot.render ~y_scale:Report.Ascii_plot.Log10
      ~title:"Fig. 6: escape probability q0(n) vs coverage, N = 1000 (log scale)"
      ~x_label:"fault coverage f = m/N" ~y_label:"q0(n)" (series ())
  in
  let rows =
    List.map
      (fun row ->
        [ string_of_int row.n;
          Printf.sprintf "%.3g" row.max_abs_error_a2;
          Printf.sprintf "%.3g" row.max_rel_error_a3 ])
      (error_table ())
  in
  plot ^ "\n"
  ^ Report.Table.render
      ~headers:[ "n"; "max |A.2 - exact|"; "max rel err of (1-f)^n" ]
      rows
