lib/experiments/fineline.ml: Fab List Printf Quality Report
