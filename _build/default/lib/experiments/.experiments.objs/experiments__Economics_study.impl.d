lib/experiments/economics_study.ml: List Printf Quality Report
