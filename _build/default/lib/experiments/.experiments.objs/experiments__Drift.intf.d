lib/experiments/drift.mli:
