lib/experiments/fig5.mli: Pipeline Quality Report Tester
