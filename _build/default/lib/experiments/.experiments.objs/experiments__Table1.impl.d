lib/experiments/table1.ml: Buffer Fab Fig5 Hashtbl List Paper_data Pipeline Printf Quality Report Tester
