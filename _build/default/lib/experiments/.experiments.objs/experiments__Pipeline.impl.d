lib/experiments/pipeline.ml: Array Buffer Circuit Fab Faults List Printf Quality Stats Tester Tpg
