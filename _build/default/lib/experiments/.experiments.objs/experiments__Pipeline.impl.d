lib/experiments/pipeline.ml: Array Buffer Circuit Fab Faults Fsim List Printf Quality Stats Tester Tpg
