lib/experiments/comparison.ml: List Paper_data Printf Quality Report
