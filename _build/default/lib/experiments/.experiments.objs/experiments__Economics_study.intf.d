lib/experiments/economics_study.mli:
