lib/experiments/fig5.ml: Array Buffer Hashtbl List Paper_data Pipeline Printf Quality Report Tester
