lib/experiments/ablation.ml: Array Buffer Circuit Faults Fig5 List Pipeline Printf Quality Report Tester Tpg
