lib/experiments/fig6.ml: Array List Printf Quality Report
