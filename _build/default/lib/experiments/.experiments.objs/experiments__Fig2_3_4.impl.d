lib/experiments/fig2_3_4.ml: List Paper_data Printf Quality Report String
