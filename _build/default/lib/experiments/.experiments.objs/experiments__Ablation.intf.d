lib/experiments/ablation.mli:
