lib/experiments/comparison.mli: Report
