lib/experiments/drift.ml: Array Buffer List Printf Quality Stats
