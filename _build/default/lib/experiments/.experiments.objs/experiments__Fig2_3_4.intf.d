lib/experiments/fig2_3_4.mli: Report
