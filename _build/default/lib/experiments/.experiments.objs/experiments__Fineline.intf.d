lib/experiments/fineline.mli:
