lib/experiments/fig1.ml: List Paper_data Printf Quality Report
