lib/experiments/pipeline.mli: Circuit Fab Faults Quality Tester Tpg
