lib/experiments/pipeline.mli: Circuit Fab Faults Fsim Quality Tester Tpg
