type lot_outcome = { true_n0 : float; fitted_n0 : float }

type study = {
  lots : lot_outcome list;
  mean_true_n0 : float;
  mean_fitted_n0 : float;
  fit_rmse : float;
  pooled_fit_n0 : float;
  dispersion : float;
}

let checkpoint_coverages = [ 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5; 0.65; 0.8 ]

(* Urn model: a chip with n faults fails by coverage f with probability
   1-(1-f)^n, so its first-fail coverage is the min of n uniforms. *)
let sample_first_fail_coverage rng n =
  let rec loop best remaining =
    if remaining = 0 then best
    else loop (min best (Stats.Rng.uniform rng)) (remaining - 1)
  in
  loop 1.0 n

let sample_lot_points rng ~chips ~yield_ ~n0 =
  let first_fail =
    Array.init chips (fun _ ->
        if Stats.Rng.uniform rng < yield_ then None
        else begin
          let n = 1 + Stats.Rng.poisson rng (n0 -. 1.0) in
          Some (sample_first_fail_coverage rng n)
        end)
  in
  List.map
    (fun f ->
      let failed =
        Array.fold_left
          (fun acc ff ->
            match ff with Some c when c <= f -> acc + 1 | Some _ | None -> acc)
          0 first_fail
      in
      { Quality.Estimate.coverage = f;
        fraction_failed = float_of_int failed /. float_of_int chips })
    checkpoint_coverages

let simulate ?(lots = 40) ?(chips_per_lot = 277) ?(yield_ = 0.07) ?(mean_n0 = 8.0)
    ?(dispersion = 2.0) ?(seed = 612) () =
  if lots <= 0 || chips_per_lot <= 0 then invalid_arg "Drift.simulate: empty study";
  if mean_n0 <= 1.0 then invalid_arg "Drift.simulate: mean n0 must exceed 1";
  if dispersion < 1.0 then invalid_arg "Drift.simulate: dispersion must be >= 1";
  let rng = Stats.Rng.create ~seed () in
  let sample_n0 () =
    if dispersion = 1.0 then mean_n0
    else begin
      (* n0 - 1 ~ Gamma with mean (mean_n0 - 1), variance scaled by
         (dispersion - 1): matches Quality.Griffin's parameterization. *)
      let scale = dispersion -. 1.0 in
      let shape = (mean_n0 -. 1.0) /. scale in
      1.0 +. Stats.Rng.gamma rng ~shape ~scale
    end
  in
  let outcomes_and_points =
    List.init lots (fun _ ->
        let true_n0 = sample_n0 () in
        let points = sample_lot_points rng ~chips:chips_per_lot ~yield_ ~n0:true_n0 in
        let fitted_n0, _ = Quality.Estimate.fit_n0 ~yield_ points in
        ({ true_n0; fitted_n0 }, points))
  in
  let outcomes = List.map fst outcomes_and_points in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let mean_true_n0 = mean (List.map (fun o -> o.true_n0) outcomes) in
  let mean_fitted_n0 = mean (List.map (fun o -> o.fitted_n0) outcomes) in
  let fit_rmse =
    sqrt
      (mean
         (List.map
            (fun o ->
              let e = o.fitted_n0 -. o.true_n0 in
              e *. e)
            outcomes))
  in
  (* Pool all lots' checkpoints (averaging fractions per coverage). *)
  let pooled =
    List.map
      (fun f ->
        let fractions =
          List.concat_map
            (fun (_, points) ->
              List.filter_map
                (fun p ->
                  if p.Quality.Estimate.coverage = f then
                    Some p.Quality.Estimate.fraction_failed
                  else None)
                points)
            outcomes_and_points
        in
        { Quality.Estimate.coverage = f; fraction_failed = mean fractions })
      checkpoint_coverages
  in
  let pooled_fit_n0, _ = Quality.Estimate.fit_n0 ~yield_ pooled in
  { lots = outcomes; mean_true_n0; mean_fitted_n0; fit_rmse; pooled_fit_n0;
    dispersion }

type lot_size_row = { chips : int; rmse : float; bias : float }

let lot_size_study ?(lots = 60) ?(yield_ = 0.07) ?(n0 = 8.0) ?(seed = 77) ~sizes () =
  let rng = Stats.Rng.create ~seed () in
  List.map
    (fun chips ->
      if chips <= 0 then invalid_arg "Drift.lot_size_study: nonpositive lot size";
      let errors =
        List.init lots (fun _ ->
            let points = sample_lot_points rng ~chips ~yield_ ~n0 in
            let fitted, _ = Quality.Estimate.fit_n0 ~yield_ points in
            fitted -. n0)
      in
      let mean = List.fold_left ( +. ) 0.0 errors /. float_of_int lots in
      let rmse =
        sqrt (List.fold_left (fun acc e -> acc +. (e *. e)) 0.0 errors /. float_of_int lots)
      in
      { chips; rmse; bias = mean })
    sizes

let render () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Process-drift study: per-lot n0 estimation under line dispersion\n\n";
  List.iter
    (fun dispersion ->
      let study = simulate ~dispersion () in
      Buffer.add_string buf
        (Printf.sprintf
           "dispersion %.1f: mean true n0 %.2f | mean per-lot fit %.2f | per-lot \
            RMSE %.2f | pooled single fit %.2f\n"
           dispersion study.mean_true_n0 study.mean_fitted_n0 study.fit_rmse
           study.pooled_fit_n0))
    [ 1.0; 1.5; 2.0; 3.0 ];
  Buffer.add_string buf
    "\nper-lot calibration tracks the drifting truth; a pooled single-n0 fit\n\
     understates the dispersed line's escape tail (see Ablation D / Griffin).\n";
  Buffer.add_string buf
    "\nlot-size study (no drift): n0 estimation error vs chips tested\n";
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "  %4d chips: RMSE %.2f, bias %+.2f\n" row.chips row.rmse
           row.bias))
    (lot_size_study ~sizes:[ 50; 100; 200; 277; 500; 1000 ] ());
  Buffer.add_string buf
    "the paper's \"100 to 200 chips\" brings the error near half a fault;\n\
     because only ~93% of chips are defective, precision scales with the\n\
     defective count, not the lot size itself.\n";
  Buffer.contents buf
