(** Deterministic ATPG with full bidirectional implication.

    A second, independent test generator implementing the D-algorithm's
    machinery — forward {e and backward} three-valued implication over
    two circuit planes (good machine, faulty machine) with a trail-based
    backtracking search — combined with PODEM's decision rule (branch on
    primary inputs only, which makes completeness immediate).

    Compared with {!Podem}, whose implication is forward-only, the
    bidirectional closure derives forced values and detects conflicts
    much earlier; the micro bench and tests compare backtrack counts.
    Success requires the classical D-algorithm termination condition:
    a primary output diverges between the planes {e and} every defined
    line is justified by its fanins (so any completion of the remaining
    don't-cares is consistent).

    Verdicts (test found / untestable) agree with {!Podem} by
    construction; the test suite verifies this on circuits small enough
    for exhaustive ground truth. *)

type result = Test of bool array | Untestable | Aborted

type stats = { backtracks : int; implications : int }

val generate :
  ?backtrack_limit:int ->
  Circuit.Netlist.t -> Faults.Fault.t -> result * stats
(** Same contract as {!Podem.generate}. *)
