type t3 = F | T | U

type t = { good : t3; faulty : t3 }

let zero = { good = F; faulty = F }
let one = { good = T; faulty = T }
let x = { good = U; faulty = U }
let d = { good = T; faulty = F }
let dbar = { good = F; faulty = T }

let of_bool b = if b then one else zero

let is_x v = v.good = U && v.faulty = U

let has_unknown v = v.good = U || v.faulty = U

let is_fault_effect v =
  match (v.good, v.faulty) with
  | T, F | F, T -> true
  | (F | T | U), (F | T | U) -> false

let equal a b = a = b

let to_string v =
  match (v.good, v.faulty) with
  | F, F -> "0"
  | T, T -> "1"
  | T, F -> "D"
  | F, T -> "D'"
  | U, U -> "X"
  | _ -> "?"

let and3 a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | U, (T | U) | T, U -> U

let or3 a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | U, (F | U) | F, U -> U

let not3 = function F -> T | T -> F | U -> U

let xor3 a b =
  match (a, b) with
  | U, _ | _, U -> U
  | T, T | F, F -> F
  | T, F | F, T -> T

let fold_components kind values component =
  let get v = component v in
  match kind with
  | Circuit.Gate.Input -> invalid_arg "Logic5.eval_gate: Input"
  | Circuit.Gate.Const0 -> F
  | Circuit.Gate.Const1 -> T
  | Circuit.Gate.Buf -> get values.(0)
  | Circuit.Gate.Not -> not3 (get values.(0))
  | Circuit.Gate.And ->
    Array.fold_left (fun acc v -> and3 acc (get v)) T values
  | Circuit.Gate.Nand ->
    not3 (Array.fold_left (fun acc v -> and3 acc (get v)) T values)
  | Circuit.Gate.Or ->
    Array.fold_left (fun acc v -> or3 acc (get v)) F values
  | Circuit.Gate.Nor ->
    not3 (Array.fold_left (fun acc v -> or3 acc (get v)) F values)
  | Circuit.Gate.Xor ->
    Array.fold_left (fun acc v -> xor3 acc (get v)) F values
  | Circuit.Gate.Xnor ->
    not3 (Array.fold_left (fun acc v -> xor3 acc (get v)) F values)

let eval_gate kind values =
  { good = fold_components kind values (fun v -> v.good);
    faulty = fold_components kind values (fun v -> v.faulty) }

let eval_gate_with_pin kind values ~pin ~forced_faulty =
  let faulty_component =
    fold_components kind
      (Array.mapi
         (fun i v -> if i = pin then { v with faulty = forced_faulty } else v)
         values)
      (fun v -> v.faulty)
  in
  { good = fold_components kind values (fun v -> v.good); faulty = faulty_component }
