let uniform rng (c : Circuit.Netlist.t) ~count =
  let width = Array.length c.inputs in
  Array.init count (fun _ -> Array.init width (fun _ -> Stats.Rng.bool rng))

let weighted rng (c : Circuit.Netlist.t) ~weights ~count =
  let width = Array.length c.inputs in
  if Array.length weights <> width then
    invalid_arg "Random_tpg.weighted: weight vector width mismatch";
  Array.init count (fun _ ->
      Array.init width (fun i -> Stats.Rng.bernoulli rng weights.(i)))

let random_walk rng (c : Circuit.Netlist.t) ~count ?(flips = 1) () =
  if count <= 0 then invalid_arg "Random_tpg.random_walk: nonpositive count";
  if flips < 1 then invalid_arg "Random_tpg.random_walk: flips must be >= 1";
  let width = Array.length c.inputs in
  let current = Array.init width (fun _ -> Stats.Rng.bool rng) in
  Array.init count (fun i ->
      if i > 0 then
        for _ = 1 to flips do
          let j = Stats.Rng.int rng width in
          current.(j) <- not current.(j)
        done;
      Array.copy current)

let until_coverage rng c faults ~target ~max_patterns =
  if target < 0.0 || target > 1.0 then
    invalid_arg "Random_tpg.until_coverage: target outside [0,1]";
  let total = Array.length faults in
  let first_detection = Array.make total None in
  let detected = ref 0 in
  let alive = ref (Array.init total (fun i -> i)) in
  let chunks = ref [] in
  let applied = ref 0 in
  (* Incremental: each new block is fault-simulated against the still
     undetected faults only. *)
  while
    !applied < max_patterns
    && float_of_int !detected < target *. float_of_int (max 1 total)
    && Array.length !alive > 0
  do
    let count = min 64 (max_patterns - !applied) in
    let block = uniform rng c ~count in
    let subset = Array.map (fun i -> faults.(i)) !alive in
    let results = Fsim.Ppsfp.run c subset block in
    let survivors = ref [] in
    Array.iteri
      (fun k d ->
        match d with
        | Some offset ->
          first_detection.(!alive.(k)) <- Some (!applied + offset);
          incr detected
        | None -> survivors := !alive.(k) :: !survivors)
      results;
    alive := Array.of_list (List.rev !survivors);
    chunks := block :: !chunks;
    applied := !applied + count
  done;
  let patterns = Array.concat (List.rev !chunks) in
  let profile =
    { Fsim.Coverage.universe_size = total;
      pattern_count = Array.length patterns;
      first_detection }
  in
  (patterns, profile)
