type result = {
  patterns : bool array array;
  kept : int array;
  original_count : int;
}

(* Sweep the patterns in the given index order; pattern [k] is kept iff
   it detects a fault no previously kept pattern detected. *)
let sweep c faults patterns order =
  let alive = ref (Array.to_list (Array.mapi (fun i _ -> i) faults)) in
  let kept = ref [] in
  List.iter
    (fun pattern_index ->
      if !alive <> [] then begin
        let subset = Array.of_list (List.map (fun i -> faults.(i)) !alive) in
        let detected = Fsim.Ppsfp.run c subset [| patterns.(pattern_index) |] in
        let survivors =
          List.filteri (fun k _ -> detected.(k) = None) !alive
        in
        if List.length survivors < List.length !alive then begin
          kept := pattern_index :: !kept;
          alive := survivors
        end
      end)
    order;
  let kept = List.sort compare !kept in
  { patterns = Array.of_list (List.map (fun i -> patterns.(i)) kept);
    kept = Array.of_list kept;
    original_count = Array.length patterns }

let reverse_order c faults patterns =
  let order = List.init (Array.length patterns) (fun i -> Array.length patterns - 1 - i) in
  sweep c faults patterns order

let forward_order c faults patterns =
  sweep c faults patterns (List.init (Array.length patterns) (fun i -> i))

let compaction_ratio result =
  if result.original_count = 0 then 1.0
  else float_of_int (Array.length result.kept) /. float_of_int result.original_count
