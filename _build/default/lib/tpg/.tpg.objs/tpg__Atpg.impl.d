lib/tpg/atpg.ml: Array Fsim Implication_atpg List Podem Random_tpg Stats
