lib/tpg/logic5.mli: Circuit
