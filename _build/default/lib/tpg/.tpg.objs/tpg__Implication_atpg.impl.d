lib/tpg/implication_atpg.ml: Array Circuit Faults Hashtbl List Queue
