lib/tpg/logic5.ml: Array Circuit
