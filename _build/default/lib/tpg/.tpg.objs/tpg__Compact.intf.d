lib/tpg/compact.mli: Circuit Faults
