lib/tpg/implication_atpg.mli: Circuit Faults
