lib/tpg/scoap.ml: Array Circuit Faults List
