lib/tpg/compact.ml: Array Fsim List
