lib/tpg/atpg.mli: Circuit Faults Fsim
