lib/tpg/podem.mli: Circuit Faults Scoap
