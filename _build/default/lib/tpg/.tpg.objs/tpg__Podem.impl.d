lib/tpg/podem.ml: Array Circuit Faults Hashtbl List Logic5 Scoap
