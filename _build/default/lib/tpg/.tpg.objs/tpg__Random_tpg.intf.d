lib/tpg/random_tpg.mli: Circuit Faults Fsim Stats
