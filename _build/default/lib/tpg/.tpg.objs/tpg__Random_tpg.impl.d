lib/tpg/random_tpg.ml: Array Circuit Fsim List Stats
