lib/tpg/scoap.mli: Circuit Faults
