type result = Test of bool array | Untestable | Aborted

type stats = { backtracks : int; implications : int }

type t3 = Unknown | Zero | One

let t3_of_bool b = if b then One else Zero

exception Conflict
exception Abort_search

type plane = Good | Faulty

type state = {
  circuit : Circuit.Netlist.t;
  fault : Faults.Fault.t;
  good : t3 array;
  faulty : t3 array;
  (* Trail of (plane, node) assignments for chronological backtracking;
     values only ever move Unknown -> defined. *)
  mutable trail : (plane * int) list;
  queue : int Queue.t;          (* gates awaiting (re)implication *)
  in_queue : bool array;
  mutable implications : int;
}

let plane_array st = function Good -> st.good | Faulty -> st.faulty

let value st plane node = (plane_array st plane).(node)

(* The faulty-plane value seen by pin [pin] of gate [gate]: the branch
   fault, if it sits right there, overrides the driver. *)
let pin_value st plane gate pin =
  let src = st.circuit.Circuit.Netlist.fanins.(gate).(pin) in
  match (plane, st.fault.Faults.Fault.site) with
  | Faulty, Faults.Fault.Branch { gate = fg; pin = fp } when fg = gate && fp = pin ->
    t3_of_bool (Faults.Fault.polarity_bit st.fault.Faults.Fault.polarity)
  | (Good | Faulty), (Faults.Fault.Branch _ | Faults.Fault.Stem _) -> value st plane src

(* A stem fault disconnects the faulty-plane output of its gate from
   the gate's inputs: no implication may cross it in that plane. *)
let stem_fault_at st plane node =
  match (plane, st.fault.Faults.Fault.site) with
  | Faulty, Faults.Fault.Stem v -> v = node
  | (Good | Faulty), (Faults.Fault.Stem _ | Faults.Fault.Branch _) -> false

(* A branch fault blocks backward implication into its own pin. *)
let branch_fault_at st plane gate pin =
  match (plane, st.fault.Faults.Fault.site) with
  | Faulty, Faults.Fault.Branch { gate = fg; pin = fp } -> fg = gate && fp = pin
  | (Good | Faulty), (Faults.Fault.Stem _ | Faults.Fault.Branch _) -> false

let enqueue st gate =
  if not st.in_queue.(gate) then begin
    st.in_queue.(gate) <- true;
    Queue.add gate st.queue
  end

let touch st node =
  (* A changed node affects its own producing gate (backward) and every
     consumer (forward + sibling backward). *)
  enqueue st node;
  Array.iter (fun dst -> enqueue st dst) st.circuit.Circuit.Netlist.fanouts.(node)

let set st plane node v =
  let values = plane_array st plane in
  match values.(node) with
  | Unknown ->
    values.(node) <- v;
    st.trail <- (plane, node) :: st.trail;
    (* Primary inputs are shared between the planes (the fault lives on
       an internal line; even a PI stem fault only forces the faulty
       plane, which [stem_fault_at] already decouples). *)
    (match st.circuit.Circuit.Netlist.kinds.(node) with
    | Circuit.Gate.Input when not (stem_fault_at st Faulty node) ->
      let other = match plane with Good -> Faulty | Faulty -> Good in
      let other_values = plane_array st other in
      (match other_values.(node) with
      | Unknown ->
        other_values.(node) <- v;
        st.trail <- (other, node) :: st.trail
      | existing -> if existing <> v then raise Conflict)
    | Circuit.Gate.Input
    | Circuit.Gate.Const0 | Circuit.Gate.Const1 | Circuit.Gate.Buf
    | Circuit.Gate.Not | Circuit.Gate.And | Circuit.Gate.Nand
    | Circuit.Gate.Or | Circuit.Gate.Nor | Circuit.Gate.Xor
    | Circuit.Gate.Xnor -> ());
    touch st node
  | existing -> if existing <> v then raise Conflict

(* Three-valued forward evaluation over pin values. *)
let eval3 kind inputs =
  let all_defined = Array.for_all (fun v -> v <> Unknown) inputs in
  let exists v = Array.exists (fun x -> x = v) inputs in
  match kind with
  | Circuit.Gate.Const0 -> Zero
  | Circuit.Gate.Const1 -> One
  | Circuit.Gate.Buf -> inputs.(0)
  | Circuit.Gate.Not ->
    (match inputs.(0) with Unknown -> Unknown | Zero -> One | One -> Zero)
  | Circuit.Gate.And ->
    if exists Zero then Zero else if all_defined then One else Unknown
  | Circuit.Gate.Nand ->
    if exists Zero then One else if all_defined then Zero else Unknown
  | Circuit.Gate.Or ->
    if exists One then One else if all_defined then Zero else Unknown
  | Circuit.Gate.Nor ->
    if exists One then Zero else if all_defined then One else Unknown
  | Circuit.Gate.Xor | Circuit.Gate.Xnor ->
    if not all_defined then Unknown
    else begin
      let parity =
        Array.fold_left (fun acc v -> acc <> (v = One)) false inputs
      in
      let parity = if kind = Circuit.Gate.Xnor then not parity else parity in
      if parity then One else Zero
    end
  | Circuit.Gate.Input -> Unknown

(* Backward implication for one gate in one plane. *)
let imply_backward st plane gate =
  let c = st.circuit in
  let kind = c.Circuit.Netlist.kinds.(gate) in
  let out = value st plane gate in
  if out = Unknown then ()
  else begin
    let srcs = c.Circuit.Netlist.fanins.(gate) in
    let arity = Array.length srcs in
    let pin_values = Array.init arity (fun pin -> pin_value st plane gate pin) in
    let force pin v =
      if not (branch_fault_at st plane gate pin) then set st plane srcs.(pin) v
    in
    match kind with
    | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> ()
    | Circuit.Gate.Buf -> force 0 out
    | Circuit.Gate.Not -> force 0 (if out = One then Zero else One)
    | Circuit.Gate.And | Circuit.Gate.Nand | Circuit.Gate.Or | Circuit.Gate.Nor ->
      let controlling =
        match Circuit.Gate.controlling_value kind with
        | Some v -> t3_of_bool v
        | None -> assert false
      in
      let noncontrolling = if controlling = One then Zero else One in
      let inverted = Circuit.Gate.inverts kind in
      let controlled_output =
        (* Output value when some input is controlling. *)
        let base = controlling = One in
        t3_of_bool (if inverted then not base else base)
      in
      if out <> controlled_output then
        (* All inputs forced non-controlling. *)
        Array.iteri
          (fun pin v -> if v = Unknown then force pin noncontrolling)
          pin_values
      else begin
        (* Need at least one controlling input: forced when unique. *)
        let unknowns = ref [] and has_controlling = ref false in
        Array.iteri
          (fun pin v ->
            if v = Unknown then unknowns := pin :: !unknowns
            else if v = controlling then has_controlling := true)
          pin_values;
        if not !has_controlling then begin
          match !unknowns with
          | [] -> raise Conflict
          | [ pin ] -> force pin controlling
          | _ :: _ :: _ -> () (* genuinely unjustified: a J-frontier entry *)
        end
      end
    | Circuit.Gate.Xor | Circuit.Gate.Xnor ->
      (* Forced only when exactly one input is unknown. *)
      let unknowns = ref [] in
      let parity = ref (out = One) in
      if kind = Circuit.Gate.Xnor then parity := not !parity;
      Array.iteri
        (fun pin v ->
          match v with
          | Unknown -> unknowns := pin :: !unknowns
          | One -> parity := not !parity
          | Zero -> ())
        pin_values;
      (match !unknowns with
      | [ pin ] -> force pin (if !parity then One else Zero)
      | [] | _ :: _ :: _ -> ())
  end

let imply_gate st plane gate =
  if not (stem_fault_at st plane gate) then begin
    let kind = st.circuit.Circuit.Netlist.kinds.(gate) in
    match kind with
    | Circuit.Gate.Input -> ()
    | _ ->
      let arity = Array.length st.circuit.Circuit.Netlist.fanins.(gate) in
      let pin_values = Array.init arity (fun pin -> pin_value st plane gate pin) in
      let forward = eval3 kind pin_values in
      if forward <> Unknown then set st plane gate forward;
      imply_backward st plane gate
  end

let run_implications st =
  while not (Queue.is_empty st.queue) do
    let gate = Queue.pop st.queue in
    st.in_queue.(gate) <- false;
    st.implications <- st.implications + 1;
    imply_gate st Good gate;
    imply_gate st Faulty gate
  done

(* Undo trail entries down to (and excluding) [mark]. *)
let backtrack_to st mark =
  let rec unwind trail =
    if trail != mark then begin
      match trail with
      | (plane, node) :: rest ->
        (plane_array st plane).(node) <- Unknown;
        unwind rest
      | [] -> assert false
    end
    else trail
  in
  st.trail <- unwind st.trail;
  (* Drop any stale queue contents: implications restart from decisions. *)
  Queue.clear st.queue;
  Array.fill st.in_queue 0 (Array.length st.in_queue) false

let divergent st node =
  let g = st.good.(node) and f = st.faulty.(node) in
  g <> Unknown && f <> Unknown && g <> f

let has_unknown_plane st node =
  st.good.(node) = Unknown || st.faulty.(node) = Unknown

let po_divergent st =
  Array.exists (fun out -> divergent st out) st.circuit.Circuit.Netlist.outputs

(* Gates that might still pass the fault effect onward. *)
let d_frontier st =
  let c = st.circuit in
  let frontier = ref [] in
  Array.iter
    (fun gate ->
      match c.Circuit.Netlist.kinds.(gate) with
      | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> ()
      | _ ->
        if has_unknown_plane st gate then begin
          let arity = Array.length c.Circuit.Netlist.fanins.(gate) in
          let any_divergent_pin = ref false in
          for pin = 0 to arity - 1 do
            let g = pin_value st Good gate pin and f = pin_value st Faulty gate pin in
            if g <> Unknown && f <> Unknown && g <> f then any_divergent_pin := true
          done;
          if !any_divergent_pin then frontier := gate :: !frontier
        end)
      c.Circuit.Netlist.topo_order;
  List.rev !frontier

let x_path_exists st frontier =
  let c = st.circuit in
  let visited = Array.make (Circuit.Netlist.num_nodes c) false in
  let rec bfs = function
    | [] -> false
    | node :: rest ->
      if visited.(node) then bfs rest
      else begin
        visited.(node) <- true;
        if Circuit.Netlist.is_output c node then true
        else
          bfs
            (Array.fold_left
               (fun acc dst ->
                 if (not visited.(dst)) && has_unknown_plane st dst then dst :: acc
                 else acc)
               rest c.Circuit.Netlist.fanouts.(node))
      end
  in
  bfs frontier

(* All defined non-input line values follow from their fanins — the
   D-algorithm's "J-frontier empty". *)
let fully_justified st =
  let c = st.circuit in
  let justified plane gate =
    stem_fault_at st plane gate
    ||
    let out = value st plane gate in
    out = Unknown
    ||
    let arity = Array.length c.Circuit.Netlist.fanins.(gate) in
    let pin_values = Array.init arity (fun pin -> pin_value st plane gate pin) in
    eval3 c.Circuit.Netlist.kinds.(gate) pin_values = out
  in
  Array.for_all
    (fun gate ->
      match c.Circuit.Netlist.kinds.(gate) with
      | Circuit.Gate.Input -> true
      | _ -> justified Good gate && justified Faulty gate)
    c.Circuit.Netlist.topo_order

(* An unjustified (plane, gate) to drive the justification decisions. *)
let find_unjustified st =
  let c = st.circuit in
  let result = ref None in
  Array.iter
    (fun gate ->
      if !result = None then
        match c.Circuit.Netlist.kinds.(gate) with
        | Circuit.Gate.Input -> ()
        | kind ->
          List.iter
            (fun plane ->
              if !result = None && not (stem_fault_at st plane gate) then begin
                let out = value st plane gate in
                if out <> Unknown then begin
                  let arity = Array.length c.Circuit.Netlist.fanins.(gate) in
                  let pins = Array.init arity (fun pin -> pin_value st plane gate pin) in
                  if eval3 kind pins <> out then result := Some (plane, gate)
                end
              end)
            [ Good; Faulty ])
    c.Circuit.Netlist.topo_order;
  !result

let generate ?(backtrack_limit = 1000) (c : Circuit.Netlist.t) fault =
  let num_nodes = Circuit.Netlist.num_nodes c in
  let st =
    { circuit = c; fault;
      good = Array.make num_nodes Unknown;
      faulty = Array.make num_nodes Unknown;
      trail = [];
      queue = Queue.create ();
      in_queue = Array.make num_nodes false;
      implications = 0 }
  in
  let backtracks = ref 0 in
  let stuck = t3_of_bool (Faults.Fault.polarity_bit fault.Faults.Fault.polarity) in
  let site_driver =
    match fault.Faults.Fault.site with
    | Faults.Fault.Stem v -> v
    | Faults.Fault.Branch { gate; pin } -> c.Circuit.Netlist.fanins.(gate).(pin)
  in
  (* Activation constraints: the faulty plane holds the stuck value at
     the site; the good plane must carry its complement on the driving
     line (a hard requirement of detection, assert it up front). *)
  let opposite = if stuck = One then Zero else One in
  (match fault.Faults.Fault.site with
  | Faults.Fault.Stem v -> set st Faulty v stuck
  | Faults.Fault.Branch _ -> () (* injected through [pin_value] *));
  set st Good site_driver opposite;
  (match fault.Faults.Fault.site with
  | Faults.Fault.Branch { gate; _ } -> enqueue st gate
  | Faults.Fault.Stem v -> Array.iter (fun dst -> enqueue st dst) c.fanouts.(v));

  (* Decision: a PI (plane Good; planes are linked at PIs) and a value. *)
  let input_position = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace input_position id i) c.inputs;

  (* Backtrace an objective (node, value) to an unassigned PI. *)
  let rec backtrace node v =
    match c.Circuit.Netlist.kinds.(node) with
    | Circuit.Gate.Input ->
      if st.good.(node) = Unknown then Some (node, v) else None
    | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> None
    | kind ->
      let v = if Circuit.Gate.inverts kind then not v else v in
      let srcs = c.Circuit.Netlist.fanins.(node) in
      let candidate = ref None in
      Array.iter
        (fun src ->
          if !candidate = None && has_unknown_plane st src then
            candidate := backtrace src v)
        srcs;
      !candidate
  in

  let rec objective () =
    if st.good.(site_driver) = Unknown then Some (site_driver, stuck = Zero)
    else begin
      match d_frontier st with
      | [] -> find_justification_objective ()
      | frontier ->
        let gate = List.hd frontier in
        let srcs = c.Circuit.Netlist.fanins.(gate) in
        let pick = ref None in
        Array.iter
          (fun src -> if !pick = None && has_unknown_plane st src then pick := Some src)
          srcs;
        (match !pick with
        | Some src ->
          let v =
            match Circuit.Gate.controlling_value c.Circuit.Netlist.kinds.(gate) with
            | Some controlling -> not controlling
            | None -> false
          in
          Some (src, v)
        | None -> find_justification_objective ())
    end
  and find_justification_objective () =
    match find_unjustified st with
    | None -> None
    | Some (plane, gate) ->
      ignore plane;
      let srcs = c.Circuit.Netlist.fanins.(gate) in
      let pick = ref None in
      Array.iter
        (fun src -> if !pick = None && has_unknown_plane st src then pick := Some src)
        srcs;
      (match !pick with
      | Some src ->
        let v =
          match Circuit.Gate.controlling_value c.Circuit.Netlist.kinds.(gate) with
          | Some controlling -> controlling
          | None -> false
        in
        Some (src, v)
      | None -> None)
  in

  let success () =
    Test
      (Array.map
         (fun id -> match st.good.(id) with One -> true | Zero | Unknown -> false)
         c.Circuit.Netlist.inputs)
  in

  (* Depth-first search over PI assignments with chronological
     backtracking; [mark] is the trail position to restore on failure. *)
  let rec search () =
    let consistent = try run_implications st; true with Conflict -> false in
    if not consistent then false_result ()
    else if po_divergent st && fully_justified st then Some (success ())
    else begin
      let frontier = d_frontier st in
      if (not (po_divergent st)) && frontier = [] then false_result ()
      else if (not (po_divergent st)) && not (x_path_exists st frontier) then
        false_result ()
      else begin
        match objective () with
        | None ->
          (* No objective but not yet successful: assign any X input
             reachable, or fail if none. *)
          let free = ref None in
          Array.iter
            (fun id -> if !free = None && st.good.(id) = Unknown then free := Some id)
            c.Circuit.Netlist.inputs;
          (match !free with
          | None -> false_result ()
          | Some pi -> decide pi true)
        | Some (node, v) ->
          (match backtrace node v with
          | Some (pi, v) -> decide pi v
          | None ->
            (* The objective is unreachable through X lines. *)
            let free = ref None in
            Array.iter
              (fun id -> if !free = None && st.good.(id) = Unknown then free := Some id)
              c.Circuit.Netlist.inputs;
            (match !free with
            | None -> false_result ()
            | Some pi -> decide pi v))
      end
    end
  and decide pi v =
    let mark = st.trail in
    let try_value v =
      match (try set st Good pi (t3_of_bool v); true with Conflict -> false) with
      | false ->
        backtrack_to st mark;
        None
      | true ->
        (match search () with
        | Some r -> Some r
        | None ->
          backtrack_to st mark;
          None)
    in
    match try_value v with
    | Some r -> Some r
    | None ->
      incr backtracks;
      if !backtracks > backtrack_limit then raise Abort_search;
      (match try_value (not v) with
      | Some r -> Some r
      | None -> None)
  and false_result () = None in

  let verdict =
    try
      match
        (try run_implications st; Some () with Conflict -> None)
      with
      | None -> Untestable
      | Some () ->
        (match search () with Some r -> r | None -> Untestable)
    with Abort_search -> Aborted
  in
  (verdict, { backtracks = !backtracks; implications = st.implications })
