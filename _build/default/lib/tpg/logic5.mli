(** Roth's 5-valued logic for deterministic test generation.

    A value tracks the good machine and the faulty machine together:
    [D] means good 1 / faulty 0, [Dbar] good 0 / faulty 1, and [X] is
    unassigned in both.  Internally a value is a pair of ternary
    components, which makes gate evaluation uniform. *)

type t3 = F | T | U
(** Ternary component: false, true, unknown. *)

type t = { good : t3; faulty : t3 }

val zero : t
val one : t
val x : t
val d : t
val dbar : t

val of_bool : bool -> t

val is_x : t -> bool
(** Both components unknown. *)

val has_unknown : t -> bool
(** At least one component unknown.  Unlike the classical 5-valued
    calculus, this representation keeps values such as good=1/faulty=X;
    frontier and X-path tests must use this predicate, not {!is_x}. *)

val is_fault_effect : t -> bool
(** Good and faulty defined and different (D or Dbar). *)

val equal : t -> t -> bool
val to_string : t -> string

val and3 : t3 -> t3 -> t3
val or3 : t3 -> t3 -> t3
val not3 : t3 -> t3
val xor3 : t3 -> t3 -> t3

val eval_gate : Circuit.Gate.kind -> t array -> t
(** Evaluate a gate over 5-valued fanins (good and faulty components
    independently). *)

val eval_gate_with_pin :
  Circuit.Gate.kind -> t array -> pin:int -> forced_faulty:t3 -> t
(** Same, but the faulty component of input [pin] is replaced by
    [forced_faulty] — how a branch stuck-at is injected. *)
