(** Random and weighted-random test pattern generation.

    Random patterns detect the easy bulk of the fault universe cheaply;
    production flows (and this reproduction's ATPG driver) run them
    first and reserve deterministic search for the resistant tail. *)

val uniform : Stats.Rng.t -> Circuit.Netlist.t -> count:int -> bool array array
(** [count] patterns, each input an independent fair coin. *)

val weighted :
  Stats.Rng.t -> Circuit.Netlist.t -> weights:float array -> count:int ->
  bool array array
(** Per-input probabilities of a 1; useful for control-dominated logic
    where a uniform distribution almost never enables anything. *)

val random_walk :
  Stats.Rng.t -> Circuit.Netlist.t -> count:int -> ?flips:int -> unit ->
  bool array array
(** A "functional-style" sequence: starts from a random pattern, each
    subsequent pattern flips [flips] (default 1) randomly chosen inputs
    of its predecessor.  Consecutive patterns exercise nearly the same
    logic, so cumulative fault coverage climbs gradually — the
    fine-grained coverage axis the paper's Table 1 relies on, which
    independent random patterns (each detecting ~25 % of the universe)
    cannot provide on a combinational circuit. *)

val until_coverage :
  Stats.Rng.t ->
  Circuit.Netlist.t ->
  Faults.Fault.t array ->
  target:float ->
  max_patterns:int ->
  bool array array * Fsim.Coverage.profile
(** Keep appending 64-pattern random blocks until the fault coverage of
    the accumulated set reaches [target] or [max_patterns] is hit.
    Returns the final ordered pattern set and its coverage profile. *)
