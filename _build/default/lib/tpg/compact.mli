(** Static test-set compaction.

    Test application time was precious on 1981 testers (the paper's
    cost argument), so graded pattern sets were compacted before
    release.  Two classical passes, both preserving the detected fault
    set exactly (test-suite verified):

    - {!reverse_order}: fault-simulate the patterns {e last-first} with
      dropping; keep only patterns that detect something not already
      detected by a later pattern.  Late ATPG patterns are sharply
      targeted, so they subsume many early random ones.
    - {!forward_order}: the same sweep in natural order (keeps the
      early-steep coverage curve but usually removes fewer patterns). *)

type result = {
  patterns : bool array array;  (** Kept patterns, original order. *)
  kept : int array;             (** Their indices in the input set. *)
  original_count : int;
}

val reverse_order :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> result

val forward_order :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> result

val compaction_ratio : result -> float
(** kept / original. *)
