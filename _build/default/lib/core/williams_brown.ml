let check ~yield_ f =
  if yield_ <= 0.0 || yield_ > 1.0 then
    invalid_arg "Williams_brown: yield outside (0,1]";
  if f < 0.0 || f > 1.0 then invalid_arg "Williams_brown: coverage outside [0,1]"

let defect_level ~yield_ f =
  check ~yield_ f;
  1.0 -. (yield_ ** (1.0 -. f))

let required_coverage ~yield_ ~defect_level =
  if defect_level <= 0.0 || defect_level >= 1.0 then
    invalid_arg "Williams_brown.required_coverage: defect level outside (0,1)";
  if yield_ <= 0.0 || yield_ > 1.0 then
    invalid_arg "Williams_brown.required_coverage: yield outside (0,1]";
  if yield_ = 1.0 then None
  else if 1.0 -. yield_ <= defect_level then Some 0.0
  else Some (1.0 -. (log1p (-.defect_level) /. log yield_))

let implied_n0 ~yield_ =
  if yield_ <= 0.0 || yield_ >= 1.0 then
    invalid_arg "Williams_brown.implied_n0: yield outside (0,1)";
  -.log yield_ /. (1.0 -. yield_)
