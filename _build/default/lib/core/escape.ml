let check_coverage f =
  if f < 0.0 || f > 1.0 then invalid_arg "Escape: coverage outside [0,1]"

let qk ~total ~faulty ~covered k =
  let dist =
    Stats.Dist.Hypergeometric.create ~total ~marked:faulty ~draws:covered
  in
  Stats.Dist.Hypergeometric.pmf dist k

let q0_exact ~total ~faulty ~coverage =
  check_coverage coverage;
  if faulty = 0 then 1.0
  else begin
    let m = int_of_float (Float.round (coverage *. float_of_int total)) in
    if faulty > total - m then 0.0
    else
      exp
        (Stats.Special.log_choose (total - m) faulty
        -. Stats.Special.log_choose total faulty)
  end

let q0_second_order ~total ~faulty ~coverage =
  check_coverage coverage;
  if faulty = 0 then 1.0
  else if coverage = 1.0 then 0.0
  else begin
    let n = float_of_int faulty and big_n = float_of_int total in
    let f = coverage in
    ((1.0 -. f) ** n)
    *. exp (-.f *. n *. (n -. 1.0) /. (2.0 *. big_n *. (1.0 -. f)))
  end

let q0_simple ~faulty ~coverage =
  check_coverage coverage;
  (1.0 -. coverage) ** float_of_int faulty

let q0_validity_bound ~total ~coverage =
  check_coverage coverage;
  if coverage = 0.0 then infinity
  else sqrt (float_of_int total *. (1.0 -. coverage) /. coverage)
