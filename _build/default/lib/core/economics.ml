type t = {
  yield_ : float;
  n0 : float;
  pattern_cost : float;
  patterns_per_decade : float;
  escape_cost : float;
}

let create ~yield_ ~n0 ~pattern_cost ~patterns_per_decade ~escape_cost =
  if yield_ < 0.0 || yield_ > 1.0 then invalid_arg "Economics.create: yield outside [0,1]";
  if n0 < 1.0 then invalid_arg "Economics.create: n0 must be >= 1";
  if pattern_cost < 0.0 || patterns_per_decade <= 0.0 || escape_cost < 0.0 then
    invalid_arg "Economics.create: negative cost";
  { yield_; n0; pattern_cost; patterns_per_decade; escape_cost }

let test_cost t f =
  if f < 0.0 || f >= 1.0 then invalid_arg "Economics.test_cost: coverage outside [0,1)";
  t.pattern_cost *. t.patterns_per_decade *. -.log1p (-.f)

let escape_cost_per_chip t f =
  t.escape_cost *. Reject.reject_rate ~yield_:t.yield_ ~n0:t.n0 f

let total_cost t f = test_cost t f +. escape_cost_per_chip t f

let optimal_coverage t =
  (* The objective is smooth and unimodal on [0, 1): test cost is convex
     increasing, escape cost convex decreasing. *)
  Stats.Solver.golden_section_min ~tol:1e-10 ~f:(total_cost t) ~lo:0.0
    ~hi:0.999999 ()

let sweep t ~coverages =
  Array.map
    (fun f -> (f, test_cost t f, escape_cost_per_chip t f, total_cost t f))
    coverages
