type t = { yield_ : float; n0 : float }

let create ~yield_ ~n0 =
  if yield_ < 0.0 || yield_ > 1.0 then
    invalid_arg "Fault_distribution.create: yield outside [0,1]";
  if n0 < 1.0 then invalid_arg "Fault_distribution.create: n0 must be >= 1";
  { yield_; n0 }

let conditional t = Stats.Dist.Shifted_poisson.create t.n0

let p t n =
  if n < 0 then 0.0
  else if n = 0 then t.yield_
  else (1.0 -. t.yield_) *. Stats.Dist.Shifted_poisson.pmf (conditional t) n

let average_faults t = (1.0 -. t.yield_) *. t.n0

let mean_conditional t = t.n0

let cdf t n =
  if n < 0 then 0.0
  else t.yield_ +. ((1.0 -. t.yield_) *. Stats.Dist.Shifted_poisson.cdf (conditional t) n)

let sample t rng =
  if Stats.Rng.uniform rng < t.yield_ then 0
  else Stats.Dist.Shifted_poisson.sample (conditional t) rng

let total_mass t ~upto =
  let acc = ref 0.0 in
  for n = 0 to upto do
    acc := !acc +. p t n
  done;
  !acc
