(** Mixed-Poisson extension (the paper's reference [15], Griffin 1980,
    and its own Section 8 outlook).

    The base model fixes one [n0] for the whole line.  Real lines
    wander: letting the shifted-Poisson intensity [n0 - 1] itself be
    Gamma(shape [k], scale [theta]) distributed across chips yields a
    shifted negative-binomial fault count and a closed-form escape
    yield — the gamma-mixed analogue of Eq. 7:

    [Ybg(f) = (1-f)(1-y)(1 + theta·f)^{-k}].

    As [k -> infinity] with [k·theta = n0 - 1] fixed, every formula
    degenerates to the base model (property-tested). *)

type t = {
  yield_ : float;
  shape : float;   (** k > 0. *)
  scale : float;   (** theta > 0. *)
}

val create : yield_:float -> shape:float -> scale:float -> t

val of_mean_dispersion : yield_:float -> n0:float -> dispersion:float -> t
(** Parameterize by the mean [n0] and the variance inflation
    [dispersion = 1 + theta] of the mixing law (dispersion → 1 is the
    fixed-[n0] limit). *)

val mean_n0 : t -> float
(** [1 + k·theta]. *)

val p : t -> int -> float
(** Probability of exactly [n] faults on a chip (shifted negative
    binomial for [n >= 1], [y] at 0). *)

val ybg : t -> float -> float
(** Gamma-mixed Eq. 7. *)

val reject_rate : t -> float -> float
(** Gamma-mixed Eq. 8. *)

val p_reject : t -> float -> float
(** Gamma-mixed Eq. 9. *)

val required_coverage : t -> reject:float -> float option
(** Mixed-model coverage requirement (bracketed root). *)
