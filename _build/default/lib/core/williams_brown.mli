(** The Williams–Brown defect-level model (T. W. Williams and N. C.
    Brown, "Defect Level as a Function of Fault Coverage", IEEE Trans.
    Computers C-30, 1981) — published the same year as this paper and
    the formula that became the textbook standard:

    {v DL(f) = 1 - y^(1 - f) v}

    It arises from assuming every chip draws each of the [n] possible
    faults independently with equal probability, with [y = (1-p)^n];
    testing a fraction [f] of them leaves defect level [1 - y^{1-f}].

    Relationship to this paper: Williams–Brown implicitly assumes a
    defective-chip fault mean of only [-ln y / (1-y)] (≈ 2.9 at 7 %
    yield), so like Wadsack it demands near-perfect coverage for
    low-yield LSI — both sit far above the Agrawal–Seth–Agrawal
    requirement once the measured [n0] is large.  The comparison
    experiment quantifies all three side by side. *)

val defect_level : yield_:float -> float -> float
(** [defect_level ~yield_ f] = 1 - y^(1-f); the fraction of shipped
    parts that are defective after tests with coverage [f]. *)

val required_coverage : yield_:float -> defect_level:float -> float option
(** Closed-form inverse: [f = 1 - ln(1 - DL) / ln y].
    [Some 0.] when the raw yield already meets the target; [None] for
    y = 1 (never any defect level to fix). *)

val implied_n0 : yield_:float -> float
(** The defective-chip fault mean implied by the model's underlying
    binomial fault count: E(n | n >= 1) with n ~ Binomial(N, p) in the
    large-N limit, i.e. [-ln y / (1 - y)].  Plugging this into the
    Agrawal model reproduces Williams–Brown almost exactly — the test
    suite checks this reconciliation. *)
