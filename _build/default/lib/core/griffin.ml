type t = { yield_ : float; shape : float; scale : float }

let create ~yield_ ~shape ~scale =
  if yield_ < 0.0 || yield_ > 1.0 then invalid_arg "Griffin.create: yield outside [0,1]";
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Griffin.create: shape and scale must be positive";
  { yield_; shape; scale }

let of_mean_dispersion ~yield_ ~n0 ~dispersion =
  if n0 <= 1.0 then invalid_arg "Griffin.of_mean_dispersion: n0 must exceed 1";
  if dispersion <= 1.0 then
    invalid_arg "Griffin.of_mean_dispersion: dispersion must exceed 1";
  let scale = dispersion -. 1.0 in
  let shape = (n0 -. 1.0) /. scale in
  create ~yield_ ~shape ~scale

let mean_n0 t = 1.0 +. (t.shape *. t.scale)

let p t n =
  if n < 0 then 0.0
  else if n = 0 then t.yield_
  else begin
    (* n - 1 ~ NegBinomial(mean k·theta, alpha = k). *)
    let nb =
      Stats.Dist.Neg_binomial.create ~mean:(t.shape *. t.scale) ~alpha:t.shape
    in
    (1.0 -. t.yield_) *. Stats.Dist.Neg_binomial.pmf nb (n - 1)
  end

let ybg t f =
  if f < 0.0 || f > 1.0 then invalid_arg "Griffin.ybg: coverage outside [0,1]";
  (* E[e^{-Lambda f}] for Lambda ~ Gamma(k, theta) is (1 + theta f)^{-k}. *)
  (1.0 -. f) *. (1.0 -. t.yield_) *. ((1.0 +. (t.scale *. f)) ** -.t.shape)

let reject_rate t f =
  let bad_passing = ybg t f in
  if t.yield_ +. bad_passing = 0.0 then 0.0
  else bad_passing /. (t.yield_ +. bad_passing)

let p_reject t f =
  if f < 0.0 || f > 1.0 then invalid_arg "Griffin.p_reject: coverage outside [0,1]";
  (1.0 -. t.yield_) *. (1.0 -. ((1.0 -. f) *. ((1.0 +. (t.scale *. f)) ** -.t.shape)))

let required_coverage t ~reject =
  if reject <= 0.0 || reject >= 1.0 then
    invalid_arg "Griffin.required_coverage: reject outside (0,1)";
  let r f = reject_rate t f in
  if r 0.0 <= reject then Some 0.0
  else if r 1.0 > reject then None
  else Some (Stats.Solver.brent ~f:(fun f -> r f -. reject) ~lo:0.0 ~hi:1.0 ())
