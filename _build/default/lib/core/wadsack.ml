let reject_rate ~yield_ f =
  if yield_ < 0.0 || yield_ > 1.0 then invalid_arg "Wadsack: yield outside [0,1]";
  if f < 0.0 || f > 1.0 then invalid_arg "Wadsack: coverage outside [0,1]";
  (1.0 -. yield_) *. (1.0 -. f)

let required_coverage ~yield_ ~reject =
  if reject <= 0.0 || reject >= 1.0 then
    invalid_arg "Wadsack.required_coverage: reject outside (0,1)";
  if yield_ < 0.0 || yield_ > 1.0 then
    invalid_arg "Wadsack.required_coverage: yield outside [0,1]";
  if 1.0 -. yield_ <= reject then Some 0.0
  else Some (1.0 -. (reject /. (1.0 -. yield_)))

let reject_ratio_vs_agrawal ~yield_ ~n0 f =
  let ours = Reject.reject_rate ~yield_ ~n0 f in
  if ours = 0.0 then infinity else reject_rate ~yield_ f /. ours
