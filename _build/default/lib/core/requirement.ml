let required_coverage ~yield_ ~n0 ~reject =
  if reject <= 0.0 || reject >= 1.0 then
    invalid_arg "Requirement.required_coverage: reject outside (0,1)";
  let r f = Reject.reject_rate ~yield_ ~n0 f in
  if r 0.0 <= reject then Some 0.0
  else if r 1.0 > reject then None
  else
    (* r is continuous and strictly decreasing from 1-y to 0. *)
    Some (Stats.Solver.brent ~tol:1e-10 ~f:(fun f -> r f -. reject) ~lo:0.0 ~hi:1.0 ())

let coverage_versus_yield ~reject ~n0 ~yields =
  Array.map
    (fun y ->
      let f =
        match required_coverage ~yield_:y ~n0 ~reject with
        | Some f -> f
        | None -> 1.0
      in
      (y, f))
    yields

let sensitivity_to_n0 ~yield_ ~reject ~n0_values =
  Array.map
    (fun n0 ->
      let f =
        match required_coverage ~yield_ ~n0 ~reject with
        | Some f -> f
        | None -> 1.0
      in
      (n0, f))
    n0_values
