(** Probability of a test set missing the faults on a chip
    (Section 4 and the Appendix).

    With [N] possible fault sites, [n] of them actually faulty and [m =
    f·N] covered by the tests, the number of detected faults is
    hypergeometric (Eq. 4).  The chip escapes (passes as good) when the
    tests hit none of its faults — [q0(n)], for which the paper derives
    one exact form (A.1) and two approximations (A.2, A.3 = Eq. 5).
    Fig. 6 compares the three; the reproduction regenerates it. *)

val qk : total:int -> faulty:int -> covered:int -> int -> float
(** Eq. 4: probability of detecting exactly [k] of the [faulty] faults. *)

val q0_exact : total:int -> faulty:int -> coverage:float -> float
(** A.1, evaluated exactly in log space:
    [C(N-m, n) / C(N, n)] with [m = round (coverage·N)]. *)

val q0_second_order : total:int -> faulty:int -> coverage:float -> float
(** A.2: [(1-f)^n · exp(-f n (n-1) / (2 N (1-f)))] — indistinguishable
    from A.1 even for large [n]. *)

val q0_simple : faulty:int -> coverage:float -> float
(** A.3 / Eq. 5: [(1-f)^n], accurate when [n² << N (1-f) / f]. *)

val q0_validity_bound : total:int -> coverage:float -> float
(** The paper's validity threshold for {!q0_simple}:
    [sqrt (N (1-f) / f)].  The approximation is good for [n] well below
    this. *)
