(** The prior-art baseline the paper argues against (its reference [5],
    Wadsack 1978): field reject rate [r = (1 - y)(1 - f)].

    This model effectively assumes every defective chip carries exactly
    one fault (no shifted-Poisson multiplicity), which over-predicts
    escapes and therefore demands near-perfect coverage for LSI-grade
    yields — the paper's Section 7 contrasts 99 / 99.9 % (Wadsack)
    against its own 80 / 95 % for the example chip. *)

val reject_rate : yield_:float -> float -> float
(** [r(f) = (1 - y)(1 - f)]. *)

val required_coverage : yield_:float -> reject:float -> float option
(** Closed-form inverse: [f = 1 - r / (1 - y)]; [Some 0.] when the
    yield alone satisfies the target. *)

val reject_ratio_vs_agrawal : yield_:float -> n0:float -> float -> float
(** Wadsack's predicted reject rate divided by the paper's (Eq. 8), at
    coverage [f] — the pessimism factor of the old model. *)
