(** Test-economics extension.

    The paper's introduction motivates the whole exercise economically:
    "test development and test application costs increase very rapidly"
    as coverage approaches 100 %.  This module makes that trade-off
    explicit: with a per-pattern application cost and a per-escape
    field cost, there is a finite optimal coverage — the quantitative
    version of the paper's argument that chasing the last percent is
    not always worth it.

    Test length is modeled by the random-pattern law
    [patterns(f) = k·ln(1/(1-f))] (each undetected fault is caught per
    pattern with roughly constant probability, so coverage approaches 1
    geometrically), which matches the coverage curves the fault
    simulator produces on the generated circuits. *)

type t = {
  yield_ : float;
  n0 : float;
  pattern_cost : float;       (** Cost of applying one test pattern. *)
  patterns_per_decade : float;(** k in patterns(f) = k·ln(1/(1-f)). *)
  escape_cost : float;        (** Field cost of shipping one bad chip. *)
}

val create :
  yield_:float -> n0:float -> pattern_cost:float ->
  patterns_per_decade:float -> escape_cost:float -> t

val test_cost : t -> float -> float
(** Application cost of a program reaching coverage [f]. *)

val escape_cost_per_chip : t -> float -> float
(** Expected field cost per shipped chip: [escape_cost · r(f)]. *)

val total_cost : t -> float -> float
(** Per-chip total: test + expected escape cost. *)

val optimal_coverage : t -> float
(** Argmin of {!total_cost} on [0, 1); the economics never push
    coverage all the way to 1 because the test-cost term diverges. *)

val sweep : t -> coverages:float array -> (float * float * float * float) array
(** [(f, test cost, escape cost, total)] rows for tabulation. *)
