type point = { coverage : float; fraction_failed : float }

let validate points =
  if points = [] then invalid_arg "Estimate: empty data";
  List.iter
    (fun { coverage; fraction_failed } ->
      if coverage < 0.0 || coverage > 1.0 then
        invalid_arg "Estimate: coverage outside [0,1]";
      if fraction_failed < 0.0 || fraction_failed > 1.0 then
        invalid_arg "Estimate: fraction outside [0,1]")
    points

let sse ~yield_ ~n0 points =
  List.fold_left
    (fun acc { coverage; fraction_failed } ->
      let e = Reject.p_reject ~yield_ ~n0 coverage -. fraction_failed in
      acc +. (e *. e))
    0.0 points

let fit_n0 ?(n0_max = 100.0) ~yield_ points =
  validate points;
  if not (List.exists (fun p -> p.coverage > 0.0) points) then
    invalid_arg "Estimate.fit_n0: need a point with positive coverage";
  let loss n0 = sse ~yield_ ~n0 points in
  Stats.Fit.fit_scalar ~grid:256 ~loss ~lo:1.0 ~hi:n0_max ()

let slope_points points_used points =
  let early =
    List.filteri (fun i _ -> i < points_used) points
    |> List.map (fun p -> (p.coverage, p.fraction_failed))
  in
  if List.for_all (fun (f, _) -> f = 0.0) early then
    invalid_arg "Estimate.slope: zero-coverage checkpoints only";
  Stats.Fit.linear_regression_through_origin early

let slope_nav ?(points_used = 1) points =
  validate points;
  slope_points points_used points

let slope_n0 ?(points_used = 1) ~yield_ points =
  if yield_ >= 1.0 then invalid_arg "Estimate.slope_n0: yield must be < 1";
  slope_nav ~points_used points /. (1.0 -. yield_)

let fit_n0_and_yield ?(n0_max = 100.0) points =
  validate points;
  (* Nested search: for each candidate yield, the best n0 is a 1-d fit;
     the outer loss is unimodal enough for a fine grid + refinement. *)
  let max_failed =
    List.fold_left (fun acc p -> max acc p.fraction_failed) 0.0 points
  in
  (* A fraction_failed of m bounds the yield by 1 - m, but a saturated
     curve (m near 1) must not collapse the grid onto yield = 0.0: keep
     the search inside a sane [y_lo, y_hi]. *)
  let y_lo = 1e-4 in
  let y_hi = max y_lo (min (1.0 -. max_failed) 0.999) in
  let best = ref (1.0, 0.5, infinity) in
  let steps = if y_hi -. y_lo < 1e-9 then 0 else 64 in
  for i = 0 to steps do
    let y =
      y_lo +. (float_of_int i /. float_of_int (max 1 steps) *. (y_hi -. y_lo))
    in
    let n0, residual = fit_n0 ~n0_max ~yield_:y points in
    let _, _, best_residual = !best in
    if residual < best_residual then best := (n0, y, residual)
  done;
  !best

let predicted_curve ~yield_ ~n0 ~coverages =
  Array.to_list coverages
  |> List.map (fun f ->
         { coverage = f; fraction_failed = Reject.p_reject ~yield_ ~n0 f })
