(** The paper's fault-distribution model (Section 3, Eq. 1–2).

    A manufactured chip is good with probability [y]; a defective chip
    carries [n >= 1] logical faults where [n - 1] is Poisson with mean
    [n0 - 1] — i.e. the Poisson density shifted right by one unit so
    that a defective chip always has at least one fault.  [n0] is the
    average number of faults on a {e defective} chip, the paper's new
    characterization parameter. *)

type t = {
  yield_ : float;  (** y: probability a chip is fault-free. *)
  n0 : float;      (** Mean faults on a defective chip, >= 1. *)
}

val create : yield_:float -> n0:float -> t

val p : t -> int -> float
(** Eq. 1: [p t n] is the probability of exactly [n] faults on a chip;
    [p t 0 = y]. *)

val average_faults : t -> float
(** Eq. 2: [nav = (1 - y) n0] — mean faults over {e all} chips. *)

val mean_conditional : t -> float
(** Mean faults given the chip is defective: [n0] itself. *)

val cdf : t -> int -> float
(** P(faults <= n). *)

val sample : t -> Stats.Rng.t -> int
(** Number of faults on one simulated chip (0 with probability y). *)

val total_mass : t -> upto:int -> float
(** Partial sum Σ_{n=0}^{upto} p(n); approaches 1 — the paper's remark
    that truncating the infinite sum at [N] is numerically immaterial. *)
