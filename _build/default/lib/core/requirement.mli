(** Required fault coverage for a target field reject rate (Section 6).

    Eq. 8 is awkward to solve for [f] in closed form; the paper reads
    the answer off the graphs of Figs. 2–4.  Here the monotone equation
    is solved directly by bracketing + Brent. *)

val required_coverage :
  yield_:float -> n0:float -> reject:float -> float option
(** Smallest coverage [f] with [Reject.reject_rate f <= reject].
    [None] when even 100 % coverage cannot reach the target (impossible
    for [reject > 0], kept for totality); [Some 0.] when the bare yield
    already meets it. *)

val coverage_versus_yield :
  reject:float -> n0:float -> yields:float array -> (float * float) array
(** One curve of Figs. 2–4: [(y, required f)] for each yield.  Uses
    Eq. 11 inversion per point. *)

val sensitivity_to_n0 :
  yield_:float -> reject:float -> n0_values:float array -> (float * float) array
(** [(n0, required f)] — how strongly the requirement relaxes as the
    defective-chip fault mean grows (the paper's headline observation
    that LSI's larger n0 means lower required coverage). *)
