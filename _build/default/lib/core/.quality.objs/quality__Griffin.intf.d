lib/core/griffin.mli:
