lib/core/reject.mli:
