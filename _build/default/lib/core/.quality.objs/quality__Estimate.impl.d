lib/core/estimate.ml: Array List Reject Stats
