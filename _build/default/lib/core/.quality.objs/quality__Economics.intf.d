lib/core/economics.mli:
