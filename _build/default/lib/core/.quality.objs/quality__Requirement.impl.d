lib/core/requirement.ml: Array Reject Stats
