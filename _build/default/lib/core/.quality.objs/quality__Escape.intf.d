lib/core/escape.mli:
