lib/core/economics.ml: Array Reject Stats
