lib/core/williams_brown.ml:
