lib/core/estimate.mli:
