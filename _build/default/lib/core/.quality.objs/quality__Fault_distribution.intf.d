lib/core/fault_distribution.mli: Stats
