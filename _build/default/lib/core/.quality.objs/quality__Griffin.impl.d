lib/core/griffin.ml: Stats
