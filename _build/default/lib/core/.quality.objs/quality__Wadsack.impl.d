lib/core/wadsack.ml: Reject
