lib/core/escape.ml: Float Stats
