lib/core/reject.ml: Escape Stats
