lib/core/wadsack.mli:
