lib/core/fault_distribution.ml: Stats
