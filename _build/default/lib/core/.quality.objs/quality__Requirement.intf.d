lib/core/requirement.mli:
