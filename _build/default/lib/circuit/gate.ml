type kind =
  | Input
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

let to_string = function
  | Input -> "INPUT"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "CONST0" -> Some Const0
  | "CONST1" -> Some Const1
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | _ -> None

let min_arity = function
  | Input | Const0 | Const1 -> 0
  | Buf | Not -> 1
  | And | Nand | Or | Nor | Xor | Xnor -> 2

let max_arity = function
  | Input | Const0 | Const1 -> Some 0
  | Buf | Not -> Some 1
  | And | Nand | Or | Nor | Xor | Xnor -> None

let eval kind values =
  let all p = Array.for_all p values in
  let any p = Array.exists p values in
  let parity () = Array.fold_left (fun acc v -> acc <> v) false values in
  match kind with
  | Input -> invalid_arg "Gate.eval: Input has no logic function"
  | Const0 -> false
  | Const1 -> true
  | Buf -> values.(0)
  | Not -> not values.(0)
  | And -> all (fun v -> v)
  | Nand -> not (all (fun v -> v))
  | Or -> any (fun v -> v)
  | Nor -> not (any (fun v -> v))
  | Xor -> parity ()
  | Xnor -> not (parity ())

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Input | Const0 | Const1 | Buf | Not | Xor | Xnor -> None

let inverts = function
  | Nand | Nor | Xnor | Not -> true
  | Input | Const0 | Const1 | Buf | And | Or | Xor -> false

let all_kinds =
  [ Input; Const0; Const1; Buf; Not; And; Nand; Or; Nor; Xor; Xnor ]
