let keywords =
  [ "module"; "endmodule"; "input"; "output"; "wire"; "and"; "nand"; "or";
    "nor"; "xor"; "xnor"; "not"; "buf"; "assign"; "supply0"; "supply1";
    "begin"; "end"; "reg"; "always"; "initial" ]

let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iteri
    (fun i ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buf ch
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char buf 'n';
        Buffer.add_char buf ch
      | _ -> Buffer.add_char buf '_')
    name;
  let cleaned = Buffer.contents buf in
  let cleaned = if cleaned = "" then "n" else cleaned in
  if List.mem cleaned keywords then cleaned ^ "_w" else cleaned

(* Unique sanitized name per node (collisions get numeric suffixes). *)
let name_table (c : Netlist.t) =
  let used = Hashtbl.create 64 in
  let renamed = ref [] in
  let names =
    Array.mapi
      (fun id original ->
        let base = sanitize original in
        let rec unique candidate k =
          if Hashtbl.mem used candidate then
            unique (Printf.sprintf "%s_%d" base k) (k + 1)
          else candidate
        in
        let final = unique base 0 in
        Hashtbl.replace used final ();
        if final <> original then renamed := (original, final) :: !renamed;
        ignore id;
        final)
      c.node_names
  in
  (names, List.rev !renamed)

let to_string (c : Netlist.t) =
  let names, renamed = name_table c in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "// generated from netlist %s\n" c.name;
  List.iter
    (fun (original, final) -> addf "// renamed: %s -> %s\n" original final)
    renamed;
  let module_name = sanitize c.name in
  let ports =
    Array.to_list (Array.map (fun id -> names.(id)) c.inputs)
    @ Array.to_list (Array.map (fun id -> names.(id)) c.outputs)
  in
  addf "module %s(%s);\n" module_name (String.concat ", " ports);
  Array.iter (fun id -> addf "  input %s;\n" names.(id)) c.inputs;
  Array.iter (fun id -> addf "  output %s;\n" names.(id)) c.outputs;
  Array.iter
    (fun id ->
      match c.kinds.(id) with
      | Gate.Input -> ()
      | Gate.Const0 -> addf "  supply0 %s;\n" names.(id)
      | Gate.Const1 -> addf "  supply1 %s;\n" names.(id)
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        if not (Netlist.is_output c id) then addf "  wire %s;\n" names.(id))
    c.topo_order;
  Array.iteri
    (fun id kind ->
      let primitive =
        match kind with
        | Gate.Input | Gate.Const0 | Gate.Const1 -> None
        | Gate.Buf -> Some "buf"
        | Gate.Not -> Some "not"
        | Gate.And -> Some "and"
        | Gate.Nand -> Some "nand"
        | Gate.Or -> Some "or"
        | Gate.Nor -> Some "nor"
        | Gate.Xor -> Some "xor"
        | Gate.Xnor -> Some "xnor"
      in
      match primitive with
      | None -> ()
      | Some primitive ->
        let operands =
          names.(id)
          :: (Array.to_list c.fanins.(id) |> List.map (fun src -> names.(src)))
        in
        addf "  %s g%d(%s);\n" primitive id (String.concat ", " operands))
    c.kinds;
  addf "endmodule\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
