(** Primitive gate types of the netlist IR.

    The IR is purely combinational.  Sequential elements in parsed
    netlists are handled by the full-scan transformation in
    {!Bench_format} (flip-flop outputs become pseudo primary inputs,
    flip-flop inputs pseudo primary outputs), which is how a production
    test generator would see the circuit anyway. *)

type kind =
  | Input      (** Primary (or pseudo primary) input; no fanin. *)
  | Const0     (** Constant logic 0. *)
  | Const1     (** Constant logic 1. *)
  | Buf        (** Identity, one fanin. *)
  | Not        (** Inverter, one fanin. *)
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

val to_string : kind -> string
(** Upper-case mnemonic, e.g. ["NAND"]. *)

val of_string : string -> kind option
(** Case-insensitive parse of a mnemonic ([BUFF] is accepted for [Buf]). *)

val min_arity : kind -> int
(** Smallest legal number of fanins. *)

val max_arity : kind -> int option
(** Largest legal number of fanins, or [None] when unbounded. *)

val eval : kind -> bool array -> bool
(** Boolean evaluation over the fanin values. *)

val controlling_value : kind -> bool option
(** The value that, on any single input, fixes the output (0 for
    AND/NAND, 1 for OR/NOR); [None] for XOR-like and unary gates. *)

val inverts : kind -> bool
(** Whether the gate complements its "natural" function (NAND, NOR,
    XNOR, NOT are inverting). *)

val all_kinds : kind list
(** Every constructor, for exhaustive table-driven tests. *)
