(** Structural Verilog netlist writer.

    Emits a gate-level Verilog module using the primitive gates
    ([and], [nand], [or], [nor], [xor], [xnor], [not], [buf]) so the
    generated circuits can be inspected or cross-checked with any
    commercial or open-source Verilog tool.  Write-only: the
    interchange format this library parses is [.bench]
    ({!Bench_format}). *)

val to_string : Netlist.t -> string
(** One [module] per netlist; node names are sanitized into Verilog
    identifiers (a name map comment is emitted when sanitization had to
    rename).  Constants become [supply0]/[supply1] nets. *)

val write_file : string -> Netlist.t -> unit
