lib/circuit/gate.ml: Array String
