lib/circuit/gate.mli:
