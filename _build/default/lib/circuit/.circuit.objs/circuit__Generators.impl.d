lib/circuit/generators.ml: Array Gate Hashtbl List Netlist Printf Stats String
