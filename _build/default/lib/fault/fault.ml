type site = Stem of int | Branch of { gate : int; pin : int }

type polarity = Stuck_at_0 | Stuck_at_1

type t = { site : site; polarity : polarity }

let compare = Stdlib.compare

let equal a b = compare a b = 0

let polarity_bit = function Stuck_at_0 -> false | Stuck_at_1 -> true

let opposite = function Stuck_at_0 -> Stuck_at_1 | Stuck_at_1 -> Stuck_at_0

let polarity_string = function Stuck_at_0 -> "sa0" | Stuck_at_1 -> "sa1"

let to_string (c : Circuit.Netlist.t) { site; polarity } =
  match site with
  | Stem id -> Printf.sprintf "%s/%s" c.node_names.(id) (polarity_string polarity)
  | Branch { gate; pin } ->
    Printf.sprintf "%s.in%d/%s" c.node_names.(gate) pin (polarity_string polarity)

let site_node { site; _ } =
  match site with Stem id -> id | Branch { gate; _ } -> gate
