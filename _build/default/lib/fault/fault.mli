(** Single stuck-at faults on netlist lines.

    A fault lives on a {e line}: either the output stem of a node or a
    specific input pin of a gate (a fanout branch).  Distinguishing the
    two matters — with reconvergent fanout, a branch can be stuck while
    its stem is healthy — and it is what makes the universe size match
    the classical line count [N] that the paper's coverage fraction
    [f = m/N] refers to. *)

type site =
  | Stem of int                          (** Output of node [id]. *)
  | Branch of { gate : int; pin : int }  (** Input [pin] of node [gate]. *)

type polarity = Stuck_at_0 | Stuck_at_1

type t = { site : site; polarity : polarity }

val compare : t -> t -> int
val equal : t -> t -> bool

val polarity_bit : polarity -> bool
(** The logic value the line is stuck at. *)

val opposite : polarity -> polarity

val to_string : Circuit.Netlist.t -> t -> string
(** Human-readable form, e.g. ["G16/sa0"] or ["G22.in1/sa1"]. *)

val site_node : t -> int
(** The node the fault is attached to (the gate, for a branch fault). *)
