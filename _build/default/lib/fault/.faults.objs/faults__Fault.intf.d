lib/fault/fault.mli: Circuit
