lib/fault/fault.ml: Array Circuit Printf Stdlib
