lib/fault/collapse.mli: Circuit Fault
