lib/fault/collapse.ml: Array Circuit Fault Hashtbl List
