lib/fault/universe.ml: Array Circuit Fault
