type t = {
  circuit : Circuit.Netlist.t;
  values : bool array;
  (* Level-indexed buckets of scheduled nodes; [queued] deduplicates. *)
  wheel : int list array;
  queued : bool array;
}

let circuit t = t.circuit

let eval_gate t id =
  let c = t.circuit in
  let fanin_values = Array.map (fun src -> t.values.(src)) c.fanins.(id) in
  Circuit.Gate.eval c.kinds.(id) fanin_values

let schedule t id =
  if not t.queued.(id) then begin
    t.queued.(id) <- true;
    let level = t.circuit.levels.(id) in
    t.wheel.(level) <- id :: t.wheel.(level)
  end

let propagate t =
  let c = t.circuit in
  let evaluations = ref 0 in
  let depth = Array.length t.wheel in
  for level = 0 to depth - 1 do
    (* Processing strictly by level guarantees each gate is evaluated at
       most once per pattern: all its fanins are final by then. *)
    let bucket = t.wheel.(level) in
    t.wheel.(level) <- [];
    List.iter
      (fun id ->
        t.queued.(id) <- false;
        incr evaluations;
        let fresh = eval_gate t id in
        if fresh <> t.values.(id) then begin
          t.values.(id) <- fresh;
          Array.iter (fun dst -> schedule t dst) c.fanouts.(id)
        end)
      bucket
  done;
  !evaluations

let create c =
  let n = Circuit.Netlist.num_nodes c in
  let t =
    { circuit = c; values = Array.make n false;
      wheel = Array.make (Circuit.Netlist.depth c + 1) [];
      queued = Array.make n false }
  in
  (* Settle the all-zero state: schedule every gate once. *)
  Array.iter
    (fun id ->
      match c.kinds.(id) with
      | Circuit.Gate.Input -> ()
      | Circuit.Gate.Const0 | Circuit.Gate.Const1 | Circuit.Gate.Buf
      | Circuit.Gate.Not | Circuit.Gate.And | Circuit.Gate.Nand
      | Circuit.Gate.Or | Circuit.Gate.Nor | Circuit.Gate.Xor
      | Circuit.Gate.Xnor -> schedule t id)
    c.topo_order;
  ignore (propagate t);
  t

let set_pattern t pattern =
  let c = t.circuit in
  if Array.length pattern <> Array.length c.inputs then
    invalid_arg "Eventsim.set_pattern: width mismatch";
  Array.iteri
    (fun i id ->
      if t.values.(id) <> pattern.(i) then begin
        t.values.(id) <- pattern.(i);
        Array.iter (fun dst -> schedule t dst) c.fanouts.(id)
      end)
    c.inputs;
  propagate t

let value t id = t.values.(id)

let output_values t = Array.map (fun id -> t.values.(id)) t.circuit.outputs
