(** Reference single-pattern logic simulator.

    Deliberately simple — one boolean per node, full evaluation in
    topological order — so it can serve as the oracle that the packed
    and event-driven simulators are differential-tested against. *)

val eval : Circuit.Netlist.t -> bool array -> bool array
(** [eval c inputs] returns the value of every node.  [inputs] holds one
    boolean per primary input, in [c.inputs] order. *)

val outputs : Circuit.Netlist.t -> bool array -> bool array
(** Primary-output values only, in [c.outputs] order. *)

val eval_with_overrides :
  Circuit.Netlist.t -> overrides:(int * bool) list -> bool array -> bool array
(** Like {!eval} but forcing the listed nodes to fixed values after
    their normal evaluation — the simplest possible stuck-at injection,
    used to cross-check the fault simulators.  Note an override on node
    [v] affects [v]'s fanouts but not [v]'s own reported value slot in
    the way faults on {e stems} do; input-pin (branch) faults cannot be
    expressed here, which is exactly why the real fault simulator
    exists. *)
