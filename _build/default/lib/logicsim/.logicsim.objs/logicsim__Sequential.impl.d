lib/logicsim/sequential.ml: Array Circuit Hashtbl List Printf Refsim String
