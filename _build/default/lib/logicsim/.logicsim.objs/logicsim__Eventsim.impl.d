lib/logicsim/eventsim.ml: Array Circuit List
