lib/logicsim/eventsim.mli: Circuit
