lib/logicsim/refsim.mli: Circuit
