lib/logicsim/packed.ml: Array Circuit Int64 List
