lib/logicsim/refsim.ml: Array Circuit Hashtbl List
