lib/logicsim/sequential.mli: Circuit
