lib/logicsim/packed.mli: Circuit
