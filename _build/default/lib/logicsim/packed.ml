type block = { pattern_count : int; input_words : int64 array }

let block_of_patterns (c : Circuit.Netlist.t) patterns =
  let count = Array.length patterns in
  if count = 0 || count > 64 then
    invalid_arg "Packed.block_of_patterns: need 1..64 patterns";
  let width = Array.length c.inputs in
  let input_words = Array.make width 0L in
  Array.iteri
    (fun pattern_index pattern ->
      if Array.length pattern <> width then
        invalid_arg "Packed.block_of_patterns: pattern width mismatch";
      Array.iteri
        (fun input_index value ->
          if value then
            input_words.(input_index) <-
              Int64.logor input_words.(input_index)
                (Int64.shift_left 1L pattern_index))
        pattern)
    patterns;
  { pattern_count = count; input_words }

let blocks_of_patterns c patterns =
  let total = Array.length patterns in
  let rec loop start acc =
    if start >= total then List.rev acc
    else begin
      let len = min 64 (total - start) in
      let chunk = Array.sub patterns start len in
      loop (start + len) (block_of_patterns c chunk :: acc)
    end
  in
  loop 0 []

let live_mask { pattern_count; _ } =
  if pattern_count = 64 then -1L
  else Int64.sub (Int64.shift_left 1L pattern_count) 1L

let eval_into (c : Circuit.Netlist.t) values =
  let fanins = c.fanins and kinds = c.kinds in
  Array.iter
    (fun id ->
      match kinds.(id) with
      | Circuit.Gate.Input -> ()
      | Circuit.Gate.Const0 -> values.(id) <- 0L
      | Circuit.Gate.Const1 -> values.(id) <- -1L
      | Circuit.Gate.Buf -> values.(id) <- values.(fanins.(id).(0))
      | Circuit.Gate.Not -> values.(id) <- Int64.lognot values.(fanins.(id).(0))
      | Circuit.Gate.And ->
        let srcs = fanins.(id) in
        let acc = ref values.(srcs.(0)) in
        for i = 1 to Array.length srcs - 1 do
          acc := Int64.logand !acc values.(srcs.(i))
        done;
        values.(id) <- !acc
      | Circuit.Gate.Nand ->
        let srcs = fanins.(id) in
        let acc = ref values.(srcs.(0)) in
        for i = 1 to Array.length srcs - 1 do
          acc := Int64.logand !acc values.(srcs.(i))
        done;
        values.(id) <- Int64.lognot !acc
      | Circuit.Gate.Or ->
        let srcs = fanins.(id) in
        let acc = ref values.(srcs.(0)) in
        for i = 1 to Array.length srcs - 1 do
          acc := Int64.logor !acc values.(srcs.(i))
        done;
        values.(id) <- !acc
      | Circuit.Gate.Nor ->
        let srcs = fanins.(id) in
        let acc = ref values.(srcs.(0)) in
        for i = 1 to Array.length srcs - 1 do
          acc := Int64.logor !acc values.(srcs.(i))
        done;
        values.(id) <- Int64.lognot !acc
      | Circuit.Gate.Xor ->
        let srcs = fanins.(id) in
        let acc = ref values.(srcs.(0)) in
        for i = 1 to Array.length srcs - 1 do
          acc := Int64.logxor !acc values.(srcs.(i))
        done;
        values.(id) <- !acc
      | Circuit.Gate.Xnor ->
        let srcs = fanins.(id) in
        let acc = ref values.(srcs.(0)) in
        for i = 1 to Array.length srcs - 1 do
          acc := Int64.logxor !acc values.(srcs.(i))
        done;
        values.(id) <- Int64.lognot !acc)
    c.topo_order

let eval_node (c : Circuit.Netlist.t) id values =
  let srcs = c.fanins.(id) in
  let fold op =
    let acc = ref values.(srcs.(0)) in
    for i = 1 to Array.length srcs - 1 do
      acc := op !acc values.(srcs.(i))
    done;
    !acc
  in
  match c.kinds.(id) with
  | Circuit.Gate.Input -> values.(id)
  | Circuit.Gate.Const0 -> 0L
  | Circuit.Gate.Const1 -> -1L
  | Circuit.Gate.Buf -> values.(srcs.(0))
  | Circuit.Gate.Not -> Int64.lognot values.(srcs.(0))
  | Circuit.Gate.And -> fold Int64.logand
  | Circuit.Gate.Nand -> Int64.lognot (fold Int64.logand)
  | Circuit.Gate.Or -> fold Int64.logor
  | Circuit.Gate.Nor -> Int64.lognot (fold Int64.logor)
  | Circuit.Gate.Xor -> fold Int64.logxor
  | Circuit.Gate.Xnor -> Int64.lognot (fold Int64.logxor)

let eval_block c block =
  let values = Array.make (Circuit.Netlist.num_nodes c) 0L in
  Array.iteri (fun i id -> values.(id) <- block.input_words.(i)) c.Circuit.Netlist.inputs;
  eval_into c values;
  values

let output_words (c : Circuit.Netlist.t) values =
  Array.map (fun id -> values.(id)) c.outputs

let bit w i = Int64.logand (Int64.shift_right_logical w i) 1L = 1L
