type t = {
  core : Circuit.Netlist.t;
  primary_input_positions : int array;
  state_input_positions : int array;
  primary_output_positions : int array;
  state_output_positions : int array;
}

let is_partition ~size a b =
  let seen = Array.make size false in
  let mark i =
    if i < 0 || i >= size || seen.(i) then false
    else begin
      seen.(i) <- true;
      true
    end
  in
  Array.for_all mark a && Array.for_all mark b && Array.for_all (fun s -> s) seen

let create ~core ~primary_input_positions ~state_input_positions
    ~primary_output_positions ~state_output_positions =
  if Array.length state_input_positions <> Array.length state_output_positions then
    invalid_arg "Sequential.create: Q and D counts differ";
  if
    not
      (is_partition
         ~size:(Array.length core.Circuit.Netlist.inputs)
         primary_input_positions state_input_positions)
  then invalid_arg "Sequential.create: input positions do not partition the inputs";
  if
    not
      (is_partition
         ~size:(Array.length core.Circuit.Netlist.outputs)
         primary_output_positions state_output_positions)
  then invalid_arg "Sequential.create: output positions do not partition the outputs";
  { core; primary_input_positions; state_input_positions;
    primary_output_positions; state_output_positions }

let flop_count t = Array.length t.state_input_positions
let primary_input_count t = Array.length t.primary_input_positions
let primary_output_count t = Array.length t.primary_output_positions

let simulate t ?initial_state inputs =
  let flops = flop_count t in
  let state =
    match initial_state with
    | Some s ->
      if Array.length s <> flops then
        invalid_arg "Sequential.simulate: initial state width mismatch";
      Array.copy s
    | None -> Array.make flops false
  in
  let width = Array.length t.core.Circuit.Netlist.inputs in
  let outputs =
    Array.map
      (fun primary ->
        if Array.length primary <> primary_input_count t then
          invalid_arg "Sequential.simulate: input width mismatch";
        let vector = Array.make width false in
        Array.iteri (fun i pos -> vector.(pos) <- primary.(i)) t.primary_input_positions;
        Array.iteri (fun i pos -> vector.(pos) <- state.(i)) t.state_input_positions;
        let all_outputs = Refsim.outputs t.core vector in
        Array.iteri
          (fun i pos -> state.(i) <- all_outputs.(pos))
          t.state_output_positions;
        Array.map (fun pos -> all_outputs.(pos)) t.primary_output_positions)
      inputs
  in
  (outputs, state)

let scan_view t = t.core

let scan_test_cycles t ~patterns =
  if patterns < 0 then invalid_arg "Sequential.scan_test_cycles: negative count";
  if patterns = 0 then 0 else (patterns * (flop_count t + 1)) + flop_count t

let of_bench source =
  let core = Circuit.Bench_format.parse_string ~name:"sequential" source in
  (* Recover the flop structure from the DFF statements: targets are
     pseudo (Q) inputs, arguments pseudo (D) outputs. *)
  let pseudo_inputs = Hashtbl.create 8 and pseudo_outputs = Hashtbl.create 8 in
  String.split_on_char '\n' source
  |> List.iter (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match String.index_opt line '=' with
         | None -> ()
         | Some eq ->
           let target = String.trim (String.sub line 0 eq) in
           let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
           if String.length rhs >= 4 && String.uppercase_ascii (String.sub rhs 0 4) = "DFF("
           then begin
             let arg =
               match String.rindex_opt rhs ')' with
               | Some close -> String.trim (String.sub rhs 4 (close - 4))
               | None -> ""
             in
             Hashtbl.replace pseudo_inputs target ();
             if arg <> "" then Hashtbl.replace pseudo_outputs arg ()
           end);
  let split positions names_of =
    let primary = ref [] and state = ref [] in
    Array.iteri
      (fun position id ->
        if Hashtbl.mem names_of core.Circuit.Netlist.node_names.(id) then
          state := position :: !state
        else primary := position :: !primary)
      positions;
    (Array.of_list (List.rev !primary), Array.of_list (List.rev !state))
  in
  let primary_input_positions, state_input_positions =
    split core.Circuit.Netlist.inputs pseudo_inputs
  in
  let primary_output_positions, state_output_positions =
    split core.Circuit.Netlist.outputs pseudo_outputs
  in
  create ~core ~primary_input_positions ~state_input_positions
    ~primary_output_positions ~state_output_positions

let accumulator ~bits =
  if bits <= 0 then invalid_arg "Sequential.accumulator: bits must be positive";
  let b = Circuit.Netlist.Builder.create ~name:(Printf.sprintf "acc%d" bits) in
  let data = Array.init bits (fun i -> Circuit.Netlist.Builder.add_input b (Printf.sprintf "d%d" i)) in
  let enable = Circuit.Netlist.Builder.add_input b "en" in
  let state = Array.init bits (fun i -> Circuit.Netlist.Builder.add_input b (Printf.sprintf "q%d" i)) in
  (* sum = q + d; next = enable ? sum : q. *)
  let sums = Array.make bits (-1) in
  let carry = ref None in
  for i = 0 to bits - 1 do
    let axb = Circuit.Netlist.Builder.add_gate b Circuit.Gate.Xor [ state.(i); data.(i) ] in
    let sum, cout =
      match !carry with
      | None ->
        (axb, Circuit.Netlist.Builder.add_gate b Circuit.Gate.And [ state.(i); data.(i) ])
      | Some c ->
        let s = Circuit.Netlist.Builder.add_gate b Circuit.Gate.Xor [ axb; c ] in
        let ab = Circuit.Netlist.Builder.add_gate b Circuit.Gate.And [ state.(i); data.(i) ] in
        let c_axb = Circuit.Netlist.Builder.add_gate b Circuit.Gate.And [ c; axb ] in
        (s, Circuit.Netlist.Builder.add_gate b Circuit.Gate.Or [ ab; c_axb ])
    in
    sums.(i) <- sum;
    carry := Some cout
  done;
  let nen = Circuit.Netlist.Builder.add_gate b Circuit.Gate.Not [ enable ] in
  let next =
    Array.init bits (fun i ->
        let keep = Circuit.Netlist.Builder.add_gate b Circuit.Gate.And [ state.(i); nen ] in
        let take = Circuit.Netlist.Builder.add_gate b Circuit.Gate.And [ sums.(i); enable ] in
        Circuit.Netlist.Builder.add_gate b Circuit.Gate.Or [ keep; take ])
  in
  let carry_out =
    match !carry with
    | Some c -> Circuit.Netlist.Builder.add_gate b ~name:"cout" Circuit.Gate.And [ c; enable ]
    | None -> assert false
  in
  (* Primary outputs first (register bits + carry), then state (D). *)
  Array.iter (Circuit.Netlist.Builder.mark_output b) state;
  Circuit.Netlist.Builder.mark_output b carry_out;
  Array.iter (Circuit.Netlist.Builder.mark_output b) next;
  let core = Circuit.Netlist.Builder.build b in
  create ~core
    ~primary_input_positions:(Array.init (bits + 1) (fun i -> i))
    ~state_input_positions:(Array.init bits (fun i -> bits + 1 + i))
    ~primary_output_positions:(Array.init (bits + 1) (fun i -> i))
    ~state_output_positions:(Array.init bits (fun i -> bits + 1 + i))
