let eval (c : Circuit.Netlist.t) inputs =
  if Array.length inputs <> Array.length c.inputs then
    invalid_arg "Refsim.eval: input vector width mismatch";
  let values = Array.make (Circuit.Netlist.num_nodes c) false in
  Array.iteri (fun i id -> values.(id) <- inputs.(i)) c.inputs;
  Array.iter
    (fun id ->
      match c.kinds.(id) with
      | Circuit.Gate.Input -> ()
      | kind ->
        let fanin_values = Array.map (fun src -> values.(src)) c.fanins.(id) in
        values.(id) <- Circuit.Gate.eval kind fanin_values)
    c.topo_order;
  values

let outputs c inputs =
  let values = eval c inputs in
  Array.map (fun id -> values.(id)) c.outputs

let eval_with_overrides (c : Circuit.Netlist.t) ~overrides inputs =
  if Array.length inputs <> Array.length c.inputs then
    invalid_arg "Refsim.eval_with_overrides: input vector width mismatch";
  let values = Array.make (Circuit.Netlist.num_nodes c) false in
  let forced = Hashtbl.create (List.length overrides) in
  List.iter (fun (id, v) -> Hashtbl.replace forced id v) overrides;
  let apply id computed =
    match Hashtbl.find_opt forced id with Some v -> v | None -> computed
  in
  Array.iteri (fun i id -> values.(id) <- apply id inputs.(i)) c.inputs;
  Array.iter
    (fun id ->
      match c.kinds.(id) with
      | Circuit.Gate.Input -> ()
      | kind ->
        let fanin_values = Array.map (fun src -> values.(src)) c.fanins.(id) in
        values.(id) <- apply id (Circuit.Gate.eval kind fanin_values))
    c.topo_order;
  values
