(** Bit-parallel (64 patterns per word) logic simulation.

    This is the workhorse behind fault simulation and coverage curves:
    one pass over the netlist evaluates 64 input patterns at once, one
    [int64] per node.  Bit [i] of a word is pattern [i] of the block. *)

type block = {
  pattern_count : int;       (** 1..64 live patterns in this block. *)
  input_words : int64 array; (** One word per primary input. *)
}

val block_of_patterns : Circuit.Netlist.t -> bool array array -> block
(** Pack up to 64 patterns (each one boolean per primary input). *)

val blocks_of_patterns : Circuit.Netlist.t -> bool array array -> block list
(** Split an arbitrary pattern list into 64-wide blocks, in order. *)

val live_mask : block -> int64
(** Mask with bit [i] set iff pattern [i] exists in the block; compare
    output words under this mask only. *)

val eval_block : Circuit.Netlist.t -> block -> int64 array
(** Evaluate every node for all patterns of the block; result is indexed
    by node id. *)

val eval_into : Circuit.Netlist.t -> int64 array -> unit
(** Lower-level entry point for the fault simulator: [values] must
    already hold the input words at the input node slots; every other
    slot is (re)computed in topological order. *)

val eval_node : Circuit.Netlist.t -> int -> int64 array -> int64
(** [eval_node c id values] recomputes just node [id] from the fanin
    words in [values] (no store). *)

val output_words : Circuit.Netlist.t -> int64 array -> int64 array
(** Extract the primary-output words from a node-value array. *)

val bit : int64 -> int -> bool
(** [bit w i] reads pattern [i]'s value from word [w]. *)
