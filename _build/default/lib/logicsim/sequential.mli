(** Sequential circuits: a combinational core plus D flip-flops.

    The paper's 25,000-transistor chip was sequential; its tester
    applied an initialization sequence before the first strobe.  This
    module closes that gap: a sequential machine is represented by its
    combinational core with the flops cut — each flop contributes a
    pseudo input (its Q output) and a pseudo output (its D input) — the
    exact representation full-scan test generation uses.

    Three things can then be done with one object:
    - {!simulate}: cycle-accurate sequential simulation (Q fed from the
      previous cycle's D);
    - {!scan_view}: the combinational core itself, on which the whole
      fault-simulation/ATPG machinery of this library applies directly
      (scan design assumption);
    - {!scan_test_cycles}: tester-time accounting for scan shifting,
      the term that makes per-pattern cost grow with flop count. *)

type t = {
  core : Circuit.Netlist.t;
  (* Positions into [core.inputs] / [core.outputs]: *)
  primary_input_positions : int array;
  state_input_positions : int array;   (** Q pseudo inputs, flop order. *)
  primary_output_positions : int array;
  state_output_positions : int array;  (** D pseudo outputs, flop order. *)
}

val create :
  core:Circuit.Netlist.t ->
  primary_input_positions:int array ->
  state_input_positions:int array ->
  primary_output_positions:int array ->
  state_output_positions:int array ->
  t
(** Validates that the positions partition the core's inputs and
    outputs and that the two state arrays have equal length. *)

val flop_count : t -> int
val primary_input_count : t -> int
val primary_output_count : t -> int

val simulate :
  t -> ?initial_state:bool array -> bool array array ->
  bool array array * bool array
(** [simulate m inputs] clocks the machine once per row of [inputs]
    (each row one value per primary input).  Returns the per-cycle
    primary-output vectors and the final flop state.  Default initial
    state: all zeros. *)

val scan_view : t -> Circuit.Netlist.t
(** The combinational core — what a full-scan tester exercises. *)

val scan_test_cycles : t -> patterns:int -> int
(** Tester cycles to apply [patterns] scan patterns: shift in
    [flops] bits, one capture cycle, with the final unload overlapped
    with the next load, plus one trailing unload. *)

val of_bench : string -> t
(** Parse a [.bench] netlist {e keeping} its DFF structure (unlike
    {!Circuit.Bench_format.parse_string}, whose flat view discards which inputs
    are pseudo). *)

val accumulator : bits:int -> t
(** A sequential generator for tests and demos: an accumulator machine
    with inputs d0..d{n-1} and [enable]; each cycle, if [enable] the
    register gains [d] (mod 2^n); primary outputs are the register bits
    and the adder carry. *)
