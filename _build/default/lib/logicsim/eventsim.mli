(** Event-driven single-pattern simulator.

    Keeps the full value state between patterns and only re-evaluates
    the fanout cones of inputs that changed, scheduling gates through a
    level-ordered wheel.  When consecutive patterns differ in few bits
    (as tester pattern streams usually do), this beats full levelized
    evaluation; the ablation bench measures the crossover. *)

type t

val create : Circuit.Netlist.t -> t
(** Fresh simulator with all inputs at 0 and the state settled. *)

val circuit : t -> Circuit.Netlist.t

val set_pattern : t -> bool array -> int
(** Load a complete input pattern and propagate events.  Returns the
    number of gate evaluations performed (the activity measure used by
    the ablation bench). *)

val value : t -> int -> bool
(** Current value of a node. *)

val output_values : t -> bool array
(** Current primary-output values. *)
