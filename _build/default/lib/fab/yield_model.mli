(** Integrated-circuit yield models.

    The paper's Eq. 3 is Stapper's composite (negative-binomial) model
    [y = (1 + X D0 A)^(-1/X)] with defect density [D0], chip area [A]
    and [X] the normalized variance of [D0].  The other classical
    models the paper cites ([7]–[12]) are provided for comparison and
    for the ablation bench: Poisson (Price/Seeds small-lambda limit),
    Murphy, and Seeds. *)

type t = {
  defect_density : float;  (** D0: average defects per unit area. *)
  area : float;            (** A: chip area, same units. *)
  variance_ratio : float;  (** X: Var(D0)/D0², 0 = Poisson limit. *)
}

val create :
  defect_density:float -> area:float -> variance_ratio:float -> t

val lambda : t -> float
(** D0·A — the mean number of physical defects per chip. *)

val stapper_yield : t -> float
(** Eq. 3: [(1 + X D0 A)^(-1/X)]; continuous at X=0 where it equals
    {!poisson_yield}. *)

val poisson_yield : t -> float
(** [exp (-D0 A)] — the classical Price/Seeds exponential. *)

val murphy_yield : t -> float
(** Murphy's bell-shaped integrand approximation
    [((1 - e^{-D0 A}) / (D0 A))²]. *)

val seeds_yield : t -> float
(** Seeds' exponential-distribution model [1 / (1 + D0 A)]. *)

val clustering_alpha : t -> float
(** α = 1/X, the negative-binomial shape parameter; [infinity] at X=0. *)

val defect_count_distribution : t -> Dist_kind.t
(** The per-chip physical-defect count law implied by the model:
    NegBinomial(mean = D0·A, α = 1/X), degenerating to Poisson at X=0. *)

val solve_defect_density : target_yield:float -> area:float -> variance_ratio:float -> float
(** Invert {!stapper_yield} for D0: the calibration step used to hit a
    requested process yield (e.g. the paper's 7 %). *)
