type t = { defect_density : float; area : float; variance_ratio : float }

let create ~defect_density ~area ~variance_ratio =
  if defect_density < 0.0 then invalid_arg "Yield_model.create: negative D0";
  if area <= 0.0 then invalid_arg "Yield_model.create: nonpositive area";
  if variance_ratio < 0.0 then invalid_arg "Yield_model.create: negative X";
  { defect_density; area; variance_ratio }

let lambda t = t.defect_density *. t.area

let poisson_yield t = exp (-.lambda t)

let stapper_yield t =
  let x = t.variance_ratio in
  if x = 0.0 then poisson_yield t
  else (1.0 +. (x *. lambda t)) ** (-1.0 /. x)

let murphy_yield t =
  let l = lambda t in
  if l = 0.0 then 1.0
  else begin
    let term = (1.0 -. exp (-.l)) /. l in
    term *. term
  end

let seeds_yield t = 1.0 /. (1.0 +. lambda t)

let clustering_alpha t =
  if t.variance_ratio = 0.0 then infinity else 1.0 /. t.variance_ratio

let defect_count_distribution t =
  if t.variance_ratio = 0.0 then Dist_kind.Poisson (lambda t)
  else Dist_kind.Neg_binomial { mean = lambda t; alpha = clustering_alpha t }

let solve_defect_density ~target_yield ~area ~variance_ratio =
  if target_yield <= 0.0 || target_yield >= 1.0 then
    invalid_arg "Yield_model.solve_defect_density: yield outside (0,1)";
  (* Closed forms exist for both branches of Eq. 3. *)
  if variance_ratio = 0.0 then -.log target_yield /. area
  else begin
    let x = variance_ratio in
    ((target_yield ** -.x) -. 1.0) /. (x *. area)
  end
