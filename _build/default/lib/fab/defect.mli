(** Physical-defect process model: how many defects a chip gets and
    which logical faults each defect turns into.

    This is the reproduction's substitute for the paper's real wafer
    line.  Two features matter for the paper's statistics and both are
    modeled:

    - {b Defect counts cluster}: per-chip counts follow the
      negative-binomial law implied by the Stapper yield formula
      (paper Eq. 3), not a bare Poisson.
    - {b One defect, several faults}: a physical defect (a metallization
      short, say) maps to [1 + Poisson(multiplicity - 1)] stuck-at
      faults, clustered on structurally nearby lines.  The paper's
      footnote stresses exactly this distinction between [n0] and the
      physical-defect mean [D0·A], and its Section 8 predicts fine-line
      shrinks raise multiplicity. *)

type t

val create :
  yield_model:Yield_model.t ->
  fault_multiplicity:float ->
  universe_size:int ->
  ?locality_window:int ->
  unit -> t
(** [fault_multiplicity] ≥ 1 is the mean number of logical faults per
    physical defect; [locality_window] (default 16) is the half-width,
    in fault-universe index space, of a defect's cluster — universe
    order follows netlist construction order, so index proximity is a
    proxy for physical adjacency. *)

val yield_model : t -> Yield_model.t

val model_yield : t -> float
(** Probability of zero defects under the configured count law. *)

val fault_multiplicity : t -> float

val universe_size : t -> int

val expected_n0 : t -> float
(** First-order prediction of the paper's parameter: the mean number of
    logical faults on a {e defective} chip,
    [multiplicity · E(defects | defects > 0)], ignoring the (small)
    collision correction from two defects hitting the same line. *)

val sample_chip : t -> Stats.Rng.t -> int array
(** Fault indices (sorted, distinct) present on one manufactured chip;
    the empty array means a good chip. *)

val shrink : t -> area_factor:float -> multiplicity_factor:float -> t
(** The Section 8 "fine-line technology" transform: scale the chip area
    (same defect density ⇒ higher yield) and the faults-per-defect
    multiplicity (finer features ⇒ one defect clobbers more logic). *)
