type die = { x : int; y : int; radius : float; faults : int array }

type t = { diameter : int; dies : die array; universe_size : int }

let die_positions diameter =
  let center = (float_of_int diameter -. 1.0) /. 2.0 in
  let half = float_of_int diameter /. 2.0 in
  let positions = ref [] in
  for y = diameter - 1 downto 0 do
    for x = diameter - 1 downto 0 do
      let dx = float_of_int x -. center and dy = float_of_int y -. center in
      let r = sqrt ((dx *. dx) +. (dy *. dy)) /. half in
      if r <= 1.0 then positions := (x, y, r) :: !positions
    done
  done;
  !positions

let fabricate defect rng ~diameter ?(edge_factor = 3.0) () =
  if diameter < 3 then invalid_arg "Wafer.fabricate: diameter too small";
  if edge_factor < 1.0 then invalid_arg "Wafer.fabricate: edge_factor must be >= 1";
  let base = Defect.yield_model defect in
  (* Normalize so the disc-averaged density equals the model's D0:
     mean over the disc of (1 + (e-1) r^2) with area weighting is
     1 + (e-1)/2. *)
  let normalization = 1.0 +. ((edge_factor -. 1.0) /. 2.0) in
  let dies =
    die_positions diameter
    |> List.map (fun (x, y, radius) ->
           let scale = (1.0 +. ((edge_factor -. 1.0) *. radius *. radius)) /. normalization in
           let local_yield_model =
             Yield_model.create
               ~defect_density:(base.Yield_model.defect_density *. scale)
               ~area:base.Yield_model.area
               ~variance_ratio:base.Yield_model.variance_ratio
           in
           let local_defect =
             Defect.create ~yield_model:local_yield_model
               ~fault_multiplicity:(Defect.fault_multiplicity defect)
               ~universe_size:(Defect.universe_size defect) ()
           in
           { x; y; radius; faults = Defect.sample_chip local_defect rng })
    |> Array.of_list
  in
  { diameter; dies; universe_size = Defect.universe_size defect }

let to_lot t =
  { Lot.chips =
      Array.mapi
        (fun i die -> { Lot.chip_id = i; fault_indices = die.faults })
        t.dies;
    universe_size = t.universe_size }

let yield_by_ring t ~rings =
  if rings <= 0 then invalid_arg "Wafer.yield_by_ring: nonpositive ring count";
  let good = Array.make rings 0 and total = Array.make rings 0 in
  Array.iter
    (fun die ->
      let ring = min (rings - 1) (int_of_float (die.radius *. float_of_int rings)) in
      total.(ring) <- total.(ring) + 1;
      if Array.length die.faults = 0 then good.(ring) <- good.(ring) + 1)
    t.dies;
  Array.init rings (fun ring ->
      let center = (float_of_int ring +. 0.5) /. float_of_int rings in
      let y =
        if total.(ring) = 0 then 0.0
        else float_of_int good.(ring) /. float_of_int total.(ring)
      in
      (center, y))

let render_map t =
  let grid = Array.make_matrix t.diameter t.diameter ' ' in
  Array.iter
    (fun die ->
      grid.(die.y).(die.x) <- (if Array.length die.faults = 0 then '.' else 'X'))
    t.dies;
  let buf = Buffer.create (t.diameter * (t.diameter + 1)) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf
