(** Tagged per-chip count distribution, shared by the yield model and
    the lot generator so they stay in sync by construction. *)

type t =
  | Poisson of float                             (** mean *)
  | Neg_binomial of { mean : float; alpha : float }

val mean : t -> float
val sample : t -> Stats.Rng.t -> int
val zero_probability : t -> float
(** P(count = 0) — the model yield when counts are physical defects. *)
