lib/fab/defect.mli: Stats Yield_model
