lib/fab/lot.mli: Defect Stats
