lib/fab/yield_model.mli: Dist_kind
