lib/fab/defect.ml: Array Dist_kind Hashtbl Stats Yield_model
