lib/fab/wafer.ml: Array Buffer Defect List Lot Yield_model
