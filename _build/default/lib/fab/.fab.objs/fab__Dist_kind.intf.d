lib/fab/dist_kind.mli: Stats
