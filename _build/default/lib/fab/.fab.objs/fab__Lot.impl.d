lib/fab/lot.ml: Array Defect List Stats
