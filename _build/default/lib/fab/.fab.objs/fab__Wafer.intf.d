lib/fab/wafer.mli: Defect Lot Stats
