lib/fab/yield_model.ml: Dist_kind
