lib/fab/dist_kind.ml: Stats
