(** Manufactured chip lots.

    A lot is a batch of simulated chips, each carrying a (possibly
    empty) set of logical faults drawn from the defect process.  The
    empirical statistics exposed here are what the paper's Section 5
    characterization procedure consumes. *)

type chip = {
  chip_id : int;
  fault_indices : int array;  (** Sorted, distinct; empty = good chip. *)
}

type t = {
  chips : chip array;
  universe_size : int;
}

val manufacture : Defect.t -> Stats.Rng.t -> count:int -> t
(** Fabricate [count] chips through the physical defect process. *)

val manufacture_ideal :
  yield_:float -> n0:float -> universe_size:int ->
  Stats.Rng.t -> count:int -> t
(** Fabricate a lot that follows the paper's Eq. 1 {e exactly}: each
    chip is good with probability [yield_], otherwise carries
    [1 + Poisson(n0 - 1)] distinct faults drawn uniformly from the
    universe.  This is the idealized line used to validate the paper's
    characterization procedure; {!manufacture} is the physically
    motivated line whose clustering the ablation experiments study. *)

val size : t -> int

val good_count : t -> int

val empirical_yield : t -> float
(** Fraction of fault-free chips. *)

val defective_fault_counts : t -> int array
(** Number of faults on each defective chip. *)

val mean_faults_on_defective : t -> float
(** The lot's empirical [n0].  Raises [Invalid_argument] when the lot
    has no defective chip. *)

val mean_faults_per_chip : t -> float
(** Empirical [nav]; Eq. 2 says this should approach [(1 - y)·n0]. *)

val fault_count_histogram : t -> max_faults:int -> int array
(** [h.(n)] = number of chips with exactly [n] faults, [n] capped. *)
