type t = Poisson of float | Neg_binomial of { mean : float; alpha : float }

let mean = function Poisson m -> m | Neg_binomial { mean; _ } -> mean

let sample t rng =
  match t with
  | Poisson m -> Stats.Rng.poisson rng m
  | Neg_binomial { mean; alpha } -> Stats.Rng.neg_binomial rng ~mean ~alpha

let zero_probability = function
  | Poisson m -> exp (-.m)
  | Neg_binomial { mean; alpha } -> (1.0 +. (mean /. alpha)) ** (-.alpha)
