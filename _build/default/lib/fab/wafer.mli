(** Spatial wafer model.

    The paper's data came from whole-wafer probing on a Sentry tester.
    Real wafers have radially varying defect density (edge dies fare
    worse); this module lays dies out on a disc, scales the local defect
    density with radius, and produces a {!Lot.t} whose chips carry die
    coordinates.  Mixing Poisson counts over a spatially varying density
    is precisely the mechanism that motivates the gamma-mixed (Stapper)
    model, so the wafer simulation doubles as a physical justification
    check for Eq. 3 in the test suite. *)

type die = {
  x : int;
  y : int;
  radius : float;        (** Normalized 0 (center) .. 1 (edge). *)
  faults : int array;    (** As in {!Lot.chip}. *)
}

type t = {
  diameter : int;        (** Wafer width in dies. *)
  dies : die array;
  universe_size : int;
}

val fabricate :
  Defect.t ->
  Stats.Rng.t ->
  diameter:int ->
  ?edge_factor:float ->
  unit -> t
(** Fabricate one wafer.  The local defect density at normalized radius
    [r] is scaled by [1 + (edge_factor - 1)·r²] (default edge factor
    3.0: edge dies see three times the center density). *)

val to_lot : t -> Lot.t
(** Forget geometry; chips in row-major die order. *)

val yield_by_ring : t -> rings:int -> (float * float) array
(** [(ring center radius, yield in ring)] — the radial yield profile. *)

val render_map : t -> string
(** ASCII wafer map: ['.'] good die, ['X'] defective die, space outside
    the disc. *)
