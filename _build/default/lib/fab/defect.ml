type t = {
  yield_model : Yield_model.t;
  count_law : Dist_kind.t;
  fault_multiplicity : float;
  universe_size : int;
  locality_window : int;
}

let create ~yield_model ~fault_multiplicity ~universe_size ?(locality_window = 16) () =
  if fault_multiplicity < 1.0 then
    invalid_arg "Defect.create: multiplicity must be >= 1 (a defect causes at least one fault)";
  if universe_size <= 0 then invalid_arg "Defect.create: empty fault universe";
  if locality_window < 1 then invalid_arg "Defect.create: locality window must be >= 1";
  { yield_model; count_law = Yield_model.defect_count_distribution yield_model;
    fault_multiplicity; universe_size; locality_window }

let yield_model t = t.yield_model

let model_yield t = Dist_kind.zero_probability t.count_law

let fault_multiplicity t = t.fault_multiplicity

let universe_size t = t.universe_size

let expected_n0 t =
  let lam = Dist_kind.mean t.count_law in
  let y = model_yield t in
  if lam = 0.0 then t.fault_multiplicity
  else t.fault_multiplicity *. lam /. (1.0 -. y)

(* One defect: an anchor line plus extra faults clustered around it. *)
let sample_defect_faults t rng add =
  let anchor = Stats.Rng.int rng t.universe_size in
  add anchor;
  let extra = Stats.Rng.poisson rng (t.fault_multiplicity -. 1.0) in
  for _ = 1 to extra do
    let lo = max 0 (anchor - t.locality_window) in
    let hi = min (t.universe_size - 1) (anchor + t.locality_window) in
    add (Stats.Rng.int_in rng lo hi)
  done

let sample_chip t rng =
  let defects = Dist_kind.sample t.count_law rng in
  if defects = 0 then [||]
  else begin
    let seen = Hashtbl.create 16 in
    let add i = Hashtbl.replace seen i () in
    for _ = 1 to defects do
      sample_defect_faults t rng add
    done;
    let faults = Hashtbl.fold (fun i () acc -> i :: acc) seen [] in
    let arr = Array.of_list faults in
    Array.sort compare arr;
    arr
  end

let shrink t ~area_factor ~multiplicity_factor =
  if area_factor <= 0.0 || multiplicity_factor <= 0.0 then
    invalid_arg "Defect.shrink: factors must be positive";
  let ym = t.yield_model in
  let yield_model =
    Yield_model.create ~defect_density:ym.Yield_model.defect_density
      ~area:(ym.Yield_model.area *. area_factor)
      ~variance_ratio:ym.Yield_model.variance_ratio
  in
  create ~yield_model
    ~fault_multiplicity:(max 1.0 (t.fault_multiplicity *. multiplicity_factor))
    ~universe_size:t.universe_size ~locality_window:t.locality_window ()
