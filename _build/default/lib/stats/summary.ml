let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  require_nonempty "Summary.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    (* Welford's online algorithm: numerically stable single pass. *)
    let m = ref 0.0 and s = ref 0.0 in
    Array.iteri
      (fun i x ->
        let delta = x -. !m in
        m := !m +. (delta /. float_of_int (i + 1));
        s := !s +. (delta *. (x -. !m)))
      xs;
    !s /. float_of_int (n - 1)
  end

let std_dev xs = sqrt (variance xs)

let minimum xs =
  require_nonempty "Summary.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  require_nonempty "Summary.maximum" xs;
  Array.fold_left max xs.(0) xs

let quantile xs q =
  require_nonempty "Summary.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let h = q *. float_of_int (n - 1) in
  let i = int_of_float (floor h) in
  if i >= n - 1 then sorted.(n - 1)
  else sorted.(i) +. ((h -. float_of_int i) *. (sorted.(i + 1) -. sorted.(i)))

let median xs = quantile xs 0.5

let correlation xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Summary.correlation: length mismatch";
  require_nonempty "Summary.correlation" xs;
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Summary.histogram: nonpositive bin count";
  require_nonempty "Summary.histogram" xs;
  let lo = minimum xs and hi = maximum xs in
  let counts = Array.make bins 0 in
  let width = if hi > lo then hi -. lo else 1.0 in
  Array.iter
    (fun x ->
      let raw = int_of_float (float_of_int bins *. (x -. lo) /. width) in
      let i = min (bins - 1) (max 0 raw) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { lo; hi; counts }

let mean_int xs =
  if Array.length xs = 0 then invalid_arg "Summary.mean_int: empty array";
  float_of_int (Array.fold_left ( + ) 0 xs) /. float_of_int (Array.length xs)
