(* Lanczos approximation, g = 7, n = 9 coefficients (Boost/GSL constants). *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: nonpositive argument";
  if x < 0.5 then
    (* Reflection keeps the Lanczos series in its accurate region. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. (((x +. 0.5) *. log t) -. t) +. log !acc
  end

let log_factorial_table =
  let table = Array.make 1024 0.0 in
  for n = 2 to Array.length table - 1 do
    table.(n) <- table.(n - 1) +. log (float_of_int n)
  done;
  table

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument";
  if n < Array.length log_factorial_table then log_factorial_table.(n)
  else log_gamma (float_of_int n +. 1.0)

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

(* Lower incomplete gamma by series expansion; converges fast for x < a+1. *)
let gamma_p_series a x =
  let rec loop n term sum =
    let term = term *. x /. (a +. float_of_int n) in
    let sum = sum +. term in
    if abs_float term < abs_float sum *. 1e-16 || n > 10_000 then sum
    else loop (n + 1) term sum
  in
  let first = 1.0 /. a in
  let sum = loop 1 first first in
  sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

(* Upper incomplete gamma by Lentz continued fraction; for x >= a+1. *)
let gamma_q_continued_fraction a x =
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i <= 10_000 do
    let fi = float_of_int !i in
    let an = -.fi *. (fi -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if abs_float !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if abs_float (delta -. 1.0) < 1e-16 then continue := false;
    incr i
  done;
  !h *. exp ((-.x) +. (a *. log x) -. log_gamma a)

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: nonpositive a";
  if x < 0.0 then invalid_arg "Special.gamma_p: negative x";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_continued_fraction a x

let gamma_q a x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: nonpositive a";
  if x < 0.0 then invalid_arg "Special.gamma_q: negative x";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_continued_fraction a x

let erf x =
  if x < 0.0 then -.gamma_p 0.5 (x *. x) else gamma_p 0.5 (x *. x)

let erfc x = 1.0 -. erf x

(* Continued fraction for the incomplete beta (Numerical Recipes betacf). *)
let betacf a b x =
  let tiny = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if abs_float !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= 10_000 do
    let fm = float_of_int !m in
    let m2 = 2.0 *. fm in
    let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if abs_float (delta -. 1.0) < 1e-15 then continue := false;
    incr m
  done;
  !h

let beta_inc a b x =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Special.beta_inc: nonpositive parameter";
  if x < 0.0 || x > 1.0 then invalid_arg "Special.beta_inc: x outside [0,1]";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let log_front =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x) +. (b *. log1p (-.x))
    in
    let front = exp log_front in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. betacf a b x /. a
    else 1.0 -. (front *. betacf b a (1.0 -. x) /. b)
  end

let log_sum_exp xs =
  let m = Array.fold_left max neg_infinity xs in
  if m = neg_infinity then neg_infinity
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. exp (x -. m)) xs;
    m +. log !acc
  end
