exception No_bracket

let same_sign a b = (a >= 0.0 && b >= 0.0) || (a <= 0.0 && b <= 0.0)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if same_sign flo fhi then raise No_bracket
  else begin
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo < tol || iter = 0 then mid
      else begin
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if same_sign flo fmid then loop mid hi fmid (iter - 1)
        else loop lo mid flo (iter - 1)
      end
    in
    loop lo hi flo max_iter
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let a = ref lo and b = ref hi in
  let fa = ref (f lo) and fb = ref (f hi) in
  if !fa = 0.0 then lo
  else if !fb = 0.0 then hi
  else if same_sign !fa !fb then raise No_bracket
  else begin
    if abs_float !fa < abs_float !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let iter = ref 0 in
    while abs_float !fb > 0.0 && abs_float (!b -. !a) > tol && !iter < max_iter do
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* Inverse quadratic interpolation. *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_bound = (3.0 *. !a +. !b) /. 4.0 in
      let out_of_range =
        if lo_bound < !b then s < lo_bound || s > !b else s > lo_bound || s < !b
      in
      let s =
        if
          out_of_range
          || (!mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.0)
          || ((not !mflag) && abs_float (s -. !b) >= abs_float !d /. 2.0)
        then begin
          mflag := true;
          0.5 *. (!a +. !b)
        end
        else begin
          mflag := false;
          s
        end
      in
      let fs = f s in
      d := !c -. !b;
      c := !b;
      fc := !fb;
      if same_sign !fa fs then begin a := s; fa := fs end
      else begin b := s; fb := fs end;
      if abs_float !fa < abs_float !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end
    done;
    !b
  end

let find_bracket ?(grow = 1.6) ?(max_iter = 60) ~f ~lo ~hi () =
  if lo >= hi then invalid_arg "Solver.find_bracket: empty interval";
  let rec loop lo hi flo fhi iter =
    if not (same_sign flo fhi) then Some (lo, hi)
    else if iter = 0 then None
    else begin
      let width = hi -. lo in
      if abs_float flo < abs_float fhi then begin
        let lo' = lo -. (grow *. width) in
        loop lo' hi (f lo') fhi (iter - 1)
      end
      else begin
        let hi' = hi +. (grow *. width) in
        loop lo hi' flo (f hi') (iter - 1)
      end
    end
  in
  loop lo hi (f lo) (f hi) max_iter

let golden_section_min ?(tol = 1e-10) ?(max_iter = 200) ~f ~lo ~hi () =
  let inv_phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let rec loop a b c d fc fd iter =
    if b -. a < tol || iter = 0 then 0.5 *. (a +. b)
    else if fc < fd then begin
      let b = d in
      let d = c in
      let c = b -. (inv_phi *. (b -. a)) in
      loop a b c d (f c) fc (iter - 1)
    end
    else begin
      let a = c in
      let c = d in
      let d = a +. (inv_phi *. (b -. a)) in
      loop a b c d fd (f d) (iter - 1)
    end
  in
  let c = hi -. (inv_phi *. (hi -. lo)) in
  let d = lo +. (inv_phi *. (hi -. lo)) in
  loop lo hi c d (f c) (f d) max_iter

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df ~x0 () =
  let rec loop x fx iter =
    if abs_float fx < tol then x
    else if iter = 0 then failwith "Solver.newton: no convergence"
    else begin
      let slope = df x in
      if slope = 0.0 then failwith "Solver.newton: zero derivative";
      (* Halve the step until the residual actually shrinks. *)
      let rec damp step tries =
        let x' = x -. step in
        let fx' = f x' in
        if abs_float fx' < abs_float fx || tries = 0 then (x', fx')
        else damp (step /. 2.0) (tries - 1)
      in
      let x', fx' = damp (fx /. slope) 30 in
      loop x' fx' (iter - 1)
    end
  in
  loop x0 (f x0) max_iter
