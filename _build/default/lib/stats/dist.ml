module Poisson = struct
  type t = { lambda : float }

  let create lambda =
    if lambda < 0.0 then invalid_arg "Poisson.create: negative mean";
    { lambda }

  let log_pmf { lambda } k =
    if k < 0 then neg_infinity
    else if lambda = 0.0 then (if k = 0 then 0.0 else neg_infinity)
    else (float_of_int k *. log lambda) -. lambda -. Special.log_factorial k

  let pmf t k = exp (log_pmf t k)

  let cdf { lambda } k =
    if k < 0 then 0.0
    else if lambda = 0.0 then 1.0
    else Special.gamma_q (float_of_int (k + 1)) lambda

  let mean { lambda } = lambda
  let variance { lambda } = lambda
  let sample { lambda } rng = Rng.poisson rng lambda
end

module Shifted_poisson = struct
  type t = { n0 : float }

  let create n0 =
    if n0 < 1.0 then invalid_arg "Shifted_poisson.create: n0 must be >= 1";
    { n0 }

  let pmf { n0 } n =
    if n < 1 then 0.0 else Poisson.pmf (Poisson.create (n0 -. 1.0)) (n - 1)

  let cdf { n0 } n =
    if n < 1 then 0.0 else Poisson.cdf (Poisson.create (n0 -. 1.0)) (n - 1)

  let mean { n0 } = n0
  let variance { n0 } = n0 -. 1.0
  let sample { n0 } rng = 1 + Rng.poisson rng (n0 -. 1.0)
end

module Binomial = struct
  type t = { n : int; p : float }

  let create ~n ~p =
    if n < 0 then invalid_arg "Binomial.create: negative n";
    if p < 0.0 || p > 1.0 then invalid_arg "Binomial.create: p outside [0,1]";
    { n; p }

  let log_pmf { n; p } k =
    if k < 0 || k > n then neg_infinity
    else if p = 0.0 then (if k = 0 then 0.0 else neg_infinity)
    else if p = 1.0 then (if k = n then 0.0 else neg_infinity)
    else
      Special.log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log1p (-.p))

  let pmf t k = exp (log_pmf t k)

  let cdf { n; p } k =
    if k < 0 then 0.0
    else if k >= n then 1.0
    else Special.beta_inc (float_of_int (n - k)) (float_of_int (k + 1)) (1.0 -. p)

  let mean { n; p } = float_of_int n *. p
  let variance { n; p } = float_of_int n *. p *. (1.0 -. p)
  let sample { n; p } rng = Rng.binomial rng ~n ~p
end

module Hypergeometric = struct
  type t = { total : int; marked : int; draws : int }

  let create ~total ~marked ~draws =
    if total < 0 || marked < 0 || draws < 0 then
      invalid_arg "Hypergeometric.create: negative parameter";
    if marked > total || draws > total then
      invalid_arg "Hypergeometric.create: marked and draws must not exceed total";
    { total; marked; draws }

  let log_pmf { total; marked; draws } k =
    if k < 0 || k > marked || draws - k > total - marked || k > draws then neg_infinity
    else
      Special.log_choose marked k
      +. Special.log_choose (total - marked) (draws - k)
      -. Special.log_choose total draws

  let pmf t k = exp (log_pmf t k)

  let cdf t k =
    let lo = max 0 (t.draws - (t.total - t.marked)) in
    if k < lo then 0.0
    else begin
      let acc = ref 0.0 in
      for i = lo to min k (min t.marked t.draws) do
        acc := !acc +. pmf t i
      done;
      min 1.0 !acc
    end

  let mean { total; marked; draws } =
    if total = 0 then 0.0
    else float_of_int draws *. float_of_int marked /. float_of_int total

  let variance { total; marked; draws } =
    if total <= 1 then 0.0
    else begin
      let n = float_of_int total
      and m = float_of_int marked
      and d = float_of_int draws in
      d *. (m /. n) *. (1.0 -. (m /. n)) *. ((n -. d) /. (n -. 1.0))
    end

  let sample { total; marked; draws } rng =
    (* Sequential sampling: walk the draws updating the urn composition. *)
    let rec loop remaining_total remaining_marked remaining_draws hits =
      if remaining_draws = 0 || remaining_marked = 0 then hits
      else begin
        let take_marked =
          Rng.uniform rng
          < float_of_int remaining_marked /. float_of_int remaining_total
        in
        loop (remaining_total - 1)
          (if take_marked then remaining_marked - 1 else remaining_marked)
          (remaining_draws - 1)
          (if take_marked then hits + 1 else hits)
      end
    in
    loop total marked draws 0
end

module Geometric = struct
  type t = { p : float }

  let create p =
    if p <= 0.0 || p > 1.0 then invalid_arg "Geometric.create: p outside (0,1]";
    { p }

  let pmf { p } k = if k < 0 then 0.0 else p *. ((1.0 -. p) ** float_of_int k)
  let cdf { p } k = if k < 0 then 0.0 else 1.0 -. ((1.0 -. p) ** float_of_int (k + 1))
  let mean { p } = (1.0 -. p) /. p
  let variance { p } = (1.0 -. p) /. (p *. p)

  let sample { p } rng =
    if p = 1.0 then 0
    else int_of_float (log (Rng.uniform_pos rng) /. log1p (-.p))
end

module Neg_binomial = struct
  type t = { mean : float; alpha : float }

  let create ~mean ~alpha =
    if mean < 0.0 then invalid_arg "Neg_binomial.create: negative mean";
    if alpha <= 0.0 then invalid_arg "Neg_binomial.create: nonpositive alpha";
    { mean; alpha }

  let log_pmf { mean; alpha } k =
    if k < 0 then neg_infinity
    else if mean = 0.0 then (if k = 0 then 0.0 else neg_infinity)
    else begin
      let fk = float_of_int k in
      let p = alpha /. (alpha +. mean) in
      Special.log_gamma (alpha +. fk)
      -. Special.log_factorial k -. Special.log_gamma alpha
      +. (alpha *. log p)
      +. (fk *. log1p (-.p))
    end

  let pmf t k = exp (log_pmf t k)

  let cdf t k =
    if k < 0 then 0.0
    else begin
      (* I_p(alpha, k+1) with p = alpha/(alpha+mean). *)
      let p = t.alpha /. (t.alpha +. t.mean) in
      Special.beta_inc t.alpha (float_of_int (k + 1)) p
    end

  let variance { mean; alpha } = mean +. (mean *. mean /. alpha)
  let sample { mean; alpha } rng = Rng.neg_binomial rng ~mean ~alpha
end

module Exponential = struct
  type t = { mean : float }

  let create mean =
    if mean <= 0.0 then invalid_arg "Exponential.create: nonpositive mean";
    { mean }

  let pdf { mean } x = if x < 0.0 then 0.0 else exp (-.x /. mean) /. mean
  let cdf { mean } x = if x < 0.0 then 0.0 else 1.0 -. exp (-.x /. mean)
  let mean { mean } = mean
  let variance { mean } = mean *. mean
  let sample { mean } rng = Rng.exponential rng mean
end

module Gamma_dist = struct
  type t = { shape : float; scale : float }

  let create ~shape ~scale =
    if shape <= 0.0 || scale <= 0.0 then
      invalid_arg "Gamma_dist.create: nonpositive parameter";
    { shape; scale }

  let pdf { shape; scale } x =
    if x < 0.0 then 0.0
    else if x = 0.0 then (if shape < 1.0 then infinity else if shape = 1.0 then 1.0 /. scale else 0.0)
    else
      exp
        (((shape -. 1.0) *. log x) -. (x /. scale)
        -. Special.log_gamma shape -. (shape *. log scale))

  let cdf { shape; scale } x =
    if x <= 0.0 then 0.0 else Special.gamma_p shape (x /. scale)

  let mean { shape; scale } = shape *. scale
  let variance { shape; scale } = shape *. scale *. scale
  let sample { shape; scale } rng = Rng.gamma rng ~shape ~scale
end

module Normal = struct
  type t = { mu : float; sigma : float }

  let create ~mu ~sigma =
    if sigma <= 0.0 then invalid_arg "Normal.create: nonpositive sigma";
    { mu; sigma }

  let pdf { mu; sigma } x =
    let z = (x -. mu) /. sigma in
    exp (-0.5 *. z *. z) /. (sigma *. sqrt (2.0 *. Float.pi))

  let cdf { mu; sigma } x =
    let z = (x -. mu) /. (sigma *. sqrt 2.0) in
    0.5 *. (1.0 +. Special.erf z)

  (* Acklam's rational approximation refined with one Newton step. *)
  let quantile t p =
    if p <= 0.0 || p >= 1.0 then invalid_arg "Normal.quantile: p outside (0,1)";
    let a =
      [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
         1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
    and b =
      [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
         6.680131188771972e+01; -1.328068155288572e+01 |]
    and c =
      [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
         -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
    and d =
      [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
         3.754408661907416e+00 |]
    in
    let plow = 0.02425 in
    let z =
      if p < plow then begin
        let q = sqrt (-2.0 *. log p) in
        (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
        /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
      end
      else if p <= 1.0 -. plow then begin
        let q = p -. 0.5 in
        let r = q *. q in
        (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)) *. q
        /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
      end
      else begin
        let q = sqrt (-2.0 *. log1p (-.p)) in
        -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
           /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
      end
    in
    let std = { mu = 0.0; sigma = 1.0 } in
    let e = cdf std z -. p in
    let u = e *. sqrt (2.0 *. Float.pi) *. exp (z *. z /. 2.0) in
    let z = z -. (u /. (1.0 +. (z *. u /. 2.0))) in
    t.mu +. (t.sigma *. z)

  let mean { mu; sigma = _ } = mu
  let variance { mu = _; sigma } = sigma *. sigma
  let sample { mu; sigma } rng = Rng.normal rng ~mu ~sigma
end
