type linear_fit = { slope : float; intercept : float; r_squared : float }

let linear_regression points =
  let n = List.length points in
  if n < 2 then invalid_arg "Fit.linear_regression: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let mean_x = sx /. fn and mean_y = sy /. fn in
  let sxx, sxy, syy =
    List.fold_left
      (fun (sxx, sxy, syy) (x, y) ->
        let dx = x -. mean_x and dy = y -. mean_y in
        (sxx +. (dx *. dx), sxy +. (dx *. dy), syy +. (dy *. dy)))
      (0.0, 0.0, 0.0) points
  in
  if sxx = 0.0 then invalid_arg "Fit.linear_regression: degenerate abscissae";
  let slope = sxy /. sxx in
  let intercept = mean_y -. (slope *. mean_x) in
  let r_squared = if syy = 0.0 then 1.0 else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r_squared }

let linear_regression_through_origin points =
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
  if sxx = 0.0 then
    invalid_arg "Fit.linear_regression_through_origin: degenerate abscissae";
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
  sxy /. sxx

let sum_squared_error ~model points =
  List.fold_left
    (fun acc (x, y) ->
      let e = model x -. y in
      acc +. (e *. e))
    0.0 points

let fit_scalar ?(grid = 64) ~loss ~lo ~hi () =
  if grid < 2 then invalid_arg "Fit.fit_scalar: grid too small";
  if hi <= lo then invalid_arg "Fit.fit_scalar: empty interval";
  let step = (hi -. lo) /. float_of_int (grid - 1) in
  let best_index = ref 0 and best_loss = ref infinity in
  for i = 0 to grid - 1 do
    let candidate = lo +. (float_of_int i *. step) in
    let value = loss candidate in
    if value < !best_loss then begin
      best_loss := value;
      best_index := i
    end
  done;
  let bracket_lo = lo +. (float_of_int (max 0 (!best_index - 1)) *. step) in
  let bracket_hi = lo +. (float_of_int (min (grid - 1) (!best_index + 1)) *. step) in
  let argmin =
    Solver.golden_section_min ~f:loss ~lo:bracket_lo ~hi:bracket_hi ()
  in
  let refined = loss argmin in
  if refined <= !best_loss then (argmin, refined)
  else (lo +. (float_of_int !best_index *. step), !best_loss)

let bootstrap ~resamples rng ~statistic samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Fit.bootstrap: empty sample";
  if resamples <= 0 then invalid_arg "Fit.bootstrap: nonpositive resamples";
  let values = ref [] in
  for _ = 1 to resamples do
    let resample = Array.init n (fun _ -> samples.(Rng.int rng n)) in
    match statistic resample with
    | v -> values := v :: !values
    | exception (Invalid_argument _ | Failure _) -> ()
  done;
  Array.of_list (List.rev !values)

let percentile_interval distribution ~level =
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Fit.percentile_interval: level outside (0,1)";
  let tail = (1.0 -. level) /. 2.0 in
  (Summary.quantile distribution tail, Summary.quantile distribution (1.0 -. tail))
