(** Goodness-of-fit testing.

    Used to ask, of a manufactured lot, "does the defective-chip fault
    count actually follow the paper's shifted Poisson (Eq. 1)?" — the
    assumption behind the whole model.  Pearson's chi-square with
    right-tail pooling so every cell keeps an adequate expected count. *)

type result = {
  statistic : float;        (** Pearson X². *)
  degrees_of_freedom : int;
  p_value : float;          (** Upper tail of the χ² distribution. *)
  cells : int;              (** After pooling. *)
}

val chi_square :
  ?min_expected:float ->
  observed:int array ->
  expected:float array ->
  ?estimated_parameters:int ->
  unit -> result
(** [observed] and [expected] are parallel cell counts (the expected
    array need not be normalized to the observed total — it is scaled).
    Adjacent low-expectation cells (below [min_expected], default 5) are
    pooled from the right.  [estimated_parameters] (default 0) reduces
    the degrees of freedom for parameters fitted from the same data. *)

val chi_square_p_value : statistic:float -> degrees_of_freedom:int -> float
(** Q(k/2, x/2): the χ² upper tail. *)

val fit_shifted_poisson :
  counts:int array -> n0:float -> result
(** Convenience wrapper for the Eq. 1 question: [counts] are fault
    counts of {e defective} chips (all ≥ 1); tests them against
    1 + Poisson(n0 - 1).  One estimated parameter (n0) is assumed. *)
