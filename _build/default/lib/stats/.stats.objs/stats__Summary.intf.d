lib/stats/summary.mli:
