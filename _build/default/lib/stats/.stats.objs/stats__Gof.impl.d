lib/stats/gof.ml: Array Dist List Special
