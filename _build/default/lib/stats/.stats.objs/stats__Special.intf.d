lib/stats/special.mli:
