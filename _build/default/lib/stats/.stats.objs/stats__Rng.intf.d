lib/stats/rng.mli:
