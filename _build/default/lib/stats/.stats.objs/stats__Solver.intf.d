lib/stats/solver.mli:
