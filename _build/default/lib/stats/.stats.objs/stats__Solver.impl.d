lib/stats/solver.ml:
