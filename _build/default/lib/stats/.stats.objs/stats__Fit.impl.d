lib/stats/fit.ml: Array List Rng Solver Summary
