lib/stats/rng.ml: Array Hashtbl Int64
