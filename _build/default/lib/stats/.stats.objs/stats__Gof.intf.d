lib/stats/gof.mli:
