lib/stats/fit.mli: Rng
