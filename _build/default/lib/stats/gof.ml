type result = {
  statistic : float;
  degrees_of_freedom : int;
  p_value : float;
  cells : int;
}

let chi_square_p_value ~statistic ~degrees_of_freedom =
  if degrees_of_freedom <= 0 then 1.0
  else Special.gamma_q (float_of_int degrees_of_freedom /. 2.0) (statistic /. 2.0)

(* Pool cells from the right until each pooled cell's expectation
   reaches the floor; the tail of a count distribution is where the
   expectations get thin. *)
let pool ~min_expected observed expected =
  let cells = ref [] in
  let acc_observed = ref 0 and acc_expected = ref 0.0 in
  for i = Array.length observed - 1 downto 0 do
    acc_observed := !acc_observed + observed.(i);
    acc_expected := !acc_expected +. expected.(i);
    if !acc_expected >= min_expected then begin
      cells := (!acc_observed, !acc_expected) :: !cells;
      acc_observed := 0;
      acc_expected := 0.0
    end
  done;
  (* Leftover mass merges into the first cell. *)
  (match !cells with
  | (o, e) :: rest when !acc_expected > 0.0 || !acc_observed > 0 ->
    cells := (o + !acc_observed, e +. !acc_expected) :: rest
  | _ -> if !acc_expected > 0.0 || !acc_observed > 0 then cells := [ (!acc_observed, !acc_expected) ]);
  !cells

let chi_square ?(min_expected = 5.0) ~observed ~expected ?(estimated_parameters = 0) () =
  if Array.length observed <> Array.length expected then
    invalid_arg "Gof.chi_square: cell count mismatch";
  if Array.length observed = 0 then invalid_arg "Gof.chi_square: no cells";
  let total_observed = float_of_int (Array.fold_left ( + ) 0 observed) in
  let total_expected = Array.fold_left ( +. ) 0.0 expected in
  if total_observed = 0.0 || total_expected <= 0.0 then
    invalid_arg "Gof.chi_square: empty data";
  let scale = total_observed /. total_expected in
  let scaled = Array.map (fun e -> e *. scale) expected in
  let pooled = pool ~min_expected observed scaled in
  let statistic =
    List.fold_left
      (fun acc (o, e) ->
        if e <= 0.0 then acc
        else begin
          let d = float_of_int o -. e in
          acc +. (d *. d /. e)
        end)
      0.0 pooled
  in
  let cells = List.length pooled in
  let degrees_of_freedom = max 1 (cells - 1 - estimated_parameters) in
  { statistic;
    degrees_of_freedom;
    p_value = chi_square_p_value ~statistic ~degrees_of_freedom;
    cells }

let fit_shifted_poisson ~counts ~n0 =
  if Array.length counts = 0 then invalid_arg "Gof.fit_shifted_poisson: no data";
  Array.iter
    (fun n ->
      if n < 1 then invalid_arg "Gof.fit_shifted_poisson: defective chips have >= 1 fault")
    counts;
  let max_count = Array.fold_left max 1 counts in
  let cells = max_count + 10 in
  let observed = Array.make cells 0 in
  Array.iter (fun n -> observed.(min (cells - 1) (n - 1)) <- observed.(min (cells - 1) (n - 1)) + 1) counts;
  let d = Dist.Shifted_poisson.create n0 in
  let expected =
    Array.init cells (fun i ->
        if i = cells - 1 then 1.0 -. Dist.Shifted_poisson.cdf d (cells - 1)
        else Dist.Shifted_poisson.pmf d (i + 1))
  in
  chi_square ~observed ~expected ~estimated_parameters:1 ()
