(** Special functions used by the statistical model.

    Everything is implemented from scratch on top of [Stdlib] floats:
    log-gamma (Lanczos), log-factorials, log-binomials, the regularized
    incomplete gamma and beta functions, and the error function.  Accuracy
    targets are ~1e-10 relative, far below what the reproduction needs. *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for [x > 0]. *)

val log_factorial : int -> float
(** [log_factorial n] is ln(n!).  Table-driven for small [n]. *)

val log_choose : int -> int -> float
(** [log_choose n k] is ln C(n, k); [neg_infinity] when [k] is outside
    [0, n]. *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma P(a, x). *)

val gamma_q : float -> float -> float
(** [gamma_q a x] is the regularized upper incomplete gamma Q(a, x)
    = 1 - P(a, x). *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function. *)

val beta_inc : float -> float -> float -> float
(** [beta_inc a b x] is the regularized incomplete beta I_x(a, b),
    computed with the Lentz continued fraction. *)

val log_sum_exp : float array -> float
(** Numerically stable ln Σ exp(x_i). *)
