(** One-dimensional root finding and minimization.

    The quality model's "required fault coverage" question is a root of a
    monotone function (paper Eq. 8/11); the [n0] estimator is a 1-d
    least-squares minimization.  Both are served here. *)

exception No_bracket
(** Raised when the supplied interval does not bracket a root. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds a root of [f] in [lo, hi].  [f lo] and
    [f hi] must have opposite (or zero) signs; raises {!No_bracket}
    otherwise.  Default [tol] = 1e-12 on the abscissa. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Brent's method: inverse quadratic interpolation with a bisection
    safety net.  Same contract as {!bisect}, usually far fewer calls. *)

val find_bracket :
  ?grow:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit ->
  (float * float) option
(** Geometrically expand [lo, hi] outward until it brackets a sign change. *)

val golden_section_min :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Golden-section search for a minimum of a unimodal [f] on [lo, hi].
    Returns the abscissa of the minimum. *)

val newton :
  ?tol:float -> ?max_iter:int ->
  f:(float -> float) -> df:(float -> float) -> x0:float -> unit -> float
(** Newton-Raphson from [x0]; falls back on halving the step when an
    iterate diverges.  Fails with [Failure] after [max_iter]. *)
