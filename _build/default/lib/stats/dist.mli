(** Probability distributions.

    Each sub-module packages the density/mass, cumulative distribution,
    moments and a sampler for one family.  Discrete distributions expose
    [pmf]/[cdf] over [int]; continuous ones expose [pdf]/[cdf] over
    [float].  Samplers take an explicit {!Rng.t}. *)

module Poisson : sig
  type t = { lambda : float }

  val create : float -> t
  val pmf : t -> int -> float
  val log_pmf : t -> int -> float
  val cdf : t -> int -> float
  val mean : t -> float
  val variance : t -> float
  val sample : t -> Rng.t -> int
end

module Shifted_poisson : sig
  (** The paper's Eq. 1 conditional law: the number of faults on a chip
      {e known to be defective}.  Support is n = 1, 2, 3, ...; the law is
      1 + Poisson(n0 - 1), so the mean is [n0]. *)

  type t = { n0 : float }

  val create : float -> t
  (** [create n0] requires [n0 >= 1]. *)

  val pmf : t -> int -> float
  val cdf : t -> int -> float
  val mean : t -> float
  val variance : t -> float
  val sample : t -> Rng.t -> int
end

module Binomial : sig
  type t = { n : int; p : float }

  val create : n:int -> p:float -> t
  val pmf : t -> int -> float
  val log_pmf : t -> int -> float
  val cdf : t -> int -> float
  val mean : t -> float
  val variance : t -> float
  val sample : t -> Rng.t -> int
end

module Hypergeometric : sig
  (** Drawing [m] balls without replacement from an urn of [total] balls
      of which [marked] are marked; the count of marked balls drawn.
      This is the paper's Eq. 4 with [total = N] possible faults,
      [marked = n] actual faults, and [m] covered faults. *)

  type t = { total : int; marked : int; draws : int }

  val create : total:int -> marked:int -> draws:int -> t
  val pmf : t -> int -> float
  val log_pmf : t -> int -> float
  val cdf : t -> int -> float
  val mean : t -> float
  val variance : t -> float
  val sample : t -> Rng.t -> int
end

module Geometric : sig
  (** Number of failures before the first success, support 0, 1, 2, ... *)

  type t = { p : float }

  val create : float -> t
  val pmf : t -> int -> float
  val cdf : t -> int -> float
  val mean : t -> float
  val variance : t -> float
  val sample : t -> Rng.t -> int
end

module Neg_binomial : sig
  (** Gamma-mixed Poisson with mean [mean] and clustering [alpha]
      (variance = mean + mean^2/alpha).  This is the count law behind the
      Stapper yield formula (paper Eq. 3 with [alpha = 1/X]). *)

  type t = { mean : float; alpha : float }

  val create : mean:float -> alpha:float -> t
  val pmf : t -> int -> float
  val log_pmf : t -> int -> float
  val cdf : t -> int -> float
  val variance : t -> float
  val sample : t -> Rng.t -> int
end

module Exponential : sig
  type t = { mean : float }

  val create : float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val mean : t -> float
  val variance : t -> float
  val sample : t -> Rng.t -> float
end

module Gamma_dist : sig
  type t = { shape : float; scale : float }

  val create : shape:float -> scale:float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val mean : t -> float
  val variance : t -> float
  val sample : t -> Rng.t -> float
end

module Normal : sig
  type t = { mu : float; sigma : float }

  val create : mu:float -> sigma:float -> t
  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val mean : t -> float
  val variance : t -> float
  val sample : t -> Rng.t -> float
end
