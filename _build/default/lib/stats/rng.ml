type t = { mutable state : int64; mutable spare_normal : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let default_seed = 0x1531_AC81_DA81L

let create ?(seed = 0) () =
  let base = if seed = 0 then default_seed else Int64.of_int seed in
  { state = base; spare_normal = None }

let copy rng = { state = rng.state; spare_normal = rng.spare_normal }

(* splitmix64 finalizer: mixes the incremented state into an output word. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 rng =
  rng.state <- Int64.add rng.state golden_gamma;
  mix rng.state

let split rng =
  let seed_word = bits64 rng in
  { state = mix seed_word; spare_normal = None }

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection to avoid modulo bias: with r uniform on [0, 2^63), v is
     unbiased iff r's bucket [r - v, r - v + b) fits below 2^63, i.e.
     accept iff r - v <= 2^63 - b.  Equivalently, r - v + (b - 1)
     overflows int64 exactly on the truncated final bucket. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 rng) 1 in
    let v = Int64.rem r b in
    if Int64.add (Int64.sub r v) (Int64.sub b 1L) < 0L then loop ()
    else Int64.to_int v
  in
  loop ()

let int_in rng lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int rng (hi - lo + 1)

let bool rng = Int64.logand (bits64 rng) 1L = 1L

let uniform rng =
  (* 53 top bits give a uniform double in [0,1). *)
  let r = Int64.shift_right_logical (bits64 rng) 11 in
  Int64.to_float r *. 0x1.0p-53

let uniform_pos rng = 1.0 -. uniform rng

let float rng x = uniform rng *. x

let bernoulli rng p = uniform rng < p

let exponential rng mean =
  if mean < 0.0 then invalid_arg "Rng.exponential: negative mean";
  -.mean *. log (uniform_pos rng)

let normal rng ~mu ~sigma =
  match rng.spare_normal with
  | Some z ->
    rng.spare_normal <- None;
    mu +. (sigma *. z)
  | None ->
    let rec polar () =
      let u = (2.0 *. uniform rng) -. 1.0 in
      let v = (2.0 *. uniform rng) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then polar ()
      else begin
        let m = sqrt (-2.0 *. log s /. s) in
        rng.spare_normal <- Some (v *. m);
        u *. m
      end
    in
    mu +. (sigma *. polar ())

let rec gamma rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.gamma: nonpositive parameter";
  if shape < 1.0 then begin
    (* Boost: Gamma(a) = Gamma(a+1) * U^{1/a}. *)
    let g = gamma rng ~shape:(shape +. 1.0) ~scale:1.0 in
    scale *. g *. (uniform_pos rng ** (1.0 /. shape))
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec loop () =
      let x = normal rng ~mu:0.0 ~sigma:1.0 in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then loop ()
      else begin
        let v3 = v *. v *. v in
        let u = uniform_pos rng in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v3
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v3 +. log v3)) then d *. v3
        else loop ()
      end
    in
    scale *. loop ()
  end

let rec poisson rng lambda =
  if lambda < 0.0 then invalid_arg "Rng.poisson: negative mean";
  if lambda = 0.0 then 0
  else if lambda < 30.0 then begin
    (* Knuth: multiply uniforms until the product drops below e^{-lambda}. *)
    let threshold = exp (-.lambda) in
    let rec loop k p =
      let p = p *. uniform rng in
      if p <= threshold then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else
    (* Poisson additivity keeps the Knuth loop short without approximation. *)
    poisson rng (lambda /. 2.0) + poisson rng (lambda /. 2.0)

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Rng.binomial: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Rng.binomial: p outside [0,1]";
  if p = 0.0 || n = 0 then 0
  else if p = 1.0 then n
  else begin
    (* Work with q = min(p, 1-p) and skip over failures geometrically:
       expected time O(nq) rather than O(n). *)
    let flipped = p > 0.5 in
    let q = if flipped then 1.0 -. p else p in
    let log1mq = log1p (-.q) in
    let rec loop i successes =
      (* Number of failures before the next success is geometric. *)
      let skip = int_of_float (log (uniform_pos rng) /. log1mq) in
      let i = i + skip + 1 in
      if i > n then successes else loop i (successes + 1)
    in
    let s = loop 0 0 in
    if flipped then n - s else s
  end

let neg_binomial rng ~mean ~alpha =
  if mean < 0.0 then invalid_arg "Rng.neg_binomial: negative mean";
  if alpha <= 0.0 then invalid_arg "Rng.neg_binomial: nonpositive alpha";
  if mean = 0.0 then 0
  else begin
    let rate = gamma rng ~shape:alpha ~scale:(mean /. alpha) in
    poisson rng rate
  end

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement rng ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement: k outside [0,n]";
  (* Partial Fisher-Yates over a sparse permutation held in a hash table. *)
  let swapped = Hashtbl.create (2 * k) in
  let value_at i = match Hashtbl.find_opt swapped i with Some v -> v | None -> i in
  Array.init k (fun i ->
      let j = int_in rng i (n - 1) in
      let vi = value_at i and vj = value_at j in
      Hashtbl.replace swapped j vi;
      Hashtbl.replace swapped i vj;
      vj)
