(** Deterministic pseudo-random number generation.

    The generator is splitmix64: a small, fast, high-quality 64-bit
    generator with a one-word state.  Every stochastic component of the
    library threads an explicit [t] so that experiments are reproducible
    from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] returns a fresh generator.  The default seed is a
    fixed constant so that unseeded runs are still reproducible. *)

val copy : t -> t
(** [copy rng] is an independent generator with the same current state. *)

val split : t -> t
(** [split rng] derives a statistically independent generator from [rng],
    advancing [rng].  Useful for giving sub-experiments their own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output word. *)

val int : t -> int -> int
(** [int rng bound] is uniform on [0, bound-1].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform on the inclusive range [lo, hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val float : t -> float -> float
(** [float rng x] is uniform on [0, x). *)

val uniform : t -> float
(** Uniform on [0, 1). *)

val uniform_pos : t -> float
(** Uniform on (0, 1]: never returns 0, safe as a [log] argument. *)

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential rng mean] samples an exponential with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample by the Marsaglia polar method. *)

val gamma : t -> shape:float -> scale:float -> float
(** Gamma sample by Marsaglia–Tsang squeeze (with the shape<1 boost). *)

val poisson : t -> float -> int
(** [poisson rng lambda] samples a Poisson count.  Exact for all
    [lambda >= 0]: Knuth multiplication below 30, recursive halving
    (Poisson additivity) above. *)

val binomial : t -> n:int -> p:float -> int
(** [binomial rng ~n ~p] samples a binomial count by inversion of
    geometric skips, O(np) expected time. *)

val neg_binomial : t -> mean:float -> alpha:float -> int
(** Negative-binomial count via the gamma–Poisson mixture.
    [alpha] is the clustering (shape) parameter; variance is
    [mean + mean^2 / alpha].  As [alpha -> infinity] this degenerates to
    Poisson([mean]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement rng ~k ~n] draws [k] distinct indices
    uniformly from [0, n-1], in random order.  O(k) extra space. *)
