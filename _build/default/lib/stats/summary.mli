(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for arrays of length < 2. *)

val std_dev : float array -> float
(** Square root of {!variance}. *)

val minimum : float array -> float
val maximum : float array -> float

val median : float array -> float
(** Median (does not modify its argument). *)

val quantile : float array -> float -> float
(** [quantile xs q] for q in [0,1], linear interpolation between order
    statistics (type-7). *)

val correlation : float array -> float array -> float
(** Pearson correlation of two equal-length arrays. *)

type histogram = {
  lo : float;
  hi : float;
  counts : int array;  (** One cell per bin, equal widths. *)
}

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram spanning the data range. *)

val mean_int : int array -> float
(** Mean of integer data (convenience for fault counts). *)
