(** Curve fitting for the model-characterization step.

    The paper determines its parameter [n0] by comparing an experimental
    cumulative-fail curve against the analytic family P(f); this module
    supplies the generic machinery: scalar least-squares fits by grid
    search plus golden-section refinement, and simple linear regression
    for the initial-slope estimator. *)

type linear_fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination. *)
}

val linear_regression : (float * float) list -> linear_fit
(** Ordinary least squares through a point cloud.  Needs at least two
    distinct abscissae. *)

val linear_regression_through_origin : (float * float) list -> float
(** Least-squares slope of y = s·x (no intercept), as used for the
    P'(0) slope estimate from early test data. *)

val sum_squared_error : model:(float -> float) -> (float * float) list -> float
(** Σ (model x - y)². *)

val bootstrap :
  resamples:int -> Rng.t -> statistic:('a array -> float) -> 'a array ->
  float array
(** Nonparametric bootstrap: resample the data with replacement
    [resamples] times and evaluate [statistic] on each resample.
    Returns the statistic's bootstrap distribution (for standard errors
    and percentile intervals).  Resamples on which [statistic] raises
    are skipped (e.g. an n0 fit on a resample with no failures). *)

val percentile_interval : float array -> level:float -> float * float
(** Central percentile interval of a bootstrap distribution, e.g.
    [level:0.95] returns the (2.5 %, 97.5 %) quantiles. *)

val fit_scalar :
  ?grid:int ->
  loss:(float -> float) -> lo:float -> hi:float -> unit -> float * float
(** [fit_scalar ~loss ~lo ~hi ()] minimizes [loss] over the parameter
    interval by evaluating a [grid] (default 64) of candidates and then
    refining the best bracket with golden-section search.  Returns
    (argmin, loss at argmin).  Robust to mild non-unimodality, which a
    pure golden-section search is not. *)
