(** Aligned plain-text tables for experiment output. *)

type align = Left | Right

val render :
  ?aligns:align list -> headers:string list -> string list list -> string
(** Render rows under headers with per-column width computed from the
    content.  [aligns] defaults to right-aligned everywhere.  Rows may
    be ragged; missing cells render empty. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point cell helper (default 3 decimals). *)

val percent_cell : ?decimals:int -> float -> string
(** [0.95] -> ["95.0%"] (default 1 decimal). *)
