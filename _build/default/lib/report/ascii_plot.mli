(** Terminal line plots, enough to eyeball the paper's figures.

    Each series is drawn with its own glyph; overlapping cells show the
    later series.  Y can be linear or log (Fig. 1 and Fig. 6 are
    semi-log in the paper). *)

type scale = Linear | Log10

val render :
  ?width:int -> ?height:int -> ?y_scale:scale ->
  ?x_label:string -> ?y_label:string -> ?title:string ->
  Series.t list -> string
(** Render to a string ending in a legend line.  Default 72x24 cells.
    With [Log10], nonpositive y values are dropped. *)
