type scale = Linear | Log10

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&'; '='; '~' |]

let render ?(width = 72) ?(height = 24) ?(y_scale = Linear) ?(x_label = "")
    ?(y_label = "") ?(title = "") series =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.render: canvas too small";
  let transform y =
    match y_scale with
    | Linear -> Some y
    | Log10 -> if y > 0.0 then Some (log10 y) else None
  in
  let visible =
    List.map
      (fun s ->
        { s with
          Series.points =
            Array.to_list s.Series.points
            |> List.filter_map (fun (x, y) ->
                   Option.map (fun ty -> (x, ty)) (transform y))
            |> Array.of_list })
      series
  in
  let x_lo, x_hi = Series.x_range visible in
  let y_lo, y_hi = Series.y_range visible in
  let x_span = if x_hi > x_lo then x_hi -. x_lo else 1.0 in
  let y_span = if y_hi > y_lo then y_hi -. y_lo else 1.0 in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun si s ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      Array.iter
        (fun (x, y) ->
          let col =
            int_of_float (Float.round ((x -. x_lo) /. x_span *. float_of_int (width - 1)))
          in
          let row =
            int_of_float (Float.round ((y -. y_lo) /. y_span *. float_of_int (height - 1)))
          in
          let col = max 0 (min (width - 1) col) in
          let row = max 0 (min (height - 1) row) in
          grid.(height - 1 - row).(col) <- glyph)
        s.Series.points)
    visible;
  let buf = Buffer.create ((width + 12) * (height + 4)) in
  if title <> "" then Buffer.add_string buf (title ^ "\n");
  let format_tick v =
    match y_scale with
    | Linear -> Printf.sprintf "%8.3g" v
    | Log10 -> Printf.sprintf "%8.2g" (10.0 ** v)
  in
  Array.iteri
    (fun i row ->
      let y_here = y_hi -. (float_of_int i /. float_of_int (height - 1) *. y_span) in
      let tick =
        if i = 0 || i = height - 1 || i = (height - 1) / 2 then format_tick y_here
        else String.make 8 ' '
      in
      Buffer.add_string buf tick;
      Buffer.add_string buf " |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 9 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%9s %-8.3g%*s%8.3g\n" "" x_lo (width - 8) "" x_hi);
  if x_label <> "" || y_label <> "" then
    Buffer.add_string buf (Printf.sprintf "x: %s   y: %s\n" x_label y_label);
  Buffer.add_string buf "legend:";
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf " [%c] %s" glyphs.(si mod Array.length glyphs) s.Series.label))
    visible;
  Buffer.add_char buf '\n';
  Buffer.contents buf
