(** Labelled (x, y) series — the common currency between experiment
    generators, the plotter and the CSV writer. *)

type t = {
  label : string;
  points : (float * float) array;
}

val make : label:string -> (float * float) array -> t

val of_fn : label:string -> f:(float -> float) -> lo:float -> hi:float -> steps:int -> t
(** Sample a function uniformly on [lo, hi] ([steps] + 1 points). *)

val map_y : (float -> float) -> t -> t

val x_range : t list -> float * float
val y_range : t list -> float * float
