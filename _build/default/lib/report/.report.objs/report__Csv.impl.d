lib/report/csv.ml: Array Buffer List Printf Series String
