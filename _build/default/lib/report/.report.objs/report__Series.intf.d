lib/report/series.mli:
