lib/report/ascii_plot.ml: Array Buffer Float List Option Printf Series String
