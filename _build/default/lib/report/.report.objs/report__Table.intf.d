lib/report/table.mli:
