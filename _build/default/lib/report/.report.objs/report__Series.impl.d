lib/report/series.ml: Array List
