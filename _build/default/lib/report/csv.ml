let needs_quoting s =
  String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n' || ch = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let of_rows rows =
  rows
  |> List.map (fun row -> String.concat "," (List.map escape_field row))
  |> String.concat "\n"
  |> fun body -> body ^ "\n"

let of_series series =
  let rows =
    List.concat_map
      (fun s ->
        Array.to_list s.Series.points
        |> List.map (fun (x, y) ->
               [ s.Series.label; Printf.sprintf "%.17g" x; Printf.sprintf "%.17g" y ]))
      series
  in
  of_rows ([ "series"; "x"; "y" ] :: rows)

let write_file path rows =
  let oc = open_out path in
  output_string oc (of_rows rows);
  close_out oc

let parse text =
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let n = String.length text in
  let rec scan i in_quotes =
    if i >= n then begin
      if Buffer.length buf > 0 || !fields <> [] then flush_row ();
      List.rev !rows
    end
    else begin
      let ch = text.[i] in
      if in_quotes then begin
        if ch = '"' then
          if i + 1 < n && text.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            scan (i + 2) true
          end
          else scan (i + 1) false
        else begin
          Buffer.add_char buf ch;
          scan (i + 1) true
        end
      end
      else
        match ch with
        | '"' -> scan (i + 1) true
        | ',' ->
          flush_field ();
          scan (i + 1) false
        | '\r' -> scan (i + 1) false
        | '\n' ->
          flush_row ();
          scan (i + 1) false
        | _ ->
          Buffer.add_char buf ch;
          scan (i + 1) false
    end
  in
  scan 0 false
