(** Minimal CSV output (and a matching reader for round-trip tests). *)

val escape_field : string -> string
(** RFC-4180 quoting when the field contains a comma, quote or newline. *)

val of_rows : string list list -> string

val of_series : Series.t list -> string
(** Long format: [label,x,y] per line with a header row. *)

val write_file : string -> string list list -> unit

val parse : string -> string list list
(** Parse CSV text (quotes and escaped quotes honoured). *)
