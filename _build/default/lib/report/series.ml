type t = { label : string; points : (float * float) array }

let make ~label points = { label; points }

let of_fn ~label ~f ~lo ~hi ~steps =
  if steps < 1 then invalid_arg "Series.of_fn: need at least one step";
  let points =
    Array.init (steps + 1) (fun i ->
        let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps) in
        (x, f x))
  in
  { label; points }

let map_y g t = { t with points = Array.map (fun (x, y) -> (x, g y)) t.points }

let fold_range get series =
  let lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (fun s ->
      Array.iter
        (fun p ->
          let v = get p in
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        s.points)
    series;
  if !lo > !hi then (0.0, 1.0) else (!lo, !hi)

let x_range series = fold_range fst series
let y_range series = fold_range snd series
