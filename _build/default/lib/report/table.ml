type align = Left | Right

let cell_at row i = match List.nth_opt row i with Some c -> c | None -> ""

let render ?(aligns = []) ~headers rows =
  let columns = List.length headers in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (cell_at row i)))
      (String.length (cell_at headers i))
      rows
  in
  let widths = List.init columns width in
  let align_at i =
    match List.nth_opt aligns i with Some a -> a | None -> Right
  in
  let pad i text =
    let w = List.nth widths i in
    let gap = w - String.length text in
    if gap <= 0 then text
    else
      match align_at i with
      | Left -> text ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ text
  in
  let render_row row =
    String.concat "  " (List.mapi (fun i _ -> pad i (cell_at row i)) headers)
  in
  let separator =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row headers :: separator :: List.map render_row rows)
  ^ "\n"

let float_cell ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v

let percent_cell ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (100.0 *. v)
