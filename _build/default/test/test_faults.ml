(* Tests for the fault universe and equivalence collapsing. *)

module F = Faults.Fault
module N = Circuit.Netlist

let exhaustive_patterns width =
  Array.init (1 lsl width) (fun v ->
      Array.init width (fun i -> (v lsr i) land 1 = 1))

let test_universe_size () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  Alcotest.(check int) "2 x 23 lines" 46 (Array.length universe);
  Alcotest.(check int) "count agrees" (Faults.Universe.count c)
    (Array.length universe)

let test_universe_distinct () =
  let c = Circuit.Generators.lsi_chip ~scale:4 () in
  let universe = Faults.Universe.all c in
  let seen = Hashtbl.create (Array.length universe) in
  Array.iter
    (fun fault ->
      Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen fault);
      Hashtbl.replace seen fault ())
    universe

let test_universe_deterministic_order () =
  let c = Circuit.Generators.c17 () in
  let a = Faults.Universe.all c and b = Faults.Universe.all c in
  Alcotest.(check bool) "same order" true (a = b)

let test_stems_only_size () =
  let c = Circuit.Generators.c17 () in
  Alcotest.(check int) "2 per node" (2 * N.num_nodes c)
    (Array.length (Faults.Universe.stems_only c))

let test_checkpoint_subset () =
  let c = Circuit.Generators.c17 () in
  let all = Faults.Universe.all c in
  let cp = Faults.Universe.checkpoint c in
  Array.iter
    (fun fault ->
      Alcotest.(check bool) "checkpoint in universe" true
        (Array.exists (fun g -> F.equal fault g) all))
    cp;
  (* c17 checkpoints: 5 PI stems + fanout branches. G3, G11, G16 have
     fanout 2, so 6 branch lines -> (5 + 6) * 2 = 22 faults. *)
  Alcotest.(check int) "c17 checkpoint count" 22 (Array.length cp)

let test_fault_to_string () =
  let c = Circuit.Generators.c17 () in
  let g10 = match N.find_node c "G10" with Some id -> id | None -> assert false in
  Alcotest.(check string) "stem" "G10/sa0"
    (F.to_string c { F.site = F.Stem g10; polarity = F.Stuck_at_0 });
  Alcotest.(check string) "branch" "G10.in1/sa1"
    (F.to_string c { F.site = F.Branch { gate = g10; pin = 1 }; polarity = F.Stuck_at_1 })

let test_polarity_helpers () =
  Alcotest.(check bool) "sa0 bit" false (F.polarity_bit F.Stuck_at_0);
  Alcotest.(check bool) "sa1 bit" true (F.polarity_bit F.Stuck_at_1);
  Alcotest.(check bool) "opposite" true (F.opposite F.Stuck_at_0 = F.Stuck_at_1)

(* --------------------------- collapsing ---------------------------- *)

let test_collapse_counts_single_and2 () =
  (* One AND2: universe = stems a,b,g + pins g.0,g.1 = 5 lines, 10 faults.
     Equivalences: a/sa0 ~ g.0/sa0 ~ g/sa0 ~ g.1/sa1... no wait:
     - fanout-1 drivers: a ~ g.in0, b ~ g.in1 (both polarities): merges 4 pairs.
     - AND rule: in0/sa0 ~ out/sa0, in1/sa0 ~ out/sa0.
     Classes: {a0, g.in0 sa0, g sa0, b0, g.in1 sa0} (all one class),
     {a1, g.in0 sa1}, {b1, g.in1 sa1}, {g sa1} -> 4 classes. *)
  let b = N.Builder.create ~name:"and2" in
  let a = N.Builder.add_input b "a" in
  let bb = N.Builder.add_input b "b" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.And [ a; bb ] in
  N.Builder.mark_output b g;
  let c = N.Builder.build b in
  let universe = Faults.Universe.all c in
  Alcotest.(check int) "10 faults" 10 (Array.length universe);
  let classes = Faults.Collapse.equivalence c universe in
  Alcotest.(check int) "4 classes" 4 (Faults.Collapse.class_count classes)

let test_collapse_counts_inverter_chain () =
  (* a -> NOT x -> NOT y (output). All 6 line-ends collapse into 2
     classes (one per polarity seen from the output). *)
  let b = N.Builder.create ~name:"chain" in
  let a = N.Builder.add_input b "a" in
  let x = N.Builder.add_gate b ~name:"x" Circuit.Gate.Not [ a ] in
  let y = N.Builder.add_gate b ~name:"y" Circuit.Gate.Not [ x ] in
  N.Builder.mark_output b y;
  let c = N.Builder.build b in
  let universe = Faults.Universe.all c in
  Alcotest.(check int) "10 faults" 10 (Array.length universe);
  let classes = Faults.Collapse.equivalence c universe in
  Alcotest.(check int) "2 classes" 2 (Faults.Collapse.class_count classes)

let test_collapse_xor_no_local_rule () =
  (* XOR gates admit no controlling-value equivalence; only the
     fanout-1 stem/branch merges apply. *)
  let b = N.Builder.create ~name:"xor2" in
  let a = N.Builder.add_input b "a" in
  let bb = N.Builder.add_input b "b" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.Xor [ a; bb ] in
  N.Builder.mark_output b g;
  let c = N.Builder.build b in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  (* 10 faults; merges: a~in0 (2), b~in1 (2) -> 6 classes. *)
  Alcotest.(check int) "6 classes" 6 (Faults.Collapse.class_count classes)

let test_collapse_ratio_bounds () =
  let c = Circuit.Generators.lsi_chip ~scale:4 () in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  let ratio = Faults.Collapse.collapse_ratio classes in
  Alcotest.(check bool) "meaningful reduction" true (ratio > 0.3 && ratio < 0.9)

let test_collapse_members_partition () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let classes = Faults.Collapse.equivalence c universe in
  let total =
    List.init (Faults.Collapse.class_count classes) (fun i ->
        List.length (Faults.Collapse.class_members classes i))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "members partition the universe" (Array.length universe) total;
  (* Representatives belong to their own class. *)
  Array.iteri
    (fun i rep ->
      Alcotest.(check int) "rep in own class" i (Faults.Collapse.class_of classes rep))
    (Faults.Collapse.representatives classes)

let test_collapse_class_of_unknown () =
  let c = Circuit.Generators.c17 () in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  Alcotest.check_raises "unknown fault" Not_found (fun () ->
      ignore
        (Faults.Collapse.class_of classes
           { F.site = F.Stem 9999; polarity = F.Stuck_at_0 }))

(* Soundness: all members of a class have identical detection sets
   under exhaustive patterns. *)
let detection_signature c fault patterns =
  Array.map
    (fun pattern ->
      match Fsim.Serial.run c [| fault |] [| pattern |] with
      | [| Some _ |] -> true
      | [| None |] -> false
      | _ -> assert false)
    patterns

let test_collapse_soundness_exhaustive () =
  List.iter
    (fun seed ->
      let c =
        Circuit.Generators.random_circuit ~inputs:6 ~gates:40 ~outputs:3 ~seed
      in
      let patterns = exhaustive_patterns 6 in
      let universe = Faults.Universe.all c in
      let classes = Faults.Collapse.equivalence c universe in
      for cls = 0 to Faults.Collapse.class_count classes - 1 do
        match Faults.Collapse.class_members classes cls with
        | [] -> Alcotest.fail "empty class"
        | first :: rest ->
          let reference = detection_signature c first patterns in
          List.iter
            (fun fault ->
              Alcotest.(check bool)
                (Printf.sprintf "class %d member %s" cls (F.to_string c fault))
                true
                (detection_signature c fault patterns = reference))
            rest
      done)
    [ 1; 2; 3 ]

(* --------------------------- dominance ----------------------------- *)

let test_dominance_reduces () =
  let c = Circuit.Generators.c17 () in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  let eq_reps = Faults.Collapse.representatives classes in
  let dom_reps = Faults.Collapse.dominance c classes in
  Alcotest.(check bool) "strictly smaller" true
    (Array.length dom_reps < Array.length eq_reps);
  (* Every dominance representative is an equivalence representative. *)
  Array.iter
    (fun fault ->
      Alcotest.(check bool) "subset" true
        (Array.exists (fun g -> F.equal fault g) eq_reps))
    dom_reps

let test_dominance_and2 () =
  (* Single AND2: equivalence leaves 4 classes; dominance drops the
     class of out/sa1?  No: out/sa1 is its own class and is dominated
     by in_j/sa1 -> 3 classes remain. *)
  let b = N.Builder.create ~name:"and2" in
  let a = N.Builder.add_input b "a" in
  let bb = N.Builder.add_input b "b" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.And [ a; bb ] in
  N.Builder.mark_output b g;
  let c = N.Builder.build b in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  let dom = Faults.Collapse.dominance c classes in
  Alcotest.(check int) "3 dominance classes" 3 (Array.length dom);
  (* The dropped one is g/sa1's class. *)
  Alcotest.(check bool) "out sa1 dropped" false
    (Array.exists
       (fun f -> F.equal f { F.site = F.Stem g; polarity = F.Stuck_at_1 })
       dom)

(* Completeness: a pattern set detecting all dominance representatives
   detects every detectable fault of the full universe (irredundant
   circuits). *)
let test_dominance_detection_complete () =
  List.iter
    (fun seed ->
      let c =
        Circuit.Generators.random_circuit ~inputs:7 ~gates:50 ~outputs:4 ~seed
      in
      let universe = Faults.Universe.all c in
      let classes = Faults.Collapse.equivalence c universe in
      let dom = Faults.Collapse.dominance c classes in
      let patterns = exhaustive_patterns 7 in
      (* Build a minimal-ish pattern set covering the dominance reps:
         take, for each dominance rep, its first detecting pattern. *)
      let dom_first = Fsim.Serial.run c dom patterns in
      let chosen = Hashtbl.create 16 in
      Array.iter
        (function Some k -> Hashtbl.replace chosen k () | None -> ())
        dom_first;
      let subset =
        Hashtbl.fold (fun k () acc -> k :: acc) chosen []
        |> List.sort compare
        |> List.map (fun k -> patterns.(k))
        |> Array.of_list
      in
      (* Every fault detectable under exhaustive patterns must be
         detected by the subset. *)
      let full_exhaustive = Fsim.Serial.run c universe patterns in
      let full_subset = Fsim.Serial.run c universe subset in
      Array.iteri
        (fun i d ->
          if d <> None && full_subset.(i) = None then
            Alcotest.failf "dominance lost %s (seed %d)"
              (F.to_string c universe.(i)) seed)
        full_exhaustive)
    [ 11; 12; 13 ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "faults.universe",
      [ tc "size = 2 x lines" test_universe_size;
        tc "no duplicates" test_universe_distinct;
        tc "deterministic order" test_universe_deterministic_order;
        tc "stems-only size" test_stems_only_size;
        tc "checkpoint subset" test_checkpoint_subset;
        tc "to_string" test_fault_to_string;
        tc "polarity helpers" test_polarity_helpers ] );
    ( "faults.collapse",
      [ tc "AND2 classes" test_collapse_counts_single_and2;
        tc "inverter chain classes" test_collapse_counts_inverter_chain;
        tc "XOR keeps pins separate" test_collapse_xor_no_local_rule;
        tc "ratio in sane band" test_collapse_ratio_bounds;
        tc "classes partition universe" test_collapse_members_partition;
        tc "unknown fault raises" test_collapse_class_of_unknown;
        tc "soundness (exhaustive detection sets)" test_collapse_soundness_exhaustive ] );
    ( "faults.dominance",
      [ tc "reduces below equivalence" test_dominance_reduces;
        tc "AND2 drops out/sa1" test_dominance_and2;
        tc "detection-complete on irredundant circuits" test_dominance_detection_complete ] ) ]
