(* Differential tests across the three logic simulators. *)

module N = Circuit.Netlist

let random_inputs rng width = Array.init width (fun _ -> Stats.Rng.bool rng)

let test_packed_matches_ref () =
  let c = Circuit.Generators.lsi_chip ~scale:4 () in
  let rng = Stats.Rng.create ~seed:101 () in
  let width = N.num_inputs c in
  let patterns = Array.init 100 (fun _ -> random_inputs rng width) in
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  let base = ref 0 in
  List.iter
    (fun block ->
      let values = Logicsim.Packed.eval_block c block in
      for i = 0 to block.Logicsim.Packed.pattern_count - 1 do
        let expected = Logicsim.Refsim.eval c patterns.(!base + i) in
        Array.iteri
          (fun id v ->
            Alcotest.(check bool) "node value" v (Logicsim.Packed.bit values.(id) i))
          expected
      done;
      base := !base + block.Logicsim.Packed.pattern_count)
    blocks

let test_eventsim_matches_ref () =
  let c = Circuit.Generators.random_circuit ~inputs:14 ~gates:400 ~outputs:10 ~seed:4 in
  let sim = Logicsim.Eventsim.create c in
  let rng = Stats.Rng.create ~seed:102 () in
  for _ = 1 to 200 do
    let input = random_inputs rng 14 in
    ignore (Logicsim.Eventsim.set_pattern sim input);
    let expected = Logicsim.Refsim.eval c input in
    Array.iteri
      (fun id v ->
        Alcotest.(check bool) "event value" v (Logicsim.Eventsim.value sim id))
      expected
  done

let test_eventsim_incremental_activity () =
  (* One flipped input must evaluate no more gates than a full pass. *)
  let c = Circuit.Generators.lsi_chip ~scale:6 () in
  let sim = Logicsim.Eventsim.create c in
  let width = N.num_inputs c in
  let pattern = Array.make width false in
  ignore (Logicsim.Eventsim.set_pattern sim pattern);
  pattern.(3) <- true;
  let evaluations = Logicsim.Eventsim.set_pattern sim pattern in
  Alcotest.(check bool) "partial re-evaluation" true
    (evaluations < N.num_gates c);
  (* And an unchanged pattern costs nothing. *)
  let evaluations = Logicsim.Eventsim.set_pattern sim pattern in
  Alcotest.(check int) "no-change is free" 0 evaluations

let test_eventsim_initial_state () =
  let c = Circuit.Generators.c17 () in
  let sim = Logicsim.Eventsim.create c in
  let expected = Logicsim.Refsim.eval c (Array.make 5 false) in
  Array.iteri
    (fun id v -> Alcotest.(check bool) "settled at zero" v (Logicsim.Eventsim.value sim id))
    expected

let test_packed_live_mask () =
  let c = Circuit.Generators.c17 () in
  let block =
    Logicsim.Packed.block_of_patterns c [| Array.make 5 false; Array.make 5 true |]
  in
  Alcotest.(check int64) "mask of 2" 3L (Logicsim.Packed.live_mask block);
  let full =
    Logicsim.Packed.block_of_patterns c
      (Array.init 64 (fun _ -> Array.make 5 false))
  in
  Alcotest.(check int64) "mask of 64" (-1L) (Logicsim.Packed.live_mask full)

let test_packed_block_splitting () =
  let c = Circuit.Generators.c17 () in
  let patterns = Array.init 130 (fun i -> Array.make 5 (i mod 2 = 0)) in
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  Alcotest.(check int) "3 blocks" 3 (List.length blocks);
  Alcotest.(check (list int)) "block sizes" [ 64; 64; 2 ]
    (List.map (fun b -> b.Logicsim.Packed.pattern_count) blocks)

let test_packed_rejects_bad_widths () =
  let c = Circuit.Generators.c17 () in
  Alcotest.(check bool) "wrong width" true
    (try
       ignore (Logicsim.Packed.block_of_patterns c [| Array.make 4 false |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty" true
    (try
       ignore (Logicsim.Packed.block_of_patterns c [||]);
       false
     with Invalid_argument _ -> true)

let test_refsim_overrides () =
  let c = Circuit.Generators.c17 () in
  (* Force G16 (fans out to both outputs) to 1 and check downstream. *)
  let g16 =
    match N.find_node c "G16" with Some id -> id | None -> Alcotest.fail "no G16"
  in
  let inputs = Array.make 5 false in
  let forced = Logicsim.Refsim.eval_with_overrides c ~overrides:[ (g16, true) ] inputs in
  Alcotest.(check bool) "override applied" true forced.(g16);
  let expected = Logicsim.Refsim.eval c inputs in
  (* With all-0 inputs G16 = NAND(0, G11) = 1 already: no change. *)
  Alcotest.(check bool) "consistent with natural value" expected.(g16) forced.(g16)

let test_refsim_rejects_bad_width () =
  let c = Circuit.Generators.c17 () in
  Alcotest.(check bool) "wrong width" true
    (try
       ignore (Logicsim.Refsim.eval c (Array.make 4 false));
       false
     with Invalid_argument _ -> true)

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:25 ~name:"packed = ref = event on random circuits"
      (pair (int_range 3 12) (int_range 20 250))
      (fun (inputs, gates) ->
        let c =
          Circuit.Generators.random_circuit ~inputs ~gates ~outputs:3
            ~seed:(inputs * 1000 + gates)
        in
        let rng = Stats.Rng.create ~seed:(gates + 5) () in
        let patterns = Array.init 64 (fun _ -> random_inputs rng inputs) in
        let block = Logicsim.Packed.block_of_patterns c patterns in
        let packed = Logicsim.Packed.eval_block c block in
        let sim = Logicsim.Eventsim.create c in
        let ok = ref true in
        Array.iteri
          (fun i pattern ->
            let expected = Logicsim.Refsim.eval c pattern in
            ignore (Logicsim.Eventsim.set_pattern sim pattern);
            Array.iteri
              (fun id v ->
                if Logicsim.Packed.bit packed.(id) i <> v then ok := false;
                if Logicsim.Eventsim.value sim id <> v then ok := false)
              expected)
          patterns;
        !ok) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "logicsim",
      [ tc "packed matches reference" test_packed_matches_ref;
        tc "event-driven matches reference" test_eventsim_matches_ref;
        tc "event-driven is incremental" test_eventsim_incremental_activity;
        tc "event-driven initial state" test_eventsim_initial_state;
        tc "live mask" test_packed_live_mask;
        tc "block splitting" test_packed_block_splitting;
        tc "bad widths rejected" test_packed_rejects_bad_widths;
        tc "reference overrides" test_refsim_overrides;
        tc "reference rejects bad width" test_refsim_rejects_bad_width ] );
    ( "logicsim.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
