(* Tests for the netlist IR, the .bench format and the generators. *)

module G = Circuit.Gate
module N = Circuit.Netlist
module Gen = Circuit.Generators

let bits width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

(* ------------------------------- gate ------------------------------ *)

let test_gate_truth_tables () =
  let t = true and f = false in
  let check name kind inputs expected =
    Alcotest.(check bool) name expected (G.eval kind inputs)
  in
  check "and tt" G.And [| t; t |] t;
  check "and tf" G.And [| t; f |] f;
  check "nand tt" G.Nand [| t; t |] f;
  check "nand ff" G.Nand [| f; f |] t;
  check "or ff" G.Or [| f; f |] f;
  check "or tf" G.Or [| t; f |] t;
  check "nor ff" G.Nor [| f; f |] t;
  check "xor tf" G.Xor [| t; f |] t;
  check "xor tt" G.Xor [| t; t |] f;
  check "xnor tt" G.Xnor [| t; t |] t;
  check "not t" G.Not [| t |] f;
  check "buf t" G.Buf [| t |] t;
  check "const0" G.Const0 [||] f;
  check "const1" G.Const1 [||] t;
  check "and3" G.And [| t; t; f |] f;
  check "xor3 parity" G.Xor [| t; t; t |] t

let test_gate_string_roundtrip () =
  List.iter
    (fun kind ->
      match G.of_string (G.to_string kind) with
      | Some back -> Alcotest.(check bool) "roundtrip" true (back = kind)
      | None -> Alcotest.failf "no parse for %s" (G.to_string kind))
    G.all_kinds

let test_gate_aliases () =
  Alcotest.(check bool) "BUFF" true (G.of_string "BUFF" = Some G.Buf);
  Alcotest.(check bool) "inv" true (G.of_string "inv" = Some G.Not);
  Alcotest.(check bool) "nand lowercase" true (G.of_string "nand" = Some G.Nand);
  Alcotest.(check bool) "junk" true (G.of_string "FROB" = None)

let test_gate_controlling_values () =
  Alcotest.(check bool) "and" true (G.controlling_value G.And = Some false);
  Alcotest.(check bool) "nand" true (G.controlling_value G.Nand = Some false);
  Alcotest.(check bool) "or" true (G.controlling_value G.Or = Some true);
  Alcotest.(check bool) "nor" true (G.controlling_value G.Nor = Some true);
  Alcotest.(check bool) "xor" true (G.controlling_value G.Xor = None)

(* ----------------------------- builder ----------------------------- *)

let test_builder_basic () =
  let b = N.Builder.create ~name:"t" in
  let a = N.Builder.add_input b "a" in
  let c = N.Builder.add_input b "c" in
  let g = N.Builder.add_gate b ~name:"g" G.And [ a; c ] in
  N.Builder.mark_output b g;
  let netlist = N.Builder.build b in
  Alcotest.(check int) "nodes" 3 (N.num_nodes netlist);
  Alcotest.(check int) "inputs" 2 (N.num_inputs netlist);
  Alcotest.(check int) "outputs" 1 (N.num_outputs netlist);
  Alcotest.(check int) "gates" 1 (N.num_gates netlist);
  Alcotest.(check int) "depth" 1 (N.depth netlist)

let test_builder_arity_checks () =
  let b = N.Builder.create ~name:"t" in
  let a = N.Builder.add_input b "a" in
  Alcotest.(check bool) "not with 2 fanins rejected" true
    (try
       ignore (N.Builder.add_gate b G.Not [ a; a ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "and with 1 fanin rejected" true
    (try
       ignore (N.Builder.add_gate b G.And [ a ]);
       false
     with Invalid_argument _ -> true)

let test_builder_dangling_fanin () =
  let b = N.Builder.create ~name:"t" in
  Alcotest.(check bool) "unknown fanin rejected" true
    (try
       ignore (N.Builder.add_gate b G.Buf [ 42 ]);
       false
     with Invalid_argument _ -> true)

let test_builder_mark_output_idempotent () =
  let b = N.Builder.create ~name:"t" in
  let a = N.Builder.add_input b "a" in
  N.Builder.mark_output b a;
  N.Builder.mark_output b a;
  let netlist = N.Builder.build b in
  Alcotest.(check int) "single output" 1 (N.num_outputs netlist)

let test_topo_order_valid () =
  let c = Gen.lsi_chip ~scale:4 () in
  let position = Array.make (N.num_nodes c) (-1) in
  Array.iteri (fun i id -> position.(id) <- i) c.N.topo_order;
  Array.iteri
    (fun id fanins ->
      Array.iter
        (fun src ->
          Alcotest.(check bool) "fanin before fanout" true
            (position.(src) < position.(id)))
        fanins)
    c.N.fanins

let test_fanouts_consistent () =
  let c = Gen.lsi_chip ~scale:4 () in
  (* Every fanin edge appears exactly once in the fanout lists. *)
  let count_in = ref 0 and count_out = ref 0 in
  Array.iter (fun fanins -> count_in := !count_in + Array.length fanins) c.N.fanins;
  Array.iter (fun fanouts -> count_out := !count_out + Array.length fanouts) c.N.fanouts;
  Alcotest.(check int) "edge count" !count_in !count_out;
  Array.iteri
    (fun id fanins ->
      Array.iter
        (fun src ->
          Alcotest.(check bool) "fanout back-edge" true
            (Array.exists (fun dst -> dst = id) c.N.fanouts.(src)))
        fanins)
    c.N.fanins

let test_levels_consistent () =
  let c = Gen.random_circuit ~inputs:8 ~gates:200 ~outputs:6 ~seed:1 in
  Array.iteri
    (fun id fanins ->
      Array.iter
        (fun src ->
          Alcotest.(check bool) "level increases" true
            (c.N.levels.(src) < c.N.levels.(id)))
        fanins)
    c.N.fanins

let test_cycle_detection () =
  (* The builder API cannot create a cycle (fanins must already exist),
     so drive the parser instead. *)
  let source = "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = BUF(x)\n" in
  Alcotest.(check bool) "cycle raises" true
    (try
       ignore (Circuit.Bench_format.parse_string source);
       false
     with Circuit.Bench_format.Parse_error _ | N.Cycle _ -> true)

let test_line_count () =
  (* c17: 11 nodes (5 PI + 6 gates) and 12 gate input pins -> 23 lines. *)
  let c = Gen.c17 () in
  Alcotest.(check int) "c17 lines" 23 (N.line_count c)

let test_find_node () =
  let c = Gen.c17 () in
  Alcotest.(check bool) "finds G16" true (N.find_node c "G16" <> None);
  Alcotest.(check bool) "no bogus" true (N.find_node c "nope" = None)

let test_gate_census () =
  let c = Gen.c17 () in
  Alcotest.(check int) "6 nands" 6
    (match List.assoc_opt G.Nand (N.gate_census c) with Some n -> n | None -> 0);
  Alcotest.(check int) "5 inputs" 5
    (match List.assoc_opt G.Input (N.gate_census c) with Some n -> n | None -> 0)

(* ---------------------------- generators ---------------------------- *)

let outputs_of c inputs = Logicsim.Refsim.outputs c inputs

let test_adder_exhaustive () =
  let widths = [ 1; 2; 3; 4 ] in
  List.iter
    (fun w ->
      let c = Gen.ripple_carry_adder ~bits:w in
      for a = 0 to (1 lsl w) - 1 do
        for b = 0 to (1 lsl w) - 1 do
          for cin = 0 to 1 do
            let ab = bits w a and bb = bits w b in
            let inputs = Array.concat [ ab; bb; [| cin = 1 |] ] in
            let outs = outputs_of c inputs in
            let sum, cout = Gen.spec_adder ab bb (cin = 1) in
            Array.iteri
              (fun i expected ->
                Alcotest.(check bool) "sum bit" expected outs.(i))
              sum;
            Alcotest.(check bool) "carry" cout outs.(w)
          done
        done
      done)
    widths

let test_multiplier_exhaustive () =
  List.iter
    (fun w ->
      let c = Gen.array_multiplier ~bits:w in
      for a = 0 to (1 lsl w) - 1 do
        for b = 0 to (1 lsl w) - 1 do
          let ab = bits w a and bb = bits w b in
          let outs = outputs_of c (Array.append ab bb) in
          let expected = Gen.spec_multiplier ab bb in
          Array.iteri
            (fun i e -> Alcotest.(check bool) "product bit" e outs.(i))
            expected
        done
      done)
    [ 1; 2; 3; 4 ]

let test_multiplier_spot_8bit () =
  let c = Gen.array_multiplier ~bits:8 in
  let rng = Stats.Rng.create ~seed:5 () in
  for _ = 1 to 200 do
    let a = Stats.Rng.int rng 256 and b = Stats.Rng.int rng 256 in
    let outs = outputs_of c (Array.append (bits 8 a) (bits 8 b)) in
    let expected = bits 16 (a * b) in
    Alcotest.(check bool) "8-bit product" true (outs = expected)
  done

let test_parity_exhaustive () =
  List.iter
    (fun w ->
      let c = Gen.parity_tree ~bits:w in
      for v = 0 to (1 lsl w) - 1 do
        let input = bits w v in
        let outs = outputs_of c input in
        Alcotest.(check bool) "parity" (Gen.spec_parity input) outs.(0)
      done)
    [ 1; 2; 3; 5; 8 ]

let test_mux_exhaustive () =
  List.iter
    (fun k ->
      let c = Gen.mux_tree ~select_bits:k in
      let data_width = 1 lsl k in
      for d = 0 to (1 lsl data_width) - 1 do
        for s = 0 to data_width - 1 do
          let data = bits data_width d and select = bits k s in
          let outs = outputs_of c (Array.append data select) in
          Alcotest.(check bool) "mux" (Gen.spec_mux ~data ~select) outs.(0)
        done
      done)
    [ 1; 2; 3 ]

let test_decoder_exhaustive () =
  List.iter
    (fun k ->
      let c = Gen.decoder ~bits:k in
      for en = 0 to 1 do
        for s = 0 to (1 lsl k) - 1 do
          let select = bits k s in
          let inputs = Array.append [| en = 1 |] select in
          let outs = outputs_of c inputs in
          let expected = Gen.spec_decoder ~enable:(en = 1) ~select in
          Alcotest.(check bool) "decoder row" true (outs = expected)
        done
      done)
    [ 1; 2; 3; 4 ]

let test_comparator_exhaustive () =
  List.iter
    (fun w ->
      let c = Gen.comparator ~bits:w in
      for a = 0 to (1 lsl w) - 1 do
        for b = 0 to (1 lsl w) - 1 do
          let ab = bits w a and bb = bits w b in
          let outs = outputs_of c (Array.append ab bb) in
          let eq, lt = Gen.spec_comparator ab bb in
          Alcotest.(check bool) "eq" eq outs.(0);
          Alcotest.(check bool) "lt" lt outs.(1)
        done
      done)
    [ 1; 2; 3; 4 ]

let test_alu_exhaustive () =
  let w = 3 in
  let c = Gen.alu ~bits:w in
  for a = 0 to (1 lsl w) - 1 do
    for b = 0 to (1 lsl w) - 1 do
      for cin = 0 to 1 do
        for op = 0 to 3 do
          let ab = bits w a and bb = bits w b in
          let inputs =
            Array.concat
              [ ab; bb; [| cin = 1 |]; [| op land 1 = 1 |]; [| op lsr 1 = 1 |] ]
          in
          let outs = outputs_of c inputs in
          let expected, cout = Gen.spec_alu ~op ab bb (cin = 1) in
          Array.iteri
            (fun i e -> Alcotest.(check bool) "alu bit" e outs.(i))
            expected;
          Alcotest.(check bool) "alu cout" cout outs.(w)
        done
      done
    done
  done

let test_carry_select_adder_exhaustive () =
  List.iter
    (fun (w, blk) ->
      let c = Gen.carry_select_adder ~bits:w ~block:blk in
      for a = 0 to (1 lsl w) - 1 do
        for b = 0 to (1 lsl w) - 1 do
          for cin = 0 to 1 do
            let ab = bits w a and bb = bits w b in
            let inputs = Array.concat [ ab; bb; [| cin = 1 |] ] in
            let outs = outputs_of c inputs in
            let sum, cout = Gen.spec_adder ab bb (cin = 1) in
            Alcotest.(check bool) "csa matches adder spec" true
              (outs = Array.append sum [| cout |])
          done
        done
      done)
    [ (4, 2); (5, 3); (6, 2); (4, 8) ]

let test_carry_select_equals_ripple () =
  (* Same function, different structure. *)
  let w = 8 in
  let rca = Gen.ripple_carry_adder ~bits:w in
  let csa = Gen.carry_select_adder ~bits:w ~block:3 in
  let rng = Stats.Rng.create ~seed:15 () in
  for _ = 1 to 300 do
    let input = Array.init ((2 * w) + 1) (fun _ -> Stats.Rng.bool rng) in
    Alcotest.(check bool) "functionally identical" true
      (outputs_of rca input = outputs_of csa input)
  done

let test_barrel_shifter_exhaustive () =
  List.iter
    (fun w ->
      let c = Gen.barrel_shifter ~bits:w in
      let stages =
        let rec log2 v acc = if v = 1 then acc else log2 (v / 2) (acc + 1) in
        log2 w 0
      in
      for d = 0 to (1 lsl w) - 1 do
        for s = 0 to w - 1 do
          let data = bits w d and select = bits stages s in
          let outs = outputs_of c (Array.append data select) in
          Alcotest.(check bool) "rotate" true
            (outs = Gen.spec_rotate_left data select)
        done
      done)
    [ 2; 4; 8 ]

let test_barrel_shifter_rejects_non_power () =
  Alcotest.(check bool) "width 6 rejected" true
    (try
       ignore (Gen.barrel_shifter ~bits:6);
       false
     with Invalid_argument _ -> true)

let test_of_spec_builtins () =
  List.iter
    (fun (spec, expect_inputs) ->
      let c = Gen.of_spec spec in
      Alcotest.(check int) (spec ^ " inputs") expect_inputs (N.num_inputs c))
    [ ("c17", 5); ("rca:4", 9); ("csa:6,2", 13); ("mul:3", 6); ("alu:4", 11);
      ("parity:7", 7); ("mux:2", 6); ("dec:3", 4); ("cmp:5", 10); ("shift:4", 6);
      ("rand:6,40,3,9", 6) ]

let test_of_spec_rejects_garbage () =
  List.iter
    (fun spec ->
      Alcotest.(check bool) (spec ^ " rejected") true
        (try
           ignore (Gen.of_spec spec);
           false
         with Failure _ -> true))
    [ "nope"; "rca"; "rca:x"; "rand:1,2"; "" ]

let test_c17_structure () =
  let c = Gen.c17 () in
  Alcotest.(check int) "inputs" 5 (N.num_inputs c);
  Alcotest.(check int) "outputs" 2 (N.num_outputs c);
  Alcotest.(check int) "gates" 6 (N.num_gates c);
  Alcotest.(check int) "depth" 3 (N.depth c)

let test_random_circuit_deterministic () =
  let a = Gen.random_circuit ~inputs:10 ~gates:100 ~outputs:5 ~seed:7 in
  let b = Gen.random_circuit ~inputs:10 ~gates:100 ~outputs:5 ~seed:7 in
  Alcotest.(check string) "same netlist" (Circuit.Bench_format.to_string a)
    (Circuit.Bench_format.to_string b)

let test_random_circuit_no_dead_sinks () =
  let c = Gen.random_circuit ~inputs:10 ~gates:150 ~outputs:5 ~seed:13 in
  Array.iteri
    (fun id fanouts ->
      if Array.length fanouts = 0 && c.N.kinds.(id) <> G.Input then
        Alcotest.(check bool) "sink is observable" true (N.is_output c id))
    c.N.fanouts

let test_lsi_chip_size () =
  let c = Gen.lsi_chip ~scale:8 () in
  Alcotest.(check bool) "hundreds of gates" true (N.num_gates c > 500);
  Alcotest.(check bool) "no dead sinks" true
    (Array.for_all
       (fun id ->
         Array.length c.N.fanouts.(id) > 0
         || N.is_output c id
         || c.N.kinds.(id) = G.Input)
       (Array.init (N.num_nodes c) (fun i -> i)))

(* --------------------------- bench format --------------------------- *)

let test_bench_roundtrip_c17 () =
  let c = Gen.c17 () in
  let text = Circuit.Bench_format.to_string c in
  let back = Circuit.Bench_format.parse_string ~name:"c17" text in
  Alcotest.(check int) "nodes" (N.num_nodes c) (N.num_nodes back);
  Alcotest.(check int) "inputs" (N.num_inputs c) (N.num_inputs back);
  Alcotest.(check int) "outputs" (N.num_outputs c) (N.num_outputs back);
  (* Functional equivalence over all 32 input patterns. *)
  for v = 0 to 31 do
    let input = bits 5 v in
    Alcotest.(check bool) "same function" true
      (outputs_of c input = outputs_of back input)
  done

let test_bench_roundtrip_random () =
  let c = Gen.random_circuit ~inputs:9 ~gates:120 ~outputs:7 ~seed:2 in
  let back = Circuit.Bench_format.parse_string (Circuit.Bench_format.to_string c) in
  let rng = Stats.Rng.create ~seed:77 () in
  for _ = 1 to 100 do
    let input = Array.init 9 (fun _ -> Stats.Rng.bool rng) in
    Alcotest.(check bool) "same function" true
      (outputs_of c input = outputs_of back input)
  done

let test_bench_parse_out_of_order () =
  (* Definitions before their operands are defined. *)
  let source = "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(x, y)\nx = NOT(a)\ny = BUF(b)\n" in
  let c = Circuit.Bench_format.parse_string source in
  Alcotest.(check int) "gates" 3 (N.num_gates c);
  let outs = outputs_of c [| false; true |] in
  Alcotest.(check bool) "z = ~a & b" true outs.(0)

let test_bench_parse_comments_whitespace () =
  let source = "# a comment\n\n  INPUT( a )\nOUTPUT(z)\nz = NOT( a )\n# end\n" in
  let c = Circuit.Bench_format.parse_string source in
  Alcotest.(check int) "one gate" 1 (N.num_gates c)

let test_bench_parse_dff_full_scan () =
  let source =
    "INPUT(clk_in)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(clk_in, q)\n"
  in
  let c = Circuit.Bench_format.parse_string source in
  (* q becomes a pseudo input; d becomes a pseudo output. *)
  Alcotest.(check int) "two inputs" 2 (N.num_inputs c);
  Alcotest.(check int) "two outputs" 2 (N.num_outputs c)

let test_bench_parse_errors () =
  let expect_error source =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (Circuit.Bench_format.parse_string source);
         false
       with Circuit.Bench_format.Parse_error _ -> true)
  in
  expect_error "INPUT(a)\nOUTPUT(z)\nz = FROBNICATE(a)\n";
  expect_error "INPUT(a)\nz = AND(a\n";
  expect_error "INPUT(a)\nINPUT(a)\n";
  expect_error "OUTPUT(ghost)\n";
  expect_error "INPUT(a)\nz = AND(a, ghost)\nOUTPUT(z)\n"

let test_bench_duplicate_definition () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore
         (Circuit.Bench_format.parse_string
            "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUF(a)\n");
       false
     with Circuit.Bench_format.Parse_error _ -> true)

(* ------------------------------ verilog ----------------------------- *)

let test_verilog_structure () =
  let c = Gen.c17 () in
  let text = Circuit.Verilog.to_string c in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec find i = i + n <= h && (String.sub text i n = needle || find (i + 1)) in
    find 0
  in
  Alcotest.(check bool) "module line" true (contains "module c17(");
  Alcotest.(check bool) "endmodule" true (contains "endmodule");
  Alcotest.(check bool) "inputs declared" true (contains "input G1;");
  Alcotest.(check bool) "outputs declared" true (contains "output G22;");
  Alcotest.(check bool) "nand instances" true (contains "nand g");
  (* c17 has 6 gates -> 6 primitive instances. *)
  let count needle =
    let n = String.length needle in
    let rec loop i acc =
      if i + n > String.length text then acc
      else if String.sub text i n = needle then loop (i + n) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  Alcotest.(check int) "6 nands" 6 (count "nand ")

let test_verilog_sanitization () =
  let b = N.Builder.create ~name:"weird" in
  let a = N.Builder.add_input b "3bad.name" in
  let g = N.Builder.add_gate b ~name:"and" G.Not [ a ] in
  N.Builder.mark_output b g;
  let c = N.Builder.build b in
  let text = Circuit.Verilog.to_string c in
  (* The rename-map comments legitimately mention the original names;
     the module body itself must be clean. *)
  let body =
    String.split_on_char '\n' text
    |> List.filter (fun line ->
           not (String.length line >= 2 && String.sub line 0 2 = "//"))
    |> String.concat "\n"
  in
  Alcotest.(check bool) "no raw bad identifier in body" true
    (not (String.contains body '.'));
  Alcotest.(check bool) "keyword renamed" true
    (let needle = "and_w" in
     let n = String.length needle in
     let rec find i =
       i + n <= String.length text && (String.sub text i n = needle || find (i + 1))
     in
     find 0)

let test_verilog_every_generator_emits () =
  List.iter
    (fun c ->
      let text = Circuit.Verilog.to_string c in
      Alcotest.(check bool) "nonempty" true (String.length text > 50))
    [ Gen.ripple_carry_adder ~bits:4; Gen.array_multiplier ~bits:3;
      Gen.alu ~bits:3; Gen.barrel_shifter ~bits:4;
      Gen.lsi_chip ~scale:4 () ]

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:30 ~name:"generated circuits roundtrip through .bench"
      (pair (int_range 2 10) (int_range 10 120))
      (fun (inputs, gates) ->
        let c =
          Circuit.Generators.random_circuit ~inputs ~gates ~outputs:(max 1 (gates / 20))
            ~seed:(inputs + (gates * 37))
        in
        let back = Circuit.Bench_format.parse_string (Circuit.Bench_format.to_string c) in
        let rng = Stats.Rng.create ~seed:(gates + 1) () in
        let ok = ref true in
        for _ = 1 to 20 do
          let input = Array.init inputs (fun _ -> Stats.Rng.bool rng) in
          if outputs_of c input <> outputs_of back input then ok := false
        done;
        !ok);
    Test.make ~count:30 ~name:"adder matches spec on random wide operands"
      (triple (int_range 5 10) (int_bound 1000) (int_bound 1000))
      (fun (w, a, b) ->
        let a = a land ((1 lsl w) - 1) and b = b land ((1 lsl w) - 1) in
        let c = Circuit.Generators.ripple_carry_adder ~bits:w in
        let outs = outputs_of c (Array.concat [ bits w a; bits w b; [| false |] ]) in
        let sum, cout = Circuit.Generators.spec_adder (bits w a) (bits w b) false in
        outs = Array.append sum [| cout |]) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "circuit.gate",
      [ tc "truth tables" test_gate_truth_tables;
        tc "string roundtrip" test_gate_string_roundtrip;
        tc "aliases" test_gate_aliases;
        tc "controlling values" test_gate_controlling_values ] );
    ( "circuit.netlist",
      [ tc "builder basics" test_builder_basic;
        tc "arity checks" test_builder_arity_checks;
        tc "dangling fanin" test_builder_dangling_fanin;
        tc "mark_output idempotent" test_builder_mark_output_idempotent;
        tc "topo order valid" test_topo_order_valid;
        tc "fanouts consistent" test_fanouts_consistent;
        tc "levels consistent" test_levels_consistent;
        tc "cycle detection" test_cycle_detection;
        tc "line count (c17 = 23)" test_line_count;
        tc "find node" test_find_node;
        tc "gate census" test_gate_census ] );
    ( "circuit.generators",
      [ tc "adders (exhaustive, widths 1-4)" test_adder_exhaustive;
        tc "multipliers (exhaustive, widths 1-4)" test_multiplier_exhaustive;
        tc "multiplier 8-bit spot checks" test_multiplier_spot_8bit;
        tc "parity trees (exhaustive)" test_parity_exhaustive;
        tc "mux trees (exhaustive)" test_mux_exhaustive;
        tc "decoders (exhaustive)" test_decoder_exhaustive;
        tc "comparators (exhaustive)" test_comparator_exhaustive;
        tc "alu (exhaustive, 3-bit)" test_alu_exhaustive;
        tc "carry-select adders (exhaustive)" test_carry_select_adder_exhaustive;
        tc "carry-select = ripple" test_carry_select_equals_ripple;
        tc "barrel shifters (exhaustive)" test_barrel_shifter_exhaustive;
        tc "barrel shifter width check" test_barrel_shifter_rejects_non_power;
        tc "of_spec builtins" test_of_spec_builtins;
        tc "of_spec rejects garbage" test_of_spec_rejects_garbage;
        tc "c17 structure" test_c17_structure;
        tc "random circuit deterministic" test_random_circuit_deterministic;
        tc "random circuit no dead sinks" test_random_circuit_no_dead_sinks;
        tc "lsi chip size and sinks" test_lsi_chip_size ] );
    ( "circuit.bench_format",
      [ tc "roundtrip c17 (functional)" test_bench_roundtrip_c17;
        tc "roundtrip random (functional)" test_bench_roundtrip_random;
        tc "out-of-order definitions" test_bench_parse_out_of_order;
        tc "comments and whitespace" test_bench_parse_comments_whitespace;
        tc "DFF full-scan transform" test_bench_parse_dff_full_scan;
        tc "parse errors rejected" test_bench_parse_errors;
        tc "duplicate definition" test_bench_duplicate_definition ] );
    ( "circuit.verilog",
      [ tc "c17 structure" test_verilog_structure;
        tc "identifier sanitization" test_verilog_sanitization;
        tc "all generators emit" test_verilog_every_generator_emits ] );
    ( "circuit.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
