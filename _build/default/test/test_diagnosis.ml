(* Tests for fault dictionaries/diagnosis, pattern compaction and the
   drift study. *)

module F = Faults.Fault

let rig =
  lazy
    (let c = Circuit.Generators.alu ~bits:3 in
     let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
     let universe = Faults.Collapse.representatives classes in
     let rng = Stats.Rng.create ~seed:77 () in
     let patterns = Tpg.Random_tpg.uniform rng c ~count:80 in
     let dictionary = Fsim.Diagnosis.build c universe patterns in
     (c, universe, patterns, dictionary))

(* ----------------------------- diagnosis ---------------------------- *)

let test_signature_consistent_with_fsim () =
  let c, universe, patterns, dictionary = Lazy.force rig in
  let first_detection = Fsim.Serial.run c universe patterns in
  Array.iteri
    (fun i fault ->
      ignore fault;
      let signature = Fsim.Diagnosis.fault_signature dictionary i in
      match (first_detection.(i), signature) with
      | None, [] -> ()
      | None, _ :: _ -> Alcotest.fail "signature for an undetected fault"
      | Some _, [] -> Alcotest.fail "empty signature for a detected fault"
      | Some k, first :: _ ->
        (* The first failing pattern of the signature is the fault's
           first detection. *)
        Alcotest.(check int) "first fail agrees" k first.Fsim.Diagnosis.pattern)
    universe

let test_exact_self_diagnosis () =
  let c, universe, patterns, dictionary = Lazy.force rig in
  (* Every detected fault's own observation must include itself among
     the exact matches, and all matches must share its signature. *)
  Array.iteri
    (fun i fault ->
      let observation = Fsim.Diagnosis.observe c [| fault |] patterns in
      if observation <> [] then begin
        let matches = Fsim.Diagnosis.exact_matches dictionary observation in
        Alcotest.(check bool)
          (Printf.sprintf "%s self-match" (F.to_string c fault))
          true (List.mem i matches);
        List.iter
          (fun j ->
            Alcotest.(check bool) "matches share the signature" true
              (Fsim.Diagnosis.fault_signature dictionary j = observation))
          matches
      end)
    universe

let test_ranked_matches_rank_self_first () =
  let c, universe, patterns, dictionary = Lazy.force rig in
  let fault_index = 17 in
  let observation = Fsim.Diagnosis.observe c [| universe.(fault_index) |] patterns in
  match Fsim.Diagnosis.ranked_matches dictionary observation ~count:3 with
  | (best, distance) :: _ ->
    Alcotest.(check int) "distance zero" 0 distance;
    Alcotest.(check bool) "best shares signature" true
      (Fsim.Diagnosis.fault_signature dictionary best = observation)
  | [] -> Alcotest.fail "no candidates"

let test_passing_chip_signature_empty () =
  let c, universe, patterns, dictionary = Lazy.force rig in
  ignore universe;
  ignore dictionary;
  Alcotest.(check bool) "fault-free chip passes" true
    (Fsim.Diagnosis.observe c [||] patterns = [])

let test_distinguishable_pairs_counts () =
  let _, universe, _, dictionary = Lazy.force rig in
  let distinguishable, total = Fsim.Diagnosis.distinguishable_pairs dictionary in
  let n = Array.length universe in
  Alcotest.(check int) "pair count" (n * (n - 1) / 2) total;
  Alcotest.(check bool) "most pairs distinguishable" true
    (float_of_int distinguishable /. float_of_int total > 0.9)

let test_responses_sorted () =
  let _, _, _, dictionary = Lazy.force rig in
  let signature = Fsim.Diagnosis.fault_signature dictionary 3 in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Fsim.Diagnosis.pattern < b.Fsim.Diagnosis.pattern && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "patterns ascending" true (sorted signature)

(* ----------------------------- compaction --------------------------- *)

let compaction_rig =
  lazy
    (let c = Circuit.Generators.array_multiplier ~bits:4 in
     let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
     let universe = Faults.Collapse.representatives classes in
     let report = Tpg.Atpg.run c universe in
     (c, universe, report.Tpg.Atpg.patterns))

let detected_set c universe patterns =
  Fsim.Ppsfp.run c universe patterns
  |> Array.map (fun d -> d <> None)

let test_compaction_preserves_coverage () =
  let c, universe, patterns = Lazy.force compaction_rig in
  let before = detected_set c universe patterns in
  List.iter
    (fun compact ->
      let result = compact c universe patterns in
      let after = detected_set c universe result.Tpg.Compact.patterns in
      Alcotest.(check bool) "same detected set" true (before = after);
      Alcotest.(check bool) "no growth" true
        (Array.length result.Tpg.Compact.kept <= Array.length patterns))
    [ Tpg.Compact.reverse_order; Tpg.Compact.forward_order ]

let test_reverse_compaction_shrinks () =
  let c, universe, patterns = Lazy.force compaction_rig in
  let result = Tpg.Compact.reverse_order c universe patterns in
  Alcotest.(check bool)
    (Printf.sprintf "%d -> %d" (Array.length patterns)
       (Array.length result.Tpg.Compact.kept))
    true
    (Array.length result.Tpg.Compact.kept < Array.length patterns)

let test_compaction_preserves_order () =
  let c, universe, patterns = Lazy.force compaction_rig in
  let result = Tpg.Compact.reverse_order c universe patterns in
  Array.iteri
    (fun k index ->
      if k > 0 then
        Alcotest.(check bool) "indices ascending" true
          (result.Tpg.Compact.kept.(k - 1) < index);
      Alcotest.(check bool) "patterns match indices" true
        (result.Tpg.Compact.patterns.(k) = patterns.(index)))
    result.Tpg.Compact.kept

let test_compaction_idempotent () =
  let c, universe, patterns = Lazy.force compaction_rig in
  let once = Tpg.Compact.reverse_order c universe patterns in
  let twice = Tpg.Compact.reverse_order c universe once.Tpg.Compact.patterns in
  Alcotest.(check int) "second pass removes nothing"
    (Array.length once.Tpg.Compact.kept)
    (Array.length twice.Tpg.Compact.kept)

(* ------------------------------- drift ------------------------------- *)

let test_drift_no_dispersion_recovers_n0 () =
  let study =
    Experiments.Drift.simulate ~lots:20 ~chips_per_lot:277 ~dispersion:1.0 ()
  in
  Alcotest.(check bool) "mean fit near 8" true
    (abs_float (study.Experiments.Drift.mean_fitted_n0 -. 8.0) < 0.6);
  Alcotest.(check bool) "per-lot RMSE modest" true
    (study.Experiments.Drift.fit_rmse < 1.5)

let test_drift_dispersion_tracked_per_lot () =
  let study =
    Experiments.Drift.simulate ~lots:30 ~chips_per_lot:400 ~dispersion:2.0 ()
  in
  (* Per-lot fits track per-lot truths: correlation across lots. *)
  let truths =
    Array.of_list (List.map (fun o -> o.Experiments.Drift.true_n0) study.Experiments.Drift.lots)
  in
  let fits =
    Array.of_list
      (List.map (fun o -> o.Experiments.Drift.fitted_n0) study.Experiments.Drift.lots)
  in
  Alcotest.(check bool) "correlated" true (Stats.Summary.correlation truths fits > 0.7)

let test_drift_study_shape () =
  let study = Experiments.Drift.simulate ~lots:5 ~chips_per_lot:100 () in
  Alcotest.(check int) "5 lots" 5 (List.length study.Experiments.Drift.lots);
  List.iter
    (fun o ->
      Alcotest.(check bool) "n0 sane" true
        (o.Experiments.Drift.true_n0 >= 1.0 && o.Experiments.Drift.fitted_n0 >= 1.0))
    study.Experiments.Drift.lots

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:12 ~name:"compaction preserves detected sets on random circuits"
      (pair (int_range 4 9) (int_range 15 90))
      (fun (inputs, gates) ->
        let c =
          Circuit.Generators.random_circuit ~inputs ~gates ~outputs:3
            ~seed:(inputs * 91 + gates)
        in
        let universe = Faults.Universe.all c in
        let rng = Stats.Rng.create ~seed:(gates + 7) () in
        let patterns = Tpg.Random_tpg.uniform rng c ~count:48 in
        let before = detected_set c universe patterns in
        let reverse = Tpg.Compact.reverse_order c universe patterns in
        let forward = Tpg.Compact.forward_order c universe patterns in
        before = detected_set c universe reverse.Tpg.Compact.patterns
        && before = detected_set c universe forward.Tpg.Compact.patterns);
    Test.make ~count:12 ~name:"dictionary self-diagnosis on random circuits"
      (int_range 1 500)
      (fun seed ->
        let c =
          Circuit.Generators.random_circuit ~inputs:6 ~gates:40 ~outputs:3 ~seed
        in
        let universe = Faults.Universe.all c in
        let rng = Stats.Rng.create ~seed () in
        let patterns = Tpg.Random_tpg.uniform rng c ~count:32 in
        let dictionary = Fsim.Diagnosis.build c universe patterns in
        let fault_index = seed mod Array.length universe in
        let observation =
          Fsim.Diagnosis.observe c [| universe.(fault_index) |] patterns
        in
        observation = []
        || List.mem fault_index (Fsim.Diagnosis.exact_matches dictionary observation)) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "diagnosis",
      [ tc "signatures consistent with fsim" test_signature_consistent_with_fsim;
        tc "exact self-diagnosis" test_exact_self_diagnosis;
        tc "ranked matches" test_ranked_matches_rank_self_first;
        tc "passing chip" test_passing_chip_signature_empty;
        tc "distinguishable pairs" test_distinguishable_pairs_counts;
        tc "responses sorted" test_responses_sorted ] );
    ( "tpg.compact",
      [ tc "coverage preserved (both orders)" test_compaction_preserves_coverage;
        tc "reverse order shrinks ATPG sets" test_reverse_compaction_shrinks;
        tc "order preserved" test_compaction_preserves_order;
        tc "idempotent" test_compaction_idempotent ] );
    ( "experiments.drift",
      [ tc "no dispersion recovers n0" test_drift_no_dispersion_recovers_n0;
        tc "per-lot fits track truth" test_drift_dispersion_tracked_per_lot;
        tc "study shape" test_drift_study_shape ] );
    ( "diagnosis.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
