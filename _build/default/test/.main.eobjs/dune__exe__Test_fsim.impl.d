test/test_fsim.ml: Alcotest Array Circuit Faults Fsim Int64 List Logicsim Option Printf QCheck QCheck_alcotest Stats Test Tpg
