test/test_report.ml: Alcotest Array Gen List QCheck QCheck_alcotest Report String Test
