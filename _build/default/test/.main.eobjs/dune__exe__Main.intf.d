test/main.mli:
