test/test_tpg.ml: Alcotest Array Circuit Faults Fsim List Printf QCheck QCheck_alcotest Stats Test Tpg
