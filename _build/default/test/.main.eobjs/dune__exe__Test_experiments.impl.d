test/test_experiments.ml: Alcotest Array Experiments Lazy List Printf Quality Report String Tester Tpg
