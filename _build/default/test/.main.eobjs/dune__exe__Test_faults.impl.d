test/test_faults.ml: Alcotest Array Circuit Faults Fsim Hashtbl List Printf
