test/test_tester.ml: Alcotest Array Circuit Experiments Fab Faults Fsim Lazy List Option Printf Quality Stats Tester Tpg
