test/test_fab.ml: Alcotest Array Fab List QCheck QCheck_alcotest Stats String Test
