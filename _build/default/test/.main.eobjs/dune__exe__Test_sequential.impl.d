test/test_sequential.ml: Alcotest Array Faults Gen List Logicsim Printf QCheck QCheck_alcotest Stats Test Tpg
