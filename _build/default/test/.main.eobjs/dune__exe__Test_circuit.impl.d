test/test_circuit.ml: Alcotest Array Circuit List Logicsim QCheck QCheck_alcotest Stats String Test
