test/test_logicsim.ml: Alcotest Array Circuit List Logicsim QCheck QCheck_alcotest Stats Test
