test/test_diagnosis.ml: Alcotest Array Circuit Experiments Faults Fsim Lazy List Printf QCheck QCheck_alcotest Stats Test Tpg
