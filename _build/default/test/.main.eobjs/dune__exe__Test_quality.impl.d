test/test_quality.ml: Alcotest Array Experiments Float List Printf QCheck QCheck_alcotest Quality Stats Test
