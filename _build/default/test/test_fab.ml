(* Tests for yield models, the defect process, lots and wafers. *)

let close ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) "close" expected actual

(* --------------------------- yield models --------------------------- *)

let model ~d0 ~area ~x =
  Fab.Yield_model.create ~defect_density:d0 ~area ~variance_ratio:x

let test_poisson_yield () =
  close ~eps:1e-12 (exp (-2.0)) (Fab.Yield_model.poisson_yield (model ~d0:2.0 ~area:1.0 ~x:0.0))

let test_stapper_poisson_limit () =
  (* Eq. 3 at X -> 0 tends to the exponential model. *)
  let lam = 1.7 in
  let poisson = exp (-.lam) in
  close ~eps:1e-12 poisson
    (Fab.Yield_model.stapper_yield (model ~d0:lam ~area:1.0 ~x:0.0));
  let near = Fab.Yield_model.stapper_yield (model ~d0:lam ~area:1.0 ~x:1e-8) in
  close ~eps:1e-6 poisson near

let test_stapper_known_value () =
  (* y = (1 + X D0 A)^(-1/X); X=0.25, D0A=3.777... gives 0.07 by the
     calibration used throughout the reproduction. *)
  let x = 0.25 in
  let d0 = Fab.Yield_model.solve_defect_density ~target_yield:0.07 ~area:1.0 ~variance_ratio:x in
  close ~eps:1e-12 0.07 (Fab.Yield_model.stapper_yield (model ~d0 ~area:1.0 ~x))

let test_solve_defect_density_roundtrip () =
  List.iter
    (fun (target, x) ->
      let d0 =
        Fab.Yield_model.solve_defect_density ~target_yield:target ~area:2.5
          ~variance_ratio:x
      in
      close ~eps:1e-10 target (Fab.Yield_model.stapper_yield (model ~d0 ~area:2.5 ~x)))
    [ (0.07, 0.25); (0.5, 0.0); (0.9, 1.0); (0.2, 0.5) ]

let test_yield_orderings () =
  (* At the same lambda: Seeds < Murphy and clustering always helps
     (stapper >= poisson). *)
  List.iter
    (fun lam ->
      let m0 = model ~d0:lam ~area:1.0 ~x:0.0 in
      let m1 = model ~d0:lam ~area:1.0 ~x:0.5 in
      Alcotest.(check bool) "stapper >= poisson" true
        (Fab.Yield_model.stapper_yield m1 >= Fab.Yield_model.poisson_yield m0);
      Alcotest.(check bool) "murphy >= poisson" true
        (Fab.Yield_model.murphy_yield m0 >= Fab.Yield_model.poisson_yield m0);
      Alcotest.(check bool) "seeds >= murphy" true
        (Fab.Yield_model.seeds_yield m0 >= Fab.Yield_model.murphy_yield m0))
    [ 0.5; 1.0; 2.0; 4.0 ]

let test_yield_zero_defects () =
  let m = model ~d0:0.0 ~area:1.0 ~x:0.3 in
  close ~eps:1e-12 1.0 (Fab.Yield_model.stapper_yield m);
  close ~eps:1e-12 1.0 (Fab.Yield_model.poisson_yield m);
  close ~eps:1e-12 1.0 (Fab.Yield_model.murphy_yield m);
  close ~eps:1e-12 1.0 (Fab.Yield_model.seeds_yield m)

let test_count_distribution_matches_yield () =
  (* P(0 defects) under the count law = the Stapper yield. *)
  List.iter
    (fun x ->
      let m = model ~d0:1.3 ~area:1.7 ~x in
      close ~eps:1e-10 (Fab.Yield_model.stapper_yield m)
        (Fab.Dist_kind.zero_probability (Fab.Yield_model.defect_count_distribution m)))
    [ 0.0; 0.25; 1.0 ]

(* ----------------------------- defects ------------------------------ *)

let make_defect ?(multiplicity = 2.0) ?(target = 0.07) ?(x = 0.25) ?(universe = 3000) () =
  let d0 =
    Fab.Yield_model.solve_defect_density ~target_yield:target ~area:1.0
      ~variance_ratio:x
  in
  Fab.Defect.create
    ~yield_model:(model ~d0 ~area:1.0 ~x)
    ~fault_multiplicity:multiplicity ~universe_size:universe ()

let test_defect_model_yield () =
  let d = make_defect () in
  close ~eps:1e-10 0.07 (Fab.Defect.model_yield d)

let test_defect_expected_n0 () =
  (* mu * lambda / (1 - y): with calibration this is the configured n0. *)
  let d = make_defect ~multiplicity:1.97 () in
  let lam = Fab.Yield_model.lambda (Fab.Defect.yield_model d) in
  close ~eps:1e-9 (1.97 *. lam /. 0.93) (Fab.Defect.expected_n0 d)

let test_defect_sampling_statistics () =
  let d = make_defect () in
  let rng = Stats.Rng.create ~seed:314 () in
  let lots = 4000 in
  let good = ref 0 and fault_sum = ref 0 and defective = ref 0 in
  for _ = 1 to lots do
    let faults = Fab.Defect.sample_chip d rng in
    if Array.length faults = 0 then incr good
    else begin
      incr defective;
      fault_sum := !fault_sum + Array.length faults
    end
  done;
  let empirical_yield = float_of_int !good /. float_of_int lots in
  close ~eps:0.02 0.07 empirical_yield;
  let empirical_n0 = float_of_int !fault_sum /. float_of_int !defective in
  (* Collisions make the empirical value slightly below expected_n0. *)
  Alcotest.(check bool) "n0 near prediction" true
    (abs_float (empirical_n0 -. Fab.Defect.expected_n0 d)
     < 0.15 *. Fab.Defect.expected_n0 d)

let test_defect_faults_sorted_distinct () =
  let d = make_defect ~multiplicity:4.0 ~target:0.3 () in
  let rng = Stats.Rng.create ~seed:77 () in
  for _ = 1 to 500 do
    let faults = Fab.Defect.sample_chip d rng in
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "in range" true (v >= 0 && v < 3000);
        if i > 0 then Alcotest.(check bool) "sorted distinct" true (faults.(i - 1) < v))
      faults
  done

let test_defect_shrink () =
  let d = make_defect () in
  let shrunk = Fab.Defect.shrink d ~area_factor:0.25 ~multiplicity_factor:4.0 in
  Alcotest.(check bool) "yield improves" true
    (Fab.Defect.model_yield shrunk > Fab.Defect.model_yield d);
  close ~eps:1e-9
    (4.0 *. Fab.Defect.fault_multiplicity d)
    (Fab.Defect.fault_multiplicity shrunk)

let test_defect_validation () =
  Alcotest.(check bool) "multiplicity < 1 rejected" true
    (try
       ignore (make_defect ~multiplicity:0.5 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------- lots ------------------------------- *)

let test_lot_statistics () =
  let d = make_defect () in
  let rng = Stats.Rng.create ~seed:2718 () in
  let lot = Fab.Lot.manufacture d rng ~count:3000 in
  Alcotest.(check int) "size" 3000 (Fab.Lot.size lot);
  close ~eps:0.02 0.07 (Fab.Lot.empirical_yield lot);
  (* Eq. 2: nav = (1 - y) n0 over the same lot, exactly (it's algebra
     on the same sample). *)
  let nav = Fab.Lot.mean_faults_per_chip lot in
  let n0 = Fab.Lot.mean_faults_on_defective lot in
  let y = Fab.Lot.empirical_yield lot in
  close ~eps:1e-9 nav ((1.0 -. y) *. n0)

let test_lot_histogram () =
  let d = make_defect () in
  let rng = Stats.Rng.create ~seed:99 () in
  let lot = Fab.Lot.manufacture d rng ~count:500 in
  let h = Fab.Lot.fault_count_histogram lot ~max_faults:50 in
  Alcotest.(check int) "mass preserved" 500 (Array.fold_left ( + ) 0 h);
  Alcotest.(check int) "good chips in bin 0" (Fab.Lot.good_count lot) h.(0)

let test_lot_ideal_follows_eq1 () =
  let rng = Stats.Rng.create ~seed:4242 () in
  let lot =
    Fab.Lot.manufacture_ideal ~yield_:0.07 ~n0:8.0 ~universe_size:5000 rng ~count:5000
  in
  close ~eps:0.015 0.07 (Fab.Lot.empirical_yield lot);
  close ~eps:0.15 8.0 (Fab.Lot.mean_faults_on_defective lot);
  (* Conditional variance of 1 + Poisson(7) is 7. *)
  let counts = Array.map float_of_int (Fab.Lot.defective_fault_counts lot) in
  close ~eps:0.5 7.0 (Stats.Summary.variance counts)

let test_lot_ideal_perfect_yield () =
  let rng = Stats.Rng.create ~seed:5 () in
  let lot = Fab.Lot.manufacture_ideal ~yield_:1.0 ~n0:8.0 ~universe_size:100 rng ~count:50 in
  Alcotest.(check int) "all good" 50 (Fab.Lot.good_count lot)

let test_lot_clustered_overdispersed () =
  (* The physical line must be over-dispersed relative to the ideal
     shifted-Poisson line with the same mean — the fact driving
     ablation B. *)
  let d = make_defect ~multiplicity:2.0 () in
  let rng = Stats.Rng.create ~seed:11 () in
  let lot = Fab.Lot.manufacture d rng ~count:4000 in
  let counts = Array.map float_of_int (Fab.Lot.defective_fault_counts lot) in
  let mean = Stats.Summary.mean counts in
  let variance = Stats.Summary.variance counts in
  Alcotest.(check bool) "variance exceeds shifted-Poisson's" true
    (variance > mean -. 1.0)

(* ------------------------------ wafers ------------------------------ *)

let test_wafer_geometry () =
  let d = make_defect ~target:0.5 () in
  let rng = Stats.Rng.create ~seed:6 () in
  let wafer = Fab.Wafer.fabricate d rng ~diameter:21 () in
  Array.iter
    (fun die ->
      Alcotest.(check bool) "inside disc" true
        (die.Fab.Wafer.radius <= 1.0 +. 1e-9);
      Alcotest.(check bool) "coords in grid" true
        (die.Fab.Wafer.x >= 0 && die.Fab.Wafer.x < 21 && die.Fab.Wafer.y >= 0
         && die.Fab.Wafer.y < 21))
    wafer.Fab.Wafer.dies;
  (* A disc of diameter 21 holds fewer dies than the 441 grid squares
     but more than the inscribed square. *)
  let dies = Array.length wafer.Fab.Wafer.dies in
  Alcotest.(check bool) "plausible die count" true (dies > 220 && dies < 441)

let test_wafer_edge_degradation () =
  let d = make_defect ~target:0.6 () in
  let rng = Stats.Rng.create ~seed:7 () in
  (* Average several wafers to smooth the noise. *)
  let center_good = ref 0 and center_total = ref 0 in
  let edge_good = ref 0 and edge_total = ref 0 in
  for _ = 1 to 10 do
    let wafer = Fab.Wafer.fabricate d rng ~diameter:25 ~edge_factor:4.0 () in
    Array.iter
      (fun die ->
        let good = Array.length die.Fab.Wafer.faults = 0 in
        if die.Fab.Wafer.radius < 0.4 then begin
          incr center_total;
          if good then incr center_good
        end
        else if die.Fab.Wafer.radius > 0.8 then begin
          incr edge_total;
          if good then incr edge_good
        end)
      wafer.Fab.Wafer.dies
  done;
  let center = float_of_int !center_good /. float_of_int !center_total in
  let edge = float_of_int !edge_good /. float_of_int !edge_total in
  Alcotest.(check bool) "center beats edge" true (center > edge +. 0.05)

let test_wafer_to_lot () =
  let d = make_defect ~target:0.5 () in
  let rng = Stats.Rng.create ~seed:8 () in
  let wafer = Fab.Wafer.fabricate d rng ~diameter:15 () in
  let lot = Fab.Wafer.to_lot wafer in
  Alcotest.(check int) "die count preserved"
    (Array.length wafer.Fab.Wafer.dies) (Fab.Lot.size lot)

let test_wafer_map_renders () =
  let d = make_defect ~target:0.5 () in
  let rng = Stats.Rng.create ~seed:9 () in
  let wafer = Fab.Wafer.fabricate d rng ~diameter:11 () in
  let map = Fab.Wafer.render_map wafer in
  Alcotest.(check int) "11 lines" 11
    (List.length (List.filter (fun s -> s <> "") (String.split_on_char '\n' map)));
  Alcotest.(check bool) "contains dies" true
    (String.contains map '.' || String.contains map 'X')

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:100 ~name:"stapper yield decreasing in area"
      (pair (float_range 0.1 3.0) (float_range 0.0 2.0))
      (fun (d0, x) ->
        let y1 = Fab.Yield_model.stapper_yield (model ~d0 ~area:1.0 ~x) in
        let y2 = Fab.Yield_model.stapper_yield (model ~d0 ~area:2.0 ~x) in
        y2 <= y1 +. 1e-12);
    Test.make ~count:100 ~name:"solve_defect_density inverts stapper"
      (pair (float_range 0.01 0.99) (float_range 0.0 2.0))
      (fun (target, x) ->
        let d0 =
          Fab.Yield_model.solve_defect_density ~target_yield:target ~area:1.0
            ~variance_ratio:x
        in
        abs_float (Fab.Yield_model.stapper_yield (model ~d0 ~area:1.0 ~x) -. target)
        < 1e-9) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "fab.yield",
      [ tc "poisson" test_poisson_yield;
        tc "stapper poisson limit" test_stapper_poisson_limit;
        tc "stapper calibrated to 7%" test_stapper_known_value;
        tc "solve roundtrip" test_solve_defect_density_roundtrip;
        tc "model orderings" test_yield_orderings;
        tc "zero defects" test_yield_zero_defects;
        tc "count law zero prob = yield" test_count_distribution_matches_yield ] );
    ( "fab.defect",
      [ tc "model yield" test_defect_model_yield;
        tc "expected n0" test_defect_expected_n0;
        tc "sampling statistics" test_defect_sampling_statistics;
        tc "faults sorted distinct" test_defect_faults_sorted_distinct;
        tc "shrink" test_defect_shrink;
        tc "validation" test_defect_validation ] );
    ( "fab.lot",
      [ tc "lot statistics + Eq.2" test_lot_statistics;
        tc "histogram" test_lot_histogram;
        tc "ideal line follows Eq.1" test_lot_ideal_follows_eq1;
        tc "ideal perfect yield" test_lot_ideal_perfect_yield;
        tc "clustered line over-dispersed" test_lot_clustered_overdispersed ] );
    ( "fab.wafer",
      [ tc "geometry" test_wafer_geometry;
        tc "edge degradation" test_wafer_edge_degradation;
        tc "to_lot" test_wafer_to_lot;
        tc "map renders" test_wafer_map_renders ] );
    ( "fab.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
