(* Tests for the sequential layer (flops, scan view, cycle accounting). *)

module Seq = Logicsim.Sequential

let bits width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

let int_of_bits bs =
  Array.to_list bs |> List.rev
  |> List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0

let test_accumulator_counts () =
  let m = Seq.accumulator ~bits:4 in
  (* Feed 1 with enable high for 5 cycles: register reads 0,1,2,3,4. *)
  let inputs = Array.make 5 (Array.append (bits 4 1) [| true |]) in
  let outputs, final = Seq.simulate m inputs in
  Array.iteri
    (fun cycle out ->
      let register = int_of_bits (Array.sub out 0 4) in
      Alcotest.(check int) (Printf.sprintf "cycle %d" cycle) cycle register)
    outputs;
  Alcotest.(check int) "final state" 5 (int_of_bits final)

let test_accumulator_enable_gates () =
  let m = Seq.accumulator ~bits:4 in
  let step v enable = Array.append (bits 4 v) [| enable |] in
  let inputs = [| step 3 true; step 9 false; step 2 true |] in
  let _, final = Seq.simulate m inputs in
  (* 0 + 3, hold, + 2 = 5. *)
  Alcotest.(check int) "disabled cycle holds" 5 (int_of_bits final)

let test_accumulator_wraps_with_carry () =
  let m = Seq.accumulator ~bits:4 in
  let step v = Array.append (bits 4 v) [| true |] in
  let inputs = [| step 12; step 12 |] in
  let outputs, final = Seq.simulate m inputs in
  (* Second cycle: 12 + 12 = 24 -> register 8, carry-out high. *)
  Alcotest.(check int) "wraps" 8 (int_of_bits final);
  Alcotest.(check bool) "carry out visible" true outputs.(1).(4)

let test_accumulator_matches_spec_random () =
  let m = Seq.accumulator ~bits:6 in
  let rng = Stats.Rng.create ~seed:61 () in
  let cycles = 200 in
  let inputs =
    Array.init cycles (fun _ ->
        Array.append (bits 6 (Stats.Rng.int rng 64)) [| Stats.Rng.bool rng |])
  in
  let _, final = Seq.simulate m inputs in
  let expected =
    Array.fold_left
      (fun acc row ->
        let v = int_of_bits (Array.sub row 0 6) in
        if row.(6) then (acc + v) mod 64 else acc)
      0 inputs
  in
  Alcotest.(check int) "matches fold" expected (int_of_bits final)

let test_initial_state () =
  let m = Seq.accumulator ~bits:4 in
  let _, final =
    Seq.simulate m ~initial_state:(bits 4 7)
      [| Array.append (bits 4 1) [| true |] |]
  in
  Alcotest.(check int) "starts from 7" 8 (int_of_bits final)

let test_scan_view_is_testable () =
  (* The scan view is an ordinary combinational circuit: the full fault
     flow applies. *)
  let m = Seq.accumulator ~bits:4 in
  let core = Seq.scan_view m in
  let classes = Faults.Collapse.equivalence core (Faults.Universe.all core) in
  let reps = Faults.Collapse.representatives classes in
  let report = Tpg.Atpg.run core reps in
  Alcotest.(check bool) "high scan coverage" true (Tpg.Atpg.coverage report > 0.95)

let test_scan_cycle_accounting () =
  let m = Seq.accumulator ~bits:8 in
  Alcotest.(check int) "zero patterns" 0 (Seq.scan_test_cycles m ~patterns:0);
  (* 8 flops: each pattern costs 9 cycles, plus a trailing 8-cycle unload. *)
  Alcotest.(check int) "one pattern" 17 (Seq.scan_test_cycles m ~patterns:1);
  Alcotest.(check int) "ten patterns" 98 (Seq.scan_test_cycles m ~patterns:10)

let test_of_bench_recovers_structure () =
  let source =
    "INPUT(x)\nOUTPUT(z)\nq1 = DFF(d1)\nq2 = DFF(d2)\n\
     d1 = XOR(x, q2)\nd2 = BUF(q1)\nz = AND(q1, q2)\n"
  in
  let m = Seq.of_bench source in
  Alcotest.(check int) "2 flops" 2 (Seq.flop_count m);
  Alcotest.(check int) "1 primary input" 1 (Seq.primary_input_count m);
  Alcotest.(check int) "1 primary output" 1 (Seq.primary_output_count m);
  (* Behaviour: a 2-stage shift/xor toy; drive x=1 twice from reset:
     cycle1: d1 = 1^0 = 1, d2 = 0 -> state (1,0), z was 0&0 = 0
     cycle2: d1 = 1^0 = 1, d2 = 1 -> state (1,1), z = 1&0 = 0
     cycle3: x=0: d1 = 0^1 = 1, d2 = 1, z = 1&1 = 1. *)
  let outputs, final = Seq.simulate m [| [| true |]; [| true |]; [| false |] |] in
  Alcotest.(check bool) "z cycle 1" false outputs.(0).(0);
  Alcotest.(check bool) "z cycle 2" false outputs.(1).(0);
  Alcotest.(check bool) "z cycle 3" true outputs.(2).(0);
  Alcotest.(check bool) "final q1" true final.(0);
  Alcotest.(check bool) "final q2" true final.(1)

let test_create_validation () =
  let m = Seq.accumulator ~bits:3 in
  Alcotest.(check bool) "bad partition rejected" true
    (try
       ignore
         (Seq.create ~core:m.Seq.core
            ~primary_input_positions:m.Seq.primary_input_positions
            ~state_input_positions:[||]
            ~primary_output_positions:m.Seq.primary_output_positions
            ~state_output_positions:[||]);
       false
     with Invalid_argument _ -> true)

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:25 ~name:"accumulator = fold over any stream"
      (pair (int_range 2 7) (list_of_size (Gen.int_range 1 40) (pair (int_bound 200) bool)))
      (fun (width, stream) ->
        let m = Seq.accumulator ~bits:width in
        let modulus = 1 lsl width in
        let inputs =
          Array.of_list
            (List.map
               (fun (v, enable) -> Array.append (bits width (v mod modulus)) [| enable |])
               stream)
        in
        let _, final = Seq.simulate m inputs in
        let expected =
          List.fold_left
            (fun acc (v, enable) -> if enable then (acc + (v mod modulus)) mod modulus else acc)
            0 stream
        in
        int_of_bits final = expected);
    Test.make ~count:25 ~name:"scan cycles grow linearly in patterns"
      (pair (int_range 1 6) (int_range 1 200))
      (fun (width, patterns) ->
        let m = Seq.accumulator ~bits:width in
        Seq.scan_test_cycles m ~patterns
        = (patterns * (width + 1)) + width) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "sequential",
      [ tc "accumulator counts" test_accumulator_counts;
        tc "enable gates updates" test_accumulator_enable_gates;
        tc "wraps with carry" test_accumulator_wraps_with_carry;
        tc "matches spec on random streams" test_accumulator_matches_spec_random;
        tc "initial state honoured" test_initial_state;
        tc "scan view testable by ATPG" test_scan_view_is_testable;
        tc "scan cycle accounting" test_scan_cycle_accounting;
        tc "of_bench recovers flops" test_of_bench_recovers_structure;
        tc "create validation" test_create_validation ] );
    ( "sequential.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
