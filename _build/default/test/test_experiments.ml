(* Integration tests: the experiment modules and one full end-to-end
   pipeline run at reduced scale. *)

let close ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) "close" expected actual

(* ------------------------- analytic figures ------------------------- *)

let test_fig1_checkpoints () =
  List.iter
    (fun (_, paper, ours) ->
      Alcotest.(check bool) "within graph tolerance" true
        (abs_float (paper -. ours) < 0.011))
    (Experiments.Fig1.checkpoints ())

let test_fig1_series_shape () =
  let series = Experiments.Fig1.series () in
  Alcotest.(check int) "4 curves" 4 (List.length series);
  List.iter
    (fun s ->
      let points = s.Report.Series.points in
      Alcotest.(check bool) "starts at 1-y" true
        (let _, r0 = points.(0) in
         r0 > 0.1);
      let _, last = points.(Array.length points - 1) in
      close ~eps:1e-9 0.0 last)
    series

let test_fig234_checkpoints () =
  List.iter
    (fun (label, paper, ours) ->
      Alcotest.(check bool) label true (abs_float (paper -. ours) < 0.025))
    (Experiments.Fig2_3_4.checkpoints ())

let test_fig234_series_monotone () =
  List.iter
    (fun reject ->
      let series = Experiments.Fig2_3_4.series ~reject in
      Alcotest.(check int) "12 curves" 12 (List.length series);
      List.iter
        (fun s ->
          let points = s.Report.Series.points in
          Array.iteri
            (fun i (_, f) ->
              if i > 0 then
                Alcotest.(check bool) "requirement falls with yield" true
                  (f <= snd points.(i - 1) +. 1e-9))
            points)
        series)
    [ 0.01; 0.005; 0.001 ]

let test_fig6_error_table () =
  let rows = Experiments.Fig6.error_table () in
  Alcotest.(check int) "six fault counts" 6 (List.length rows);
  List.iter
    (fun row ->
      (* Paper: A.2 coincides with the exact value for all n shown. *)
      Alcotest.(check bool) "A.2 tight" true (row.Experiments.Fig6.max_abs_error_a2 < 1e-3);
      (* "small but can be noticed": bounded by ~f n²/(2N(1-f)) at the
         validity-region edge, i.e. ~12.5 % worst case. *)
      Alcotest.(check bool) "A.3 small inside validity region" true
        (row.Experiments.Fig6.max_rel_error_a3 < 0.2))
    rows;
  (* A.3's relative error grows with n (the paper's "small but can be
     noticed"). *)
  let errors = List.map (fun r -> r.Experiments.Fig6.max_rel_error_a3) rows in
  Alcotest.(check bool) "error grows" true
    (List.nth errors 5 > List.nth errors 0)

let test_comparison_rows () =
  let rows = Experiments.Comparison.rows () in
  Alcotest.(check int) "3 rows" 3 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "wadsack more demanding" true
        (row.Experiments.Comparison.wadsack > row.Experiments.Comparison.ours);
      (match row.Experiments.Comparison.paper_ours with
      | Some paper ->
        Alcotest.(check bool) "matches paper quote" true
          (abs_float (row.Experiments.Comparison.ours -. paper) < 0.02)
      | None -> ());
      match row.Experiments.Comparison.paper_wadsack with
      | Some paper ->
        Alcotest.(check bool) "matches paper wadsack" true
          (abs_float (row.Experiments.Comparison.wadsack -. paper) < 0.002)
      | None -> ())
    rows

let test_fineline_directions () =
  let rows = Experiments.Fineline.sweep ~shrinks:[ 1.0; 0.8; 0.6; 0.5 ] () in
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      (* Smaller shrink factor: yield up, n0 up, requirement down. *)
      Alcotest.(check bool) "yield rises" true
        (b.Experiments.Fineline.yield_ > a.Experiments.Fineline.yield_);
      Alcotest.(check bool) "n0 rises" true
        (b.Experiments.Fineline.n0 >= a.Experiments.Fineline.n0 -. 1e-9);
      Alcotest.(check bool) "requirement falls" true
        (b.Experiments.Fineline.required_coverage
         <= a.Experiments.Fineline.required_coverage +. 1e-9);
      pairwise rest
    | [ _ ] | [] -> ()
  in
  pairwise rows

let test_griffin_ablation_monotone () =
  let rows = Experiments.Ablation.griffin_dispersion () in
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "mixed requirement grows with dispersion" true
        (b.Experiments.Ablation.required_mixed
         >= a.Experiments.Ablation.required_mixed -. 1e-9);
      pairwise rest
    | [ _ ] | [] -> ()
  in
  pairwise rows

let test_closed_form_ablation () =
  List.iter
    (fun row ->
      Alcotest.(check bool) "Eq.7 close to Eq.6" true
        (row.Experiments.Ablation.max_abs_error < 0.01))
    (Experiments.Ablation.closed_form_error ())

let test_fig5_paper_fit () =
  let n0, residual = Experiments.Fig5.fit_paper () in
  Alcotest.(check bool) "n0 in [7, 9.5]" true (n0 >= 7.0 && n0 <= 9.5);
  Alcotest.(check bool) "decent fit" true (residual < 0.05)

let test_paper_data_self_consistent () =
  (* Digitized Table 1 fractions = failed/277 within rounding. *)
  List.iter
    (fun row ->
      let fraction =
        float_of_int row.Experiments.Paper_data.cumulative_failed /. 277.0
      in
      Alcotest.(check bool) "fraction consistent" true
        (abs_float (fraction -. row.Experiments.Paper_data.cumulative_fraction) < 0.006))
    Experiments.Paper_data.table1;
  (* Monotone. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "failed monotone" true
        (a.Experiments.Paper_data.cumulative_failed
         <= b.Experiments.Paper_data.cumulative_failed);
      monotone rest
    | [ _ ] | [] -> ()
  in
  monotone Experiments.Paper_data.table1

(* ------------------------ end-to-end pipeline ----------------------- *)

let small_run =
  lazy
    (Experiments.Pipeline.execute
       { Experiments.Pipeline.default_config with
         Experiments.Pipeline.scale = 4;
         lot_size = 400;
         seed = 99;
         program_style = Experiments.Pipeline.Functional_prelude 96;
         atpg =
           { Tpg.Atpg.default_config with Tpg.Atpg.backtrack_limit = 300 } })

let test_pipeline_lot_statistics () =
  let run = Lazy.force small_run in
  (* The simulated line hits its calibration targets. *)
  Alcotest.(check bool) "yield near 7%" true
    (abs_float (Experiments.Pipeline.true_yield run -. 0.07) < 0.035);
  Alcotest.(check bool) "true n0 near 8" true
    (abs_float (Experiments.Pipeline.true_n0 run -. 8.0) < 1.0)

let test_pipeline_program_quality () =
  let run = Lazy.force small_run in
  Alcotest.(check bool) "coverage above 90%" true
    (Tester.Pattern_set.final_coverage run.Experiments.Pipeline.program > 0.90)

let test_pipeline_estimators_recover_n0 () =
  let run = Lazy.force small_run in
  let estimates = Experiments.Table1.estimates run in
  let true_n0 = estimates.Experiments.Table1.true_n0 in
  Alcotest.(check bool)
    (Printf.sprintf "fit %.2f within 25%% of true %.2f"
       estimates.Experiments.Table1.fit_n0 true_n0)
    true
    (abs_float (estimates.Experiments.Table1.fit_n0 -. true_n0) /. true_n0 < 0.25)

let test_pipeline_reject_prediction () =
  (* The model's predicted escape count at the program's final coverage
     should bracket the observed escapes loosely (it's a 400-chip
     sample). *)
  let run = Lazy.force small_run in
  let y = Experiments.Pipeline.true_yield run in
  let n0 = Experiments.Pipeline.true_n0 run in
  let f = Tester.Pattern_set.final_coverage run.Experiments.Pipeline.program in
  let predicted_escapes =
    Quality.Reject.ybg ~yield_:y ~n0 f *. float_of_int 400
  in
  let observed = Tester.Wafer_test.test_escapes run.Experiments.Pipeline.outcome in
  Alcotest.(check bool)
    (Printf.sprintf "observed %d vs predicted %.1f" observed predicted_escapes)
    true
    (float_of_int observed <= predicted_escapes +. 6.0)

let test_pipeline_rows_sane () =
  let run = Lazy.force small_run in
  let rows = Experiments.Fig5.simulated_rows run in
  Alcotest.(check bool) "several distinct checkpoints" true (List.length rows >= 5);
  List.iter
    (fun row ->
      Alcotest.(check bool) "fraction <= 1 - yield + noise" true
        (row.Tester.Wafer_test.fraction_failed <= 1.0))
    rows

let test_pipeline_summary_renders () =
  let run = Lazy.force small_run in
  let text = Experiments.Pipeline.summary run in
  Alcotest.(check bool) "mentions circuit" true
    (String.length text > 100)

let test_renderers_do_not_raise () =
  (* Smoke: every cheap renderer produces nonempty output. *)
  List.iter
    (fun (name, output) ->
      Alcotest.(check bool) name true (String.length output > 200))
    [ ("fig1", Experiments.Fig1.render ());
      ("fig6", Experiments.Fig6.render ());
      ("comparison", Experiments.Comparison.render ());
      ("fineline", Experiments.Fineline.render ());
      ("fig5-paper-only", Experiments.Fig5.render ()) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [ ( "experiments.analytic",
      [ tc "Fig.1 checkpoints" test_fig1_checkpoints;
        tc "Fig.1 series shape" test_fig1_series_shape;
        tc "Figs.2-4 checkpoints" test_fig234_checkpoints;
        tc "Figs.2-4 monotone" test_fig234_series_monotone;
        tc "Fig.6 error table" test_fig6_error_table;
        tc "Section 7 comparison" test_comparison_rows;
        tc "Section 8 directions" test_fineline_directions;
        tc "Griffin ablation monotone" test_griffin_ablation_monotone;
        tc "closed-form ablation" test_closed_form_ablation;
        tc "Fig.5 paper fit ~ 8" test_fig5_paper_fit;
        tc "paper data self-consistent" test_paper_data_self_consistent;
        tc "renderers produce output" test_renderers_do_not_raise ] );
    ( "experiments.pipeline",
      [ slow "lot statistics on target" test_pipeline_lot_statistics;
        slow "program quality" test_pipeline_program_quality;
        slow "estimators recover n0" test_pipeline_estimators_recover_n0;
        slow "reject prediction brackets escapes" test_pipeline_reject_prediction;
        slow "checkpoint rows sane" test_pipeline_rows_sane;
        slow "summary renders" test_pipeline_summary_renders ] ) ]
