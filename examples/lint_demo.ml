(* Lint walkthrough.

   Runs the static analyzer on the seeded-redundancy demo circuit,
   prints every finding, then demonstrates the point of it all for the
   paper's model: with the statically untestable faults left in the
   universe, even an exhaustive test set saturates below 100% coverage
   (Eq. 4's denominator is inflated); excluding them restores the
   ceiling to exactly 1.0. *)

let () =
  let c = Circuit.Generators.redundant_demo () in
  let report = Lint.Driver.run c in
  print_string (Lint.Driver.render_text report);

  let universe = Faults.Universe.all c in
  let width = Circuit.Netlist.num_inputs c in
  let patterns =
    Array.init (1 lsl width) (fun v ->
        Array.init width (fun i -> (v lsr i) land 1 = 1))
  in
  let profile = Fsim.Coverage.profile c universe patterns in
  Printf.printf "\nexhaustive test (%d patterns):\n" (Array.length patterns);
  Printf.printf "  raw universe (%d faults):       coverage %.4f\n"
    (Array.length universe)
    (Fsim.Coverage.final_coverage profile);
  let untestable = Lint.Driver.untestable_faults report in
  let corrected = Fsim.Coverage.excluding profile ~universe ~untestable in
  Printf.printf "  corrected universe (%d faults): coverage %.4f\n"
    corrected.Fsim.Coverage.universe_size
    (Fsim.Coverage.final_coverage corrected)
