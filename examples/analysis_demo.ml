(* Static-analysis walkthrough on the ISCAS-85 c17 benchmark.

   Shows the three products of the analysis engine and what each buys:

   - the dominator tree: which gates every fault effect from a stem is
     forced to cross on its way to an output (the backbone of unique
     sensitization in PODEM);
   - the learned implication graph: contrapositives that forward
     propagation alone cannot see, e.g. on c17 "G23=1 => G11=1" is
     learned from the direct implication "G11=0 => G23=0";
   - dominance collapsing: the fault universe a test set must target
     shrinks again beyond equivalence collapsing, and a complete test
     set still detects every dropped fault (checked here by exhaustive
     simulation). *)

let () =
  let c = Circuit.Generators.c17 () in
  let name id = c.Circuit.Netlist.node_names.(id) in
  let engine = Analysis.Engine.build ~learn_depth:(Some 2) c in
  let dom = Analysis.Engine.dominators engine in
  let imp = Option.get (Analysis.Engine.implication engine) in

  print_endline "dominator chains (nearest first):";
  for id = 0 to Circuit.Netlist.num_nodes c - 1 do
    match Analysis.Dominators.dominators dom id with
    | [] -> ()
    | chain ->
      Printf.printf "  %-4s -> %s\n" (name id)
        (String.concat " > " (List.map name chain))
  done;

  Printf.printf "\nimplications (%d, of which %d learned edges):\n"
    (Analysis.Implication.direct_count imp)
    (Analysis.Implication.learned_count imp);
  for id = 0 to Circuit.Netlist.num_nodes c - 1 do
    List.iter
      (fun v ->
        match Analysis.Implication.consequences imp id v with
        | None | Some [] -> ()
        | Some consequences ->
          Printf.printf "  %s=%d => %s\n" (name id) (if v then 1 else 0)
            (String.concat " "
               (List.map
                  (fun (m, w) ->
                    Printf.sprintf "%s=%d" (name m) (if w then 1 else 0))
                  consequences)))
      [ false; true ]
  done;

  (* Dominance collapsing: grade an exhaustive pattern set against the
     full universe, then read the coverage off the collapsed ones. *)
  let universe = Faults.Universe.all c in
  let classes = Faults.Collapse.equivalence c universe in
  let equivalence = Faults.Collapse.representatives classes in
  let dominance = Faults.Collapse.dominance c classes in
  let width = Circuit.Netlist.num_inputs c in
  let patterns =
    Array.init (1 lsl width) (fun v ->
        Array.init width (fun i -> (v lsr i) land 1 = 1))
  in
  let profile = Fsim.Coverage.profile c universe patterns in
  let on subset = Fsim.Coverage.restrict profile ~universe ~keep:subset in
  Printf.printf
    "\nexhaustive test (%d patterns):\n\
    \  full universe        %2d faults  coverage %.4f\n\
    \  equivalence classes  %2d faults  coverage %.4f\n\
    \  after dominance      %2d faults  coverage %.4f\n"
    (Array.length patterns)
    (Array.length universe)
    (Fsim.Coverage.final_coverage profile)
    (Array.length equivalence)
    (Fsim.Coverage.final_coverage (on equivalence))
    (Array.length dominance)
    (Fsim.Coverage.final_coverage (on dominance));

  (* Every dominance-dropped fault is covered by any test set complete
     for its dominators — the guarantee the collapse rests on. *)
  List.iter
    (fun (dropped, dominators) ->
      Printf.printf "  dropped %-12s dominated by %s\n"
        (Faults.Fault.to_string c dropped)
        (String.concat ", "
           (List.map (Faults.Fault.to_string c) dominators)))
    (Faults.Collapse.dominance_drops c classes)
