(* Equivalence-checking walkthrough.

   Loads the full-adder pair (equiv_pair_a/b.bench: XOR/AND-OR carry
   chain vs majority form) and the one-gate-off mutant, checks both
   pairs with the shared-ROBDD engine, and validates the extracted
   counterexample by plain simulation — the distinguishing pattern
   really does produce different outputs.

   Run from the repository root (paths are overridable):
     dune exec examples/equiv_demo.exe [A.bench B.bench MUTANT.bench] *)

let default_paths =
  ( "examples/circuits/equiv_pair_a.bench",
    "examples/circuits/equiv_pair_b.bench",
    "examples/circuits/equiv_mutant.bench" )

let () =
  let path_a, path_b, path_m =
    match Sys.argv with
    | [| _; a; b; m |] -> (a, b, m)
    | _ -> default_paths
  in
  let a = Circuit.Bench_format.parse_file path_a in
  let b = Circuit.Bench_format.parse_file path_b in
  let mutant = Circuit.Bench_format.parse_file path_m in
  Format.printf "A: %a@.B: %a@.@." Circuit.Netlist.pp_summary a
    Circuit.Netlist.pp_summary b;

  (match Bdd.Equiv.check a b with
  | Ok Bdd.Equiv.Equivalent ->
    print_endline "A == B: the carry chain and the majority form agree on all 8 input vectors"
  | _ -> failwith "expected the pair to be equivalent");

  print_newline ();
  match Bdd.Equiv.check a mutant with
  | Ok (Bdd.Equiv.Mismatch { output; pattern }) ->
    Printf.printf "A != mutant: output %s differs; counterexample:\n" output;
    List.iter
      (fun (name, v) -> Printf.printf "  %s = %d\n" name (if v then 1 else 0))
      pattern;
    (* Replay the counterexample on both machines to show it is real. *)
    let inputs c =
      Array.map
        (fun id ->
          List.assoc c.Circuit.Netlist.node_names.(id) pattern)
        c.Circuit.Netlist.inputs
    in
    let out c =
      let values = Logicsim.Refsim.eval c (inputs c) in
      Array.map
        (fun id -> (c.Circuit.Netlist.node_names.(id), values.(id)))
        c.Circuit.Netlist.outputs
    in
    let show (name, v) = Printf.sprintf "%s=%d" name (if v then 1 else 0) in
    Printf.printf "  A:      %s\n"
      (String.concat " " (Array.to_list (Array.map show (out a))));
    Printf.printf "  mutant: %s\n"
      (String.concat " " (Array.to_list (Array.map show (out mutant))))
  | _ -> failwith "expected the mutant to mismatch"
