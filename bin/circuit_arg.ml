(* Shared circuit-selection argument for the CLI: a builtin generator
   spec (see {!Circuit.Generators.of_spec}) or a path to a .bench file. *)

let parse spec =
  if Sys.file_exists spec && not (Sys.is_directory spec) then
    Circuit.Bench_format.parse_file spec
  else Circuit.Generators.of_spec spec

let conv =
  let parser s =
    match parse s with
    | c -> Ok c
    | exception Failure message -> Error (`Msg message)
    | exception Invalid_argument message -> Error (`Msg message)
    | exception Sys_error message -> Error (`Msg message)
    | exception Circuit.Netlist.Cycle name ->
      Error (`Msg (Printf.sprintf "netlist has a combinational cycle through %s" name))
    | exception Circuit.Bench_format.Parse_error { line; message } ->
      Error (`Msg (Printf.sprintf "parse error at line %d: %s" line message))
  in
  let printer ppf (c : Circuit.Netlist.t) =
    Format.pp_print_string ppf c.Circuit.Netlist.name
  in
  Cmdliner.Arg.conv (parser, printer)
