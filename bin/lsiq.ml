(* lsiq - LSI product quality and fault coverage toolkit.

   Command-line front end over the reproduction libraries: the paper's
   model (reject rates, coverage requirements, n0 estimation) plus the
   substrate (fault simulation, ATPG, lot simulation). *)

open Cmdliner

(* --------------------------- common args --------------------------- *)

let yield_arg =
  let doc = "Process yield y (probability a chip is fault-free)." in
  Arg.(required & opt (some float) None & info [ "y"; "yield" ] ~docv:"Y" ~doc)

let n0_arg =
  let doc = "Average number of faults on a defective chip (n0 >= 1)." in
  Arg.(value & opt float 8.0 & info [ "n0" ] ~docv:"N0" ~doc)

let reject_arg =
  let doc = "Target field reject rate, e.g. 0.001 for 1-in-1000." in
  Arg.(value & opt float 0.001 & info [ "r"; "reject" ] ~docv:"R" ~doc)

let seed_arg =
  let doc = "Random seed (all simulations are deterministic in it)." in
  Arg.(value & opt int 1981 & info [ "seed" ] ~docv:"SEED" ~doc)

let positive_int ~what =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "expected %s >= 1, got %d" what n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let domains_arg =
  let doc =
    "Shard fault simulation across $(docv) OCaml domains (the multicore PPSFP \
     engine; results are bit-identical to the serial engines)."
  in
  Arg.(value & opt (some (positive_int ~what:"a domain count")) None
       & info [ "domains" ] ~docv:"N" ~doc)

let n_detect_arg =
  let doc =
    "Additionally grade n-detection coverage: a fault counts as covered only \
     once $(docv) distinct patterns have detected it (drop-after-n fault \
     simulation).  With $(docv)=1 this reproduces the ordinary coverage \
     bit-identically."
  in
  Arg.(value & opt (some (positive_int ~what:"a detection count")) None
       & info [ "n-detect" ] ~docv:"N" ~doc)

let circuit_arg =
  let doc =
    "Circuit: builtin spec (c17, rca:N, mul:N, alu:N, parity:N, mux:K, dec:N, \
     cmp:N, lsi:S, rand:i,g,o,seed) or a .bench file path."
  in
  Arg.(value & opt Circuit_arg.conv (Circuit.Generators.c17 ()) &
       info [ "c"; "circuit" ] ~docv:"CIRCUIT" ~doc)

(* ------------------------- observability --------------------------- *)

let trace_arg =
  let doc =
    "Record a span trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (open in chrome://tracing or Perfetto); an ASCII \
     summary tree goes to stderr."
  in
  let env = Cmd.Env.info "LSIQ_TRACE" ~doc:"Fallback trace file when --trace is absent." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~env ~doc)

let metrics_arg =
  let doc =
    "Collect metrics (counters, gauges, histograms; patterns/sec, shard \
     imbalance, GC deltas) during the run and dump them to stderr at exit."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let journal_arg =
  let doc =
    "Write a structured JSONL run journal to $(docv): a run_start header \
     (argv, seed, host, git revision), throttled progress events from the \
     hot loops, a metrics snapshot when $(b,--metrics) is also given, and a \
     closing run_end with the headline results.  Render it later with \
     $(b,lsiq report)."
  in
  let env =
    Cmd.Env.info "LSIQ_JOURNAL" ~doc:"Fallback journal file when --journal is absent."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~env ~doc)

let progress_arg =
  let doc =
    "Print live progress lines (items done, EWMA rate, ETA) to stderr, at \
     most one per task per $(docv) seconds.  The value must be glued on: \
     $(b,--progress=0) emits on every batch (deterministic event streams \
     for tests); plain $(b,--progress) defaults to 0.5s."
  in
  Arg.(value & opt ~vopt:(Some 0.5) (some float) None
       & info [ "progress" ] ~docv:"SECS" ~doc)

let exact_arg =
  let doc =
    "Additionally run the exact ROBDD analysis with node budget $(docv): \
     complete redundancy identification and exact detection probabilities \
     wherever the budget holds, sound interval fallback where it does not.  \
     The value must be glued on ($(b,--exact=200000)); plain $(b,--exact) \
     uses the default budget of 1000000 nodes."
  in
  Arg.(value
       & opt ~vopt:(Some Analysis.Exact.default_budget) (some int) None
       & info [ "exact" ] ~docv:"NODES" ~doc)

(* --------------------------- robustness ---------------------------- *)

let deadline_arg =
  let doc =
    "Cooperative wall-clock deadline for the run, in seconds.  When it \
     expires the engines stop at their next safe point (a 64-pattern block, \
     a PODEM backtrack, a die) and the command reports whatever partial \
     result is well-defined; a command with nothing printable exits 130 \
     after flushing its checkpoint."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let checkpoint_arg =
  let doc =
    "Crash-safe checkpoint file (atomic tmp+rename JSONL).  The run \
     snapshots its incremental state there; $(b,--resume) continues from \
     the last complete snapshot with bit-identical final results."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc =
    "Checkpoint cadence: snapshot after every $(docv) units of work \
     (patterns for fsim, fault targets for atpg, dies for simulate-lot)."
  in
  Arg.(value & opt (positive_int ~what:"a checkpoint cadence") 1024
       & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let resume_arg =
  let doc = "Resume from the $(b,--checkpoint) file instead of starting over." in
  Arg.(value & flag & info [ "resume" ] ~doc)

(* Manual flag validation: combinations cmdliner cannot express are
   usage errors — message on stderr, exit 2, before any work or obs
   state exists. *)
let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "lsiq: %s\n" msg;
      exit 2)
    fmt

(* Validate the shared robustness flags and build the run's cancel
   token with SIGINT/SIGTERM pointed at it. *)
let robust_setup ~deadline ~checkpoint ~resume =
  (match deadline with
  | Some d when d <= 0.0 -> usage_error "--deadline must be > 0 (got %g)" d
  | _ -> ());
  if resume && checkpoint = None then
    usage_error "--resume requires --checkpoint FILE";
  let cancel = Robust.Cancel.create ?deadline_s:deadline () in
  Robust.Signals.install cancel;
  cancel

(* After a command printed its (possibly partial) result: a note about
   why the run stopped early, and the 130 exit for signal deaths. *)
let robust_finish ?(note = "") cancel =
  match Robust.Cancel.reason cancel with
  | None -> ()
  | Some reason ->
    Printf.eprintf "lsiq: stopped early (%s)%s\n"
      (Robust.Cancel.reason_to_string reason)
      note;
    if Robust.Signals.interrupted cancel then
      exit Robust.Signals.exit_interrupted

(* Enable the obs subsystem around [f], then emit: the Chrome trace to
   the requested file (summary tree to stderr), metrics text to stderr,
   journal events to the --journal file, progress lines to stderr.
   All obs output is status, never data — stdout stays pipe-clean.
   [cancel] classifies the journal outcome: a run whose token fired
   ends [Interrupted], not [Finished]/[Failed]. *)
let with_obs ?seed ?circuit ?(cancel = Robust.Cancel.none) ~trace ~metrics
    ~journal ~progress f =
  let classify_ok () =
    if Robust.Cancel.stop_requested cancel then Obs.Journal.Interrupted
    else Obs.Journal.Finished
  in
  let classify_exn = function
    | Experiments.Pipeline.Interrupted _ -> Obs.Journal.Interrupted
    | e -> Obs.Journal.Failed (Printexc.to_string e)
  in
  if trace = None && not metrics && journal = None && progress = None then f ()
  else begin
    if trace <> None then begin
      Obs.Trace.reset ();
      Obs.Trace.set_enabled true
    end;
    if metrics then begin
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled true
    end;
    (match journal with
    | Some path ->
      Obs.Journal.attach ~path;
      Obs.Journal.set_enabled true;
      Obs.Journal.run_start ~argv:Sys.argv ?seed ?circuit ()
    | None -> ());
    if journal <> None || progress <> None then begin
      (* stderr lines only under --progress; with --journal alone the
         events flow silently to the file. *)
      let printer =
        match progress with
        | Some _ -> Some (fun line -> prerr_string line; flush stderr)
        | None -> None
      in
      let interval_s = match progress with Some s -> s | None -> 0.5 in
      Obs.Progress.configure ~interval_s ~printer ();
      Obs.Progress.set_enabled true
    end;
    let finish outcome =
      Obs.Trace.set_enabled false;
      Obs.Metrics.set_enabled false;
      Obs.Progress.set_enabled false;
      (match trace with
      | Some path ->
        let oc = open_out path in
        output_string oc
          (Report.Json.to_string_pretty (Obs.Trace.to_chrome_json ()));
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "trace: wrote %s (%d spans)\n" path
          (List.length (Obs.Trace.spans ()));
        prerr_string (Obs.Trace.summary_tree ())
      | None -> ());
      if metrics then begin
        prerr_newline ();
        prerr_string (Obs.Metrics.render_text ())
      end;
      if journal <> None then begin
        if metrics then Obs.Journal.metrics_snapshot (Obs.Metrics.snapshot ());
        Obs.Journal.run_end ~outcome;
        Obs.Journal.set_enabled false;
        Obs.Journal.detach ()
      end;
      flush stderr
    in
    (* Not Fun.protect: run_end must record how the run ended. *)
    match f () with
    | v -> finish (classify_ok ()); v
    | exception e ->
      finish (classify_exn e);
      raise e
  end

(* --------------------------- reject-rate --------------------------- *)

let reject_rate_cmd =
  let coverage =
    Arg.(required & opt (some float) None & info [ "f"; "coverage" ] ~docv:"F"
           ~doc:"Fault coverage of the test set, in [0,1].")
  in
  let action y n0 f =
    Printf.printf "field reject rate  r(f) = %.6f\n"
      (Quality.Reject.reject_rate ~yield_:y ~n0 f);
    Printf.printf "bad-chips-passing  Ybg  = %.6f\n" (Quality.Reject.ybg ~yield_:y ~n0 f);
    Printf.printf "fraction rejected  P(f) = %.6f\n"
      (Quality.Reject.p_reject ~yield_:y ~n0 f);
    Printf.printf "baseline (Wadsack) r    = %.6f\n"
      (Quality.Wadsack.reject_rate ~yield_:y f)
  in
  let doc = "Field reject rate for a given coverage (paper Eq. 7-9)." in
  Cmd.v (Cmd.info "reject-rate" ~doc)
    Term.(const action $ yield_arg $ n0_arg $ coverage)

(* ------------------------ required-coverage ------------------------ *)

let required_coverage_cmd =
  let action y n0 reject =
    (match Quality.Requirement.required_coverage ~yield_:y ~n0 ~reject with
    | Some f -> Printf.printf "required coverage (this model): %.4f\n" f
    | None -> print_endline "required coverage (this model): unreachable");
    (match Quality.Wadsack.required_coverage ~yield_:y ~reject with
    | Some f -> Printf.printf "required coverage (Wadsack):    %.4f\n" f
    | None -> print_endline "required coverage (Wadsack):    unreachable");
    match Quality.Williams_brown.required_coverage ~yield_:y ~defect_level:reject with
    | Some f -> Printf.printf "required coverage (Williams-Brown): %.4f\n" f
    | None -> print_endline "required coverage (Williams-Brown): n/a"
  in
  let doc = "Coverage needed for a target reject rate (paper Eq. 8/11, Figs. 2-4)." in
  Cmd.v (Cmd.info "required-coverage" ~doc)
    Term.(const action $ yield_arg $ n0_arg $ reject_arg)

(* --------------------------- estimate-n0 --------------------------- *)

let estimate_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CSV"
           ~doc:"CSV file with two columns: coverage (0..1), fraction failed.")
  in
  let yield_opt =
    Arg.(value & opt (some float) None & info [ "y"; "yield" ] ~docv:"Y"
           ~doc:"Known process yield; when omitted, jointly estimated.")
  in
  let action path yield_opt =
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let points =
      Report.Csv.parse text
      |> List.filter_map (fun row ->
             match row with
             | [ a; b ] ->
               (match (float_of_string_opt a, float_of_string_opt b) with
               | Some coverage, Some fraction_failed ->
                 Some { Quality.Estimate.coverage; fraction_failed }
               | _ -> None (* header or malformed row *))
             | _ -> None)
    in
    if points = [] then failwith "no (coverage, fraction) rows found";
    (match yield_opt with
    | Some y ->
      let n0, residual = Quality.Estimate.fit_n0 ~yield_:y points in
      Printf.printf "least-squares fit: n0 = %.2f (residual %.3g)\n" n0 residual;
      Printf.printf "slope estimate:    n0 = %.2f (P'(0) = %.2f)\n"
        (Quality.Estimate.slope_n0 ~yield_:y points)
        (Quality.Estimate.slope_nav points)
    | None ->
      let n0, y, residual = Quality.Estimate.fit_n0_and_yield points in
      Printf.printf "joint fit: n0 = %.2f, yield = %.3f (residual %.3g)\n" n0 y residual;
      Printf.printf "slope estimate (yield-free, pessimistic): n0 ~ %.2f\n"
        (Quality.Estimate.slope_nav points))
  in
  let doc = "Estimate n0 from wafer-test data (paper Section 5)." in
  Cmd.v (Cmd.info "estimate-n0" ~doc) Term.(const action $ data $ yield_opt)

(* --------------------------- simulate-lot -------------------------- *)

let simulate_lot_cmd =
  let scale =
    Arg.(value & opt int 6 & info [ "scale" ] ~docv:"S" ~doc:"lsi_chip scale.")
  in
  let chips =
    Arg.(value & opt int 277 & info [ "chips" ] ~docv:"N" ~doc:"Lot size.")
  in
  let target_yield =
    Arg.(value & opt float 0.07 & info [ "target-yield" ] ~docv:"Y"
           ~doc:"Process yield to calibrate the line to.")
  in
  let clustered =
    Arg.(value & flag & info [ "clustered" ]
           ~doc:"Use the physical clustered-defect line instead of the ideal \
                 Eq. 1 line.")
  in
  let exclude_untestable =
    Arg.(value & flag & info [ "exclude-untestable" ]
           ~doc:"Statically prove untestable faults (lint subsystem) and drop \
                 them from the fault universe, correcting the coverage \
                 denominator.")
  in
  let collapse_dominance =
    Arg.(value & flag & info [ "collapse-dominance" ]
           ~doc:"Use the dominance-collapsed fault universe instead of the \
                 plain equivalence representatives (composes with \
                 --exclude-untestable).")
  in
  let action scale chips target_yield n0 clustered exclude_untestable
      collapse_dominance n_detect seed domains deadline checkpoint every resume
      trace metrics journal progress =
    let cancel = robust_setup ~deadline ~checkpoint ~resume in
    (try
       with_obs ~seed ~cancel ~trace ~metrics ~journal ~progress @@ fun () ->
       let config =
         { Experiments.Pipeline.default_config with
           Experiments.Pipeline.scale; lot_size = chips; target_yield;
           target_n0 = n0; seed; exclude_untestable; collapse_dominance;
           n_detect;
           line = (if clustered then Experiments.Pipeline.Clustered
                   else Experiments.Pipeline.Ideal);
           fsim_engine =
             (match domains with
             | Some n -> Fsim.Coverage.Par { domains = n }
             | None -> Experiments.Pipeline.default_config.fsim_engine) }
       in
       let lot_checkpoint =
         Option.map
           (fun path -> { Experiments.Pipeline.path; every; resume })
           checkpoint
       in
       let run = Experiments.Pipeline.execute ~cancel ?lot_checkpoint config in
       print_string (Experiments.Pipeline.summary run);
       print_newline ();
       print_string (Experiments.Table1.render ~run ());
       match Tester.Pattern_set.n_detect run.Experiments.Pipeline.program with
       | None -> ()
       | Some cs ->
         (* The same lot read off the n-detect coverage axis: each row
            sits at the first pattern count whose n-detect coverage
            reaches the checkpoint. *)
         Printf.printf "\nn-detect rows (coverage = %d-detect):\n"
           cs.Fsim.Coverage.require;
         List.iter
           (fun row ->
             Printf.printf
               "  coverage %.3f  after %4d patterns  failed %3d (%.3f)\n"
               row.Tester.Wafer_test.coverage
               row.Tester.Wafer_test.patterns_applied
               row.Tester.Wafer_test.cumulative_failed
               row.Tester.Wafer_test.fraction_failed)
           (Tester.Wafer_test.rows_at_n_detect_coverages
              run.Experiments.Pipeline.outcome run.Experiments.Pipeline.program
              ~coverages:[ 0.25; 0.5; 0.75; 0.9; 0.95 ])
     with
    | Experiments.Pipeline.Interrupted reason ->
      (* A lot run with no complete outcome has nothing printable: note
         where the durable progress lives and exit 130 whatever the
         cancel source (signal or deadline). *)
      Printf.eprintf "lsiq: interrupted (%s)%s\n"
        (Robust.Cancel.reason_to_string reason)
        (match checkpoint with
        | Some path ->
          Printf.sprintf "; progress durable in %s (--resume continues)" path
        | None -> "");
      exit Robust.Signals.exit_interrupted
    | Robust.Checkpoint.Mismatch msg ->
      Printf.eprintf "lsiq: %s\n" msg;
      exit 2);
    robust_finish cancel
  in
  let doc = "Simulate a chip lot end-to-end and print its Table-1 analogue." in
  Cmd.v (Cmd.info "simulate-lot" ~doc)
    Term.(const action $ scale $ chips $ target_yield $ n0_arg $ clustered
          $ exclude_untestable $ collapse_dominance $ n_detect_arg $ seed_arg
          $ domains_arg $ deadline_arg $ checkpoint_arg $ checkpoint_every_arg
          $ resume_arg $ trace_arg $ metrics_arg $ journal_arg $ progress_arg)

(* ------------------------------ fsim ------------------------------- *)

let fsim_cmd =
  let patterns =
    Arg.(value & opt int 256 & info [ "n"; "patterns" ] ~docv:"N"
           ~doc:"Number of random patterns to grade.")
  in
  let engine =
    Arg.(value & opt (some (enum [ ("serial", Fsim.Coverage.Serial);
                                   ("ppsfp", Fsim.Coverage.Parallel);
                                   ("deductive", Fsim.Coverage.Deductive);
                                   ("concurrent", Fsim.Coverage.Concurrent) ]))
           None
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"serial, ppsfp, deductive or concurrent (default ppsfp).  \
                   Conflicts with $(b,--domains), which selects the \
                   multicore par engine.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Emit the coverage curve as CSV (patterns, coverage) on \
                 stdout; status text goes to stderr.")
  in
  let collapse_dominance =
    Arg.(value & flag & info [ "collapse-dominance" ]
           ~doc:"Grade the dominance-collapsed universe instead of the plain \
                 equivalence representatives.")
  in
  let action circuit count engine seed domains collapse_dominance n_detect csv
      deadline checkpoint every resume trace metrics journal progress =
    let engine =
      match (engine, domains) with
      | Some _, Some _ ->
        usage_error
          "--engine conflicts with --domains (--domains selects the multicore \
           par engine)"
      | Some e, None -> e
      | None, Some n -> Fsim.Coverage.Par { domains = n }
      | None, None -> Fsim.Coverage.Parallel
    in
    let cancel = robust_setup ~deadline ~checkpoint ~resume in
    let note =
      try
        with_obs ~seed ~circuit:circuit.Circuit.Netlist.name ~cancel ~trace
          ~metrics ~journal ~progress
        @@ fun () ->
        let rng = Stats.Rng.create ~seed () in
        let universe = Faults.Universe.all circuit in
        let classes = Faults.Collapse.equivalence circuit universe in
        let reps =
          if collapse_dominance then Faults.Collapse.dominance circuit classes
          else Faults.Collapse.representatives classes
        in
        let patterns = Tpg.Random_tpg.uniform rng circuit ~count in
        let profile, note =
          match checkpoint with
          | None ->
            (Fsim.Coverage.profile ~engine ~cancel circuit reps patterns, "")
          | Some path ->
            (match
               Fsim.Restart.run ~engine ~cancel ~every ~resume ~checkpoint:path
                 ~seed circuit reps patterns
             with
            | Error msg -> raise (Robust.Checkpoint.Mismatch msg)
            | Ok o ->
              let note =
                if o.Fsim.Restart.completed then ""
                else
                  Printf.sprintf
                    "; %d/%d patterns graded, durable in %s (--resume \
                     continues)"
                    o.Fsim.Restart.patterns_done count path
              in
              (o.Fsim.Restart.profile, note))
        in
        let ndetect_counts =
          Option.map
            (fun n ->
              Fsim.Coverage.detection_counts ~engine ~cancel ~n circuit reps
                patterns)
            n_detect
        in
    (* Progress/status on stderr; only the results on stdout, so
       `--csv` output pipes clean. *)
    Format.eprintf "%a@." Circuit.Netlist.pp_summary circuit;
    Printf.eprintf "universe: %d faults (%d after collapsing, ratio %.2f)\n"
      (Array.length universe) (Array.length reps)
      (Faults.Collapse.collapse_ratio classes);
    Printf.eprintf "patterns: %d random\n%!" count;
    let curve = Fsim.Coverage.curve profile in
    if csv then begin
      match ndetect_counts with
      | None ->
        print_string
          (Report.Csv.of_rows
             ([ "patterns"; "coverage" ]
             :: (Array.to_list curve
                |> List.map (fun (k, f) ->
                       [ string_of_int k; Printf.sprintf "%.6f" f ]))))
      | Some cs ->
        let ncurve = Fsim.Coverage.curve (Fsim.Coverage.n_detect_profile cs) in
        print_string
          (Report.Csv.of_rows
             ([ "patterns"; "coverage"; "ndetect_coverage" ]
             :: (Array.to_list curve
                |> List.mapi (fun i (k, f) ->
                       [ string_of_int k;
                         Printf.sprintf "%.6f" f;
                         Printf.sprintf "%.6f" (snd ncurve.(i)) ]))))
    end
    else begin
      Printf.printf "coverage: %.2f%% (%d detected, %d undetected)\n"
        (100.0 *. Fsim.Coverage.final_coverage profile)
        (Fsim.Coverage.detected_count profile)
        (Array.length reps - Fsim.Coverage.detected_count profile);
      (match ndetect_counts with
      | None -> ()
      | Some cs ->
        Printf.printf "n-detect coverage (n=%d): %.2f%%\n"
          cs.Fsim.Coverage.require
          (100.0 *. Fsim.Coverage.n_detect_coverage cs));
      let step = max 1 (Array.length curve / 16) in
      Array.iteri
        (fun i (k, f) ->
          if i mod step = 0 || i = Array.length curve - 1 then
            Printf.printf "  after %5d patterns: %.2f%%\n" k (100.0 *. f))
        curve
    end;
        note
      with Robust.Checkpoint.Mismatch msg ->
        Printf.eprintf "lsiq: %s\n" msg;
        exit 2
    in
    robust_finish ~note cancel
  in
  let doc = "Fault-simulate random patterns and print the coverage curve." in
  Cmd.v (Cmd.info "fsim" ~doc)
    Term.(const action $ circuit_arg $ patterns $ engine $ seed_arg
          $ domains_arg $ collapse_dominance $ n_detect_arg $ csv
          $ deadline_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
          $ trace_arg $ metrics_arg $ journal_arg $ progress_arg)

(* ------------------------------ atpg ------------------------------- *)

let atpg_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write generated patterns (one 0/1 row per pattern) to FILE.")
  in
  let use_analysis =
    Arg.(value & flag & info [ "use-analysis" ]
           ~doc:"Build the static implication & dominator engine once and \
                 let PODEM use it: sound pre-search untestability \
                 verdicts, unique sensitization, learned-implication \
                 pruning.  Verdicts are unchanged; search effort shrinks.")
  in
  let learn_depth =
    Arg.(value & opt int 1 & info [ "learn-depth" ] ~docv:"N"
           ~doc:"Implication learning sweeps for $(b,--use-analysis).")
  in
  let backtrack_limit =
    Arg.(value
         & opt (positive_int ~what:"a backtrack limit")
             Tpg.Atpg.default_config.Tpg.Atpg.backtrack_limit
         & info [ "backtrack-limit" ] ~docv:"N"
             ~doc:"Per-fault PODEM backtrack budget; a fault whose search \
                   exceeds it counts as aborted.")
  in
  let podem_budget =
    Arg.(value & opt (some float) None & info [ "podem-budget" ] ~docv:"SECS"
           ~doc:"Per-fault PODEM wall-clock budget; a fault whose search \
                 exceeds it counts as aborted.  Makes verdicts \
                 timing-dependent — prefer $(b,--backtrack-limit) for \
                 reproducible runs.")
  in
  let action circuit out seed use_analysis learn_depth exact backtrack_limit
      podem_budget deadline checkpoint every resume trace metrics journal
      progress =
    (match podem_budget with
    | Some b when b <= 0.0 -> usage_error "--podem-budget must be > 0 (got %g)" b
    | _ -> ());
    let cancel = robust_setup ~deadline ~checkpoint ~resume in
    let note =
      try
        with_obs ~seed ~circuit:circuit.Circuit.Netlist.name ~cancel ~trace
          ~metrics ~journal ~progress
        @@ fun () ->
        let universe = Faults.Universe.all circuit in
        let classes = Faults.Collapse.equivalence circuit universe in
        let reps = Faults.Collapse.representatives classes in
        let config =
          { Tpg.Atpg.default_config with
            Tpg.Atpg.seed; use_analysis; learn_depth; exact_budget = exact;
            backtrack_limit; podem_time_budget_s = podem_budget }
        in
        let checkpointing =
          Option.map (fun path -> { Tpg.Atpg.path; every; resume }) checkpoint
        in
        let report =
          Tpg.Atpg.run ~config ~cancel ?checkpoint:checkpointing circuit reps
        in
        Format.eprintf "%a@." Circuit.Netlist.pp_summary circuit;
        Printf.printf "faults: %d collapsed\n" (Array.length reps);
        Printf.printf "patterns: %d (%d random + %d deterministic)\n"
          (Array.length report.Tpg.Atpg.patterns)
          report.Tpg.Atpg.random_patterns
          report.Tpg.Atpg.deterministic_patterns;
        Printf.printf "coverage: %.2f%%\n" (100.0 *. Tpg.Atpg.coverage report);
        Printf.printf "untestable (proved redundant): %d\n"
          report.Tpg.Atpg.untestable;
        Printf.printf "aborted: %d\n" report.Tpg.Atpg.aborted;
        if report.Tpg.Atpg.unknown > 0 then
          Printf.printf "unknown (no verdict before cancellation): %d\n"
            report.Tpg.Atpg.unknown;
        (match out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          Array.iter
            (fun pattern ->
              Array.iter
                (fun b -> output_char oc (if b then '1' else '0'))
                pattern;
              output_char oc '\n')
            report.Tpg.Atpg.patterns;
          close_out oc;
          Printf.eprintf "patterns written to %s\n" path);
        if report.Tpg.Atpg.unknown = 0 then ""
        else
          Printf.sprintf "; %d targets unresolved%s" report.Tpg.Atpg.unknown
            (match checkpoint with
            | Some path ->
              Printf.sprintf ", durable in %s (--resume continues)" path
            | None -> "")
      with Robust.Checkpoint.Mismatch msg ->
        Printf.eprintf "lsiq: %s\n" msg;
        exit 2
    in
    robust_finish ~note cancel
  in
  let doc = "Generate a test set (random + PODEM) for a circuit." in
  Cmd.v (Cmd.info "atpg" ~doc)
    Term.(const action $ circuit_arg $ out $ seed_arg $ use_analysis
          $ learn_depth $ exact_arg $ backtrack_limit $ podem_budget
          $ deadline_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
          $ trace_arg $ metrics_arg $ journal_arg $ progress_arg)

(* ------------------------------ convert ----------------------------- *)

let convert_cmd =
  let bench_out =
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"FILE"
           ~doc:"Write the netlist in .bench format.")
  in
  let verilog_out =
    Arg.(value & opt (some string) None & info [ "verilog" ] ~docv:"FILE"
           ~doc:"Write the netlist as structural Verilog.")
  in
  let action circuit bench_out verilog_out =
    Format.eprintf "%a@." Circuit.Netlist.pp_summary circuit;
    (match bench_out with
    | Some path ->
      Circuit.Bench_format.write_file path circuit;
      Printf.eprintf "wrote %s\n" path
    | None -> ());
    match verilog_out with
    | Some path ->
      Circuit.Verilog.write_file path circuit;
      Printf.eprintf "wrote %s\n" path
    | None -> ()
  in
  let doc = "Convert a circuit between generator specs, .bench and Verilog." in
  Cmd.v (Cmd.info "convert" ~doc)
    Term.(const action $ circuit_arg $ bench_out $ verilog_out)

(* ----------------------------- diagnose ----------------------------- *)

let diagnose_cmd =
  let patterns_count =
    Arg.(value & opt int 128 & info [ "n"; "patterns" ] ~docv:"N"
           ~doc:"Random patterns in the diagnostic program.")
  in
  let fault_index =
    Arg.(value & opt (some int) None & info [ "inject" ] ~docv:"I"
           ~doc:"Universe index of the fault to inject (default: random).")
  in
  let action circuit count fault_index seed =
    let rng = Stats.Rng.create ~seed () in
    let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
    let universe = Faults.Collapse.representatives classes in
    let patterns = Tpg.Random_tpg.uniform rng circuit ~count in
    let dictionary = Fsim.Diagnosis.build circuit universe patterns in
    let distinguishable, total = Fsim.Diagnosis.distinguishable_pairs dictionary in
    Printf.printf "dictionary: %d faults x %d patterns; resolution %d/%d pairs\n"
      (Array.length universe) count distinguishable total;
    let culprit =
      match fault_index with
      | Some i when i >= 0 && i < Array.length universe -> i
      | Some _ -> failwith "fault index out of range"
      | None -> Stats.Rng.int rng (Array.length universe)
    in
    Printf.printf "injected: %s\n"
      (Faults.Fault.to_string circuit universe.(culprit));
    let observation = Fsim.Diagnosis.observe circuit [| universe.(culprit) |] patterns in
    Printf.printf "observed %d failing patterns\n" (List.length observation);
    (match Fsim.Diagnosis.exact_matches dictionary observation with
    | [] -> print_endline "no exact match (escaped or unmodeled)"
    | matches ->
      Printf.printf "exact matches:\n";
      List.iter
        (fun i ->
          Printf.printf "  %s%s\n"
            (Faults.Fault.to_string circuit universe.(i))
            (if i = culprit then "  <- injected" else ""))
        matches)
  in
  let doc = "Build a fault dictionary and diagnose an injected fault." in
  Cmd.v (Cmd.info "diagnose" ~doc)
    Term.(const action $ circuit_arg $ patterns_count $ fault_index $ seed_arg)

(* ------------------------------ compact ----------------------------- *)

let compact_cmd =
  let action circuit seed =
    let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
    let universe = Faults.Collapse.representatives classes in
    let config = { Tpg.Atpg.default_config with Tpg.Atpg.seed } in
    let report = Tpg.Atpg.run ~config circuit universe in
    let original = Array.length report.Tpg.Atpg.patterns in
    let reverse = Tpg.Compact.reverse_order circuit universe report.Tpg.Atpg.patterns in
    let forward = Tpg.Compact.forward_order circuit universe report.Tpg.Atpg.patterns in
    Printf.printf "original: %d patterns, coverage %.2f%%\n" original
      (100.0 *. Tpg.Atpg.coverage report);
    Printf.printf "reverse-order compaction: %d patterns (%.0f%%)\n"
      (Array.length reverse.Tpg.Compact.kept)
      (100.0 *. Tpg.Compact.compaction_ratio reverse);
    Printf.printf "forward-order compaction: %d patterns (%.0f%%)\n"
      (Array.length forward.Tpg.Compact.kept)
      (100.0 *. Tpg.Compact.compaction_ratio forward)
  in
  let doc = "Generate a test set and statically compact it." in
  Cmd.v (Cmd.info "compact" ~doc) Term.(const action $ circuit_arg $ seed_arg)

(* ------------------------------ stafan ------------------------------ *)

let stafan_cmd =
  let patterns_count =
    Arg.(value & opt int 128 & info [ "n"; "patterns" ] ~docv:"N"
           ~doc:"Random patterns to analyze.")
  in
  let action circuit count seed =
    let rng = Stats.Rng.create ~seed () in
    let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
    let universe = Faults.Collapse.representatives classes in
    let patterns = Tpg.Random_tpg.uniform rng circuit ~count in
    let st = Fsim.Stafan.analyze circuit patterns in
    let profile = Fsim.Coverage.profile circuit universe patterns in
    Printf.printf "%-10s %-12s %-12s\n" "patterns" "actual" "STAFAN";
    List.iter
      (fun k ->
        if k <= count then
          Printf.printf "%-10d %-12.4f %-12.4f\n" k
            (Fsim.Coverage.coverage_after profile k)
            (Fsim.Stafan.expected_coverage st universe ~pattern_count:k))
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ];
    (* The ten hardest faults by SCOAP, with their STAFAN detection
       probabilities. *)
    let scoap = Tpg.Scoap.analyze circuit in
    print_endline "\nhardest faults (SCOAP difficulty | STAFAN detection probability):";
    List.iter
      (fun (fault, difficulty) ->
        Printf.printf "  %-20s %8d   %.6f\n"
          (Faults.Fault.to_string circuit fault)
          difficulty
          (Fsim.Stafan.detection_probability st fault))
      (Tpg.Scoap.hardest_faults scoap circuit universe ~count:10)
  in
  let doc = "Statistical fault analysis: coverage prediction without fault simulation." in
  Cmd.v (Cmd.info "stafan" ~doc)
    Term.(const action $ circuit_arg $ patterns_count $ seed_arg)

(* ------------------------------ sample ------------------------------ *)

let sample_cmd =
  let patterns_count =
    Arg.(value & opt int 128 & info [ "n"; "patterns" ] ~docv:"N" ~doc:"Patterns.")
  in
  let sample_size =
    Arg.(value & opt int 500 & info [ "sample" ] ~docv:"K" ~doc:"Fault sample size.")
  in
  let collapse_dominance =
    Arg.(value & flag & info [ "collapse-dominance" ]
           ~doc:"Sample from the dominance-collapsed universe.")
  in
  let action circuit count sample_size collapse_dominance n_detect seed =
    let rng = Stats.Rng.create ~seed () in
    let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
    let universe = Faults.Collapse.representatives classes in
    let patterns = Tpg.Random_tpg.uniform rng circuit ~count in
    let est =
      Fsim.Sampling.estimate_coverage ~collapse_dominance ?n_detect rng circuit
        universe ~sample_size patterns
    in
    let label =
      match n_detect with
      | Some n when n > 1 -> Printf.sprintf "sampled %d-detect coverage" n
      | Some _ | None -> "sampled coverage"
    in
    Printf.printf
      "%s: %.4f +- %.4f (95%%: [%.4f, %.4f]) from %d of %d faults\n" label
      est.Fsim.Sampling.coverage est.Fsim.Sampling.std_error
      est.Fsim.Sampling.lower_95 est.Fsim.Sampling.upper_95
      est.Fsim.Sampling.sample_size est.Fsim.Sampling.universe_size;
    let exact =
      match n_detect with
      | None -> Fsim.Coverage.final_coverage (Fsim.Coverage.profile circuit universe patterns)
      | Some n ->
        Fsim.Coverage.n_detect_coverage
          (Fsim.Coverage.detection_counts ~n circuit universe patterns)
    in
    Printf.printf "exact coverage:   %.4f\n" exact
  in
  let doc = "Estimate fault coverage from a random fault sample (with CI)." in
  Cmd.v (Cmd.info "sample-coverage" ~doc)
    Term.(const action $ circuit_arg $ patterns_count $ sample_size
          $ collapse_dominance $ n_detect_arg $ seed_arg)

(* ------------------------------- lint ------------------------------- *)

let lint_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("never", `Never); ("warning", `Warning); ("error", `Error) ])
             `Never
         & info [ "fail-on" ] ~docv:"LEVEL"
             ~doc:"Exit non-zero when diagnostics at severity $(docv) (never, \
                   warning, error) or worse are present.")
  in
  let fanout_threshold =
    Arg.(value & opt int Lint.Driver.default_config.Lint.Driver.fanout_threshold
         & info [ "fanout-threshold" ] ~docv:"N"
             ~doc:"Warn on stems with fanout above $(docv).")
  in
  let structural_only =
    Arg.(value & flag & info [ "structural-only" ]
           ~doc:"Skip the untestable-fault and SCOAP analyses; report only \
                 structural rules.")
  in
  let learn_depth =
    Arg.(value & opt (some int) None & info [ "learn-depth" ] ~docv:"D"
           ~doc:"Enable the static analysis engine (dominators + implication \
                 learning at depth $(docv)) for the stronger \
                 learned-implication and blocked-dominator untestability \
                 proofs.")
  in
  let action circuit json fail_on fanout_threshold structural_only learn_depth
      exact trace metrics journal progress =
    (* [exit] must happen outside [with_obs]: it does not unwind the
       stack, so the trace file would never be written. *)
    let trip =
      with_obs ~circuit:circuit.Circuit.Netlist.name ~trace ~metrics ~journal
        ~progress
      @@ fun () ->
      let config =
        { Lint.Driver.default_config with
          Lint.Driver.fanout_threshold; testability = not structural_only;
          learn_depth; exact_budget = exact }
      in
      let report = Lint.Driver.run ~config circuit in
      if json then
        print_endline
          (Report.Json.to_string_pretty (Lint.Driver.render_json report))
      else print_string (Lint.Driver.render_text report);
      match fail_on with
      | `Never -> false
      | `Error -> report.Lint.Driver.errors > 0
      | `Warning -> report.Lint.Driver.errors > 0 || report.Lint.Driver.warnings > 0
    in
    if trip then exit 1
  in
  let doc =
    "Static analysis of a netlist: structural rules (constant nets, dead \
     logic, floating inputs, duplicate fanins, fanout/reconvergence) plus \
     statically untestable stuck-at faults and SCOAP hard-to-detect warnings."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const action $ circuit_arg $ json $ fail_on $ fanout_threshold
          $ structural_only $ learn_depth $ exact_arg $ trace_arg
          $ metrics_arg $ journal_arg $ progress_arg)

(* ------------------------------ analyze ----------------------------- *)

let analyze_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("never", `Never); ("warning", `Warning); ("error", `Error) ])
             `Never
         & info [ "fail-on" ] ~docv:"LEVEL"
             ~doc:"Exit non-zero at severity $(docv) (never, warning, error) \
                   or worse: errors are implication-engine contradictions \
                   (engine self-check), warnings are untestable faults and \
                   unobservable stems.")
  in
  let learn_depth =
    Arg.(value & opt int 1 & info [ "learn-depth" ] ~docv:"D"
           ~doc:"Implication learning sweeps (0 disables learning).")
  in
  let show_dominators =
    Arg.(value & flag & info [ "dominators" ]
           ~doc:"List every node's dominator chain (nearest first).")
  in
  let show_implications =
    Arg.(value & flag & info [ "implications" ]
           ~doc:"List learned constants and each literal's implications.")
  in
  let action circuit json fail_on learn_depth show_dominators show_implications
      trace metrics journal progress =
    let trip =
      with_obs ~circuit:circuit.Circuit.Netlist.name ~trace ~metrics ~journal
        ~progress
      @@ fun () ->
      let module N = Circuit.Netlist in
      let engine =
        Analysis.Engine.build ~learn_depth:(Some learn_depth) circuit
      in
      let dom = Analysis.Engine.dominators engine in
      let imp =
        match Analysis.Engine.implication engine with
        | Some imp -> imp
        | None -> assert false (* learn_depth is always Some here *)
      in
      let name id = circuit.N.node_names.(id) in
      let num_nodes = N.num_nodes circuit in
      let unobservable = Analysis.Dominators.unobservable_stems dom in
      let constants = Analysis.Implication.constants imp in
      let contradictory = Analysis.Implication.contradictory imp in
      let universe = Faults.Universe.all circuit in
      let classes = Faults.Collapse.equivalence circuit universe in
      let equivalence_reps = Faults.Collapse.representatives classes in
      let dominance_reps = Faults.Collapse.dominance circuit classes in
      let untestable =
        Lint.Testability.untestable ~classes ~analysis:engine circuit universe
      in
      let with_idom =
        let count = ref 0 in
        for id = 0 to num_nodes - 1 do
          if Analysis.Dominators.idom dom id <> None then incr count
        done;
        !count
      in
      let errors = List.length contradictory in
      let warnings = Array.length untestable + List.length unobservable in
      let literal_rows f =
        for id = 0 to num_nodes - 1 do
          List.iter
            (fun v ->
              match Analysis.Implication.consequences imp id v with
              | None | Some [] -> ()
              | Some consequences -> f id v consequences)
            [ false; true ]
        done
      in
      if json then begin
        let fault_row (fault, reason) =
          Report.Json.Obj
            [ ("fault", Report.Json.String (Faults.Fault.to_string circuit fault));
              ("reason",
               Report.Json.String (Lint.Testability.reason_to_string reason)) ]
        in
        let dominator_rows () =
          List.filter_map
            (fun id ->
              match Analysis.Dominators.dominators dom id with
              | [] -> None
              | chain ->
                Some
                  (Report.Json.Obj
                     [ ("node", Report.Json.String (name id));
                       ("dominators",
                        Report.Json.List
                          (List.map (fun d -> Report.Json.String (name d)) chain))
                     ]))
            (List.init num_nodes Fun.id)
        in
        let implication_rows () =
          let rows = ref [] in
          literal_rows (fun id v consequences ->
              rows :=
                Report.Json.Obj
                  [ ("node", Report.Json.String (name id));
                    ("value", Report.Json.Bool v);
                    ("implies",
                     Report.Json.List
                       (List.map
                          (fun (m, w) ->
                            Report.Json.Obj
                              [ ("node", Report.Json.String (name m));
                                ("value", Report.Json.Bool w) ])
                          consequences)) ]
                :: !rows);
          List.rev !rows
        in
        let base =
          [ ("circuit",
             Report.Json.Obj
               [ ("name", Report.Json.String circuit.N.name);
                 ("inputs", Report.Json.Int (N.num_inputs circuit));
                 ("outputs", Report.Json.Int (N.num_outputs circuit));
                 ("gates", Report.Json.Int (N.num_gates circuit));
                 ("depth", Report.Json.Int (N.depth circuit)) ]);
            ("dominators",
             Report.Json.Obj
               ([ ("nodes", Report.Json.Int num_nodes);
                  ("with_idom", Report.Json.Int with_idom);
                  ("unobservable_stems",
                   Report.Json.List
                     (List.map (fun id -> Report.Json.String (name id))
                        unobservable)) ]
               @
               if show_dominators then
                 [ ("chains", Report.Json.List (dominator_rows ())) ]
               else []));
            ("implications",
             Report.Json.Obj
               ([ ("depth", Report.Json.Int learn_depth);
                  ("rounds", Report.Json.Int (Analysis.Implication.rounds imp));
                  ("learned",
                   Report.Json.Int (Analysis.Implication.learned_count imp));
                  ("implications",
                   Report.Json.Int (Analysis.Implication.direct_count imp));
                  ("constants",
                   Report.Json.List
                     (List.map
                        (fun (id, v) ->
                          Report.Json.Obj
                            [ ("node", Report.Json.String (name id));
                              ("value", Report.Json.Bool v) ])
                        constants));
                  ("contradictory",
                   Report.Json.List
                     (List.map (fun id -> Report.Json.String (name id))
                        contradictory)) ]
               @
               if show_implications then
                 [ ("literals", Report.Json.List (implication_rows ())) ]
               else []));
            ("collapse",
             Report.Json.Obj
               [ ("universe", Report.Json.Int (Array.length universe));
                 ("equivalence", Report.Json.Int (Array.length equivalence_reps));
                 ("dominance", Report.Json.Int (Array.length dominance_reps)) ]);
            ("untestable",
             Report.Json.List (Array.to_list untestable |> List.map fault_row));
            ("summary",
             Report.Json.Obj
               [ ("errors", Report.Json.Int errors);
                 ("warnings", Report.Json.Int warnings) ]) ]
        in
        print_endline (Report.Json.to_string_pretty (Report.Json.Obj base))
      end
      else begin
        Format.printf "%a@." N.pp_summary circuit;
        Printf.printf
          "dominators: %d/%d nodes with an immediate dominator, %d \
           unobservable stem%s\n"
          with_idom num_nodes
          (List.length unobservable)
          (if List.length unobservable = 1 then "" else "s");
        Printf.printf
          "implications: depth %d, %d round%s, %d learned edges, %d \
           implications, %d constant%s\n"
          learn_depth
          (Analysis.Implication.rounds imp)
          (if Analysis.Implication.rounds imp = 1 then "" else "s")
          (Analysis.Implication.learned_count imp)
          (Analysis.Implication.direct_count imp)
          (List.length constants)
          (if List.length constants = 1 then "" else "s");
        Printf.printf "collapse: %d universe -> %d equivalence -> %d dominance\n"
          (Array.length universe)
          (Array.length equivalence_reps)
          (Array.length dominance_reps);
        Printf.printf "untestable: %d of %d faults proven\n"
          (Array.length untestable) (Array.length universe);
        if contradictory <> [] then
          Printf.printf "ERROR: %d contradictory node%s (engine self-check): %s\n"
            (List.length contradictory)
            (if List.length contradictory = 1 then "" else "s")
            (String.concat " " (List.map name contradictory));
        if constants <> [] then
          Printf.printf "constants: %s\n"
            (String.concat " "
               (List.map
                  (fun (id, v) -> Printf.sprintf "%s=%d" (name id)
                      (if v then 1 else 0))
                  constants));
        if show_dominators then begin
          print_endline "\ndominator chains (nearest first):";
          for id = 0 to num_nodes - 1 do
            match Analysis.Dominators.dominators dom id with
            | [] -> ()
            | chain ->
              Printf.printf "  %-12s %s\n" (name id)
                (String.concat " > " (List.map name chain))
          done
        end;
        if show_implications then begin
          print_endline "\nimplications:";
          literal_rows (fun id v consequences ->
              Printf.printf "  %s=%d => %s\n" (name id) (if v then 1 else 0)
                (String.concat " "
                   (List.map
                      (fun (m, w) ->
                        Printf.sprintf "%s=%d" (name m) (if w then 1 else 0))
                      consequences)))
        end;
        if Array.length untestable > 0 then begin
          print_endline "\nuntestable faults:";
          Array.iter
            (fun (fault, reason) ->
              Printf.printf "  %-20s %s\n"
                (Faults.Fault.to_string circuit fault)
                (Lint.Testability.reason_to_string reason))
            untestable
        end
      end;
      match fail_on with
      | `Never -> false
      | `Error -> errors > 0
      | `Warning -> errors > 0 || warnings > 0
    in
    if trip then exit 1
  in
  let doc =
    "Static implication and dominator analysis: per-stem absolute dominators, \
     SOCRATES-style learned implications and constants, dominance-based fault \
     collapsing, and the untestable faults the combined engine proves."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const action $ circuit_arg $ json $ fail_on $ learn_depth
          $ show_dominators $ show_implications $ trace_arg $ metrics_arg
          $ journal_arg $ progress_arg)

(* ---------------------------- testability --------------------------- *)

let testability_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Emit the predicted coverage curve as CSV (patterns, \
                 coverage_lo, coverage_hi[, reject_lo, reject_hi]) on \
                 stdout; status text goes to stderr.")
  in
  let threshold =
    Arg.(value & opt float 0.01 & info [ "threshold" ] ~docv:"T"
           ~doc:"Detection-probability bound below which a fault counts as \
                 random-pattern-resistant.")
  in
  let predict_curve =
    Arg.(value & opt (some (list int)) None
         & info [ "predict-curve" ] ~docv:"N1,N2,..."
             ~doc:"Pattern counts for the predicted-coverage band rows \
                   (default 1,4,16,64,256,1024).")
  in
  let test_length =
    Arg.(value & opt (some float) None & info [ "test-length" ] ~docv:"F"
           ~doc:"Also report the smallest pattern counts at which the \
                 guaranteed (band lower edge) and optimistic (upper edge) \
                 predicted coverage reach $(docv).")
  in
  let max_patterns =
    Arg.(value & opt int 65536 & info [ "max-patterns" ] ~docv:"N"
           ~doc:"Search bound for $(b,--test-length).")
  in
  let yield_opt =
    Arg.(value & opt (some float) None & info [ "y"; "yield" ] ~docv:"Y"
           ~doc:"Process yield: adds the predicted field reject-rate band \
                 r(f(n)) (paper Eq. 8 on the coverage band) to every curve \
                 row.")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("never", `Never); ("warning", `Warning); ("error", `Error) ])
             `Never
         & info [ "fail-on" ] ~docv:"LEVEL"
             ~doc:"Exit non-zero at severity $(docv) (never, warning, error) \
                   or worse: errors are detection-bound self-check violations \
                   (an interval outside [0,1] or inverted, or an exact BDD \
                   probability outside its interval band), warnings are \
                   random-pattern-resistant faults and an exceeded \
                   $(b,--exact) node budget.")
  in
  let action circuit json csv threshold predict_curve test_length max_patterns
      yield_opt n0 fail_on exact trace metrics journal progress =
    (* [exit] must happen outside [with_obs]: it does not unwind the
       stack, so the trace file would never be written. *)
    let trip =
      with_obs ~circuit:circuit.Circuit.Netlist.name ~trace ~metrics ~journal
        ~progress
      @@ fun () ->
      let module N = Circuit.Netlist in
      let module SP = Analysis.Signal_prob in
      let module D = Analysis.Detectability in
      let sp = SP.analyze circuit in
      let det = D.analyze sp in
      let universe = Faults.Universe.all circuit in
      let classes = Faults.Collapse.equivalence circuit universe in
      let reps = Faults.Collapse.representatives classes in
      let untestable = D.untestable det reps in
      let resistant = D.resistant det reps ~threshold in
      let module E = Analysis.Exact in
      let exact_t = Option.map (fun budget -> E.analyze ~budget circuit) exact in
      (* Self-check: every published interval must be a genuine
         subinterval of [0,1], and every exact BDD probability must lie
         inside its interval band.  A violation is an engine bug, never
         a property of the circuit. *)
      let violations =
        Array.fold_left
          (fun acc fault ->
            let d = D.detection det fault in
            let interval_bad =
              d.SP.lo < 0.0 || d.SP.hi > 1.0 || d.SP.lo > d.SP.hi
            in
            let exact_bad =
              match Option.map (fun ex -> E.verdict ex fault) exact_t with
              | Some (E.Testable p) ->
                p < d.SP.lo -. 1e-9 || p > d.SP.hi +. 1e-9
              | Some E.Untestable -> d.SP.lo > 1e-9
              | Some E.Unknown | None -> false
            in
            if interval_bad || exact_bad then acc + 1 else acc)
          0 reps
      in
      let counts =
        match predict_curve with
        | Some counts -> Array.of_list counts
        | None -> [| 1; 4; 16; 64; 256; 1024 |]
      in
      let curve =
        match exact_t with
        | None -> D.predicted_curve det reps ~counts
        | Some ex -> E.predicted_curve ex det reps ~counts
      in
      let exact_incomplete =
        match exact_t with Some ex -> not (E.complete ex) | None -> false
      in
      let reject_band f_band =
        Option.map
          (fun y ->
            Quality.Reject.reject_band ~yield_:y ~n0 (f_band.SP.lo, f_band.SP.hi))
          yield_opt
      in
      let lengths =
        Option.map
          (fun target -> D.test_length det reps ~target ~max_patterns)
          test_length
      in
      if csv then begin
        Format.eprintf "%a@." N.pp_summary circuit;
        let header =
          [ "patterns"; "coverage_lo"; "coverage_hi" ]
          @ (if yield_opt = None then [] else [ "reject_lo"; "reject_hi" ])
        in
        print_string
          (Report.Csv.of_rows
             (header
             :: (Array.to_list curve
                |> List.map (fun (n, band) ->
                       [ string_of_int n;
                         Printf.sprintf "%.6f" band.SP.lo;
                         Printf.sprintf "%.6f" band.SP.hi ]
                       @
                       match reject_band band with
                       | None -> []
                       | Some (r_lo, r_hi) ->
                         [ Printf.sprintf "%.6f" r_lo;
                           Printf.sprintf "%.6f" r_hi ]))))
      end
      else if json then begin
        let interval_json (i : SP.interval) =
          Report.Json.Obj
            [ ("lo", Report.Json.Float i.SP.lo); ("hi", Report.Json.Float i.SP.hi) ]
        in
        let fault_json fault =
          Report.Json.String (Faults.Fault.to_string circuit fault)
        in
        let curve_json =
          Report.Json.List
            (Array.to_list curve
            |> List.map (fun (n, band) ->
                   Report.Json.Obj
                     ([ ("patterns", Report.Json.Int n);
                        ("coverage", interval_json band) ]
                     @
                     match reject_band band with
                     | None -> []
                     | Some (r_lo, r_hi) ->
                       [ ("reject",
                          Report.Json.Obj
                            [ ("lo", Report.Json.Float r_lo);
                              ("hi", Report.Json.Float r_hi) ]) ])))
        in
        let length_json =
          match lengths with
          | None -> []
          | Some (guaranteed, optimistic) ->
            let field = function
              | Some n -> Report.Json.Int n
              | None -> Report.Json.Null
            in
            [ ("test_length",
               Report.Json.Obj
                 [ ("target", Report.Json.Float (Option.get test_length));
                   ("guaranteed", field guaranteed);
                   ("optimistic", field optimistic);
                   ("max_patterns", Report.Json.Int max_patterns) ]) ]
        in
        print_endline
          (Report.Json.to_string_pretty
             (Report.Json.Obj
                ([ ("circuit",
                    Report.Json.Obj
                      [ ("name", Report.Json.String circuit.N.name);
                        ("inputs", Report.Json.Int (N.num_inputs circuit));
                        ("outputs", Report.Json.Int (N.num_outputs circuit));
                        ("gates", Report.Json.Int (N.num_gates circuit)) ]);
                   ("signal_probabilities",
                    Report.Json.Obj
                      [ ("cut_stems", Report.Json.Int (SP.cut_count sp));
                        ("exact", Report.Json.Bool (D.exact det)) ]);
                   ("faults",
                    Report.Json.Obj
                      [ ("universe", Report.Json.Int (Array.length universe));
                        ("representatives", Report.Json.Int (Array.length reps)) ]);
                   ("untestable", Report.Json.List (List.map fault_json untestable)) ]
                @ (match exact_t with
                  | None -> []
                  | Some ex ->
                    [ ("exact",
                       Report.Json.Obj
                         [ ("budget", Report.Json.Int (E.node_budget ex));
                           ("complete", Report.Json.Bool (E.complete ex));
                           ("unknown", Report.Json.Int (E.unknown_count ex));
                           ("nodes", Report.Json.Int (E.node_count ex));
                           ("cache_hit_rate",
                            Report.Json.Float (E.cache_hit_rate ex));
                           ("untestable",
                            Report.Json.List
                              (List.map fault_json (E.untestable ex reps))) ])
                    ])
                @ [ ("resistant",
                    Report.Json.Obj
                      [ ("threshold", Report.Json.Float threshold);
                        ("faults",
                         Report.Json.List
                           (List.map
                              (fun (fault, d) ->
                                Report.Json.Obj
                                  [ ("fault", fault_json fault);
                                    ("detection", interval_json d) ])
                              resistant)) ]);
                   ("curve", curve_json) ]
                @ length_json
                @ [ ("summary",
                     Report.Json.Obj
                       [ ("errors", Report.Json.Int violations);
                         ("warnings", Report.Json.Int (List.length resistant)) ])
                  ])))
      end
      else begin
        Format.printf "%a@." N.pp_summary circuit;
        Printf.printf
          "signal probabilities: %d reconvergent stem%s cut, bounds are %s\n"
          (SP.cut_count sp)
          (if SP.cut_count sp = 1 then "" else "s")
          (if D.exact det then "exact (fanout-free)" else "sound intervals");
        Printf.printf "faults: %d universe, %d collapsed\n"
          (Array.length universe) (Array.length reps);
        Printf.printf "untestable (detection probability provably 0): %d\n"
          (List.length untestable);
        (match exact_t with
        | None -> ()
        | Some ex ->
          Printf.printf
            "exact BDD: %d/%d classified (%d unknown), %d nodes, cache hit \
             rate %.2f\n"
            (E.universe_size ex - E.unknown_count ex)
            (E.universe_size ex) (E.unknown_count ex) (E.node_count ex)
            (E.cache_hit_rate ex);
          Printf.printf "untestable (BDD-proved): %d\n"
            (List.length (E.untestable ex reps)));
        Printf.printf "random-pattern-resistant (d < %g): %d\n" threshold
          (List.length resistant);
        List.iter
          (fun (fault, d) ->
            Printf.printf "  %-20s d in [%.6f, %.6f]\n"
              (Faults.Fault.to_string circuit fault) d.SP.lo d.SP.hi)
          resistant;
        print_endline "\npredicted coverage of n uniform random patterns:";
        Array.iter
          (fun (n, band) ->
            Printf.printf "  n=%-6d f in [%.4f, %.4f]%s\n" n band.SP.lo
              band.SP.hi
              (match reject_band band with
              | None -> ""
              | Some (r_lo, r_hi) ->
                Printf.sprintf "   reject in [%.6f, %.6f]" r_lo r_hi))
          curve;
        (match lengths with
        | None -> ()
        | Some (guaranteed, optimistic) ->
          let show = function
            | Some n -> string_of_int n
            | None -> Printf.sprintf "> %d" max_patterns
          in
          Printf.printf
            "test length for coverage %.4f: guaranteed %s, optimistic %s\n"
            (Option.get test_length) (show guaranteed) (show optimistic));
        if violations > 0 then
          Printf.printf "ERROR: %d detection bound%s failed the [0,1] self-check\n"
            violations
            (if violations = 1 then "" else "s")
      end;
      match fail_on with
      | `Never -> false
      | `Error -> violations > 0
      | `Warning -> violations > 0 || resistant <> [] || exact_incomplete
    in
    if trip then exit 1
  in
  let doc =
    "Static random-pattern testability: signal-probability bounds \
     (Parker-McCluskey with cutting at reconvergent fanout), per-fault \
     detection-probability intervals, predicted coverage and reject-rate \
     bands, and random-pattern-resistant fault identification - all without \
     fault simulation."
  in
  Cmd.v (Cmd.info "testability" ~doc)
    Term.(const action $ circuit_arg $ json $ csv $ threshold $ predict_curve
          $ test_length $ max_patterns $ yield_opt $ n0_arg $ fail_on
          $ exact_arg $ trace_arg $ metrics_arg $ journal_arg $ progress_arg)

(* ------------------------------ equiv ------------------------------ *)

let equiv_cmd =
  let circuit_a =
    Arg.(required & pos 0 (some Circuit_arg.conv) None
         & info [] ~docv:"A"
             ~doc:"First circuit: a .bench file or a generator spec.")
  in
  let circuit_b =
    Arg.(required & pos 1 (some Circuit_arg.conv) None
         & info [] ~docv:"B" ~doc:"Second circuit, same interface names.")
  in
  let budget =
    Arg.(value & opt int Bdd.Robdd.default_budget
         & info [ "budget" ] ~docv:"NODES"
             ~doc:"ROBDD node budget for the shared manager holding both \
                   circuits; past it the check is inconclusive.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict as JSON.")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("never", `Never); ("warning", `Warning); ("error", `Error) ])
             `Error
         & info [ "fail-on" ] ~docv:"LEVEL"
             ~doc:"Exit non-zero at severity $(docv) or worse: a mismatch is \
                   an error, an exceeded node budget (no verdict) a warning.  \
                   Default error — unlike lint, an inequivalence is the \
                   finding the command exists to catch.  Interface \
                   disagreements (different input or output names) are usage \
                   errors: exit code 2 at any level.")
  in
  let action a b budget json fail_on trace metrics journal progress =
    (* [exit] must happen outside [with_obs]: it does not unwind the
       stack, so the trace file would never be written. *)
    let severity =
      with_obs ~trace ~metrics ~journal ~progress @@ fun () ->
      match Bdd.Equiv.check ~budget a b with
      | Error e ->
        Printf.eprintf "equiv: %s\n" (Bdd.Equiv.error_to_string e);
        `Usage
      | Ok verdict ->
        Format.eprintf "A: %a@.B: %a@." Circuit.Netlist.pp_summary a
          Circuit.Netlist.pp_summary b;
        let json_out fields =
          print_endline
            (Report.Json.to_string_pretty (Report.Json.Obj fields))
        in
        (match verdict with
        | Bdd.Equiv.Equivalent ->
          if json then
            json_out [ ("verdict", Report.Json.String "equivalent") ]
          else
            Printf.printf "equivalent: %s == %s on all %d inputs\n"
              a.Circuit.Netlist.name b.Circuit.Netlist.name
              (Circuit.Netlist.num_inputs a);
          `Clean
        | Bdd.Equiv.Mismatch { output; pattern } ->
          if json then
            json_out
              [ ("verdict", Report.Json.String "mismatch");
                ("output", Report.Json.String output);
                ("counterexample",
                 Report.Json.Obj
                   (List.map
                      (fun (name, v) -> (name, Report.Json.Bool v))
                      pattern)) ]
          else begin
            Printf.printf "NOT equivalent: output %s differs\n" output;
            print_endline "counterexample:";
            List.iter
              (fun (name, v) ->
                Printf.printf "  %s = %d\n" name (if v then 1 else 0))
              pattern
          end;
          `Mismatch
        | Bdd.Equiv.Inconclusive { nodes } ->
          if json then
            json_out
              [ ("verdict", Report.Json.String "inconclusive");
                ("nodes", Report.Json.Int nodes) ]
          else
            Printf.printf
              "inconclusive: node budget exceeded after %d nodes (raise \
               --budget)\n"
              nodes;
          `Inconclusive)
    in
    match (severity, fail_on) with
    | `Usage, _ -> exit 2
    | `Mismatch, (`Error | `Warning) -> exit 1
    | `Inconclusive, `Warning -> exit 1
    | (`Clean | `Mismatch | `Inconclusive), _ -> ()
  in
  let doc =
    "Combinational equivalence check of two circuits via a shared ROBDD: \
     interfaces matched by signal name, exact verdict with a distinguishing \
     input pattern on mismatch."
  in
  Cmd.v (Cmd.info "equiv" ~doc)
    Term.(const action $ circuit_a $ circuit_b $ budget $ json $ fail_on
          $ trace_arg $ metrics_arg $ journal_arg $ progress_arg)

(* --------------------------- experiments --------------------------- *)

let experiments_cmd =
  let target =
    Arg.(value & pos 0 string "comparison" & info [] ~docv:"TARGET"
           ~doc:"fig1 fig2 fig3 fig4 fig5 fig6 table1 pipeline comparison \
                 fineline ablation economics drift.")
  in
  let action target seed domains trace metrics journal progress =
    (* `exit 2` on an unknown target must not skip with_obs's finaliser. *)
    let output =
      with_obs ~seed ~trace ~metrics ~journal ~progress @@ fun () ->
      match target with
      | "fig1" -> Some (Experiments.Fig1.render ())
      | "fig2" ->
        Some (Experiments.Fig2_3_4.render_figure ~name:"Fig.2" ~reject:0.01)
      | "fig3" ->
        Some (Experiments.Fig2_3_4.render_figure ~name:"Fig.3" ~reject:0.005)
      | "fig4" ->
        Some (Experiments.Fig2_3_4.render_figure ~name:"Fig.4" ~reject:0.001)
      | "fig5" ->
        let run = Experiments.Pipeline.execute Experiments.Pipeline.default_config in
        Some (Experiments.Fig5.render ~run ())
      | "fig6" -> Some (Experiments.Fig6.render ())
      | "table1" ->
        let run = Experiments.Pipeline.execute Experiments.Pipeline.default_config in
        Some (Experiments.Table1.render ~run ())
      | "pipeline" ->
        (* The end-to-end simulate-lot pipeline with the multicore
           fault-simulation engine, so a trace shows every stage
           boundary and each Fsim.Par domain shard. *)
        let config =
          { Experiments.Pipeline.default_config with
            Experiments.Pipeline.seed;
            fsim_engine =
              Fsim.Coverage.Par
                { domains = (match domains with Some n -> n | None -> 2) } }
        in
        let run = Experiments.Pipeline.execute config in
        Some
          (Experiments.Pipeline.summary run ^ "\n"
          ^ Experiments.Table1.render ~run ())
      | "comparison" -> Some (Experiments.Comparison.render ())
      | "fineline" -> Some (Experiments.Fineline.render ())
      | "ablation" -> Some (Experiments.Ablation.render ())
      | "economics" -> Some (Experiments.Economics_study.render ())
      | "drift" -> Some (Experiments.Drift.render ())
      | other ->
        Printf.eprintf
          "lsiq: unknown experiment %S\nvalid targets: fig1 fig2 fig3 fig4 \
           fig5 fig6 table1 pipeline comparison fineline ablation economics \
           drift\n"
          other;
        None
    in
    match output with
    | Some text -> print_string text
    | None -> exit 2
  in
  let doc = "Regenerate one of the paper's figures or tables." in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(const action $ target $ seed_arg $ domains_arg $ trace_arg
          $ metrics_arg $ journal_arg $ progress_arg)

(* ------------------------------ report ----------------------------- *)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL"
           ~doc:"Journal file written by a $(b,--journal) run.")
  in
  let action path =
    match Obs.Journal.read_file path with
    | Ok events -> print_string (Obs.Journal.render_summary events)
    | Error msg ->
      Printf.eprintf "lsiq: %s: %s\n" path msg;
      exit 1
  in
  let doc = "Render a human-readable summary of a --journal run file." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const action $ file)

(* ------------------------------ wafer ------------------------------ *)

let wafer_cmd =
  let diameter =
    Arg.(value & opt int 25 & info [ "diameter" ] ~docv:"D" ~doc:"Wafer width in dies.")
  in
  let target_yield =
    Arg.(value & opt float 0.5 & info [ "target-yield" ] ~docv:"Y"
           ~doc:"Disc-average yield to calibrate to.")
  in
  let action diameter target_yield seed =
    let rng = Stats.Rng.create ~seed () in
    let yield_model =
      Fab.Yield_model.create
        ~defect_density:(Fab.Yield_model.solve_defect_density ~target_yield
                           ~area:1.0 ~variance_ratio:0.25)
        ~area:1.0 ~variance_ratio:0.25
    in
    let defect =
      Fab.Defect.create ~yield_model ~fault_multiplicity:2.0 ~universe_size:1000 ()
    in
    let wafer = Fab.Wafer.fabricate defect rng ~diameter () in
    print_string (Fab.Wafer.render_map wafer);
    let lot = Fab.Wafer.to_lot wafer in
    Printf.printf "dies: %d, yield: %.3f\n" (Fab.Lot.size lot)
      (Fab.Lot.empirical_yield lot);
    Array.iter
      (fun (r, y) -> Printf.printf "  ring r=%.2f yield=%.3f\n" r y)
      (Fab.Wafer.yield_by_ring wafer ~rings:5)
  in
  let doc = "Fabricate and render a simulated wafer map." in
  Cmd.v (Cmd.info "wafer" ~doc) Term.(const action $ diameter $ target_yield $ seed_arg)

(* ------------------------------- main ------------------------------ *)

let () =
  (* Fault-injection drills: arm failpoints from LSIQ_FAILPOINTS before
     any command runs, and point the journal file sink at its
     failpoint.  A malformed spec is a usage error. *)
  (match Robust.Inject.init_from_env () with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "lsiq: %s: %s\n" Robust.Inject.env_var msg;
    exit 2);
  Obs.Journal.set_sink_hook (fun () -> Robust.Inject.hit "journal.sink");
  let doc =
    "Reproduction of Agrawal, Seth & Agrawal, 'LSI Product Quality and Fault \
     Coverage' (DAC 1981)."
  in
  let info = Cmd.info "lsiq" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ reject_rate_cmd; required_coverage_cmd; estimate_cmd;
            simulate_lot_cmd; fsim_cmd; atpg_cmd; convert_cmd; diagnose_cmd;
            compact_cmd;
            stafan_cmd; sample_cmd; lint_cmd; analyze_cmd; testability_cmd;
            equiv_cmd; experiments_cmd; wafer_cmd; report_cmd ]))
