(** Cooperative cancellation tokens with optional deadlines.

    A token is an atomic stop flag plus an optional absolute deadline;
    the long-running engines ({!Fsim}, PODEM, the lot tester) poll it
    at their natural grain — a 64-pattern block, a backtrack, a die —
    and wind down to a well-defined partial result instead of raising.
    Tokens are domain-safe (plain atomics) and async-signal-safe to
    cancel, so one token can be shared by a deadline, a SIGINT handler
    and the shard workers of a multicore run. *)

type reason = Deadline | Requested | Signal of int

type t

val none : t
(** The never-firing token: {!stop_requested} is a single branch.  The
    default for every [?cancel] argument.  Raises [Invalid_argument]
    if passed to {!cancel}. *)

val create : ?deadline_s:float -> unit -> t
(** A fresh token; with [deadline_s] it trips itself [deadline_s]
    seconds (monotonic clock) after creation.  Raises
    [Invalid_argument] when [deadline_s <= 0]. *)

val cancel : ?reason:reason -> t -> unit
(** Request a stop ([reason] defaults to [Requested]).  Idempotent;
    the first reason wins.  Safe from any domain or signal handler. *)

val stop_requested : t -> bool
(** Whether work should wind down.  Lazily trips an expired deadline,
    so pure-deadline tokens need no watcher thread. *)

val reason : t -> reason option
(** Why the token fired ([None] while it has not). *)

val reason_to_string : reason -> string
