exception Mismatch of string

(* Crash safety: the checkpoint is written to [path ^ ".tmp"], fsynced,
   closed, and renamed over [path].  rename(2) within one directory is
   atomic on POSIX, so a reader (including a resuming run after a kill
   anywhere in this function) sees either the previous complete
   checkpoint or the new complete one, never a torn file. *)
let save ~path ~meta ~payload =
  Inject.hit "checkpoint.save";
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (Report.Json.to_string meta);
     output_char oc '\n';
     List.iter
       (fun line ->
         output_string oc (Report.Json.to_string line);
         output_char oc '\n')
       payload;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  if Obs.Metrics.enabled () then Obs.Metrics.incr "robust.checkpoint_writes"

let load ~path =
  match
    In_channel.with_open_text path (fun ic ->
        let rec lines lineno acc =
          match In_channel.input_line ic with
          | None -> Ok (List.rev acc)
          | Some line when String.trim line = "" -> lines (lineno + 1) acc
          | Some line ->
            (match Report.Json.parse line with
            | Ok json -> lines (lineno + 1) (json :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
        in
        lines 1 [])
  with
  | Ok [] -> Error "empty checkpoint file"
  | Ok (meta :: payload) -> Ok (meta, payload)
  | Error _ as e -> e
  | exception Sys_error msg -> Error msg

(* ---- meta headers --------------------------------------------------- *)

let magic = "lsiq-ckpt"

let meta ~kind ~fields =
  Report.Json.Obj
    (("magic", Report.Json.String magic)
    :: ("kind", Report.Json.String kind)
    :: fields)

let field name = function
  | Report.Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

(* A resumed run must be the same computation as the one that wrote the
   checkpoint — same circuit, engine, seed, sizes — or "bit-identical"
   means nothing.  Every identity field is compared structurally and a
   mismatch names the offending key. *)
let validate ~kind ~expect json =
  let check (key, want) =
    match field key json with
    | Some got when got = want -> Ok ()
    | Some got ->
      Error
        (Printf.sprintf "checkpoint %s mismatch: file has %s, run has %s" key
           (Report.Json.to_string got)
           (Report.Json.to_string want))
    | None -> Error (Printf.sprintf "checkpoint is missing field %S" key)
  in
  match check ("magic", Report.Json.String magic) with
  | Error _ -> Error "not a lsiq checkpoint file (bad magic)"
  | Ok () ->
    (match check ("kind", Report.Json.String kind) with
    | Error _ ->
      Error
        (Printf.sprintf "checkpoint kind mismatch: expected %S, file has %s"
           kind
           (match field "kind" json with
           | Some j -> Report.Json.to_string j
           | None -> "none"))
    | Ok () ->
      let rec all = function
        | [] -> Ok ()
        | kv :: rest -> (match check kv with Ok () -> all rest | Error _ as e -> e)
      in
      all expect)
