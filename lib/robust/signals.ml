let exit_interrupted = 130

let install token =
  (* Cooperative shutdown: the handler only flips the token; the run
     winds down at its next cancellation point, flushes its checkpoint
     and journal, and the CLI exits 130.  A second signal while already
     cancelled restores default behaviour so a stuck run can still be
     killed. *)
  let handle s =
    if Cancel.stop_requested token then begin
      Sys.set_signal s Sys.Signal_default;
      (* Re-raise at default disposition: terminate now. *)
      Unix.kill (Unix.getpid ()) s
    end
    else Cancel.cancel ~reason:(Cancel.Signal s) token
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
  (* SIGTERM does not exist on Windows; ignore the failure. *)
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
   with Invalid_argument _ | Sys_error _ -> ())

let interrupted token =
  match Cancel.reason token with
  | Some (Cancel.Signal _) -> true
  | Some (Cancel.Deadline | Cancel.Requested) | None -> false
