exception Injected of string

type trigger =
  | At_nth of int   (* fire on exactly the n-th hit (1-based) *)
  | First_n of int  (* fire on hits 1..n *)
  | Probability of { p : float; seed : int }

type point = {
  trigger : trigger;
  mutable hits : int;
  mutable lcg : int64;  (* per-point deterministic stream for Probability *)
}

(* The disabled fast path — no failpoints configured — is one atomic
   load, so production hot loops can hit failpoints unconditionally.
   Counters are mutated under [mutex] because shard workers hit
   failpoints from other domains. *)
let armed = Atomic.make false
let mutex = Mutex.create ()
let points : (string, point) Hashtbl.t = Hashtbl.create 8

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset points;
  Atomic.set armed false;
  Mutex.unlock mutex

let set name trigger =
  (match trigger with
  | At_nth n when n < 1 -> invalid_arg "Inject.set: At_nth needs n >= 1"
  | First_n n when n < 1 -> invalid_arg "Inject.set: First_n needs n >= 1"
  | Probability { p; _ } when not (p >= 0.0 && p <= 1.0) ->
    invalid_arg "Inject.set: probability must be in [0, 1]"
  | At_nth _ | First_n _ | Probability _ -> ());
  Mutex.lock mutex;
  let seed = match trigger with Probability { seed; _ } -> seed | _ -> 0 in
  Hashtbl.replace points name
    { trigger; hits = 0; lcg = Int64.of_int ((seed * 2) + 1) };
  Atomic.set armed true;
  Mutex.unlock mutex

let clear name =
  Mutex.lock mutex;
  Hashtbl.remove points name;
  if Hashtbl.length points = 0 then Atomic.set armed false;
  Mutex.unlock mutex

let active () = Atomic.get armed

(* Numerical Recipes LCG on the odd-initialised 64-bit state; the top
   53 bits give a uniform float in [0, 1). *)
let next_uniform pt =
  pt.lcg <-
    Int64.add (Int64.mul pt.lcg 6364136223846793005L) 1442695040888963407L;
  let top = Int64.shift_right_logical pt.lcg 11 in
  Int64.to_float top /. 9007199254740992.0

let hit name =
  if Atomic.get armed then begin
    Mutex.lock mutex;
    let fire =
      match Hashtbl.find_opt points name with
      | None -> false
      | Some pt ->
        pt.hits <- pt.hits + 1;
        (match pt.trigger with
        | At_nth n -> pt.hits = n
        | First_n n -> pt.hits <= n
        | Probability { p; _ } -> next_uniform pt < p)
    in
    Mutex.unlock mutex;
    if fire then begin
      if Obs.Metrics.enabled () then Obs.Metrics.incr "robust.injected_failures";
      raise (Injected name)
    end
  end

let hits name =
  Mutex.lock mutex;
  let n = match Hashtbl.find_opt points name with Some pt -> pt.hits | None -> 0 in
  Mutex.unlock mutex;
  n

(* ---- environment wiring --------------------------------------------- *)

let env_var = "LSIQ_FAILPOINTS"

(* Spec grammar: entries separated by ',' or ';', each
   [name=nth:N | first:N | prob:P[:SEED]].  Failpoint names contain
   dots, never '=' or separators. *)
let parse_trigger spec =
  match String.split_on_char ':' spec with
  | [ "nth"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 1 -> Ok (At_nth n)
    | Some _ | None -> Error (Printf.sprintf "nth wants a count >= 1, got %S" n))
  | [ "first"; n ] ->
    (match int_of_string_opt n with
    | Some n when n >= 1 -> Ok (First_n n)
    | Some _ | None ->
      Error (Printf.sprintf "first wants a count >= 1, got %S" n))
  | [ "prob"; p ] | [ "prob"; p; _ ] as parts ->
    let seed =
      match parts with
      | [ _; _; s ] -> int_of_string_opt s
      | _ -> Some 0
    in
    (match (float_of_string_opt p, seed) with
    | Some p, Some seed when p >= 0.0 && p <= 1.0 ->
      Ok (Probability { p; seed })
    | _ -> Error (Printf.sprintf "prob wants p in [0,1] and an int seed: %S" spec))
  | _ ->
    Error
      (Printf.sprintf
         "bad trigger %S (want nth:N, first:N or prob:P[:SEED])" spec)

let parse_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest ->
      (match String.index_opt entry '=' with
      | None -> Error (Printf.sprintf "entry %S has no '='" entry)
      | Some eq ->
        let name = String.trim (String.sub entry 0 eq) in
        let rhs =
          String.trim
            (String.sub entry (eq + 1) (String.length entry - eq - 1))
        in
        if name = "" then Error (Printf.sprintf "entry %S has no name" entry)
        else
          (match parse_trigger rhs with
          | Ok trigger -> go ((name, trigger) :: acc) rest
          | Error _ as e -> e))
  in
  go [] entries

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok ()
  | Some spec ->
    (match parse_spec spec with
    | Ok entries ->
      List.iter (fun (name, trigger) -> set name trigger) entries;
      Ok ()
    | Error _ as e -> e)
