(** Named failpoints for fault-injection testing.

    Recovery code paths — shard supervision, checkpoint resume, journal
    finalisation — are only trustworthy if they run under test.  A
    failpoint is a named call site ([Inject.hit "fsim.par.shard"]) that
    normally does nothing; a test (or the [LSIQ_FAILPOINTS] environment
    variable, for end-to-end crash drills) arms it with a trigger, and
    the armed hit raises {!Injected}.  With nothing armed the cost is
    one atomic load, so failpoints stay in production code
    unconditionally.  Hits are counted under a mutex: shard workers hit
    failpoints from other domains. *)

exception Injected of string
(** The injected failure; carries the failpoint name. *)

type trigger =
  | At_nth of int  (** fire on exactly the n-th hit (1-based) *)
  | First_n of int  (** fire on every one of the first n hits *)
  | Probability of { p : float; seed : int }
      (** fire each hit with probability [p], from a deterministic
          per-point stream seeded by [seed] *)

val set : string -> trigger -> unit
(** Arm (or re-arm, resetting its count) the named failpoint. *)

val clear : string -> unit

val reset : unit -> unit
(** Disarm everything and zero all counts. *)

val hit : string -> unit
(** Call at the failpoint.  Raises {!Injected} when armed and the
    trigger fires; otherwise counts the hit (if armed) and returns. *)

val hits : string -> int
(** How many times the named (armed) failpoint has been hit. *)

val active : unit -> bool
(** Whether any failpoint is armed. *)

val parse_spec : string -> ((string * trigger) list, string) result
(** Parse a failpoint spec: entries separated by [','] or [';'], each
    [name=nth:N], [name=first:N] or [name=prob:P[:SEED]]. *)

val init_from_env : unit -> (unit, string) result
(** Arm failpoints from [LSIQ_FAILPOINTS], if set.  [Error] is the
    parse failure (the CLI turns it into a usage error). *)

val env_var : string
