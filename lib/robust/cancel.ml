type reason = Deadline | Requested | Signal of int

(* The [Never] token makes the default path allocation-free and lets
   every engine take a [?cancel] argument without the disabled case
   costing more than one branch. *)
type t =
  | Never
  | Token of {
      flag : bool Atomic.t;
      why : reason option Atomic.t;
      deadline : float option;  (* absolute, on the Obs.Clock.now_s scale *)
    }

let none = Never

let create ?deadline_s () =
  let deadline =
    match deadline_s with
    | None -> None
    | Some d ->
      if d <= 0.0 then invalid_arg "Cancel.create: deadline must be > 0";
      Some (Obs.Clock.now_s () +. d)
  in
  Token { flag = Atomic.make false; why = Atomic.make None; deadline }

let cancel ?(reason = Requested) = function
  | Never -> invalid_arg "Cancel.cancel: the none token cannot be cancelled"
  | Token t ->
    (* First reason wins; the flag is set last so a reader that sees the
       flag also sees the reason. *)
    ignore (Atomic.compare_and_set t.why None (Some reason));
    Atomic.set t.flag true

let stop_requested = function
  | Never -> false
  | Token t ->
    Atomic.get t.flag
    ||
    (match t.deadline with
    | Some d when Obs.Clock.now_s () >= d ->
      ignore (Atomic.compare_and_set t.why None (Some Deadline));
      Atomic.set t.flag true;
      true
    | Some _ | None -> false)

let reason = function Never -> None | Token t -> Atomic.get t.why

let reason_to_string = function
  | Deadline -> "deadline"
  | Requested -> "requested"
  | Signal s ->
    if s = Sys.sigint then "SIGINT"
    else if s = Sys.sigterm then "SIGTERM"
    else Printf.sprintf "signal %d" s
