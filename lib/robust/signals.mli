(** Cooperative SIGINT/SIGTERM handling.

    {!install} points both signals at a handler that cancels the run's
    token with [Cancel.Signal]; the run winds down at its next
    cancellation point with checkpoints and journal intact, and the CLI
    exits {!exit_interrupted}.  A second signal after the first kills
    the process at default disposition, so a wedged run stays
    killable. *)

val install : Cancel.t -> unit

val interrupted : Cancel.t -> bool
(** Whether the token was cancelled by a signal. *)

val exit_interrupted : int
(** 130, the conventional exit status of a SIGINT death. *)
