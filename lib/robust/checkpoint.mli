(** Crash-safe checkpoint files: JSONL, written via tmp+rename.

    A checkpoint is one meta header line (magic, kind, and the identity
    fields of the computation — circuit, engine, seed, sizes) followed
    by payload lines, all JSON objects in the journal's encoding.
    {!save} is atomic: a crash at any instant leaves either the
    previous complete checkpoint or the new one on disk, never a torn
    file.  Clients ({!Fsim.Restart}, ATPG, the lot tester) own their
    payload schema; this module owns durability and identity checking. *)

exception Mismatch of string
(** Raised by clients when a checkpoint's identity does not match the
    resuming invocation (different circuit, seed, engine, ...). *)

val save :
  path:string -> meta:Report.Json.t -> payload:Report.Json.t list -> unit
(** Write [meta] then [payload], one JSON value per line, atomically
    (tmp file, fsync, rename).  Hits the ["checkpoint.save"] failpoint
    before touching the filesystem.  Raises [Sys_error] on IO failure,
    leaving any previous checkpoint intact. *)

val load : path:string -> (Report.Json.t * Report.Json.t list, string) result
(** Read back [(meta, payload)]; [Error] carries a message with a
    1-based line number for malformed JSON, or the [Sys_error] text. *)

val meta : kind:string -> fields:(string * Report.Json.t) list -> Report.Json.t
(** Build a meta header: magic + [kind] + identity [fields]. *)

val validate :
  kind:string ->
  expect:(string * Report.Json.t) list ->
  Report.Json.t ->
  (unit, string) result
(** Check a loaded meta header against this invocation's identity:
    magic, [kind], then each [expect] field structurally.  The error
    message names the first mismatching key and both values. *)
