(** Complete test-generation flow: random phase, then PODEM clean-up.

    This is how the ordered pattern sets used in the paper's experiment
    are produced.  The resulting pattern order (broad random detection
    first, targeted patterns later) gives exactly the steeply-rising
    coverage curve the paper describes for production test programs. *)

type engine =
  | Podem_engine        (** Forward-implication PODEM (default). *)
  | Implication_engine  (** Bidirectional-implication search. *)

type config = {
  random_budget : int;     (** Max random patterns before the deterministic phase. *)
  random_target : float;   (** Stop random phase at this coverage. *)
  backtrack_limit : int;   (** Deterministic budget per fault. *)
  seed : int;
  engine : engine;
  use_analysis : bool;
      (** Build a static {!Analysis.Engine.t} (dominators + learned
          implications) once per run and hand it to every
          {!Podem.generate} call — unique sensitization, objective
          pruning and pre-search untestability verdicts.  Verdicts are
          unchanged; only the search effort shrinks.  Ignored by
          {!Implication_engine}.  Default off. *)
  learn_depth : int;
      (** Implication learning depth when [use_analysis] is set. *)
  exact_budget : int option;
      (** When [Some budget], build the {!Analysis.Exact} ROBDD bundle
          and let PODEM settle fault verdicts before search: exact
          Untestable proofs skip the search outright, exact Testable
          skips the (then provably fruitless) static untestability
          checks.  Only meaningful with {!Podem_engine}.  Default
          [None]. *)
  hybrid : bool;
      (** Principled random/deterministic cutover: cap the random
          phase at {!Analysis.Detectability.cutover} — the statically
          predicted pattern count where the marginal gain of another
          64-pattern block flattens — instead of the full
          [random_budget], and order the deterministic phase so the
          provably random-pattern-resistant faults
          ([d_hi < resistant_threshold]) are targeted first.  On
          random-pattern-resistant circuits this reaches at least the
          pure-random coverage with fewer total patterns (hard-checked
          by the [testability] bench target).  Default off. *)
  resistant_threshold : float;
      (** Detection-probability bound below which a fault counts as
          random-pattern-resistant in hybrid mode (default 0.01). *)
  podem_time_budget_s : float option;
      (** Per-fault wall-clock budget for each {!Podem.generate} call;
          a fault whose search exceeds it counts as [aborted].  Makes
          verdicts timing-dependent — leave [None] (the default) for
          reproducible runs.  Ignored by {!Implication_engine}. *)
}

val default_config : config

type report = {
  patterns : bool array array;        (** Final ordered pattern set. *)
  profile : Fsim.Coverage.profile;    (** Over the supplied universe. *)
  random_patterns : int;              (** Patterns from the random phase. *)
  deterministic_patterns : int;       (** Patterns from PODEM. *)
  untestable : int;                   (** Proved redundant. *)
  aborted : int;                      (** PODEM gave up within budget. *)
  unknown : int;
      (** Targets never reached (or interrupted mid-search) because the
          cancel token fired: no verdict at all, retried on resume.
          Always 0 on an uncancelled run. *)
  predicted_cutover : int option;
      (** Static random-phase cap used by hybrid mode; [None] when
          [hybrid] was off. *)
}

type checkpointing = {
  path : string;   (** Checkpoint file ({!Robust.Checkpoint} format). *)
  every : int;     (** Save after this many targets processed (>= 1). *)
  resume : bool;   (** Restore [path] before the deterministic phase. *)
}

val run :
  ?config:config ->
  ?cancel:Robust.Cancel.t ->
  ?checkpoint:checkpointing ->
  Circuit.Netlist.t -> Faults.Fault.t array -> report
(** [cancel] is polled before each deterministic target and inside each
    PODEM search (see {!Podem.generate}); a cancelled run returns a
    well-defined partial report whose unresolved targets are counted in
    [unknown].  The random phase always runs to completion — it is a
    pure function of the config, which is what lets a resume re-derive
    it instead of storing patterns in the checkpoint.  With
    [checkpoint], the incremental deterministic state is snapshotted
    crash-safely every [every] targets and once more at exit; a resumed
    run continues from the last snapshot and produces a report
    bit-identical to an uninterrupted one (given no time budget).
    Raises {!Robust.Checkpoint.Mismatch} when [resume] is set and the
    file is unreadable or was written by a run with different inputs;
    raises [Invalid_argument] when [every < 1]. *)

val coverage : report -> float
(** Final fault coverage of the generated set. *)
