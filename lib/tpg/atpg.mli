(** Complete test-generation flow: random phase, then PODEM clean-up.

    This is how the ordered pattern sets used in the paper's experiment
    are produced.  The resulting pattern order (broad random detection
    first, targeted patterns later) gives exactly the steeply-rising
    coverage curve the paper describes for production test programs. *)

type engine =
  | Podem_engine        (** Forward-implication PODEM (default). *)
  | Implication_engine  (** Bidirectional-implication search. *)

type config = {
  random_budget : int;     (** Max random patterns before the deterministic phase. *)
  random_target : float;   (** Stop random phase at this coverage. *)
  backtrack_limit : int;   (** Deterministic budget per fault. *)
  seed : int;
  engine : engine;
  use_analysis : bool;
      (** Build a static {!Analysis.Engine.t} (dominators + learned
          implications) once per run and hand it to every
          {!Podem.generate} call — unique sensitization, objective
          pruning and pre-search untestability verdicts.  Verdicts are
          unchanged; only the search effort shrinks.  Ignored by
          {!Implication_engine}.  Default off. *)
  learn_depth : int;
      (** Implication learning depth when [use_analysis] is set. *)
}

val default_config : config

type report = {
  patterns : bool array array;        (** Final ordered pattern set. *)
  profile : Fsim.Coverage.profile;    (** Over the supplied universe. *)
  random_patterns : int;              (** Patterns from the random phase. *)
  deterministic_patterns : int;       (** Patterns from PODEM. *)
  untestable : int;                   (** Proved redundant. *)
  aborted : int;                      (** PODEM gave up. *)
}

val run :
  ?config:config -> Circuit.Netlist.t -> Faults.Fault.t array -> report

val coverage : report -> float
(** Final fault coverage of the generated set. *)
