(** Complete test-generation flow: random phase, then PODEM clean-up.

    This is how the ordered pattern sets used in the paper's experiment
    are produced.  The resulting pattern order (broad random detection
    first, targeted patterns later) gives exactly the steeply-rising
    coverage curve the paper describes for production test programs. *)

type engine =
  | Podem_engine        (** Forward-implication PODEM (default). *)
  | Implication_engine  (** Bidirectional-implication search. *)

type config = {
  random_budget : int;     (** Max random patterns before the deterministic phase. *)
  random_target : float;   (** Stop random phase at this coverage. *)
  backtrack_limit : int;   (** Deterministic budget per fault. *)
  seed : int;
  engine : engine;
  use_analysis : bool;
      (** Build a static {!Analysis.Engine.t} (dominators + learned
          implications) once per run and hand it to every
          {!Podem.generate} call — unique sensitization, objective
          pruning and pre-search untestability verdicts.  Verdicts are
          unchanged; only the search effort shrinks.  Ignored by
          {!Implication_engine}.  Default off. *)
  learn_depth : int;
      (** Implication learning depth when [use_analysis] is set. *)
  exact_budget : int option;
      (** When [Some budget], build the {!Analysis.Exact} ROBDD bundle
          and let PODEM settle fault verdicts before search: exact
          Untestable proofs skip the search outright, exact Testable
          skips the (then provably fruitless) static untestability
          checks.  Only meaningful with {!Podem_engine}.  Default
          [None]. *)
  hybrid : bool;
      (** Principled random/deterministic cutover: cap the random
          phase at {!Analysis.Detectability.cutover} — the statically
          predicted pattern count where the marginal gain of another
          64-pattern block flattens — instead of the full
          [random_budget], and order the deterministic phase so the
          provably random-pattern-resistant faults
          ([d_hi < resistant_threshold]) are targeted first.  On
          random-pattern-resistant circuits this reaches at least the
          pure-random coverage with fewer total patterns (hard-checked
          by the [testability] bench target).  Default off. *)
  resistant_threshold : float;
      (** Detection-probability bound below which a fault counts as
          random-pattern-resistant in hybrid mode (default 0.01). *)
}

val default_config : config

type report = {
  patterns : bool array array;        (** Final ordered pattern set. *)
  profile : Fsim.Coverage.profile;    (** Over the supplied universe. *)
  random_patterns : int;              (** Patterns from the random phase. *)
  deterministic_patterns : int;       (** Patterns from PODEM. *)
  untestable : int;                   (** Proved redundant. *)
  aborted : int;                      (** PODEM gave up. *)
  predicted_cutover : int option;
      (** Static random-phase cap used by hybrid mode; [None] when
          [hybrid] was off. *)
}

val run :
  ?config:config -> Circuit.Netlist.t -> Faults.Fault.t array -> report

val coverage : report -> float
(** Final fault coverage of the generated set. *)
