type result = Test of bool array | Untestable | Aborted

type stats = { backtracks : int; implications : int }

type guidance = Level_based | Scoap_based of Scoap.t

type decision = {
  input_index : int;
  mutable value : Logic5.t3;
  mutable flipped : bool;
}

exception Abort_search

let stuck_t3 polarity =
  match polarity with Faults.Fault.Stuck_at_0 -> Logic5.F | Faults.Fault.Stuck_at_1 -> Logic5.T

(* The line the fault sits on, seen from the good machine: the stem node
   for a stem fault, the driving node for a branch fault. *)
let fault_line_driver (c : Circuit.Netlist.t) fault =
  match fault.Faults.Fault.site with
  | Faults.Fault.Stem v -> v
  | Faults.Fault.Branch { gate; pin } -> c.fanins.(gate).(pin)

let generate ?(backtrack_limit = 1000) ?time_budget_s
    ?(cancel = Robust.Cancel.none) ?(guidance = Level_based) ?analysis
    (c : Circuit.Netlist.t) fault =
  (match time_budget_s with
  | Some b when b <= 0.0 ->
    invalid_arg "Podem.generate: time budget must be > 0"
  | Some _ | None -> ());
  (* Per-fault wall-clock budget, on the same monotonic clock as the
     run deadline; checked with the cancel token at every decision and
     backtrack, both of which map to [Aborted] — a typed verdict, never
     an escaping exception. *)
  let deadline =
    match time_budget_s with
    | Some b -> Some (Obs.Clock.now_s () +. b)
    | None -> None
  in
  let out_of_time () =
    match deadline with
    | Some d -> Obs.Clock.now_s () >= d
    | None -> false
  in
  let should_stop () = Robust.Cancel.stop_requested cancel || out_of_time () in
  (* Cost of choosing [src] as the line to drive toward [value]; the
     search is correct for any cost, guidance only shapes its order. *)
  let choice_cost src value =
    match guidance with
    | Level_based -> c.Circuit.Netlist.levels.(src)
    | Scoap_based scoap -> Scoap.cc scoap src value
  in
  let num_nodes = Circuit.Netlist.num_nodes c in
  let num_inputs = Array.length c.inputs in
  let input_position = Hashtbl.create num_inputs in
  Array.iteri (fun i id -> Hashtbl.replace input_position id i) c.inputs;
  let pi = Array.make num_inputs Logic5.U in
  let values = Array.make num_nodes Logic5.x in
  let stuck = stuck_t3 fault.Faults.Fault.polarity in
  let implications = ref 0 in
  let backtracks = ref 0 in
  let pruned = ref 0 in
  let implication_graph = Option.bind analysis Analysis.Engine.implication in

  (* Fanout cone of the fault site: the nodes a fault effect can reach.
     Unique sensitization must only constrain side inputs from {e
     outside} this cone — an in-cone line may itself have to carry the
     effect. *)
  let site_cone =
    lazy
      (let cone = Array.make num_nodes false in
       let rec go id =
         if not cone.(id) then begin
           cone.(id) <- true;
           Array.iter go c.fanouts.(id)
         end
       in
       go (Faults.Fault.site_node fault);
       cone)
  in

  (* Can the objective [src = v] still be met under the current PI
     assignment?  Good-machine values are monotone (a defined value
     holds for every completion of the PIs), so a learned consequence of
     [src = v] that contradicts a defined value rules the objective out.
     Used only to order and filter objective candidates — never to
     prune decisions — so verdicts cannot change. *)
  let achievable src v =
    match implication_graph with
    | None -> true
    | Some imp ->
      (match Analysis.Implication.consequences imp src v with
      | None -> false
      | Some consequences ->
        List.for_all
          (fun (m, w) ->
            match values.(m).Logic5.good with
            | Logic5.U -> true
            | Logic5.T -> w
            | Logic5.F -> not w)
          consequences)
  in

  (* Forward implication: recompute every node from the PI assignment,
     injecting the fault's faulty-machine component at its site. *)
  let imply () =
    incr implications;
    Array.iter
      (fun id ->
        let v =
          match c.kinds.(id) with
          | Circuit.Gate.Input ->
            let p = pi.(Hashtbl.find input_position id) in
            { Logic5.good = p; faulty = p }
          | kind ->
            let fanin_values = Array.map (fun src -> values.(src)) c.fanins.(id) in
            (match fault.Faults.Fault.site with
            | Faults.Fault.Branch { gate; pin } when gate = id ->
              Logic5.eval_gate_with_pin kind fanin_values ~pin ~forced_faulty:stuck
            | Faults.Fault.Branch _ | Faults.Fault.Stem _ ->
              Logic5.eval_gate kind fanin_values)
        in
        let v =
          match fault.Faults.Fault.site with
          | Faults.Fault.Stem s when s = id -> { v with Logic5.faulty = stuck }
          | Faults.Fault.Stem _ | Faults.Fault.Branch _ -> v
        in
        values.(id) <- v)
      c.topo_order
  in

  let po_has_effect () =
    Array.exists (fun id -> Logic5.is_fault_effect values.(id)) c.outputs
  in

  (* Whether the faulty line currently carries D/D'. *)
  let fault_effect_value () =
    match fault.Faults.Fault.site with
    | Faults.Fault.Stem v -> values.(v)
    | Faults.Fault.Branch { gate; pin } ->
      let src = c.fanins.(gate).(pin) in
      { Logic5.good = values.(src).Logic5.good; faulty = stuck }
  in

  (* D-frontier: gates with an X output and a fault effect on some input
     (taking the branch injection into account). *)
  let d_frontier () =
    let frontier = ref [] in
    Array.iter
      (fun id ->
        match c.kinds.(id) with
        | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> ()
        | Circuit.Gate.Buf | Circuit.Gate.Not | Circuit.Gate.And
        | Circuit.Gate.Nand | Circuit.Gate.Or | Circuit.Gate.Nor
        | Circuit.Gate.Xor | Circuit.Gate.Xnor ->
          if Logic5.has_unknown values.(id) then begin
            let has_effect = ref false in
            Array.iteri
              (fun pin src ->
                let v =
                  match fault.Faults.Fault.site with
                  | Faults.Fault.Branch { gate; pin = fp } when gate = id && fp = pin ->
                    { Logic5.good = values.(src).Logic5.good; faulty = stuck }
                  | Faults.Fault.Branch _ | Faults.Fault.Stem _ -> values.(src)
                in
                if Logic5.is_fault_effect v then has_effect := true)
              c.fanins.(id);
            if !has_effect then frontier := id :: !frontier
          end)
      c.topo_order;
    List.rev !frontier
  in

  (* Is some primary output reachable from the frontier through X nodes? *)
  let x_path_exists frontier =
    let visited = Array.make num_nodes false in
    let rec bfs = function
      | [] -> false
      | id :: rest ->
        if visited.(id) then bfs rest
        else begin
          visited.(id) <- true;
          if Circuit.Netlist.is_output c id then true
          else begin
            let next =
              Array.fold_left
                (fun acc dst ->
                  if (not visited.(dst)) && Logic5.has_unknown values.(dst) then dst :: acc
                  else acc)
                rest c.fanouts.(id)
            in
            bfs next
          end
        end
    in
    bfs frontier
  in

  (* Choose the cheapest X input of [fanins] to drive toward [v],
     preferring candidates the implication graph does not rule out;
     falls back to an infeasible one (the decision search sorts it out)
     so behaviour without analysis is unchanged. *)
  let pick_x_input fanins v =
    let best = ref None and fallback = ref None in
    Array.iter
      (fun src ->
        if Logic5.has_unknown values.(src) then
          if achievable src v then begin
            match !best with
            | None -> best := Some src
            | Some cur -> if choice_cost src v < choice_cost cur v then best := Some src
          end
          else begin
            incr pruned;
            match !fallback with
            | None -> fallback := Some src
            | Some cur ->
              if choice_cost src v < choice_cost cur v then fallback := Some src
          end)
      fanins;
    match !best with Some _ as s -> s | None -> !fallback
  in

  (* Unique sensitization: whatever frontier gate carries the effect
     onward, every detection path crosses the frontier's common
     dominators, so their out-of-cone side inputs must settle at
     non-controlling values — schedule the first one still at X. *)
  let unique_sensitization frontier =
    match analysis with
    | None -> None
    | Some a ->
      let doms =
        Analysis.Dominators.common_dominators (Analysis.Engine.dominators a)
          frontier
      in
      let rec try_doms = function
        | [] -> None
        | d :: rest ->
          (match Circuit.Gate.controlling_value c.kinds.(d) with
          | None -> try_doms rest
          | Some controlling ->
            let v = not controlling in
            let cone = Lazy.force site_cone in
            let candidate = ref None in
            Array.iter
              (fun src ->
                if
                  (not cone.(src))
                  && Logic5.has_unknown values.(src)
                  && achievable src v
                then
                  match !candidate with
                  | None -> candidate := Some src
                  | Some cur ->
                    if choice_cost src v < choice_cost cur v then
                      candidate := Some src)
              c.fanins.(d);
            (match !candidate with
            | Some src -> Some (src, v)
            | None -> try_doms rest))
      in
      try_doms doms
  in

  (* Choose (node, boolean objective value). *)
  let objective () =
    let line = fault_line_driver c fault in
    let activated = Logic5.is_fault_effect (fault_effect_value ()) in
    if not activated then Some (line, stuck = Logic5.F)
      (* Drive the line to the complement of the stuck value. *)
    else begin
      match d_frontier () with
      | [] -> None
      | frontier ->
        (match unique_sensitization frontier with
        | Some objective -> Some objective
        | None ->
          (* Lowest-level frontier gate first: shortest remaining path. *)
          let gate =
            List.fold_left
              (fun best g -> if c.levels.(g) < c.levels.(best) then g else best)
              (List.hd frontier) frontier
          in
          let v =
            match Circuit.Gate.controlling_value c.kinds.(gate) with
            | Some controlling -> not controlling (* non-controlling value *)
            | None -> false
          in
          (match pick_x_input c.fanins.(gate) v with
          | None -> None
          | Some src -> Some (src, v)))
    end
  in

  (* Walk the objective back to a primary input through X lines. *)
  let backtrace node value =
    let rec walk node value =
      match c.kinds.(node) with
      | Circuit.Gate.Input -> Some (Hashtbl.find input_position node, value)
      | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> None
      | kind ->
        let value = if Circuit.Gate.inverts kind then not value else value in
        let x_input = ref None in
        Array.iter
          (fun src ->
            if Logic5.has_unknown values.(src) then
              match !x_input with
              | None -> x_input := Some src
              | Some cur ->
                if choice_cost src value < choice_cost cur value then x_input := Some src)
          c.fanins.(node);
        (match !x_input with None -> None | Some src -> walk src value)
    in
    walk node value
  in

  let stack = ref [] in

  let rec attempt () =
    if should_stop () then raise Abort_search;
    imply ();
    if po_has_effect () then finish ()
    else begin
      let line = fault_line_driver c fault in
      let line_good = values.(line).Logic5.good in
      if line_good <> Logic5.U && line_good = stuck then step_back ()
        (* Activation is contradicted: the line settled at the stuck value. *)
      else begin
        let activated = Logic5.is_fault_effect (fault_effect_value ()) in
        let frontier = d_frontier () in
        if activated && frontier = [] then step_back ()
        else if activated && not (x_path_exists frontier) then step_back ()
        else begin
          match objective () with
          | None -> step_back ()
          | Some (node, v) ->
            (match backtrace node v with
            | None -> step_back ()
            | Some (input_index, bool_value) ->
              let value = if bool_value then Logic5.T else Logic5.F in
              let decision = { input_index; value; flipped = false } in
              stack := decision :: !stack;
              pi.(input_index) <- value;
              attempt ())
        end
      end
    end

  and step_back () =
    match !stack with
    | [] -> Untestable
    | top :: rest ->
      if top.flipped then begin
        pi.(top.input_index) <- Logic5.U;
        stack := rest;
        step_back ()
      end
      else begin
        incr backtracks;
        if !backtracks > backtrack_limit || should_stop () then
          raise Abort_search;
        top.flipped <- true;
        top.value <- Logic5.not3 top.value;
        pi.(top.input_index) <- top.value;
        attempt ()
      end

  and finish () =
    let pattern =
      Array.map (function Logic5.T -> true | Logic5.F | Logic5.U -> false) pi
    in
    Test pattern
  in

  (* Sound pre-search verdicts from the static analyses: a fault on a
     stem with no path to any output is unobservable, and a fault whose
     activation value is infeasible (the line is a learned constant at
     the stuck value) is unexcitable. *)
  let static_verdict =
    match analysis with
    | None -> None
    | Some a -> (
      (* An exact ROBDD bundle settles the question outright: its
         Untestable is a complete proof, and its Testable means the
         other static untestability checks (all sound) can never fire,
         so skip them.  Unknown falls through to the usual checks. *)
      match Option.map (fun e -> Analysis.Exact.verdict e fault) (Analysis.Engine.exact a) with
      | Some Analysis.Exact.Untestable -> Some Untestable
      | Some (Analysis.Exact.Testable _) -> None
      | Some Analysis.Exact.Unknown | None ->
      if
        not
          (Analysis.Dominators.observable
             (Analysis.Engine.dominators a)
             (Faults.Fault.site_node fault))
      then Some Untestable
      else begin
        match implication_graph with
        | None -> None
        | Some imp ->
          let line = fault_line_driver c fault in
          if Analysis.Implication.infeasible imp line (stuck = Logic5.F) then
            Some Untestable
          else None
      end)
  in
  let verdict =
    Obs.Trace.with_span "podem.generate" (fun () ->
        let verdict =
          match static_verdict with
          | Some verdict ->
            if Obs.Metrics.enabled () then
              Obs.Metrics.incr "atpg.podem.static_untestable";
            verdict
          | None -> ( try attempt () with Abort_search -> Aborted)
        in
        Obs.Trace.add_int "backtracks" !backtracks;
        Obs.Trace.add_int "implications" !implications;
        if Option.is_some analysis then Obs.Trace.add_int "pruned" !pruned;
        verdict)
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr "atpg.podem.calls";
    Obs.Metrics.incr ~by:(float_of_int !backtracks) "atpg.podem.backtracks";
    Obs.Metrics.incr ~by:(float_of_int !implications) "atpg.podem.implications";
    Obs.Metrics.incr ~by:(float_of_int !pruned) "atpg.podem.pruned"
  end;
  (verdict, { backtracks = !backtracks; implications = !implications })
