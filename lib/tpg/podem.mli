(** PODEM — path-oriented decision making (Goel, 1981).

    Deterministic test generation for a single stuck-at fault: a
    branch-and-bound search over primary-input assignments only, with
    forward implication in 5-valued logic, D-frontier tracking and an
    X-path check for early pruning.  Complete: with an unbounded
    backtrack budget, [Untestable] is a proof of redundancy. *)

type result =
  | Test of bool array
      (** Primary-input pattern (don't-cares filled with 0). *)
  | Untestable
      (** The search space is exhausted: the fault is redundant. *)
  | Aborted
      (** Backtrack limit, per-fault time budget, or the run's cancel
          token fired before a verdict. *)

type stats = { backtracks : int; implications : int }

type guidance =
  | Level_based
      (** Choose the shallowest X input — cheap, reasonable default. *)
  | Scoap_based of Scoap.t
      (** Choose by SCOAP controllability; the ablation bench measures
          the backtrack reduction this buys on resistant faults. *)

val generate :
  ?backtrack_limit:int ->
  ?time_budget_s:float ->
  ?cancel:Robust.Cancel.t ->
  ?guidance:guidance ->
  ?analysis:Analysis.Engine.t ->
  Circuit.Netlist.t -> Faults.Fault.t -> result * stats
(** [generate c fault] searches for a test.  Default backtrack limit is
    1000, default guidance {!Level_based}.  [time_budget_s] bounds this
    fault's wall-clock search time and [cancel] aborts cooperatively
    (both checked at every decision and backtrack); either yields the
    typed [Aborted] verdict, never an exception.  A time budget makes
    verdicts timing-dependent — runs that must be reproducible should
    bound the search with [backtrack_limit] alone.  Raises
    [Invalid_argument] when [time_budget_s <= 0].  The returned pattern is
    guaranteed (and test-suite verified) to detect the fault under the
    fault simulator; the verdicts (test found / untestable) do not
    depend on the guidance, only the search effort does.

    [analysis] (built over the {e same} netlist) adds three
    accelerations: sound pre-search [Untestable] verdicts for
    structurally unobservable sites and infeasible activation values;
    {e unique sensitization} — when the D-frontier shares absolute
    dominators, their out-of-cone side inputs are scheduled toward
    non-controlling values first; and learned-implication filtering of
    objective candidates whose consequences contradict the current
    state.  All three only reorder or shortcut the search — the
    verdict for any fault is unchanged (verified against exhaustive
    simulation), and the backtrack count can only shrink on faults
    where the heuristics bite. *)
