type t = {
  circuit : Circuit.Netlist.t;
  cc0 : int array;
  cc1 : int array;
  co_stem : int array;
  (* Per-gate array of per-pin observabilities, indexed like fanins. *)
  co_pins : int array array;
}

let infinite = max_int / 4

let saturating_add a b = min infinite (a + b)

let sum_saturating = Array.fold_left saturating_add 0

(* Controllability of an XOR/XNOR tree is folded pairwise: the cost of
   producing parity v from (a, b) is the cheaper of the two input
   combinations with that parity. *)
let xor_pair (a0, a1) (b0, b1) =
  let zero = min (saturating_add a0 b0) (saturating_add a1 b1) in
  let one = min (saturating_add a0 b1) (saturating_add a1 b0) in
  (zero, one)

let controllability (c : Circuit.Netlist.t) =
  let n = Circuit.Netlist.num_nodes c in
  let cc0 = Array.make n infinite and cc1 = Array.make n infinite in
  Array.iter
    (fun id ->
      let pair src = (cc0.(src), cc1.(src)) in
      let zero, one =
        match c.kinds.(id) with
        | Circuit.Gate.Input -> (1, 1)
        | Circuit.Gate.Const0 -> (0, infinite)
        | Circuit.Gate.Const1 -> (infinite, 0)
        | Circuit.Gate.Buf -> pair c.fanins.(id).(0)
        | Circuit.Gate.Not ->
          let z, o = pair c.fanins.(id).(0) in
          (o, z)
        | Circuit.Gate.And ->
          let zero = Array.fold_left (fun acc s -> min acc cc0.(s)) infinite c.fanins.(id) in
          let one = sum_saturating (Array.map (fun s -> cc1.(s)) c.fanins.(id)) in
          (zero, one)
        | Circuit.Gate.Nand ->
          let one = Array.fold_left (fun acc s -> min acc cc0.(s)) infinite c.fanins.(id) in
          let zero = sum_saturating (Array.map (fun s -> cc1.(s)) c.fanins.(id)) in
          (zero, one)
        | Circuit.Gate.Or ->
          let one = Array.fold_left (fun acc s -> min acc cc1.(s)) infinite c.fanins.(id) in
          let zero = sum_saturating (Array.map (fun s -> cc0.(s)) c.fanins.(id)) in
          (zero, one)
        | Circuit.Gate.Nor ->
          let zero = Array.fold_left (fun acc s -> min acc cc1.(s)) infinite c.fanins.(id) in
          let one = sum_saturating (Array.map (fun s -> cc0.(s)) c.fanins.(id)) in
          (zero, one)
        | Circuit.Gate.Xor ->
          let srcs = c.fanins.(id) in
          let acc = ref (pair srcs.(0)) in
          for i = 1 to Array.length srcs - 1 do
            acc := xor_pair !acc (pair srcs.(i))
          done;
          !acc
        | Circuit.Gate.Xnor ->
          let srcs = c.fanins.(id) in
          let acc = ref (pair srcs.(0)) in
          for i = 1 to Array.length srcs - 1 do
            acc := xor_pair !acc (pair srcs.(i))
          done;
          let z, o = !acc in
          (o, z)
      in
      let bump v =
        match c.kinds.(id) with
        | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> v
        | _ -> if v >= infinite then infinite else v + 1
      in
      cc0.(id) <- bump zero;
      cc1.(id) <- bump one)
    c.topo_order;
  (cc0, cc1)

let observability (c : Circuit.Netlist.t) cc0 cc1 =
  let n = Circuit.Netlist.num_nodes c in
  let co_stem = Array.make n infinite in
  let co_pins = Array.map (fun fanins -> Array.make (Array.length fanins) infinite) c.fanins in
  Array.iter (fun id -> co_stem.(id) <- 0) c.outputs;
  (* Reverse topological order: gate observabilities flow backwards. *)
  for i = Array.length c.topo_order - 1 downto 0 do
    let gate = c.topo_order.(i) in
    let srcs = c.fanins.(gate) in
    let side_cost pin =
      (* Cost of making every *other* input transparent. *)
      let acc = ref 0 in
      Array.iteri
        (fun j src ->
          if j <> pin then begin
            let cost =
              match c.kinds.(gate) with
              | Circuit.Gate.And | Circuit.Gate.Nand -> cc1.(src)
              | Circuit.Gate.Or | Circuit.Gate.Nor -> cc0.(src)
              | Circuit.Gate.Xor | Circuit.Gate.Xnor -> min cc0.(src) cc1.(src)
              | Circuit.Gate.Buf | Circuit.Gate.Not -> 0
              | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> 0
            in
            acc := saturating_add !acc cost
          end)
        srcs;
      !acc
    in
    Array.iteri
      (fun pin src ->
        let through = saturating_add (saturating_add co_stem.(gate) (side_cost pin)) 1 in
        co_pins.(gate).(pin) <- through;
        if through < co_stem.(src) then co_stem.(src) <- through)
      srcs
  done;
  (co_stem, co_pins)

let analyze circuit =
  let cc0, cc1 = controllability circuit in
  let co_stem, co_pins = observability circuit cc0 cc1 in
  { circuit; cc0; cc1; co_stem; co_pins }

let cc0 t id = t.cc0.(id)
let cc1 t id = t.cc1.(id)
let cc t id value = if value then t.cc1.(id) else t.cc0.(id)
let co t id = t.co_stem.(id)
let co_pin t ~gate ~pin = t.co_pins.(gate).(pin)

let fault_difficulty t c fault =
  let activation_node, observation =
    match fault.Faults.Fault.site with
    | Faults.Fault.Stem v -> (v, co t v)
    | Faults.Fault.Branch { gate; pin } ->
      (c.Circuit.Netlist.fanins.(gate).(pin), co_pin t ~gate ~pin)
  in
  let activation =
    (* Drive the line opposite to the stuck value. *)
    cc t activation_node (not (Faults.Fault.polarity_bit fault.Faults.Fault.polarity))
  in
  saturating_add activation observation

let hardest_faults t c universe ~count =
  Array.to_list universe
  |> List.map (fun fault -> (fault, fault_difficulty t c fault))
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < count)

let csv_escape s =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let hardest_to_csv t c universe ~count =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "fault,difficulty,saturated\n";
  List.iter
    (fun (fault, difficulty) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%b\n"
           (csv_escape (Faults.Fault.to_string c fault))
           difficulty
           (difficulty >= infinite)))
    (hardest_faults t c universe ~count);
  Buffer.contents buf

let hardest_to_json t c universe ~count =
  Report.Json.List
    (List.map
       (fun (fault, difficulty) ->
         Report.Json.Obj
           [ ("fault", Report.Json.String (Faults.Fault.to_string c fault));
             ("difficulty", Report.Json.Int difficulty);
             ("saturated", Report.Json.Bool (difficulty >= infinite)) ])
       (hardest_faults t c universe ~count))
