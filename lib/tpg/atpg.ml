type engine = Podem_engine | Implication_engine

type config = {
  random_budget : int;
  random_target : float;
  backtrack_limit : int;
  seed : int;
  engine : engine;
  use_analysis : bool;
  learn_depth : int;
  exact_budget : int option;
  hybrid : bool;
  resistant_threshold : float;
  podem_time_budget_s : float option;
}

let default_config =
  { random_budget = 512; random_target = 0.90; backtrack_limit = 2000; seed = 7;
    engine = Podem_engine; use_analysis = false; learn_depth = 1;
    exact_budget = None; hybrid = false; resistant_threshold = 0.01;
    podem_time_budget_s = None }

type report = {
  patterns : bool array array;
  profile : Fsim.Coverage.profile;
  random_patterns : int;
  deterministic_patterns : int;
  untestable : int;
  aborted : int;
  unknown : int;
  predicted_cutover : int option;
}

type checkpointing = { path : string; every : int; resume : bool }

(* ---- checkpoint encoding ------------------------------------------- *)

let ckpt_kind = "atpg"

(* Everything that shapes the deterministic computation is part of the
   checkpoint identity: the random phase and the target order are
   re-derived on resume, so they must be re-derived from the same
   inputs. *)
let ckpt_fields config c faults =
  let opt_int = function
    | Some n -> Report.Json.Int n
    | None -> Report.Json.Null
  in
  [ ("circuit", Report.Json.String c.Circuit.Netlist.name);
    ("nodes", Report.Json.Int (Circuit.Netlist.num_nodes c));
    ("faults", Report.Json.Int (Array.length faults));
    ("seed", Report.Json.Int config.seed);
    ("random_budget", Report.Json.Int config.random_budget);
    ("random_target", Report.Json.Float config.random_target);
    ("backtrack_limit", Report.Json.Int config.backtrack_limit);
    ("engine",
     Report.Json.String
       (match config.engine with
       | Podem_engine -> "podem"
       | Implication_engine -> "implication"));
    ("use_analysis", Report.Json.Bool config.use_analysis);
    ("learn_depth", Report.Json.Int config.learn_depth);
    ("exact_budget", opt_int config.exact_budget);
    ("hybrid", Report.Json.Bool config.hybrid);
    ("resistant_threshold", Report.Json.Float config.resistant_threshold) ]

let pattern_to_json pattern =
  Report.Json.String
    (String.init (Array.length pattern) (fun i ->
         if pattern.(i) then '1' else '0'))

let pattern_of_json = function
  | Report.Json.String s ->
    Ok (Array.init (String.length s) (fun i -> s.[i] = '1'))
  | _ -> Error "extra pattern is not a string"

type ckpt_state = {
  ck_processed : int;
  ck_untestable : int;
  ck_aborted : int;
  ck_first_detection : int option array;
  ck_extra : bool array array;  (* chronological *)
}

let ckpt_payload ~processed ~untestable ~aborted ~first_detection ~extra_rev =
  [ Report.Json.Obj
      [ ("processed", Report.Json.Int processed);
        ("untestable", Report.Json.Int untestable);
        ("aborted", Report.Json.Int aborted);
        ("first_detection",
         Report.Json.List
           (Array.to_list
              (Array.map
                 (function
                   | Some i -> Report.Json.Int i
                   | None -> Report.Json.Int (-1))
                 first_detection)));
        ("extra", Report.Json.List (List.rev_map pattern_to_json extra_rev)) ]
  ]

let ckpt_restore ~nf payload =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  match payload with
  | [ Report.Json.Obj kvs ] ->
    let field name = List.assoc_opt name kvs in
    let int name =
      match field name with
      | Some (Report.Json.Int n) -> Ok n
      | _ -> Error (Printf.sprintf "checkpoint is missing int field %S" name)
    in
    let* ck_processed = int "processed" in
    let* ck_untestable = int "untestable" in
    let* ck_aborted = int "aborted" in
    let* dets =
      match field "first_detection" with
      | Some (Report.Json.List l) when List.length l = nf -> Ok l
      | Some (Report.Json.List _) ->
        Error "checkpoint first_detection length does not match fault count"
      | _ -> Error "checkpoint is missing first_detection"
    in
    let ck_first_detection = Array.make nf None in
    let* () =
      List.fold_left
        (fun acc (i, d) ->
          let* () = acc in
          match d with
          | Report.Json.Int v when v >= 0 ->
            ck_first_detection.(i) <- Some v;
            Ok ()
          | Report.Json.Int _ -> Ok ()
          | _ -> Error "checkpoint first_detection has non-int entries")
        (Ok ())
        (List.mapi (fun i d -> (i, d)) dets)
    in
    let* extra =
      match field "extra" with
      | Some (Report.Json.List l) ->
        List.fold_left
          (fun acc p ->
            let* ps = acc in
            let* p = pattern_of_json p in
            Ok (p :: ps))
          (Ok []) l
        |> Result.map (fun rev -> Array.of_list (List.rev rev))
      | _ -> Error "checkpoint is missing extra patterns"
    in
    Ok
      { ck_processed; ck_untestable; ck_aborted; ck_first_detection;
        ck_extra = extra }
  | _ -> Error "checkpoint payload must be exactly one state line"

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: rest -> drop (n - 1) rest

let run ?(config = default_config) ?(cancel = Robust.Cancel.none) ?checkpoint
    c faults =
  Obs.Trace.with_span "atpg.run" @@ fun () ->
  let want_exact = config.exact_budget <> None && config.engine = Podem_engine in
  let analysis =
    if
      (config.use_analysis && config.engine = Podem_engine)
      || config.hybrid || want_exact
    then
      Some
        (Analysis.Engine.build
           ~learn_depth:
             (if config.use_analysis then Some config.learn_depth else None)
           ?exact_budget:(if want_exact then config.exact_budget else None)
           c)
    else None
  in
  let podem_analysis =
    if config.use_analysis || want_exact then analysis else None
  in
  let detectability =
    match analysis with
    | Some a when config.hybrid -> Some (Analysis.Engine.detectability a)
    | _ -> None
  in
  (* Hybrid cutover: stop random generation where the statically
     predicted marginal gain of the next block flattens, instead of
     burning the whole budget; PODEM picks up the resistant tail. *)
  let predicted_cutover =
    match detectability with
    | Some det ->
      Some
        (Analysis.Detectability.cutover det faults
           ~max_patterns:config.random_budget ())
    | None -> None
  in
  let random_cap =
    match predicted_cutover with
    | Some n -> n
    | None -> config.random_budget
  in
  let rng = Stats.Rng.create ~seed:config.seed () in
  let random_patterns, random_profile =
    Obs.Trace.with_span "atpg.random" (fun () ->
        if random_cap = 0 then
          ( [||],
            { Fsim.Coverage.universe_size = Array.length faults;
              pattern_count = 0;
              first_detection = Array.make (Array.length faults) None } )
        else
          Random_tpg.until_coverage rng c faults ~target:config.random_target
            ~max_patterns:random_cap)
  in
  let total = Array.length faults in
  let first_detection = Array.copy random_profile.Fsim.Coverage.first_detection in
  let remaining = ref [] in
  Array.iteri
    (fun i d -> if d = None then remaining := i :: !remaining)
    first_detection;
  let remaining_order =
    let order = List.rev !remaining in
    match detectability with
    | Some det ->
      (* Target the provably random-pattern-resistant faults first:
         their patterns also mop up the merely-unlucky ones. *)
      let resistant, rest =
        List.partition
          (fun i ->
            (Analysis.Detectability.detection det faults.(i))
              .Analysis.Signal_prob.hi < config.resistant_threshold)
          order
      in
      resistant @ rest
    | None -> order
  in
  let remaining = ref remaining_order in
  let extra = ref [] in
  let extra_count = ref 0 in
  let untestable = ref 0 in
  let aborted = ref 0 in
  let processed = ref 0 in
  let base = Array.length random_patterns in
  (* The random phase and target order above are pure functions of the
     config and inputs, so a resume re-derives them and only the
     deterministic phase's incremental state lives in the checkpoint. *)
  (match checkpoint with
  | Some { path; every; resume } ->
    if every < 1 then invalid_arg "Atpg.run: checkpoint every must be >= 1";
    if resume then begin
      let state =
        match Robust.Checkpoint.load ~path with
        | Error msg -> Error (Printf.sprintf "cannot resume: %s" msg)
        | Ok (file_meta, payload) ->
          (match
             Robust.Checkpoint.validate ~kind:ckpt_kind
               ~expect:(ckpt_fields config c faults)
               file_meta
           with
          | Error _ as e -> e
          | Ok () -> ckpt_restore ~nf:total payload)
      in
      match state with
      | Error msg -> raise (Robust.Checkpoint.Mismatch msg)
      | Ok st ->
        Array.blit st.ck_first_detection 0 first_detection 0 total;
        extra := Array.fold_left (fun acc p -> p :: acc) [] st.ck_extra;
        extra_count := Array.length st.ck_extra;
        untestable := st.ck_untestable;
        aborted := st.ck_aborted;
        processed := st.ck_processed;
        remaining := drop st.ck_processed remaining_order
    end
  | None -> ());
  (* One progress item per fault target popped; already-detected
     targets step too, so items end exactly at the initial total. *)
  let progress =
    Obs.Progress.start ~label:"atpg.podem"
      ~total:(List.length remaining_order) ()
  in
  if !processed > 0 then Obs.Progress.step progress !processed;
  let save_ckpt () =
    match checkpoint with
    | None -> ()
    | Some { path; _ } ->
      Robust.Checkpoint.save ~path
        ~meta:
          (Robust.Checkpoint.meta ~kind:ckpt_kind
             ~fields:(ckpt_fields config c faults))
        ~payload:
          (ckpt_payload ~processed:!processed ~untestable:!untestable
             ~aborted:!aborted ~first_detection ~extra_rev:!extra)
  in
  let since_save = ref 0 in
  let maybe_ckpt () =
    match checkpoint with
    | None -> ()
    | Some { every; _ } ->
      incr since_save;
      if !since_save >= every then begin
        since_save := 0;
        save_ckpt ()
      end
  in
  save_ckpt ();
  let rec deterministic () =
    match !remaining with
    | _ when Robust.Cancel.stop_requested cancel -> ()
    | [] -> ()
    | target :: rest ->
      if first_detection.(target) <> None then begin
        remaining := rest;
        incr processed;
        Obs.Progress.step progress 1;
        maybe_ckpt ();
        deterministic ()
      end
      else begin
        let verdict =
          match config.engine with
          | Podem_engine ->
            (match
               Podem.generate ~backtrack_limit:config.backtrack_limit
                 ?time_budget_s:config.podem_time_budget_s ~cancel
                 ?analysis:podem_analysis c faults.(target)
             with
            | Podem.Test pattern, _ -> `Test pattern
            | Podem.Untestable, _ -> `Untestable
            | Podem.Aborted, _ -> `Aborted)
          | Implication_engine ->
            (match
               Implication_atpg.generate ~backtrack_limit:config.backtrack_limit c
                 faults.(target)
             with
            | Implication_atpg.Test pattern, _ -> `Test pattern
            | Implication_atpg.Untestable, _ -> `Untestable
            | Implication_atpg.Aborted, _ -> `Aborted)
        in
        match verdict with
        | `Aborted when Robust.Cancel.stop_requested cancel ->
          (* The cancel token fired mid-search, so this [Aborted] is not
             a real per-fault verdict: leave the target in [remaining]
             so it is reported as unknown and retried on resume. *)
          ()
        | verdict ->
          remaining := rest;
          incr processed;
          Obs.Progress.step progress 1;
          (match verdict with
          | `Untestable -> incr untestable
          | `Aborted -> incr aborted
          | `Test pattern ->
            let pattern_index = base + !extra_count in
            extra := pattern :: !extra;
            incr extra_count;
            (* The fresh pattern usually detects a cloud of other faults:
               simulate it against everything still undetected and drop. *)
            let undetected =
              List.filter
                (fun i -> first_detection.(i) = None)
                (target :: !remaining)
            in
            let subset =
              Array.map (fun i -> faults.(i)) (Array.of_list undetected)
            in
            let results = Fsim.Ppsfp.run c subset [| pattern |] in
            List.iteri
              (fun k i ->
                match results.(k) with
                | Some _ -> first_detection.(i) <- Some pattern_index
                | None -> ())
              undetected;
            assert (first_detection.(target) <> None));
          maybe_ckpt ();
          deterministic ()
      end
  in
  Obs.Trace.with_span "atpg.deterministic" deterministic;
  save_ckpt ();
  Obs.Progress.finish progress;
  let unknown =
    List.length (List.filter (fun i -> first_detection.(i) = None) !remaining)
  in
  (match predicted_cutover with
  | Some n -> Obs.Trace.add_int "predicted_cutover" n
  | None -> ());
  Obs.Trace.add_int "random_patterns" (Array.length random_patterns);
  Obs.Trace.add_int "deterministic_patterns" !extra_count;
  Obs.Trace.add_int "untestable" !untestable;
  Obs.Trace.add_int "aborted" !aborted;
  Obs.Trace.add_int "unknown" unknown;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr ~by:(float_of_int (Array.length random_patterns))
      "atpg.random_patterns";
    Obs.Metrics.incr ~by:(float_of_int !extra_count) "atpg.deterministic_patterns";
    Obs.Metrics.incr ~by:(float_of_int !untestable) "atpg.untestable";
    Obs.Metrics.incr ~by:(float_of_int !aborted) "atpg.aborted";
    Obs.Metrics.incr ~by:(float_of_int unknown) "atpg.unknown"
  end;
  let patterns = Array.append random_patterns (Array.of_list (List.rev !extra)) in
  let profile =
    { Fsim.Coverage.universe_size = total;
      pattern_count = Array.length patterns;
      first_detection }
  in
  { patterns; profile; random_patterns = Array.length random_patterns;
    deterministic_patterns = !extra_count; untestable = !untestable;
    aborted = !aborted; unknown; predicted_cutover }

let coverage report = Fsim.Coverage.final_coverage report.profile
