type engine = Podem_engine | Implication_engine

type config = {
  random_budget : int;
  random_target : float;
  backtrack_limit : int;
  seed : int;
  engine : engine;
  use_analysis : bool;
  learn_depth : int;
  exact_budget : int option;
  hybrid : bool;
  resistant_threshold : float;
}

let default_config =
  { random_budget = 512; random_target = 0.90; backtrack_limit = 2000; seed = 7;
    engine = Podem_engine; use_analysis = false; learn_depth = 1;
    exact_budget = None; hybrid = false; resistant_threshold = 0.01 }

type report = {
  patterns : bool array array;
  profile : Fsim.Coverage.profile;
  random_patterns : int;
  deterministic_patterns : int;
  untestable : int;
  aborted : int;
  predicted_cutover : int option;
}

let run ?(config = default_config) c faults =
  Obs.Trace.with_span "atpg.run" @@ fun () ->
  let want_exact = config.exact_budget <> None && config.engine = Podem_engine in
  let analysis =
    if
      (config.use_analysis && config.engine = Podem_engine)
      || config.hybrid || want_exact
    then
      Some
        (Analysis.Engine.build
           ~learn_depth:
             (if config.use_analysis then Some config.learn_depth else None)
           ?exact_budget:(if want_exact then config.exact_budget else None)
           c)
    else None
  in
  let podem_analysis =
    if config.use_analysis || want_exact then analysis else None
  in
  let detectability =
    match analysis with
    | Some a when config.hybrid -> Some (Analysis.Engine.detectability a)
    | _ -> None
  in
  (* Hybrid cutover: stop random generation where the statically
     predicted marginal gain of the next block flattens, instead of
     burning the whole budget; PODEM picks up the resistant tail. *)
  let predicted_cutover =
    match detectability with
    | Some det ->
      Some
        (Analysis.Detectability.cutover det faults
           ~max_patterns:config.random_budget ())
    | None -> None
  in
  let random_cap =
    match predicted_cutover with
    | Some n -> n
    | None -> config.random_budget
  in
  let rng = Stats.Rng.create ~seed:config.seed () in
  let random_patterns, random_profile =
    Obs.Trace.with_span "atpg.random" (fun () ->
        if random_cap = 0 then
          ( [||],
            { Fsim.Coverage.universe_size = Array.length faults;
              pattern_count = 0;
              first_detection = Array.make (Array.length faults) None } )
        else
          Random_tpg.until_coverage rng c faults ~target:config.random_target
            ~max_patterns:random_cap)
  in
  let total = Array.length faults in
  let first_detection = Array.copy random_profile.Fsim.Coverage.first_detection in
  let remaining = ref [] in
  Array.iteri
    (fun i d -> if d = None then remaining := i :: !remaining)
    first_detection;
  let remaining_order =
    let order = List.rev !remaining in
    match detectability with
    | Some det ->
      (* Target the provably random-pattern-resistant faults first:
         their patterns also mop up the merely-unlucky ones. *)
      let resistant, rest =
        List.partition
          (fun i ->
            (Analysis.Detectability.detection det faults.(i))
              .Analysis.Signal_prob.hi < config.resistant_threshold)
          order
      in
      resistant @ rest
    | None -> order
  in
  let remaining = ref remaining_order in
  (* One progress item per fault target popped; already-detected
     targets step too, so items end exactly at the initial total. *)
  let progress =
    Obs.Progress.start ~label:"atpg.podem"
      ~total:(List.length remaining_order) ()
  in
  let extra = ref [] in
  let extra_count = ref 0 in
  let untestable = ref 0 in
  let aborted = ref 0 in
  let base = Array.length random_patterns in
  let rec deterministic () =
    match !remaining with
    | [] -> ()
    | target :: rest ->
      remaining := rest;
      Obs.Progress.step progress 1;
      if first_detection.(target) <> None then deterministic ()
      else begin
        let verdict =
          match config.engine with
          | Podem_engine ->
            (match
               Podem.generate ~backtrack_limit:config.backtrack_limit
                 ?analysis:podem_analysis c faults.(target)
             with
            | Podem.Test pattern, _ -> `Test pattern
            | Podem.Untestable, _ -> `Untestable
            | Podem.Aborted, _ -> `Aborted)
          | Implication_engine ->
            (match
               Implication_atpg.generate ~backtrack_limit:config.backtrack_limit c
                 faults.(target)
             with
            | Implication_atpg.Test pattern, _ -> `Test pattern
            | Implication_atpg.Untestable, _ -> `Untestable
            | Implication_atpg.Aborted, _ -> `Aborted)
        in
        (match verdict with
        | `Untestable -> incr untestable
        | `Aborted -> incr aborted
        | `Test pattern ->
          let pattern_index = base + !extra_count in
          extra := pattern :: !extra;
          incr extra_count;
          (* The fresh pattern usually detects a cloud of other faults:
             simulate it against everything still undetected and drop. *)
          let undetected =
            List.filter (fun i -> first_detection.(i) = None) (target :: !remaining)
          in
          let subset = Array.map (fun i -> faults.(i)) (Array.of_list undetected) in
          let results = Fsim.Ppsfp.run c subset [| pattern |] in
          List.iteri
            (fun k i ->
              match results.(k) with
              | Some _ -> first_detection.(i) <- Some pattern_index
              | None -> ())
            undetected;
          assert (first_detection.(target) <> None));
        deterministic ()
      end
  in
  Obs.Trace.with_span "atpg.deterministic" deterministic;
  Obs.Progress.finish progress;
  (match predicted_cutover with
  | Some n -> Obs.Trace.add_int "predicted_cutover" n
  | None -> ());
  Obs.Trace.add_int "random_patterns" (Array.length random_patterns);
  Obs.Trace.add_int "deterministic_patterns" !extra_count;
  Obs.Trace.add_int "untestable" !untestable;
  Obs.Trace.add_int "aborted" !aborted;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr ~by:(float_of_int (Array.length random_patterns))
      "atpg.random_patterns";
    Obs.Metrics.incr ~by:(float_of_int !extra_count) "atpg.deterministic_patterns";
    Obs.Metrics.incr ~by:(float_of_int !untestable) "atpg.untestable";
    Obs.Metrics.incr ~by:(float_of_int !aborted) "atpg.aborted"
  end;
  let patterns = Array.append random_patterns (Array.of_list (List.rev !extra)) in
  let profile =
    { Fsim.Coverage.universe_size = total;
      pattern_count = Array.length patterns;
      first_detection }
  in
  { patterns; profile; random_patterns = Array.length random_patterns;
    deterministic_patterns = !extra_count; untestable = !untestable;
    aborted = !aborted; predicted_cutover }

let coverage report = Fsim.Coverage.final_coverage report.profile
