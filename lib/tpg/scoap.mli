(** SCOAP testability analysis (Goldstein 1979).

    Combinational controllabilities CC0/CC1 (cost of driving a node to
    0/1 from the primary inputs) and observability CO (cost of
    propagating a node to a primary output), computed with the standard
    additive rules.  Costs are saturating integers; unreachable
    combinations (e.g. forcing a constant) saturate at {!infinite}.

    Two consumers: PODEM's objective/backtrace guidance (an ablation
    bench measures the backtrack savings) and hard-fault reporting. *)

type t

val infinite : int
(** Saturation value for impossible goals.  Set to [max_int / 4]
    rather than [max_int] deliberately: {!saturating_add} computes
    [a + b] {e before} clamping, so the representable headroom must
    cover at least the sum of two saturated operands plus the [+ 1]
    depth bumps — with [max_int / 4] even
    [infinite + infinite + infinite] stays far below [max_int], and no
    intermediate can wrap to a negative cost.  The regression tests in
    [test/test_tpg.ml] pin this down. *)

val saturating_add : int -> int -> int
(** [min infinite (a + b)] — the only addition used anywhere in the
    cost propagation.  Results never exceed {!infinite} and, given the
    headroom above, never overflow for any pair of in-range costs. *)

val analyze : Circuit.Netlist.t -> t

val cc0 : t -> int -> int
(** Cost of setting node [id] to 0. *)

val cc1 : t -> int -> int
(** Cost of setting node [id] to 1. *)

val cc : t -> int -> bool -> int
(** [cc t id value]: {!cc1} when [value], else {!cc0}. *)

val co : t -> int -> int
(** Observability of node [id]'s stem (min over its fanout branches;
    0 on primary outputs). *)

val co_pin : t -> gate:int -> pin:int -> int
(** Observability of one gate input pin (a fanout branch). *)

val fault_difficulty : t -> Circuit.Netlist.t -> Faults.Fault.t -> int
(** Detection-cost estimate of a stuck-at fault: cost of driving its
    line to the opposite value plus the line's observability — the
    standard SCOAP testability figure of merit. *)

val hardest_faults :
  t -> Circuit.Netlist.t -> Faults.Fault.t array -> count:int ->
  (Faults.Fault.t * int) list
(** The [count] faults with the highest difficulty, hardest first. *)

val hardest_to_csv :
  t -> Circuit.Netlist.t -> Faults.Fault.t array -> count:int -> string
(** {!hardest_faults} as CSV with a [fault,difficulty,saturated]
    header; [saturated] marks costs pinned at {!infinite}. *)

val hardest_to_json :
  t -> Circuit.Netlist.t -> Faults.Fault.t array -> count:int ->
  Report.Json.t
(** {!hardest_faults} as a JSON array of
    [{"fault"; "difficulty"; "saturated"}] objects. *)
