(** End-to-end reproduction rig: circuit → test program → fab line →
    virtual wafer test → characterization data.

    One [execute] run is the whole Section 5/7 experiment: it
    manufactures a chip design, generates and fault-grades a production
    test program, fabricates a lot calibrated to a target yield and
    [n0], probes every chip to its first failing pattern, and reduces
    the outcomes to the (coverage, fraction failed) checkpoints that
    {!Quality.Estimate} consumes. *)

type line_model =
  | Ideal
      (** Fault counts follow the paper's Eq. 1 exactly (shifted
          Poisson, uniform fault placement) — validates the paper's
          procedure in its own terms. *)
  | Clustered
      (** The physical line: negative-binomial defect counts with
          defect→fault multiplicity and locality.  Over-dispersed
          relative to Eq. 1; the ablation experiments quantify how far
          the estimators drift on it. *)

type program_style =
  | Atpg_only
  | Functional_prelude of int
      (** Prepend an [n]-pattern low-activity random walk so cumulative
          coverage grows gradually, as the paper's functional program
          did; the ATPG set follows. *)

type config = {
  seed : int;
  scale : int;               (** {!Circuit.Generators.lsi_chip} size. *)
  lot_size : int;            (** Paper: 277 chips. *)
  target_yield : float;      (** Paper: 0.07. *)
  variance_ratio : float;    (** Stapper X of the simulated line. *)
  target_n0 : float;         (** Paper example fit: 8. *)
  atpg : Tpg.Atpg.config;
  tester_mode : Tester.Wafer_test.mode;
  line : line_model;
  program_style : program_style;
  fsim_engine : Fsim.Coverage.engine;
      (** Engine used to grade the test program (all engines give
          identical profiles; [Par { domains }] shards the grading
          across cores). *)
  exclude_untestable : bool;
      (** Run the lint subsystem's static untestability analysis and
          drop the proven-redundant faults from the working universe
          before ATPG and grading.  This corrects the denominator of
          Eq. 4 — redundant faults otherwise cap coverage below 1 and
          bias the reject-rate/[n0] fits. *)
  collapse_dominance : bool;
      (** Use the dominance-collapsed universe
          ({!Faults.Collapse.dominance}) instead of the plain
          equivalence representatives.  Shrinks the Eq. 4 denominator
          further by detection containment; composes with
          [exclude_untestable]. *)
  n_detect : int option;
      (** When [Some n], additionally grade the test program with the
          drop-after-n kernels ({!Fsim.Coverage.detection_counts}) so
          [run.program] carries per-fault detection counts and the
          n-detect coverage curve; the {!summary} then reports both
          coverage figures.  [None] (the default) skips the extra
          grading pass. *)
}

val default_config : config
(** 277 chips, 7 % yield, n0 = 8, X = 0.25, scale-8 chip, ideal line,
    192-pattern functional prelude, PPSFP grading. *)

type run = {
  config : config;
  circuit : Circuit.Netlist.t;
  universe : Faults.Fault.t array;
      (** Collapsed representatives, minus [untestable] when
          [config.exclude_untestable] is set. *)
  untestable : Faults.Fault.t array;
      (** Statically untestable representatives excluded from
          [universe] (empty unless [config.exclude_untestable]). *)
  atpg_report : Tpg.Atpg.report;
  program : Tester.Pattern_set.t;
  defect : Fab.Defect.t;
  lot : Fab.Lot.t;
  outcome : Tester.Wafer_test.result;
}

type lot_checkpoint = {
  path : string;   (** {!Robust.Checkpoint} file for the lot-test stage. *)
  every : int;     (** Save after this many dies (>= 1). *)
  resume : bool;   (** Restore [path] before testing. *)
}

exception Interrupted of Robust.Cancel.reason
(** Raised by {!execute} when its cancel token fires: a run that cannot
    finish has no [run] value to return.  By the time it is raised, the
    lot checkpoint (when configured) holds the last durable state. *)

val execute :
  ?cancel:Robust.Cancel.t -> ?lot_checkpoint:lot_checkpoint -> config -> run
(** [cancel] is polled at every stage boundary, inside ATPG (see
    {!Tpg.Atpg.run}) and between dies of the lot-test stage.
    [lot_checkpoint] runs stage 9 through
    {!Tester.Wafer_test.test_lot_restart}: per-die outcomes are
    snapshotted every [every] dies and a resumed run is bit-identical
    to an uninterrupted one (all earlier stages are deterministic
    functions of the config and are simply re-executed).  Raises
    {!Interrupted} on cancellation and {!Robust.Checkpoint.Mismatch}
    when a resume checkpoint is unreadable or from different inputs. *)

val calibrated_multiplicity : config -> lambda:float -> float
(** Faults-per-defect mean needed so [expected_n0 = target_n0] given
    the mean defect count [lambda]. *)

val estimation_points :
  run -> at_coverages:float list -> Quality.Estimate.point list
(** Table-1-style checkpoints for the estimators. *)

val true_n0 : run -> float
(** The lot's actual mean fault count on defective chips — the value
    the estimators are trying to recover. *)

val raw_coverage : run -> float
(** Final coverage over the {e uncorrected} collapsed universe —
    detected faults divided by [universe + untestable].  Equals
    [Pattern_set.final_coverage run.program] when no faults were
    excluded; strictly below it otherwise (the gap is the coverage the
    redundant faults can never contribute). *)

val true_yield : run -> float

val summary : run -> string
(** Multi-line human-readable digest of the whole run. *)
