type line_model = Ideal | Clustered

type program_style = Atpg_only | Functional_prelude of int

type config = {
  seed : int;
  scale : int;
  lot_size : int;
  target_yield : float;
  variance_ratio : float;
  target_n0 : float;
  atpg : Tpg.Atpg.config;
  tester_mode : Tester.Wafer_test.mode;
  line : line_model;
  program_style : program_style;
  fsim_engine : Fsim.Coverage.engine;
  exclude_untestable : bool;
  collapse_dominance : bool;
  n_detect : int option;
}

let default_config =
  { seed = 1981;
    scale = 8;
    lot_size = 277;
    target_yield = 0.07;
    variance_ratio = 0.25;
    target_n0 = 8.0;
    atpg = Tpg.Atpg.default_config;
    tester_mode = Tester.Wafer_test.Table_lookup;
    line = Ideal;
    program_style = Functional_prelude 192;
    fsim_engine = Fsim.Coverage.Parallel;
    exclude_untestable = false;
    collapse_dominance = false;
    n_detect = None }

type run = {
  config : config;
  circuit : Circuit.Netlist.t;
  universe : Faults.Fault.t array;
  untestable : Faults.Fault.t array;
  atpg_report : Tpg.Atpg.report;
  program : Tester.Pattern_set.t;
  defect : Fab.Defect.t;
  lot : Fab.Lot.t;
  outcome : Tester.Wafer_test.result;
}

type lot_checkpoint = { path : string; every : int; resume : bool }

exception Interrupted of Robust.Cancel.reason

let calibrated_multiplicity config ~lambda =
  (* expected_n0 = mu * lambda / (1 - y)  =>  mu = n0 (1 - y) / lambda. *)
  max 1.0 (config.target_n0 *. (1.0 -. config.target_yield) /. lambda)

(* The nine pipeline stages, in execution order; lint and ndetect are
   conditional, so a run's stage ticks are a subsequence of 1..9 but
   always increasing — progress stays monotone. *)
let stage_total = 9

let stage index name f =
  Obs.Progress.stage ~label:"pipeline" ~stage:name ~index ~total:stage_total;
  Obs.Trace.with_span ("pipeline." ^ name) f

let execute ?(cancel = Robust.Cancel.none) ?lot_checkpoint config =
  (* Every stage boundary is a span plus a progress tick, so a trace of
     [execute] shows exactly where a simulate-lot run spends its time;
     the GC delta of the whole run accumulates in the [pipeline.*]
     counters. *)
  Obs.Metrics.with_gc_delta "pipeline" @@ fun () ->
  Obs.Trace.with_span "pipeline.execute" @@ fun () ->
  (* A run that cannot finish has no [run] value to return: cancellation
     is surfaced as the typed [Interrupted] exception, checked at every
     stage boundary (the lot-test stage additionally stops between dies
     and flushes its checkpoint first). *)
  let guard () =
    if Robust.Cancel.stop_requested cancel then
      raise
        (Interrupted
           (Option.value ~default:Robust.Cancel.Requested
              (Robust.Cancel.reason cancel)))
  in
  let stage index name f = guard (); stage index name f in
  let circuit =
    stage 1 "circuit" (fun () ->
        Circuit.Generators.lsi_chip ~seed:config.seed ~scale:config.scale ())
  in
  Obs.Trace.add_int "gates" (Circuit.Netlist.num_gates circuit);
  let full_universe, classes, universe =
    stage 2 "collapse" (fun () ->
        let full_universe = Faults.Universe.all circuit in
        let classes = Faults.Collapse.equivalence circuit full_universe in
        let universe =
          if config.collapse_dominance then
            Faults.Collapse.dominance circuit classes
          else Faults.Collapse.representatives classes
        in
        Obs.Trace.add_int "representatives" (Array.length universe);
        (full_universe, classes, universe))
  in
  let untestable =
    if not config.exclude_untestable then [||]
    else
      stage 3 "lint" (fun () ->
          (* Restrict the proven set to the collapsed universe so that
             [universe + untestable] is exactly the raw representative
             count. *)
          let proven =
            Lint.Testability.untestable_faults ~classes circuit full_universe
          in
          let set = Hashtbl.create (max 1 (Array.length proven)) in
          Array.iter (fun fault -> Hashtbl.replace set fault ()) proven;
          Array.of_list
            (List.filter (Hashtbl.mem set) (Array.to_list universe)))
  in
  let universe = Faults.Universe.exclude_untestable universe ~untestable in
  Obs.Trace.add_int "faults" (Array.length universe);
  let atpg_report =
    stage 4 "atpg" (fun () ->
        Tpg.Atpg.run
          ~config:{ config.atpg with seed = config.seed + 1 }
          ~cancel circuit universe)
  in
  (* A cancelled ATPG returns a partial report; the boundary guard in
     the next [stage] call turns it into [Interrupted] rather than
     grading a truncated program as if it were the real one. *)
  let program =
    stage 5 "program" @@ fun () ->
    match config.program_style with
    | Atpg_only ->
      Tester.Pattern_set.make atpg_report.Tpg.Atpg.patterns
        atpg_report.Tpg.Atpg.profile
    | Functional_prelude count ->
      (* A low-activity functional walk first, then the graded ATPG set:
         gives the gradual coverage axis of the paper's Table 1. *)
      let rng = Stats.Rng.create ~seed:(config.seed + 3) () in
      let walk = Tpg.Random_tpg.random_walk rng circuit ~count () in
      let combined = Array.append walk atpg_report.Tpg.Atpg.patterns in
      Tester.Pattern_set.of_simulation ~engine:config.fsim_engine circuit universe
        combined
  in
  Obs.Trace.add_int "patterns" (Tester.Pattern_set.pattern_count program);
  let program =
    match config.n_detect with
    | None -> program
    | Some n ->
      stage 6 "ndetect" (fun () ->
          Obs.Trace.add_int "n" n;
          Tester.Pattern_set.grade_n_detect ~engine:config.fsim_engine ~n
            circuit universe program)
  in
  let defect =
    stage 7 "fab" @@ fun () ->
    let defect_density =
      Fab.Yield_model.solve_defect_density ~target_yield:config.target_yield
        ~area:1.0 ~variance_ratio:config.variance_ratio
    in
    let yield_model =
      Fab.Yield_model.create ~defect_density ~area:1.0
        ~variance_ratio:config.variance_ratio
    in
    let lambda = Fab.Yield_model.lambda yield_model in
    Fab.Defect.create ~yield_model
      ~fault_multiplicity:(calibrated_multiplicity config ~lambda)
      ~universe_size:(Array.length universe) ()
  in
  let lot =
    stage 8 "lot" @@ fun () ->
    let rng = Stats.Rng.create ~seed:(config.seed + 2) () in
    match config.line with
    | Clustered -> Fab.Lot.manufacture defect rng ~count:config.lot_size
    | Ideal ->
      Fab.Lot.manufacture_ideal ~yield_:config.target_yield ~n0:config.target_n0
        ~universe_size:(Array.length universe) rng ~count:config.lot_size
  in
  Obs.Trace.add_int "chips" (Fab.Lot.size lot);
  let outcome =
    stage 9 "test" (fun () ->
        match lot_checkpoint with
        | None ->
          Tester.Wafer_test.test_lot ~mode:config.tester_mode circuit universe
            program lot
        | Some { path; every; resume } ->
          (match
             Tester.Wafer_test.test_lot_restart ~mode:config.tester_mode
               ~cancel ~every ~resume ~checkpoint:path circuit universe
               program lot
           with
          | Error msg -> raise (Robust.Checkpoint.Mismatch msg)
          | Ok lot_run ->
            if not lot_run.Tester.Wafer_test.completed then
              raise
                (Interrupted
                   (Option.value ~default:Robust.Cancel.Requested
                      (Robust.Cancel.reason cancel)));
            Tester.Wafer_test.result_of_run program lot lot_run))
  in
  if Obs.Journal.enabled () then begin
    Obs.Journal.headline "circuit"
      (Report.Json.String circuit.Circuit.Netlist.name);
    Obs.Journal.headline "faults" (Report.Json.Int (Array.length universe));
    Obs.Journal.headline "patterns"
      (Report.Json.Int (Tester.Pattern_set.pattern_count program));
    Obs.Journal.headline "coverage"
      (Report.Json.Float (Tester.Pattern_set.final_coverage program));
    Obs.Journal.headline "empirical_yield"
      (Report.Json.Float (Fab.Lot.empirical_yield lot));
    Obs.Journal.headline "apparent_yield"
      (Report.Json.Float (Tester.Wafer_test.apparent_yield outcome));
    Obs.Journal.headline "test_escapes"
      (Report.Json.Int (Tester.Wafer_test.test_escapes outcome))
  end;
  { config; circuit; universe; untestable; atpg_report; program; defect; lot;
    outcome }

let raw_coverage run =
  (* Coverage over the uncorrected collapsed universe: the detection
     profile re-extended with the untestable (never-detected) faults. *)
  let detected = Fsim.Coverage.detected_count run.program.Tester.Pattern_set.profile in
  let raw_size = Array.length run.universe + Array.length run.untestable in
  if raw_size = 0 then 0.0 else float_of_int detected /. float_of_int raw_size

let estimation_points run ~at_coverages =
  Tester.Wafer_test.rows_at_coverages run.outcome run.program ~coverages:at_coverages
  |> List.map (fun row ->
         { Quality.Estimate.coverage = row.Tester.Wafer_test.coverage;
           fraction_failed = row.Tester.Wafer_test.fraction_failed })

let true_n0 run = Fab.Lot.mean_faults_on_defective run.lot

let true_yield run = Fab.Lot.empirical_yield run.lot

let summary run =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "circuit: %s (%d nodes, %d gates, depth %d)\n"
    run.circuit.Circuit.Netlist.name
    (Circuit.Netlist.num_nodes run.circuit)
    (Circuit.Netlist.num_gates run.circuit)
    (Circuit.Netlist.depth run.circuit);
  addf "fault universe: %d collapsed (of %d lines x 2)\n"
    (Array.length run.universe)
    (Circuit.Netlist.line_count run.circuit);
  if Array.length run.untestable > 0 then
    addf
      "lint: %d statically untestable faults excluded (raw coverage %.2f%%, \
       corrected %.2f%%)\n"
      (Array.length run.untestable)
      (100.0 *. raw_coverage run)
      (100.0 *. Tester.Pattern_set.final_coverage run.program);
  addf "test program: %d patterns (%d random + %d deterministic), coverage %.2f%%\n"
    (Tester.Pattern_set.pattern_count run.program)
    run.atpg_report.Tpg.Atpg.random_patterns
    run.atpg_report.Tpg.Atpg.deterministic_patterns
    (100.0 *. Tester.Pattern_set.final_coverage run.program);
  (match Tester.Pattern_set.n_detect run.program with
   | None -> ()
   | Some cs ->
     addf "n-detect: coverage at n=%d is %.2f%% (1-detect %.2f%%)\n"
       cs.Fsim.Coverage.require
       (100.0 *. Fsim.Coverage.n_detect_coverage cs)
       (100.0 *. Tester.Pattern_set.final_coverage run.program));
  addf "atpg: %d untestable, %d aborted\n" run.atpg_report.Tpg.Atpg.untestable
    run.atpg_report.Tpg.Atpg.aborted;
  addf "fab: lambda=%.3f defects/chip, multiplicity=%.3f, model yield=%.4f\n"
    (Fab.Yield_model.lambda (Fab.Defect.yield_model run.defect))
    (Fab.Defect.fault_multiplicity run.defect)
    (Fab.Defect.model_yield run.defect);
  addf "lot: %d chips, empirical yield=%.4f, true n0=%.2f (target %.2f)\n"
    (Fab.Lot.size run.lot) (true_yield run)
    (try true_n0 run with Invalid_argument _ -> nan)
    run.config.target_n0;
  addf "tester: apparent yield=%.4f, %d escapes\n"
    (Tester.Wafer_test.apparent_yield run.outcome)
    (Tester.Wafer_test.test_escapes run.outcome);
  Buffer.contents buf
