(** Programmatic benchmark circuits.

    The paper's experiment ran on a proprietary ~25,000-transistor Bell
    Labs LSI chip; no such netlist is publicly available, so the
    reproduction generates its workloads.  Each generator returns a
    {!Netlist.t}; the arithmetic ones come with functional
    specifications used by the test suite to prove the generator
    correct (an adder that cannot add would poison every downstream
    experiment). *)

val c17 : unit -> Netlist.t
(** The classic ISCAS-85 c17 circuit: 5 inputs, 2 outputs, 6 NAND2s. *)

val ripple_carry_adder : bits:int -> Netlist.t
(** [bits]-bit ripple-carry adder.  Inputs a0..a{n-1}, b0..b{n-1}, cin;
    outputs s0..s{n-1}, cout. *)

val carry_select_adder : bits:int -> block:int -> Netlist.t
(** [bits]-bit carry-select adder built from [block]-wide ripple
    sections computed for both carry-in values and selected by the
    incoming carry — same I/O contract as {!ripple_carry_adder}, a
    different (wider, shallower) structure for the ablation studies. *)

val barrel_shifter : bits:int -> Netlist.t
(** Left-rotate barrel shifter: inputs d0..d{n-1} and
    s0..s{log2 n - 1}; outputs y0..y{n-1} = d rotated left by s.
    [bits] must be a power of two. *)

val array_multiplier : bits:int -> Netlist.t
(** [bits]x[bits] unsigned array multiplier; outputs p0..p{2n-1}. *)

val parity_tree : bits:int -> Netlist.t
(** Balanced XOR tree computing odd parity of [bits] inputs. *)

val mux_tree : select_bits:int -> Netlist.t
(** 2^k:1 multiplexer built from 2:1 mux cells; inputs d0..d{2^k-1},
    s0..s{k-1}; one output y. *)

val decoder : bits:int -> Netlist.t
(** k-to-2^k decoder with enable; outputs y0..y{2^k-1}. *)

val comparator : bits:int -> Netlist.t
(** Unsigned magnitude comparator; outputs [eq] and [lt] (a < b). *)

val alu : bits:int -> Netlist.t
(** Small ALU: two data words, a 2-bit opcode selecting
    AND / OR / XOR / ADD, carry-out.  Outputs y0..y{n-1}, cout. *)

val random_circuit :
  inputs:int -> gates:int -> outputs:int -> seed:int -> Netlist.t
(** Random combinational DAG ("sea of gates"): [gates] two-input gates
    with random types, fanins drawn from earlier nodes with a recency
    bias so the circuit has realistic depth.  Deterministic in [seed]. *)

val lsi_chip : ?seed:int -> ?scale:int -> unit -> Netlist.t
(** The reproduction's stand-in for the paper's 25,000-transistor LSI
    chip: a multiplier, an adder, an ALU, parity and random control
    logic sharing inputs, sized by [scale] (default 8).  A few thousand
    gates — large enough for the lot-test statistics to behave like the
    paper's. *)

val redundant_demo : unit -> Netlist.t
(** Fixed 13-node circuit seeded with one instance of every statically
    provable defect class: a net stuck at 0 by constant propagation, a
    dead gate reaching no output, a floating input, a duplicated-fanin
    XOR, and the untestable stuck-at faults those imply.  The
    reference workload for the lint subsystem and its tests. *)

val of_spec : string -> Netlist.t
(** Parse a compact generator spec, e.g. ["c17"], ["redundant"],
    ["rca:8"], ["csa:8,4"] (carry-select with block width), ["mul:4"],
    ["alu:8"], ["parity:16"], ["mux:3"], ["dec:4"], ["cmp:8"],
    ["shift:8"], ["lsi:8"], ["rand:i,g,o,seed"].  Raises [Failure] with
    a usage message on an unknown spec — the CLI surfaces it
    directly. *)

(** {2 Functional specifications} (for tests)

    Bit vectors are little-endian: element 0 is the least significant
    bit and matches input/output index 0 of the generated circuits. *)

val spec_adder : bool array -> bool array -> bool -> bool array * bool
(** [spec_adder a b cin] = (sum bits, carry out). *)

val spec_multiplier : bool array -> bool array -> bool array
(** Product of two little-endian words, width [2 * bits]. *)

val spec_parity : bool array -> bool
val spec_mux : data:bool array -> select:bool array -> bool
val spec_decoder : enable:bool -> select:bool array -> bool array
val spec_comparator : bool array -> bool array -> bool * bool
(** (eq, lt). *)

val spec_rotate_left : bool array -> bool array -> bool array
(** [spec_rotate_left data select]: little-endian rotate amount. *)

val spec_alu : op:int -> bool array -> bool array -> bool -> bool array * bool
(** [spec_alu ~op a b cin]: op 0 = AND, 1 = OR, 2 = XOR, 3 = ADD.
    Returns (result bits, carry-out; carry-out is false for logic ops). *)
