(** Gate-level netlist: an immutable DAG of {!Gate.kind} nodes.

    Nodes are dense integer ids.  A netlist is constructed through the
    {!Builder} sub-module, which checks arities, detects combinational
    cycles, and precomputes fanouts, a topological order and logic
    levels.  All simulators and the fault machinery work off this one
    representation. *)

type t = private {
  name : string;
  kinds : Gate.kind array;        (** Gate type of each node. *)
  fanins : int array array;       (** Fanin node ids, in pin order. *)
  fanouts : int array array;      (** Fanout node ids (derived). *)
  node_names : string array;      (** Human-readable signal names. *)
  inputs : int array;             (** Primary-input node ids, in order. *)
  outputs : int array;            (** Primary-output node ids, in order. *)
  topo_order : int array;         (** Every node, fanins before fanouts. *)
  levels : int array;             (** Logic level (inputs at 0). *)
}

exception Cycle of string
(** Raised by {!Builder.build} when the gate graph is cyclic; the
    payload spells out a full loop in signal-flow order, e.g.
    ["a -> b -> c -> a"]. *)

module Builder : sig
  type netlist := t
  type t

  val create : name:string -> t

  val add_input : t -> string -> int
  (** Declare a primary input; returns its node id. *)

  val add_const : t -> string -> bool -> int
  (** Constant-0 or constant-1 node. *)

  val add_gate : t -> ?name:string -> Gate.kind -> int list -> int
  (** [add_gate b kind fanins] adds a logic node.  Checks the arity and
      that fanin ids exist.  An omitted [name] is generated. *)

  val mark_output : t -> int -> unit
  (** Flag a node as a primary output (a node may feed both logic and an
      output pin; marking is idempotent). *)

  val build : t -> netlist
  (** Freeze the builder: validates, computes fanouts/topological
      order/levels.  Raises {!Cycle} on combinational loops and
      [Invalid_argument] on dangling structure. *)
end

val num_nodes : t -> int
val num_inputs : t -> int
val num_outputs : t -> int

val num_gates : t -> int
(** Logic nodes only (inputs and constants excluded). *)

val depth : t -> int
(** Maximum logic level. *)

val gate_census : t -> (Gate.kind * int) list
(** Count of nodes per gate kind, kinds with zero count omitted. *)

val find_node : t -> string -> int option
(** Look a node up by name. *)

val is_output : t -> int -> bool

val line_count : t -> int
(** Total number of circuit lines: one output stem per non-input node
    plus every gate input pin.  This is the classical site count [N] for
    the stuck-at fault universe (before collapsing). *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, #inputs, #outputs, #gates, depth. *)
