(** Reader and writer for the ISCAS-85/89 [.bench] netlist format.

    Grammar accepted (case-insensitive keywords, [#] comments):
    {v
      INPUT(name)
      OUTPUT(name)
      name = GATE(a, b, ...)
      name = DFF(a)
    v}
    Flip-flops are handled by the full-scan transformation: a [DFF]
    output becomes a pseudo primary input and its data line a pseudo
    primary output, yielding the combinational core that test generation
    and the paper's fault statistics operate on.

    Malformed input never escapes as a raw [Failure] or array error: a
    truncated statement, trailing garbage after [')'], a non-ASCII or
    control byte, an illegal signal-name character, a duplicate
    [INPUT]/[OUTPUT]/definition, a gate arity outside the range of
    {!Gate.min_arity}/{!Gate.max_arity}, a fanin wider than 4096, an
    undefined signal, or an empty (statement-free) source all raise
    {!Parse_error} with the offending 1-based line number; a
    combinational cycle raises {!Netlist.Cycle} naming the loop.  CRLF
    line endings and [#] comments are accepted anywhere. *)

exception Parse_error of { line : int; message : string }

val parse_string : ?name:string -> string -> Netlist.t
(** Parse a full [.bench] file held in a string.  [name] defaults to
    ["bench"]. *)

val parse_file : string -> Netlist.t
(** Parse a [.bench] file from disk; the circuit is named after the
    file's basename. *)

val to_string : Netlist.t -> string
(** Print a netlist back to [.bench] syntax.  [parse_string (to_string
    c)] is structurally identical to [c] for DFF-free circuits. *)

val write_file : string -> Netlist.t -> unit
