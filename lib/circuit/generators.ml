module B = Netlist.Builder

(* ------------------------------------------------------------------ *)
(* Component builders: take a builder plus input node ids, return
   output node ids.  Top-level generators and the composite [lsi_chip]
   share these. *)

let full_adder b a_bit b_bit cin =
  let axb = B.add_gate b Gate.Xor [ a_bit; b_bit ] in
  let sum = B.add_gate b Gate.Xor [ axb; cin ] in
  let ab = B.add_gate b Gate.And [ a_bit; b_bit ] in
  let c_axb = B.add_gate b Gate.And [ cin; axb ] in
  let cout = B.add_gate b Gate.Or [ ab; c_axb ] in
  (sum, cout)

let half_adder b a_bit b_bit =
  let sum = B.add_gate b Gate.Xor [ a_bit; b_bit ] in
  let cout = B.add_gate b Gate.And [ a_bit; b_bit ] in
  (sum, cout)

let build_ripple_adder b a_bits b_bits cin =
  let n = Array.length a_bits in
  assert (Array.length b_bits = n);
  let sums = Array.make n (-1) in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, c = full_adder b a_bits.(i) b_bits.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

(* Array multiplier as rows of partial products folded in with adder
   chains.  [acc] holds the running sum per bit position; [None] stands
   for constant zero so no constant gates are emitted. *)
let build_multiplier b a_bits b_bits =
  let n = Array.length a_bits in
  assert (Array.length b_bits = n);
  let width = 2 * n in
  let acc = Array.make width None in
  for j = 0 to n - 1 do
    let carry = ref None in
    for i = 0 to n - 1 do
      let pp = B.add_gate b Gate.And [ a_bits.(i); b_bits.(j) ] in
      let pos = i + j in
      let sum, cout =
        match (acc.(pos), !carry) with
        | None, None -> (pp, None)
        | Some x, None | None, Some x ->
          let s, c = half_adder b x pp in
          (s, Some c)
        | Some x, Some c ->
          let s, c' = full_adder b x pp c in
          (s, Some c')
      in
      acc.(pos) <- Some sum;
      carry := cout
    done;
    (* Propagate the row's final carry up the remaining positions. *)
    let pos = ref (n + j) in
    while !carry <> None && !pos < width do
      (match (acc.(!pos), !carry) with
      | None, Some c ->
        acc.(!pos) <- Some c;
        carry := None
      | Some x, Some c ->
        let s, c' = half_adder b x c in
        acc.(!pos) <- Some s;
        carry := Some c'
      | (None | Some _), None -> assert false);
      incr pos
    done
  done;
  Array.map
    (function
      | Some id -> id
      | None ->
        (* Only the very top bit of a 1x1 product can stay empty. *)
        B.add_const b "zero" false)
    acc

let rec build_parity_tree b = function
  | [||] -> invalid_arg "parity of zero bits"
  | [| x |] -> x
  | bits ->
    let n = Array.length bits in
    let half = n / 2 in
    let left = build_parity_tree b (Array.sub bits 0 half) in
    let right = build_parity_tree b (Array.sub bits half (n - half)) in
    B.add_gate b Gate.Xor [ left; right ]

let mux2 b d0 d1 sel =
  let nsel = B.add_gate b Gate.Not [ sel ] in
  let t0 = B.add_gate b Gate.And [ d0; nsel ] in
  let t1 = B.add_gate b Gate.And [ d1; sel ] in
  B.add_gate b Gate.Or [ t0; t1 ]

let rec build_mux_tree b data selects =
  match selects with
  | [] ->
    assert (Array.length data = 1);
    data.(0)
  | sel :: rest ->
    let n = Array.length data in
    assert (n mod 2 = 0);
    (* The lowest select bit chooses between adjacent pairs. *)
    let reduced =
      Array.init (n / 2) (fun i -> mux2 b data.(2 * i) data.((2 * i) + 1) sel)
    in
    build_mux_tree b reduced rest

let build_decoder b enable selects =
  let k = Array.length selects in
  let negs = Array.map (fun s -> B.add_gate b Gate.Not [ s ]) selects in
  Array.init (1 lsl k) (fun code ->
      let literals =
        List.init k (fun i ->
            if (code lsr i) land 1 = 1 then selects.(i) else negs.(i))
      in
      B.add_gate b Gate.And (enable :: literals))

let build_comparator b a_bits b_bits =
  let n = Array.length a_bits in
  let bitwise_eq =
    Array.init n (fun i -> B.add_gate b Gate.Xnor [ a_bits.(i); b_bits.(i) ])
  in
  let eq =
    match Array.to_list bitwise_eq with
    | [ only ] -> only
    | several -> B.add_gate b Gate.And several
  in
  (* From the MSB down: lt = (~a & b) | (bit-equal & lt-of-lower-bits). *)
  let rec scan i lt_below =
    if i >= n then lt_below
    else begin
      let na = B.add_gate b Gate.Not [ a_bits.(i) ] in
      let here = B.add_gate b Gate.And [ na; b_bits.(i) ] in
      let keep = B.add_gate b Gate.And [ bitwise_eq.(i); lt_below ] in
      scan (i + 1) (B.add_gate b Gate.Or [ here; keep ])
    end
  in
  let lt =
    match n with
    | 0 -> invalid_arg "comparator of zero bits"
    | _ ->
      let na = B.add_gate b Gate.Not [ a_bits.(0) ] in
      let lt0 = B.add_gate b Gate.And [ na; b_bits.(0) ] in
      scan 1 lt0
  in
  (eq, lt)

let build_alu b a_bits b_bits cin op0 op1 =
  let n = Array.length a_bits in
  let and_bits = Array.init n (fun i -> B.add_gate b Gate.And [ a_bits.(i); b_bits.(i) ]) in
  let or_bits = Array.init n (fun i -> B.add_gate b Gate.Or [ a_bits.(i); b_bits.(i) ]) in
  let xor_bits = Array.init n (fun i -> B.add_gate b Gate.Xor [ a_bits.(i); b_bits.(i) ]) in
  let sum_bits, add_cout = build_ripple_adder b a_bits b_bits cin in
  let result =
    Array.init n (fun i ->
        let low = mux2 b and_bits.(i) or_bits.(i) op0 in
        let high = mux2 b xor_bits.(i) sum_bits.(i) op0 in
        mux2 b low high op1)
  in
  let cout = B.add_gate b Gate.And [ add_cout; op0; op1 ] in
  (result, cout)

(* ------------------------------------------------------------------ *)
(* Top-level generators. *)

let named_inputs b prefix n =
  Array.init n (fun i -> B.add_input b (Printf.sprintf "%s%d" prefix i))

let c17 () =
  let b = B.create ~name:"c17" in
  let g1 = B.add_input b "G1" in
  let g2 = B.add_input b "G2" in
  let g3 = B.add_input b "G3" in
  let g6 = B.add_input b "G6" in
  let g7 = B.add_input b "G7" in
  let g10 = B.add_gate b ~name:"G10" Gate.Nand [ g1; g3 ] in
  let g11 = B.add_gate b ~name:"G11" Gate.Nand [ g3; g6 ] in
  let g16 = B.add_gate b ~name:"G16" Gate.Nand [ g2; g11 ] in
  let g19 = B.add_gate b ~name:"G19" Gate.Nand [ g11; g7 ] in
  let g22 = B.add_gate b ~name:"G22" Gate.Nand [ g10; g16 ] in
  let g23 = B.add_gate b ~name:"G23" Gate.Nand [ g16; g19 ] in
  B.mark_output b g22;
  B.mark_output b g23;
  B.build b

let ripple_carry_adder ~bits =
  if bits <= 0 then invalid_arg "ripple_carry_adder: bits must be positive";
  let b = B.create ~name:(Printf.sprintf "rca%d" bits) in
  let a = named_inputs b "a" bits in
  let bv = named_inputs b "b" bits in
  let cin = B.add_input b "cin" in
  let sums, cout = build_ripple_adder b a bv cin in
  Array.iter (B.mark_output b) sums;
  B.mark_output b cout;
  B.build b

let carry_select_adder ~bits ~block =
  if bits <= 0 then invalid_arg "carry_select_adder: bits must be positive";
  if block <= 0 then invalid_arg "carry_select_adder: block must be positive";
  let b = B.create ~name:(Printf.sprintf "csa%d_%d" bits block) in
  let a = named_inputs b "a" bits in
  let bv = named_inputs b "b" bits in
  let cin = B.add_input b "cin" in
  let sums = Array.make bits (-1) in
  (* The first block ripples from the real carry-in; every later block
     is computed for both carry values and muxed by the incoming carry. *)
  let carry = ref cin in
  let position = ref 0 in
  while !position < bits do
    let width = min block (bits - !position) in
    let a_slice = Array.sub a !position width in
    let b_slice = Array.sub bv !position width in
    if !position = 0 then begin
      let s, c = build_ripple_adder b a_slice b_slice !carry in
      Array.blit s 0 sums !position width;
      carry := c
    end
    else begin
      let zero = B.add_const b (Printf.sprintf "c0_%d" !position) false in
      let one = B.add_const b (Printf.sprintf "c1_%d" !position) true in
      let s0, c0 = build_ripple_adder b a_slice b_slice zero in
      let s1, c1 = build_ripple_adder b a_slice b_slice one in
      for i = 0 to width - 1 do
        sums.(!position + i) <- mux2 b s0.(i) s1.(i) !carry
      done;
      carry := mux2 b c0 c1 !carry
    end;
    position := !position + width
  done;
  Array.iter (B.mark_output b) sums;
  B.mark_output b !carry;
  B.build b

let barrel_shifter ~bits =
  if bits <= 1 || bits land (bits - 1) <> 0 then
    invalid_arg "barrel_shifter: bits must be a power of two > 1";
  let stages =
    let rec log2 v acc = if v = 1 then acc else log2 (v / 2) (acc + 1) in
    log2 bits 0
  in
  let b = B.create ~name:(Printf.sprintf "rol%d" bits) in
  let data = named_inputs b "d" bits in
  let selects = named_inputs b "s" stages in
  (* Stage k rotates by 2^k when its select bit is set. *)
  let current = ref data in
  for stage = 0 to stages - 1 do
    let amount = 1 lsl stage in
    let rotated =
      Array.init bits (fun i ->
          (* Output i of a left rotation by [amount] takes input
             (i - amount) mod bits. *)
          let src = ((i - amount) mod bits + bits) mod bits in
          mux2 b !current.(i) !current.(src) selects.(stage))
    in
    current := rotated
  done;
  Array.iter (B.mark_output b) !current;
  B.build b

let array_multiplier ~bits =
  if bits <= 0 then invalid_arg "array_multiplier: bits must be positive";
  let b = B.create ~name:(Printf.sprintf "mul%d" bits) in
  let a = named_inputs b "a" bits in
  let bv = named_inputs b "b" bits in
  let products = build_multiplier b a bv in
  Array.iter (B.mark_output b) products;
  B.build b

let parity_tree ~bits =
  if bits <= 0 then invalid_arg "parity_tree: bits must be positive";
  let b = B.create ~name:(Printf.sprintf "parity%d" bits) in
  let xs = named_inputs b "x" bits in
  B.mark_output b (build_parity_tree b xs);
  B.build b

let mux_tree ~select_bits =
  if select_bits <= 0 then invalid_arg "mux_tree: select_bits must be positive";
  let b = B.create ~name:(Printf.sprintf "mux%d" (1 lsl select_bits)) in
  let data = named_inputs b "d" (1 lsl select_bits) in
  let selects = named_inputs b "s" select_bits in
  B.mark_output b (build_mux_tree b data (Array.to_list selects));
  B.build b

let decoder ~bits =
  if bits <= 0 then invalid_arg "decoder: bits must be positive";
  let b = B.create ~name:(Printf.sprintf "dec%d" bits) in
  let enable = B.add_input b "en" in
  let selects = named_inputs b "s" bits in
  Array.iter (B.mark_output b) (build_decoder b enable selects);
  B.build b

let comparator ~bits =
  if bits <= 0 then invalid_arg "comparator: bits must be positive";
  let b = B.create ~name:(Printf.sprintf "cmp%d" bits) in
  let a = named_inputs b "a" bits in
  let bv = named_inputs b "b" bits in
  let eq, lt = build_comparator b a bv in
  B.mark_output b eq;
  B.mark_output b lt;
  B.build b

let alu ~bits =
  if bits <= 0 then invalid_arg "alu: bits must be positive";
  let b = B.create ~name:(Printf.sprintf "alu%d" bits) in
  let a = named_inputs b "a" bits in
  let bv = named_inputs b "b" bits in
  let cin = B.add_input b "cin" in
  let op0 = B.add_input b "op0" in
  let op1 = B.add_input b "op1" in
  let result, cout = build_alu b a bv cin op0 op1 in
  Array.iter (B.mark_output b) result;
  B.mark_output b cout;
  B.build b

let random_gate_kinds =
  [| Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor |]

let build_random_logic b rng ~gates existing =
  let nodes = ref existing in
  let count = ref (List.length existing) in
  let pick () =
    (* Quadratic recency bias keeps depth realistic instead of shallow. *)
    let u = Stats.Rng.uniform rng in
    let offset = int_of_float (u *. u *. float_of_int !count) in
    List.nth !nodes (min (!count - 1) offset)
  in
  let created = ref [] in
  for _ = 1 to gates do
    let id =
      if Stats.Rng.uniform rng < 0.12 then
        B.add_gate b Gate.Not [ pick () ]
      else begin
        let kind = random_gate_kinds.(Stats.Rng.int rng (Array.length random_gate_kinds)) in
        let x = pick () in
        let y = pick () in
        if x = y then B.add_gate b Gate.Not [ x ] else B.add_gate b kind [ x; y ]
      end
    in
    nodes := id :: !nodes;
    incr count;
    created := id :: !created
  done;
  List.rev !created

let random_circuit ~inputs ~gates ~outputs ~seed =
  if inputs <= 0 || gates <= 0 || outputs <= 0 then
    invalid_arg "random_circuit: all sizes must be positive";
  let rng = Stats.Rng.create ~seed:(seed + 1) () in
  let b = B.create ~name:(Printf.sprintf "rand_i%d_g%d_s%d" inputs gates seed) in
  let ins = named_inputs b "x" inputs in
  let created = build_random_logic b rng ~gates (Array.to_list ins |> List.rev) in
  (* Every sink must be observable, otherwise its cone is dead logic;
     then top up with random internal nodes to reach the request. *)
  let created_arr = Array.of_list created in
  let referenced = Hashtbl.create gates in
  (* A gate is a sink if no later gate consumed it; recompute after build
     would be easier but the builder doesn't expose fanouts, so track
     consumption implicitly: a node is consumed when picked.  Simplest
     robust approach: mark the last [outputs] created gates plus any gate
     nobody references.  We conservatively mark from the end. *)
  ignore referenced;
  let n_created = Array.length created_arr in
  let marked = Hashtbl.create outputs in
  let mark id =
    if not (Hashtbl.mem marked id) then begin
      Hashtbl.add marked id ();
      B.mark_output b id
    end
  in
  for i = 0 to min outputs n_created - 1 do
    mark created_arr.(n_created - 1 - i)
  done;
  let netlist = B.build b in
  (* Re-check for dead sinks and rebuild with them marked too. *)
  let dead =
    Array.to_list netlist.Netlist.topo_order
    |> List.filter (fun id ->
           Array.length netlist.Netlist.fanouts.(id) = 0
           && not (Netlist.is_output netlist id)
           && netlist.Netlist.kinds.(id) <> Gate.Input)
  in
  if dead = [] then netlist
  else begin
    List.iter mark dead;
    B.build b
  end

let lsi_chip ?(seed = 1981) ?(scale = 8) () =
  if scale < 4 then invalid_arg "lsi_chip: scale must be >= 4";
  let rng = Stats.Rng.create ~seed () in
  let b = B.create ~name:(Printf.sprintf "lsi%d" scale) in
  let a = named_inputs b "a" scale in
  let bv = named_inputs b "b" scale in
  let c = named_inputs b "c" (2 * scale) in
  let d = named_inputs b "d" (2 * scale) in
  let cin = B.add_input b "cin" in
  let op0 = B.add_input b "op0" in
  let op1 = B.add_input b "op1" in
  let en = B.add_input b "en" in
  (* Datapath: multiplier feeding a wide adder, an ALU, a comparator. *)
  let products = build_multiplier b a bv in
  let sums, add_cout = build_ripple_adder b c d cin in
  let alu_out, alu_cout = build_alu b a bv cin op0 op1 in
  let eq, lt = build_comparator b c d in
  (* Mix datapath results through parity/mux/decoder "control" logic. *)
  let parity = build_parity_tree b products in
  let dec_outs = build_decoder b en [| op0; op1; lt |] in
  let mux_out = build_mux_tree b (Array.sub products 0 8) [ op0; op1; eq ] in
  (* Random glue logic over a blend of everything above. *)
  let pool =
    List.concat
      [ Array.to_list sums; Array.to_list alu_out; Array.to_list dec_outs;
        [ parity; mux_out; add_cout; alu_cout; eq; lt ] ]
  in
  let glue = build_random_logic b rng ~gates:(scale * scale * 4) pool in
  Array.iter (B.mark_output b) products;
  Array.iter (B.mark_output b) sums;
  Array.iter (B.mark_output b) alu_out;
  B.mark_output b parity;
  B.mark_output b mux_out;
  B.mark_output b eq;
  B.mark_output b lt;
  B.mark_output b add_cout;
  B.mark_output b alu_cout;
  (* Observe the tail of the glue logic plus any dead sinks. *)
  let glue_arr = Array.of_list glue in
  let n_glue = Array.length glue_arr in
  for i = 0 to min (4 * scale) n_glue - 1 do
    B.mark_output b glue_arr.(n_glue - 1 - i)
  done;
  let netlist = B.build b in
  let dead =
    Array.to_list netlist.Netlist.topo_order
    |> List.filter (fun id ->
           Array.length netlist.Netlist.fanouts.(id) = 0
           && not (Netlist.is_output netlist id)
           && netlist.Netlist.kinds.(id) <> Gate.Input)
  in
  if dead = [] then netlist
  else begin
    List.iter (B.mark_output b) dead;
    B.build b
  end

let redundant_demo () =
  (* Small circuit seeded with every defect class the lint subsystem
     proves: a net stuck by constant propagation ([blk]), dead logic
     ([dead]), a floating input ([unused]), a duplicated fanin ([g3]),
     and the statically untestable faults they all imply.  The live
     logic (g1, g2, y2, y3) keeps the circuit from degenerating so
     detectable faults stay detectable. *)
  let b = B.create ~name:"redundant_demo" in
  let a = B.add_input b "a" in
  let bv = B.add_input b "b" in
  let c = B.add_input b "c" in
  let d = B.add_input b "d" in
  let _unused = B.add_input b "unused" in
  let zero = B.add_const b "zero" false in
  let g1 = B.add_gate b ~name:"g1" Gate.And [ a; bv ] in
  let g2 = B.add_gate b ~name:"g2" Gate.Or [ g1; c ] in
  (* blk = g2 AND 0: provably stuck at 0. *)
  let blk = B.add_gate b ~name:"blk" Gate.And [ g2; zero ] in
  (* dead reaches no primary output. *)
  let _dead = B.add_gate b ~name:"dead" Gate.Xor [ blk; c ] in
  (* y2 = blk OR a reduces to a: faults on the blk pin are redundant. *)
  let y2 = B.add_gate b ~name:"y2" Gate.Or [ blk; a ] in
  (* g3 = d XOR d: duplicated fanin, provably 0. *)
  let g3 = B.add_gate b ~name:"g3" Gate.Xor [ d; d ] in
  let y3 = B.add_gate b ~name:"y3" Gate.Or [ g3; bv ] in
  B.mark_output b g2;
  B.mark_output b y2;
  B.mark_output b y3;
  B.build b

(* ------------------------------------------------------------------ *)
(* Functional specifications. *)

let bits_to_int bits =
  Array.to_list bits
  |> List.rev
  |> List.fold_left (fun acc bit -> (2 * acc) + if bit then 1 else 0) 0

let int_to_bits width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

let spec_adder a b cin =
  let n = Array.length a in
  let total = bits_to_int a + bits_to_int b + if cin then 1 else 0 in
  (int_to_bits n total, (total lsr n) land 1 = 1)

let spec_multiplier a b =
  let n = Array.length a in
  int_to_bits (2 * n) (bits_to_int a * bits_to_int b)

let spec_parity bits = Array.fold_left (fun acc bit -> acc <> bit) false bits

let spec_mux ~data ~select = data.(bits_to_int select)

let spec_decoder ~enable ~select =
  let k = Array.length select in
  let code = bits_to_int select in
  Array.init (1 lsl k) (fun i -> enable && i = code)

let spec_comparator a b =
  let va = bits_to_int a and vb = bits_to_int b in
  (va = vb, va < vb)

let spec_alu ~op a b cin =
  let n = Array.length a in
  match op with
  | 0 -> (Array.init n (fun i -> a.(i) && b.(i)), false)
  | 1 -> (Array.init n (fun i -> a.(i) || b.(i)), false)
  | 2 -> (Array.init n (fun i -> a.(i) <> b.(i)), false)
  | 3 -> spec_adder a b cin
  | _ -> invalid_arg "spec_alu: op must be 0..3"

let spec_rotate_left data select =
  let n = Array.length data in
  let amount = bits_to_int select mod n in
  Array.init n (fun i -> data.((((i - amount) mod n) + n) mod n))

let of_spec spec =
  let usage =
    "unknown circuit spec (builtins: c17 redundant rca:N csa:N,B mul:N alu:N \
     parity:N mux:K dec:N cmp:N shift:N lsi:S rand:i,g,o,seed)"
  in
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> failwith usage
  in
  match String.split_on_char ':' spec with
  | [ "c17" ] -> c17 ()
  | [ "redundant" ] -> redundant_demo ()
  | [ "rca"; n ] -> ripple_carry_adder ~bits:(int_of n)
  | [ "csa"; rest ] ->
    (match String.split_on_char ',' rest with
    | [ n; blk ] -> carry_select_adder ~bits:(int_of n) ~block:(int_of blk)
    | [ n ] -> carry_select_adder ~bits:(int_of n) ~block:4
    | _ -> failwith usage)
  | [ "mul"; n ] -> array_multiplier ~bits:(int_of n)
  | [ "alu"; n ] -> alu ~bits:(int_of n)
  | [ "parity"; n ] -> parity_tree ~bits:(int_of n)
  | [ "mux"; n ] -> mux_tree ~select_bits:(int_of n)
  | [ "dec"; n ] -> decoder ~bits:(int_of n)
  | [ "cmp"; n ] -> comparator ~bits:(int_of n)
  | [ "shift"; n ] -> barrel_shifter ~bits:(int_of n)
  | [ "lsi"; n ] -> lsi_chip ~scale:(int_of n) ()
  | [ "rand"; rest ] ->
    (match String.split_on_char ',' rest with
    | [ i; g; o; s ] ->
      random_circuit ~inputs:(int_of i) ~gates:(int_of g) ~outputs:(int_of o)
        ~seed:(int_of s)
    | _ -> failwith usage)
  | _ -> failwith usage
