type t = {
  name : string;
  kinds : Gate.kind array;
  fanins : int array array;
  fanouts : int array array;
  node_names : string array;
  inputs : int array;
  outputs : int array;
  topo_order : int array;
  levels : int array;
}

exception Cycle of string

module Builder = struct
  type netlist = t [@@warning "-34"]

  type t = {
    circuit_name : string;
    mutable kinds : Gate.kind list;       (* reversed *)
    mutable fanin_lists : int list list;  (* reversed *)
    mutable names : string list;          (* reversed *)
    mutable next_id : int;
    mutable input_ids : int list;         (* reversed *)
    mutable output_ids : int list;        (* reversed *)
    mutable output_set : (int, unit) Hashtbl.t;
  }

  let create ~name =
    { circuit_name = name; kinds = []; fanin_lists = []; names = [];
      next_id = 0; input_ids = []; output_ids = [];
      output_set = Hashtbl.create 16 }

  let add_node b kind fanins name =
    List.iter
      (fun src ->
        if src < 0 || src >= b.next_id then
          invalid_arg
            (Printf.sprintf "Netlist.Builder: fanin %d of %s does not exist" src name))
      fanins;
    let arity = List.length fanins in
    if arity < Gate.min_arity kind then
      invalid_arg
        (Printf.sprintf "Netlist.Builder: %s needs >= %d fanins, got %d"
           (Gate.to_string kind) (Gate.min_arity kind) arity);
    (match Gate.max_arity kind with
    | Some m when arity > m ->
      invalid_arg
        (Printf.sprintf "Netlist.Builder: %s allows <= %d fanins, got %d"
           (Gate.to_string kind) m arity)
    | Some _ | None -> ());
    let id = b.next_id in
    b.next_id <- id + 1;
    b.kinds <- kind :: b.kinds;
    b.fanin_lists <- fanins :: b.fanin_lists;
    b.names <- name :: b.names;
    id

  let add_input b name =
    let id = add_node b Gate.Input [] name in
    b.input_ids <- id :: b.input_ids;
    id

  let add_const b name value =
    add_node b (if value then Gate.Const1 else Gate.Const0) [] name

  let add_gate b ?name kind fanins =
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "n%d" b.next_id
    in
    add_node b kind fanins name

  let mark_output b id =
    if id < 0 || id >= b.next_id then
      invalid_arg "Netlist.Builder.mark_output: no such node";
    if not (Hashtbl.mem b.output_set id) then begin
      Hashtbl.add b.output_set id ();
      b.output_ids <- id :: b.output_ids
    end

  let build b =
    let n = b.next_id in
    let kinds = Array.of_list (List.rev b.kinds) in
    (* [fanin_lists] is most-recent-first; rev_map restores id order. *)
    let fanins = Array.of_list (List.rev_map Array.of_list b.fanin_lists) in
    let node_names = Array.of_list (List.rev b.names) in
    let inputs = Array.of_list (List.rev b.input_ids) in
    let outputs = Array.of_list (List.rev b.output_ids) in
    (* Fanouts. *)
    let fanout_counts = Array.make n 0 in
    Array.iter
      (Array.iter (fun src -> fanout_counts.(src) <- fanout_counts.(src) + 1))
      fanins;
    let fanouts = Array.map (fun c -> Array.make c (-1)) fanout_counts in
    let cursor = Array.make n 0 in
    Array.iteri
      (fun dst srcs ->
        Array.iter
          (fun src ->
            fanouts.(src).(cursor.(src)) <- dst;
            cursor.(src) <- cursor.(src) + 1)
          srcs)
      fanins;
    (* Kahn topological sort; ids are already fanin-before-fanout for
       builder-constructed circuits, but parsed netlists may not be. *)
    let indegree = Array.map Array.length fanins in
    let queue = Queue.create () in
    Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
    let topo = Array.make n (-1) in
    let filled = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      topo.(!filled) <- u;
      incr filled;
      Array.iter
        (fun v ->
          indegree.(v) <- indegree.(v) - 1;
          if indegree.(v) = 0 then Queue.add v queue)
        fanouts.(u)
    done;
    if !filled <> n then begin
      (* Nodes with positive residual indegree still have an unsorted
         fanin, so following such fanins from any of them must loop.
         Walk until a node repeats and report the whole cycle in signal
         flow order, not just one node on it. *)
      let remaining i = indegree.(i) > 0 in
      let start =
        let found = ref (-1) in
        Array.iteri (fun i d -> if d > 0 && !found < 0 then found := i) indegree;
        !found
      in
      let visited_at = Hashtbl.create 16 in
      let trail = ref [] in
      let rec walk node steps =
        match Hashtbl.find_opt visited_at node with
        | Some _ ->
          (* Keep the trail back to the first visit of [node]: that
             suffix, reversed, is the cycle in fanin->fanout order. *)
          let cycle = ref [] in
          (try
             List.iter
               (fun v ->
                 cycle := v :: !cycle;
                 if v = node then raise Exit)
               !trail
           with Exit -> ());
          !cycle @ [ node ]
        | None ->
          Hashtbl.add visited_at node steps;
          trail := node :: !trail;
          let next =
            Array.fold_left
              (fun acc src -> if acc >= 0 || not (remaining src) then acc else src)
              (-1) fanins.(node)
          in
          walk next (steps + 1)
      in
      let path = walk start 0 in
      raise
        (Cycle (String.concat " -> " (List.map (fun i -> node_names.(i)) path)))
    end;
    let levels = Array.make n 0 in
    Array.iter
      (fun u ->
        let lvl =
          Array.fold_left (fun acc src -> max acc (levels.(src) + 1)) 0 fanins.(u)
        in
        levels.(u) <- if Array.length fanins.(u) = 0 then 0 else lvl)
      topo;
    { name = b.circuit_name; kinds; fanins; fanouts; node_names; inputs;
      outputs; topo_order = topo; levels }
end

let num_nodes t = Array.length t.kinds
let num_inputs t = Array.length t.inputs
let num_outputs t = Array.length t.outputs

let num_gates t =
  Array.fold_left
    (fun acc kind ->
      match kind with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> acc
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor -> acc + 1)
    0 t.kinds

let depth t = Array.fold_left max 0 t.levels

let gate_census t =
  let add assoc kind =
    match List.assoc_opt kind assoc with
    | Some c -> (kind, c + 1) :: List.remove_assoc kind assoc
    | None -> (kind, 1) :: assoc
  in
  Array.fold_left add [] t.kinds |> List.sort compare

let find_node t name =
  let n = Array.length t.node_names in
  let rec loop i =
    if i >= n then None
    else if String.equal t.node_names.(i) name then Some i
    else loop (i + 1)
  in
  loop 0

let is_output t id = Array.exists (fun o -> o = id) t.outputs

(* One stem per node plus one line per gate input pin. *)
let line_count t =
  Array.fold_left (fun acc fanins -> acc + 1 + Array.length fanins) 0 t.fanins

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d inputs, %d outputs, %d gates, depth %d"
    t.name (num_inputs t) (num_outputs t) (num_gates t) (depth t)
