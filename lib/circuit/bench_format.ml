exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type statement =
  | Declare_input of string
  | Declare_output of string
  | Define of { target : string; gate : string; args : string list }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Anything bigger trips the cap before the builder allocates; real
   netlists top out around a few hundred fanins even post-synthesis. *)
let max_fanin = 4096

let check_charset lineno text =
  String.iter
    (fun c ->
      let code = Char.code c in
      if code >= 0x7f || (code < 0x20 && c <> '\t') then
        fail lineno "non-ASCII or control byte 0x%02x in %S" code
          (String.sub text 0 (min 40 (String.length text))))
    text

let check_name lineno what s =
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9'
      | '_' | '.' | '[' | ']' | '-' | '$' | '/' | ':' -> ()
      | _ -> fail lineno "invalid character %C in %s %S" c what s)
    s;
  s

(* The last ')' ends the statement; anything after it is garbage from a
   glued-together or truncated-and-rejoined file. *)
let check_trailing lineno text rparen =
  let rest =
    String.trim (String.sub text (rparen + 1) (String.length text - rparen - 1))
  in
  if rest <> "" then fail lineno "trailing %S after ')' in %S" rest text

let tokenize_statement lineno text =
  (* Shapes: INPUT(x) / OUTPUT(x) / t = GATE(a, b, ...) *)
  let text = String.trim text in
  check_charset lineno text;
  match String.index_opt text '=' with
  | None ->
    let lparen =
      match String.index_opt text '(' with
      | Some i -> i
      | None -> fail lineno "expected '(' in declaration %S" text
    in
    let keyword = String.uppercase_ascii (String.trim (String.sub text 0 lparen)) in
    let rparen =
      match String.rindex_opt text ')' with
      | Some i -> i
      | None -> fail lineno "missing ')' in %S" text
    in
    if rparen < lparen then fail lineno "')' before '(' in %S" text;
    check_trailing lineno text rparen;
    let arg = String.trim (String.sub text (lparen + 1) (rparen - lparen - 1)) in
    if arg = "" then fail lineno "empty name in %S" text;
    (match keyword with
    | "INPUT" -> Declare_input (check_name lineno "signal name" arg)
    | "OUTPUT" -> Declare_output (check_name lineno "signal name" arg)
    | _ -> fail lineno "unknown declaration %S" keyword)
  | Some eq ->
    let target = String.trim (String.sub text 0 eq) in
    if target = "" then fail lineno "missing target before '='";
    let target = check_name lineno "target name" target in
    let rhs = String.trim (String.sub text (eq + 1) (String.length text - eq - 1)) in
    let lparen =
      match String.index_opt rhs '(' with
      | Some i -> i
      | None -> fail lineno "expected '(' after gate name in %S" rhs
    in
    let gate = String.uppercase_ascii (String.trim (String.sub rhs 0 lparen)) in
    let rparen =
      match String.rindex_opt rhs ')' with
      | Some i -> i
      | None -> fail lineno "missing ')' in %S" rhs
    in
    if rparen < lparen then fail lineno "')' before '(' in %S" rhs;
    check_trailing lineno rhs rparen;
    let args_text = String.sub rhs (lparen + 1) (rparen - lparen - 1) in
    let args =
      if String.trim args_text = "" then []
      else
        String.split_on_char ',' args_text
        |> List.map (fun raw ->
               let a = String.trim raw in
               if a = "" then fail lineno "empty argument in %S" rhs
               else check_name lineno "signal name" a)
    in
    if List.length args > max_fanin then
      fail lineno "gate %s has %d inputs (limit %d)" target (List.length args)
        max_fanin;
    Define { target; gate; args }

let parse_statements source =
  let statements = ref [] in
  String.split_on_char '\n' source
  |> List.iteri (fun i raw ->
         let text = String.trim (strip_comment raw) in
         if text <> "" then
           statements := (i + 1, tokenize_statement (i + 1) text) :: !statements);
  List.rev !statements

let parse_string ?(name = "bench") source =
  let statements = parse_statements source in
  if statements = [] then fail 1 "no statements (empty or comment-only source)";
  let builder = Netlist.Builder.create ~name in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let declared_outputs = ref [] in
  (* Pass 1: primary inputs and DFF outputs become input nodes so that
     definitions can refer to them in any order. *)
  List.iter
    (fun (lineno, st) ->
      match st with
      | Declare_input signal ->
        if Hashtbl.mem ids signal then fail lineno "duplicate INPUT(%s)" signal;
        Hashtbl.add ids signal (Netlist.Builder.add_input builder signal)
      | Define { target; gate = "DFF"; args } ->
        (match args with
        | [ _ ] -> ()
        | _ -> fail lineno "DFF takes exactly one argument");
        if Hashtbl.mem ids target then fail lineno "duplicate definition of %s" target;
        (* Full scan: the flop's Q pin is a controllable pseudo input. *)
        Hashtbl.add ids target (Netlist.Builder.add_input builder target)
      | Declare_output _ | Define _ -> ())
    statements;
  (* Pass 2: logic gates, resolved iteratively because .bench files may
     define signals after their uses. *)
  let pending = ref [] in
  let explicit_outputs : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (lineno, st) ->
      match st with
      | Declare_input _ -> ()
      | Declare_output signal ->
        (* Only explicit OUTPUT() lines are deduplicated here: a DFF data
           pin may legitimately coincide with a declared output, and the
           builder folds those together downstream. *)
        if Hashtbl.mem explicit_outputs signal then
          fail lineno "duplicate OUTPUT(%s)" signal;
        Hashtbl.add explicit_outputs signal ();
        declared_outputs := (lineno, signal) :: !declared_outputs
      | Define { gate = "DFF"; args; target } ->
        (* The D pin is an observable pseudo output. *)
        (match args with
        | [ d ] -> declared_outputs := (lineno, d) :: !declared_outputs
        | _ -> fail lineno "DFF takes exactly one argument (%s)" target)
      | Define { target; gate; args } ->
        let kind =
          match Gate.of_string gate with
          | Some k -> k
          | None -> fail lineno "unknown gate type %S" gate
        in
        let arity = List.length args in
        if arity < Gate.min_arity kind then
          fail lineno "%s(%s) needs at least %d input%s, got %d" gate target
            (Gate.min_arity kind)
            (if Gate.min_arity kind = 1 then "" else "s")
            arity;
        (match Gate.max_arity kind with
        | Some m when arity > m ->
          fail lineno "%s(%s) takes at most %d input%s, got %d" gate target m
            (if m = 1 then "" else "s")
            arity
        | Some _ | None -> ());
        pending := (lineno, target, kind, args) :: !pending)
    statements;
  let pending = ref (List.rev !pending) in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let unresolved = ref [] in
    List.iter
      (fun ((lineno, target, kind, args) as item) ->
        let resolved =
          List.fold_left
            (fun acc arg ->
              match acc with
              | None -> None
              | Some rev ->
                (match Hashtbl.find_opt ids arg with
                | Some id -> Some (id :: rev)
                | None -> None))
            (Some []) args
        in
        match resolved with
        | Some rev_ids ->
          if Hashtbl.mem ids target then fail lineno "duplicate definition of %s" target;
          let id =
            Netlist.Builder.add_gate builder ~name:target kind (List.rev rev_ids)
          in
          Hashtbl.add ids target id;
          progress := true
        | None -> unresolved := item :: !unresolved)
      !pending;
    pending := List.rev !unresolved
  done;
  (match !pending with
  | (_ :: _) as stuck ->
    (* Either a signal is genuinely undefined, or every blocker is
       itself a stuck definition — a combinational cycle.  Distinguish
       the two and, for cycles, spell out the whole loop. *)
    let defined_by = Hashtbl.create 16 in
    List.iter (fun (_, target, _, _) -> Hashtbl.replace defined_by target ()) stuck;
    let truly_missing =
      List.concat_map
        (fun (lineno, target, _, args) ->
          List.filter_map
            (fun a ->
              if Hashtbl.mem ids a || Hashtbl.mem defined_by a then None
              else Some (lineno, target, a))
            args)
        stuck
    in
    (match truly_missing with
    | (lineno, target, missing) :: _ ->
      fail lineno "undefined signal %s feeding %s" missing target
    | [] ->
      (* Walk target -> (a stuck fanin) until a signal repeats. *)
      let next = Hashtbl.create 16 in
      List.iter
        (fun (_, target, _, args) ->
          match List.find_opt (fun a -> Hashtbl.mem defined_by a) args with
          | Some a -> Hashtbl.replace next target a
          | None -> ())
        stuck;
      let start = match stuck with (_, target, _, _) :: _ -> target | [] -> "?" in
      let seen = Hashtbl.create 16 in
      let rec walk signal trail =
        if Hashtbl.mem seen signal then begin
          let cycle = ref [] in
          (try
             List.iter
               (fun s ->
                 cycle := s :: !cycle;
                 if String.equal s signal then raise Exit)
               trail
           with Exit -> ());
          !cycle @ [ signal ]
        end
        else begin
          Hashtbl.add seen signal ();
          match Hashtbl.find_opt next signal with
          | Some succ -> walk succ (signal :: trail)
          | None -> List.rev (signal :: trail)
        end
      in
      (* The fanin walk runs against signal flow; reverse it so the
         reported loop reads driver -> sink, matching Netlist.Cycle. *)
      let path = List.rev (walk start []) in
      raise (Netlist.Cycle (String.concat " -> " path)))
  | [] -> ());
  List.iter
    (fun (lineno, signal) ->
      match Hashtbl.find_opt ids signal with
      | Some id -> Netlist.Builder.mark_output builder id
      | None -> fail lineno "OUTPUT(%s) refers to an undefined signal" signal)
    (List.rev !declared_outputs);
  Netlist.Builder.build builder

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse_string ~name source

let to_string (c : Netlist.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" c.name);
  Array.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" c.node_names.(id)))
    c.inputs;
  Array.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" c.node_names.(id)))
    c.outputs;
  Array.iter
    (fun id ->
      match c.kinds.(id) with
      | Gate.Input -> ()
      | Gate.Const0 | Gate.Const1 ->
        (* .bench has no constant literal; emit the XOR/XNOR-of-self idiom
           is unsound, so use a dedicated pseudo gate name the parser of
           this module understands. *)
        Buffer.add_string buf
          (Printf.sprintf "%s = %s()\n" c.node_names.(id) (Gate.to_string c.kinds.(id)))
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        let args =
          Array.to_list c.fanins.(id)
          |> List.map (fun src -> c.node_names.(src))
          |> String.concat ", "
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" c.node_names.(id)
             (Gate.to_string c.kinds.(id)) args))
    c.topo_order;
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
