open Signal_prob

(* Local interval constructor with the [0 <= lo <= hi <= 1] invariant;
   mirrors Signal_prob's internal one. *)
let clamp01 v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v

let mk lo hi =
  let lo = clamp01 lo and hi = clamp01 hi in
  if lo > hi then { lo = hi; hi = lo } else { lo; hi }

type t = {
  sp : Signal_prob.t;
  obs_stem : interval array;
  obs_pin : interval array array;
  obs_stem_support : Support.set array;
  obs_pin_support : Support.set array array;
  all_indep : bool;
}

let signal_prob t = t.sp
let observability t id = t.obs_stem.(id)
let pin_observability t ~gate ~pin = t.obs_pin.(gate).(pin)
let exact t = Signal_prob.exact t.sp && t.all_indep

let analyze ?dominators sp =
  Obs.Trace.with_span "analysis.prob.observability" @@ fun () ->
  let c = Signal_prob.circuit sp in
  let dominators =
    match dominators with Some d -> d | None -> Dominators.compute c
  in
  let n = Circuit.Netlist.num_nodes c in
  let none = Signal_prob.empty_support sp in
  let obs_stem = Array.make n (mk 0.0 0.0) in
  let obs_pin =
    Array.map
      (fun fanins -> Array.make (Array.length fanins) (mk 0.0 0.0))
      c.Circuit.Netlist.fanins
  in
  let obs_stem_support = Array.make n none in
  let obs_pin_support =
    Array.map
      (fun fanins -> Array.make (Array.length fanins) none)
      c.Circuit.Netlist.fanins
  in
  let fallbacks = ref 0 in
  let conj (a, sa) (b, sb) =
    if Support.disjoint sa sb then (conj_indep a b, Support.union sa sb)
    else begin
      incr fallbacks;
      (conj_frechet a b, Support.union sa sb)
    end
  in
  let topo = c.Circuit.Netlist.topo_order in
  for i = Array.length topo - 1 downto 0 do
    let id = topo.(i) in
    (* Stem observability first: every fanout destination is strictly
       downstream, so its pin observabilities are already final. *)
    let edges = Signal_prob.branches sp id in
    let stem, stem_supp =
      if Circuit.Netlist.is_output c id then (mk 1.0 1.0, none)
      else
        match Array.length edges with
        | 0 -> (mk 0.0 0.0, none)
        | 1 ->
          let gate, pin = edges.(0) in
          (obs_pin.(gate).(pin), obs_pin_support.(gate).(pin))
        | _ ->
          let supp =
            Array.fold_left
              (fun acc (gate, pin) ->
                Support.union acc obs_pin_support.(gate).(pin))
              none edges
          in
          if Signal_prob.reconvergent sp id then begin
            (* Paths through different branches can interact — even
               cancel — so neither endpoint of the branch-union rule is
               sound.  Upper bound via the immediate dominator: a
               difference at the stem reaches an output only through
               it. *)
            incr fallbacks;
            let hi =
              match Dominators.idom dominators id with
              | Some d -> obs_stem.(d).hi
              | None -> 1.0
            in
            (mk 0.0 hi, supp)
          end
          else begin
            (* Non-reconvergent: the stem event is exactly the union of
               the branch events.  Disjoint supports upgrade the bound
               to the independent-union product. *)
            let disjoint_all =
              let seen = ref none and ok = ref true in
              Array.iter
                (fun (gate, pin) ->
                  let s = obs_pin_support.(gate).(pin) in
                  if not (Support.disjoint !seen s) then ok := false;
                  seen := Support.union !seen s)
                edges;
              !ok
            in
            if disjoint_all then
              let lo =
                1.0
                -. Array.fold_left
                     (fun acc (g, p) -> acc *. (1.0 -. obs_pin.(g).(p).lo))
                     1.0 edges
              and hi =
                1.0
                -. Array.fold_left
                     (fun acc (g, p) -> acc *. (1.0 -. obs_pin.(g).(p).hi))
                     1.0 edges
              in
              (mk lo hi, supp)
            else begin
              incr fallbacks;
              let lo =
                Array.fold_left
                  (fun acc (g, p) -> Float.max acc obs_pin.(g).(p).lo)
                  0.0 edges
              and hi =
                Array.fold_left
                  (fun acc (g, p) -> acc +. obs_pin.(g).(p).hi)
                  0.0 edges
              in
              (mk lo (Float.min 1.0 hi), supp)
            end
          end
    in
    let stem =
      (* The dominator implication holds for every stem, so it may
         tighten the non-reconvergent cases too. *)
      if Circuit.Netlist.is_output c id || Array.length edges = 0 then stem
      else
        match Dominators.idom dominators id with
        | Some d -> mk stem.lo (Float.min stem.hi obs_stem.(d).hi)
        | None -> stem
    in
    obs_stem.(id) <- stem;
    obs_stem_support.(id) <- stem_supp;
    (* Pin observabilities of this gate's own inputs. *)
    let srcs = c.Circuit.Netlist.fanins.(id) in
    let local_sensitization pin =
      let side one =
        let acc = ref (mk 1.0 1.0, none) in
        Array.iteri
          (fun j src ->
            if j <> pin then begin
              let p = Signal_prob.pin_probability sp ~gate:id ~pin:j in
              let p = if one then p else complement p in
              acc := conj !acc (p, Signal_prob.support sp src)
            end)
          srcs;
        !acc
      in
      match c.Circuit.Netlist.kinds.(id) with
      | Circuit.Gate.Buf | Circuit.Gate.Not | Circuit.Gate.Xor
      | Circuit.Gate.Xnor ->
        (mk 1.0 1.0, none)
      | Circuit.Gate.And | Circuit.Gate.Nand -> side true
      | Circuit.Gate.Or | Circuit.Gate.Nor -> side false
      | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1 ->
        (mk 1.0 1.0, none)
    in
    Array.iteri
      (fun pin _src ->
        let v, s = conj (local_sensitization pin) (stem, stem_supp) in
        obs_pin.(id).(pin) <- v;
        obs_pin_support.(id).(pin) <- s)
      srcs
  done;
  if Obs.Metrics.enabled () then
    Obs.Metrics.incr ~by:(float_of_int !fallbacks)
      "analysis.prob.frechet_fallbacks";
  Obs.Trace.add_int "frechet_fallbacks" !fallbacks;
  { sp; obs_stem; obs_pin; obs_stem_support; obs_pin_support;
    all_indep = !fallbacks = 0 }

let detection t fault =
  let c = Signal_prob.circuit t.sp in
  let line, obs, obs_supp =
    match fault.Faults.Fault.site with
    | Faults.Fault.Stem v -> (v, t.obs_stem.(v), t.obs_stem_support.(v))
    | Faults.Fault.Branch { gate; pin } ->
      ( c.Circuit.Netlist.fanins.(gate).(pin),
        t.obs_pin.(gate).(pin),
        t.obs_pin_support.(gate).(pin) )
  in
  let p1 = Signal_prob.probability t.sp line in
  let act =
    match fault.Faults.Fault.polarity with
    | Faults.Fault.Stuck_at_0 -> p1
    | Faults.Fault.Stuck_at_1 -> complement p1
  in
  let act_supp = Signal_prob.support t.sp line in
  if Support.disjoint act_supp obs_supp then conj_indep act obs
  else conj_frechet act obs

let coverage_of_band fold n =
  (* mean over faults of 1 - (1-d)^n at one endpoint *)
  let total, sum = fold n in
  if total = 0 then mk 0.0 0.0 else mk (fst sum /. float_of_int total) (snd sum /. float_of_int total)

let band_fold t universe ~transform n =
  let nf = float_of_int n in
  let total = Array.length universe in
  let slo = ref 0.0 and shi = ref 0.0 in
  Array.iter
    (fun fault ->
      let d = detection t fault in
      let dlo = transform d.lo and dhi = transform d.hi in
      slo := !slo +. (1.0 -. ((1.0 -. dlo) ** nf));
      shi := !shi +. (1.0 -. ((1.0 -. dhi) ** nf)))
    universe;
  (total, (!slo, !shi))

let effective_coverage_band t universe ~epsilon ~patterns =
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Detectability: epsilon outside [0,1]";
  if patterns < 0 then invalid_arg "Detectability: negative pattern count";
  coverage_of_band
    (band_fold t universe ~transform:(fun d -> d *. (1.0 -. epsilon)))
    patterns

let coverage_band t universe ~patterns =
  effective_coverage_band t universe ~epsilon:0.0 ~patterns

let predicted_curve t universe ~counts =
  Array.map (fun n -> (n, coverage_band t universe ~patterns:n)) counts

let test_length t universe ~target ~max_patterns =
  if max_patterns < 1 then invalid_arg "Detectability: max_patterns < 1";
  let search endpoint =
    let value n = endpoint (coverage_band t universe ~patterns:n) in
    if value max_patterns < target then None
    else begin
      (* smallest n in [1, max_patterns] with value n >= target;
         both endpoints are nondecreasing in n *)
      let lo = ref 1 and hi = ref max_patterns in
      while !lo < !hi do
        let mid = !lo + ((!hi - !lo) / 2) in
        if value mid >= target then hi := mid else lo := mid + 1
      done;
      Some !lo
    end
  in
  (search (fun i -> i.lo), search (fun i -> i.hi))

let resistant t universe ~threshold =
  Array.to_list universe
  |> List.filter_map (fun fault ->
         let d = detection t fault in
         if d.hi > 0.0 && d.hi < threshold then Some (fault, d) else None)

let untestable t universe =
  Array.to_list universe
  |> List.filter (fun fault -> (detection t fault).hi <= 0.0)

let cutover t universe ?(block = 64) ?(min_gain = 0.5) ~max_patterns () =
  if block < 1 then invalid_arg "Detectability.cutover: block < 1";
  let d_mid =
    Array.map
      (fun fault ->
        let d = detection t fault in
        0.5 *. (d.lo +. d.hi))
      universe
  in
  (* Expected newly-detected faults in patterns (n, n+block], using the
     band midpoint as the point estimate: sum of (1-d)^n - (1-d)^(n+block).
     The optimistic edge saturates at 1 under reconvergence and the
     guaranteed edge at 0, so neither flattens at a useful point. *)
  let gain n =
    Array.fold_left
      (fun acc d ->
        let q = 1.0 -. d in
        acc +. ((q ** float_of_int n) -. (q ** float_of_int (n + block))))
      0.0 d_mid
  in
  let rec loop n =
    if n >= max_patterns then max_patterns
    else if gain n < min_gain then n
    else loop (n + block)
  in
  loop 0
