(** One-stop bundle of the static analyses over a netlist.

    [build] runs the dominator pass always (it is a single linear
    sweep) and the implication engine when a learning depth is given,
    under one ["analysis.build"] span.  Consumers — PODEM, lint,
    dominance collapsing, the [lsiq analyze] command — take this
    bundle instead of wiring the passes individually. *)

type t = {
  circuit : Circuit.Netlist.t;
  dominators : Dominators.t;
  implication : Implication.t option;  (** [None] when learning was off *)
  prob : Signal_prob.t;                (** Static signal-probability bounds. *)
  detectability : Detectability.t;     (** Per-fault detection-probability bounds. *)
  exact : Exact.t option;              (** [None] unless an exact budget was given. *)
}

val build :
  ?learn_depth:int option -> ?exact_budget:int -> Circuit.Netlist.t -> t
(** [build ?learn_depth ?exact_budget c] — [learn_depth] defaults to
    [Some 1]; [None] skips the implication engine entirely
    (dominators, signal-probability and detectability passes always
    run; all three are linear sweeps plus one [O(N^2/w)] reconvergence
    pass).  [exact_budget] (absent by default, since BDDs can be
    exponential) additionally runs the {!Exact} ROBDD pass under that
    node budget. *)

val exact : t -> Exact.t option
val implication : t -> Implication.t option
val dominators : t -> Dominators.t
val prob : t -> Signal_prob.t
val detectability : t -> Detectability.t
