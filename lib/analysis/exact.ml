type verdict = Testable of float | Untestable | Unknown

type t = {
  circuit : Circuit.Netlist.t;
  node_budget : int;
  build : Bdd.Build.t option;  (* None when the good machine blew the budget *)
  universe : Faults.Fault.t array;
  verdicts : (Faults.Fault.t, verdict) Hashtbl.t;
  unknown_count : int;
}

let default_budget = Bdd.Robdd.default_budget

let analyze ?(budget = default_budget) ?(sift = false) (c : Circuit.Netlist.t) =
  let universe = Faults.Universe.all c in
  let verdicts = Hashtbl.create (Array.length universe) in
  let build =
    Obs.Trace.with_span "analysis.bdd.build" @@ fun () ->
    match
      let order = Bdd.Build.dfs_order c in
      let order = if sift then Bdd.Build.sift_order ~budget c order else order in
      Bdd.Build.build ~budget ~order c
    with
    | b ->
      Obs.Trace.add_int "nodes" (Bdd.Robdd.size b.Bdd.Build.man);
      Some b
    | exception Bdd.Robdd.Exceeded -> None
  in
  let fallbacks = ref (if build = None then 1 else 0) in
  let unknown_count =
    match build with
    | None ->
      Array.iter (fun f -> Hashtbl.replace verdicts f Unknown) universe;
      Array.length universe
    | Some b ->
      Obs.Trace.with_span "analysis.bdd.redundancy" @@ fun () ->
      let unknown = ref 0 in
      Array.iter
        (fun fault ->
          match Bdd.Build.detection_function b fault with
          | d ->
            let v =
              if d = Bdd.Robdd.zero then Untestable
              else Testable (Bdd.Robdd.probability b.Bdd.Build.man d)
            in
            Hashtbl.replace verdicts fault v
          | exception Bdd.Robdd.Exceeded ->
            incr unknown;
            incr fallbacks;
            Hashtbl.replace verdicts fault Unknown)
        universe;
      Obs.Trace.add_int "faults" (Array.length universe);
      Obs.Trace.add_int "unknown" !unknown;
      !unknown
  in
  (match build with
  | Some b ->
    let man = b.Bdd.Build.man in
    Obs.Metrics.set "analysis.bdd.nodes" (float_of_int (Bdd.Robdd.size man));
    Obs.Metrics.incr
      ~by:(float_of_int (Bdd.Robdd.cache_lookups man))
      "analysis.bdd.cache_lookups";
    Obs.Metrics.incr
      ~by:(float_of_int (Bdd.Robdd.cache_hits man))
      "analysis.bdd.cache_hits";
    Obs.Metrics.set "analysis.bdd.cache_hit_rate" (Bdd.Robdd.cache_hit_rate man)
  | None -> ());
  Obs.Metrics.incr ~by:(float_of_int !fallbacks) "analysis.bdd.budget_fallbacks";
  { circuit = c; node_budget = budget; build; universe; verdicts; unknown_count }

let circuit t = t.circuit
let node_budget t = t.node_budget
let built t = t.build <> None
let universe_size t = Array.length t.universe
let unknown_count t = t.unknown_count
let complete t = t.build <> None && t.unknown_count = 0

let verdict t fault =
  match Hashtbl.find_opt t.verdicts fault with Some v -> v | None -> Unknown

let untestable t universe =
  Array.to_list universe
  |> List.filter (fun f -> verdict t f = Untestable)

let signal_probability t id =
  match t.build with
  | None -> None
  | Some b -> Some (Bdd.Robdd.probability b.Bdd.Build.man b.Bdd.Build.stems.(id))

let detection t fault =
  match verdict t fault with
  | Testable p -> Some (Signal_prob.point p)
  | Untestable -> Some (Signal_prob.point 0.0)
  | Unknown -> None

let node_count t =
  match t.build with None -> 0 | Some b -> Bdd.Robdd.size b.Bdd.Build.man

let cache_hit_rate t =
  match t.build with
  | None -> 0.0
  | Some b -> Bdd.Robdd.cache_hit_rate b.Bdd.Build.man

let refine_detection t det fault =
  match verdict t fault with
  | Testable p -> Signal_prob.point p
  | Untestable -> Signal_prob.point 0.0
  | Unknown -> Detectability.detection det fault

(* Same fold as Detectability.coverage_of_band/band_fold, over the
   refined per-fault intervals — exact points collapse both endpoints. *)
let effective_coverage_band t det universe ~epsilon ~patterns =
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Exact: epsilon outside [0,1]";
  if patterns < 0 then invalid_arg "Exact: negative pattern count";
  let nf = float_of_int patterns in
  let total = Array.length universe in
  let slo = ref 0.0 and shi = ref 0.0 in
  Array.iter
    (fun fault ->
      let d = refine_detection t det fault in
      let transform x = x *. (1.0 -. epsilon) in
      let dlo = transform d.Signal_prob.lo and dhi = transform d.Signal_prob.hi in
      slo := !slo +. (1.0 -. ((1.0 -. dlo) ** nf));
      shi := !shi +. (1.0 -. ((1.0 -. dhi) ** nf)))
    universe;
  if total = 0 then Signal_prob.point 0.0
  else
    {
      Signal_prob.lo = !slo /. float_of_int total;
      hi = !shi /. float_of_int total;
    }

let coverage_band t det universe ~patterns =
  effective_coverage_band t det universe ~epsilon:0.0 ~patterns

let predicted_curve t det universe ~counts =
  Array.map (fun n -> (n, coverage_band t det universe ~patterns:n)) counts
