(** Structural (observability) dominators of every netlist line.

    A node [d] is an {e absolute dominator} of node [n] when every path
    from [n]'s output stem to any primary output passes through [d] —
    the fault-propagation bottlenecks of the circuit.  They are the
    backbone of unique sensitization in deterministic ATPG (a fault
    effect sitting at [n] {e must} traverse each dominator, so side
    inputs of the dominators can be scheduled early) and of cheap
    unobservability reasoning (a blocked dominator kills every path).

    Computed as a dominator tree over the fanout DAG with a virtual
    sink fed by all primary outputs.  Because the graph is acyclic and
    nodes are processed in reverse topological order (all fanouts
    before the node), a single Cooper–Harvey–Kennedy intersection pass
    yields the exact tree — no iteration to a fixpoint is needed. *)

type t

val compute : Circuit.Netlist.t -> t
(** One pass over the netlist; instrumented as the
    ["analysis.dominators"] span. *)

val observable : t -> int -> bool
(** Whether any path links node [id]'s stem to a primary output.  A
    primary output is observable by definition. *)

val idom : t -> int -> int option
(** Immediate dominator of node [id]: the nearest node (other than
    [id] itself) through which every [id]-to-output path passes.
    [None] when the stem is unobservable, or when no single node
    bottlenecks the propagation (the only common point is the virtual
    sink — e.g. the stem of a primary output). *)

val dominators : t -> int -> int list
(** All strict absolute dominators of [id], nearest first (the [idom]
    chain).  Empty for unobservable stems and for primary outputs. *)

val dominates : t -> int -> over:int -> bool
(** [dominates t d ~over:n] — is [d] a strict absolute dominator of
    [n]? *)

val common_dominators : t -> int list -> int list
(** Strict dominators shared by {e every} node of the list, nearest
    (lowest level) first.  For a D-frontier this is the set of gates
    any detection path must still traverse, whichever frontier gate
    carries the effect onward.  [common_dominators t []] is []. *)

val unobservable_stems : t -> int list
(** Nodes with no path to any primary output, in node order — dead
    logic as seen from the outputs. *)
