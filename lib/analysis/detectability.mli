(** Simulation-free per-fault detection probabilities under uniform
    random patterns, built on {!Signal_prob}.

    A backward sweep bounds, for every stem and every fanout branch,
    the probability of the {e observability event} — "a value change
    on this line reaches a primary output".  The event identities used
    are exact; only the probability bounds are conservative:

    - branch [(g, pin)]: [Detect = L_pin and D_g], where [L_pin] is
      local sensitization at gate [g] (all side pins at the gate's
      non-controlling value; always true for BUF/NOT/XOR/XNOR) and
      [D_g] is the stem observability event of [g];
    - single-branch stem: the branch event itself;
    - multi-branch {e non-reconvergent} stem: exactly the union of the
      branch events (every propagation path stays inside one branch
      cone — the cones never meet);
    - reconvergent stem: multiple paths can interact (even cancel, so
      neither [max] of branch lower bounds nor the sum of upper bounds
      is sound); the interval falls back to [\[0, hi\]] with [hi] the
      observability of the stem's immediate dominator — a difference
      confined to the stem's cone can only reach an output through
      every absolute dominator, so [D_stem] implies [D_idom].

    Conjunctions/unions of correlated events combine with Fréchet
    bounds, upgraded to exact product rules when the primary-input
    cone supports are disjoint (independence).  On fanout-free
    circuits every interval is a point equal to the true probability.

    Detection probability of a stuck-at fault is the conjunction of
    activation (the line at the value opposite the stuck value, a
    {!Signal_prob} marginal) with the line's observability event.

    From the per-fault intervals [\[d_lo, d_hi\]] follow, with no
    simulation: a predicted coverage band for [n] random patterns
    (mean over faults of [1 - (1-d)^n] at each endpoint — the exact
    expectation band for i.i.d. uniform patterns), its n-detection
    variant with residual escape [eps] per detection
    ({!Quality.Ndetect}: [d] is replaced by [d·(1-eps)]), a
    test-length calculator, the random-pattern-resistant fault list,
    and the predicted random/deterministic cutover used by
    {!Atpg}'s hybrid mode. *)

type t

val analyze : ?dominators:Dominators.t -> Signal_prob.t -> t
(** One reverse-topological sweep; [dominators] defaults to a fresh
    {!Dominators.compute}.  Runs under the
    ["analysis.prob.observability"] span. *)

val signal_prob : t -> Signal_prob.t

val observability : t -> int -> Signal_prob.interval
(** Bounds on the probability that a value change on node [id]'s stem
    reaches a primary output ([\[1,1\]] on primary outputs, [\[0,0\]]
    on dead non-output nodes). *)

val pin_observability : t -> gate:int -> pin:int -> Signal_prob.interval
(** Same for one fanout-branch line. *)

val detection : t -> Faults.Fault.t -> Signal_prob.interval
(** Bounds on the per-pattern detection probability of a stuck-at
    fault under one uniform random pattern. *)

val exact : t -> bool
(** True when the underlying {!Signal_prob} is exact {e and} every
    observability combination used an independence-backed product —
    i.e. the circuit is fanout-free; then every {!detection} interval
    is a point equal to the truth. *)

val coverage_band :
  t -> Faults.Fault.t array -> patterns:int -> Signal_prob.interval
(** Band containing the {e expected} fault coverage of [patterns]
    i.i.d. uniform random patterns over the universe. *)

val effective_coverage_band :
  t -> Faults.Fault.t array -> epsilon:float -> patterns:int ->
  Signal_prob.interval
(** n-detection escape model: each detection is nullified
    independently with probability [epsilon], so a fault with
    per-pattern detection probability [d] contributes
    [1 - (1 - d·(1-eps))^n] — {!Quality.Ndetect}'s effective coverage,
    predicted statically.  [epsilon = 0] collapses to
    {!coverage_band}. *)

val predicted_curve :
  t -> Faults.Fault.t array -> counts:int array ->
  (int * Signal_prob.interval) array
(** [(n, band)] rows, comparable with {!Fsim.Coverage.curve} and
    {!Fsim.Stafan.predicted_curve}. *)

val test_length :
  t -> Faults.Fault.t array -> target:float -> max_patterns:int ->
  int option * int option
(** [(guaranteed, optimistic)]: smallest pattern counts at which the
    lower (resp. upper) coverage band reaches [target], [None] when
    [max_patterns] does not suffice.  Both bands are nondecreasing in
    [n], so binary search applies. *)

val resistant :
  t -> Faults.Fault.t array -> threshold:float ->
  (Faults.Fault.t * Signal_prob.interval) list
(** Faults whose detection probability provably stays below
    [threshold] ([d_hi < threshold]) yet is not provably zero —
    random-pattern-resistant: uniform random patterns need more than
    [1/threshold] patterns apiece in expectation, but a test may
    exist.  Faults with [d_hi = 0] are untestable outright (zero
    probability under the uniform distribution over {e all} patterns
    means no detecting pattern exists) and are excluded here; lint's
    untestability proofs cover them.  Universe order is preserved. *)

val untestable :
  t -> Faults.Fault.t array -> Faults.Fault.t list
(** Faults with [d_hi = 0] — no detecting input pattern exists. *)

val cutover :
  t -> Faults.Fault.t array -> ?block:int -> ?min_gain:float ->
  max_patterns:int -> unit -> int
(** Predicted point of diminishing returns for random patterns: the
    smallest multiple of [block] (default 64) at which the predicted
    marginal gain over the next block — expected newly-detected
    faults, using each band's midpoint as the point estimate — drops
    below [min_gain] (default 0.5), capped at [max_patterns].
    {!Atpg}'s hybrid mode stops random generation here and hands the
    remainder to PODEM. *)
