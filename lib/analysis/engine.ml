type t = {
  circuit : Circuit.Netlist.t;
  dominators : Dominators.t;
  implication : Implication.t option;
}

let build ?(learn_depth = Some 1) (c : Circuit.Netlist.t) =
  Obs.Trace.with_span "analysis.build" @@ fun () ->
  let dominators = Dominators.compute c in
  let implication =
    match learn_depth with
    | None -> None
    | Some depth -> Some (Implication.learn ~depth c)
  in
  { circuit = c; dominators; implication }

let implication t = t.implication
let dominators t = t.dominators
