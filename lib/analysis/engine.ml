type t = {
  circuit : Circuit.Netlist.t;
  dominators : Dominators.t;
  implication : Implication.t option;
  prob : Signal_prob.t;
  detectability : Detectability.t;
}

let build ?(learn_depth = Some 1) (c : Circuit.Netlist.t) =
  Obs.Trace.with_span "analysis.build" @@ fun () ->
  let dominators = Dominators.compute c in
  let implication =
    match learn_depth with
    | None -> None
    | Some depth -> Some (Implication.learn ~depth c)
  in
  let prob = Signal_prob.analyze c in
  let detectability = Detectability.analyze ~dominators prob in
  { circuit = c; dominators; implication; prob; detectability }

let implication t = t.implication
let dominators t = t.dominators
let prob t = t.prob
let detectability t = t.detectability
