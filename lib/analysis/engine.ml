type t = {
  circuit : Circuit.Netlist.t;
  dominators : Dominators.t;
  implication : Implication.t option;
  prob : Signal_prob.t;
  detectability : Detectability.t;
  exact : Exact.t option;
}

let build ?(learn_depth = Some 1) ?exact_budget (c : Circuit.Netlist.t) =
  Obs.Trace.with_span "analysis.build" @@ fun () ->
  let dominators = Dominators.compute c in
  let implication =
    match learn_depth with
    | None -> None
    | Some depth -> Some (Implication.learn ~depth c)
  in
  let prob = Signal_prob.analyze c in
  let detectability = Detectability.analyze ~dominators prob in
  let exact =
    match exact_budget with
    | None -> None
    | Some budget -> Some (Exact.analyze ~budget c)
  in
  { circuit = c; dominators; implication; prob; detectability; exact }

let exact t = t.exact
let implication t = t.implication
let dominators t = t.dominators
let prob t = t.prob
let detectability t = t.detectability
