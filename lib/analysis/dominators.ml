module N = Circuit.Netlist

(* Immediate-dominator forest over node ids; [sink] (= num_nodes) is
   the virtual node every primary output feeds.  [idom.(id) = -1]
   marks a stem with no path to any output. *)
type t = {
  idom : int array;      (* length num_nodes + 1; sink maps to itself *)
  order : int array;     (* processing index, sink first *)
  sink : int;
}

let compute (c : N.t) =
  Obs.Trace.with_span "analysis.dominators" @@ fun () ->
  let n = N.num_nodes c in
  let sink = n in
  let idom = Array.make (n + 1) (-1) in
  let order = Array.make (n + 1) (-1) in
  idom.(sink) <- sink;
  order.(sink) <- 0;
  (* Walk one node up its dominator chain; [order] strictly decreases
     toward the sink, so the classical two-finger intersection
     terminates. *)
  let rec intersect a b =
    if a = b then a
    else if order.(a) > order.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let next = ref 1 in
  (* Reverse topological order: every fanout (and the sink) is
     processed before the node itself, so one pass is exact. *)
  for i = Array.length c.N.topo_order - 1 downto 0 do
    let id = c.N.topo_order.(i) in
    let join = ref (if N.is_output c id then sink else -1) in
    Array.iter
      (fun dst ->
        (* An unobservable fanout contributes no path to an output. *)
        if idom.(dst) <> -1 then
          join := if !join = -1 then dst else intersect !join dst)
      c.N.fanouts.(id);
    if !join <> -1 then begin
      idom.(id) <- !join;
      order.(id) <- !next;
      incr next
    end
  done;
  let unobservable = ref 0 in
  for id = 0 to n - 1 do
    if idom.(id) = -1 then incr unobservable
  done;
  Obs.Trace.add_int "nodes" n;
  Obs.Trace.add_int "unobservable" !unobservable;
  if Obs.Metrics.enabled () then
    Obs.Metrics.incr "analysis.dominators.runs";
  { idom; order; sink }

let observable t id = t.idom.(id) <> -1

let idom t id =
  match t.idom.(id) with
  | -1 -> None
  | d when d = t.sink -> None
  | d -> Some d

let dominators t id =
  if t.idom.(id) = -1 then []
  else begin
    let rec chain id acc =
      let d = t.idom.(id) in
      if d = t.sink then List.rev acc else chain d (d :: acc)
    in
    chain id []
  end

let dominates t d ~over =
  t.idom.(over) <> -1 && t.idom.(d) <> -1
  &&
  let rec chase id = id <> t.sink && (id = d || chase t.idom.(id)) in
  chase t.idom.(over)

let common_dominators t = function
  | [] -> []
  | first :: rest ->
    dominators t first
    |> List.filter (fun d -> List.for_all (fun n -> dominates t d ~over:n) rest)

let unobservable_stems t =
  let acc = ref [] in
  for id = Array.length t.idom - 2 downto 0 do
    if t.idom.(id) = -1 then acc := id :: !acc
  done;
  !acc
