(** Static implication graph with SOCRATES-style contrapositive
    learning.

    For every line literal (a node assigned 0 or 1) the engine runs a
    full three-valued {e bidirectional} implication — forward gate
    evaluation plus backward justification, the same closure the
    implication ATPG uses, here on the fault-free circuit — and treats
    every derived assignment as a static implication [a ⇒ b].  Each
    implication is then learned in contrapositive form [¬b ⇒ ¬a] and
    added to the graph, and the whole sweep repeats with the learned
    edges participating, up to a configurable depth or until a sweep
    learns nothing new (a fixpoint: on acyclic netlists the literal
    universe is finite and edges are only ever added, so termination
    is structural).

    A literal whose closure is {e contradictory} (implies both values
    of some line) can never hold: its line is provably constant at the
    opposite value.  These learned constants join the base state of
    later sweeps, so learning is monotone — exactly the
    unexcitability evidence the lint layer consumes, and strictly
    stronger than plain ternary constant propagation because backward
    justification and learned edges participate. *)

type t

val learn : ?depth:int -> Circuit.Netlist.t -> t
(** Build the implication graph with at most [depth] (default 1)
    learning sweeps after the initial direct sweep; stops early at the
    fixpoint.  Instrumented as the ["analysis.implications"] span. *)

val circuit : t -> Circuit.Netlist.t

val consequences : t -> int -> bool -> (int * bool) list option
(** [consequences t node v]: every assignment implied by setting
    [node]'s stem to [v] (seed and base constants excluded), in node
    order, or [None] when the assignment is contradictory.  Runs the
    closure on demand over the learned graph. *)

val implies : t -> int * bool -> int * bool -> bool
(** [implies t (a, va) (b, vb)] — does [a = va] force [b = vb]?  A
    contradictory antecedent implies everything. *)

val infeasible : t -> int -> bool -> bool
(** The line provably never carries this value. *)

val constant : t -> int -> bool option
(** Constant value of a stem, when one polarity is infeasible.  Subsumes
    ternary constant propagation on the same netlist. *)

val constants : t -> (int * bool) list
(** All lines proved constant, in node order. *)

val contradictory : t -> int list
(** Nodes with {e both} polarities proved infeasible.  Always empty on
    a well-formed combinational netlist — a non-empty result means the
    engine itself is unsound and is surfaced as an error by
    [lsiq analyze]. *)

val direct_count : t -> int
(** Total implications found by the final sweep (sum of closure sizes
    over all feasible literals). *)

val learned_count : t -> int
(** Contrapositive edges added over all sweeps (deduplicated). *)

val rounds : t -> int
(** Learning sweeps actually executed (≤ [depth], fewer when the
    fixpoint arrives early). *)
