(** Exact redundancy identification and exact detection probabilities
    via per-fault Boolean-difference ROBDDs ({!Bdd}).

    Where {!Signal_prob}/{!Detectability} propagate sound {e interval}
    bounds, this pass computes the truth — wherever the configured
    node budget holds.  For every fault in the universe it builds the
    Boolean difference [D_f = OR_o (good_o XOR faulty_o)]; by BDD
    canonicity [D_f] is the constant-zero node iff the fault is
    untestable (no detecting vector exists), and weighted path
    counting gives the {e exact} per-pattern detection probability
    under uniform random patterns — bit-for-bit equal to exhaustive
    enumeration for circuits of up to 53 inputs (all intermediate
    values are dyadic rationals that an IEEE double represents
    exactly).

    Budget exhaustion is a per-fault event, not a global failure: a
    fault whose difference BDD blows the budget gets verdict
    {!Unknown} and downstream consumers fall back to the interval
    analyses for that fault alone ({!refine_detection}).  This is why
    intervals remain in the codebase: they are the always-available
    sound fallback; the BDD pass is the sharpener.

    Runs under ["analysis.bdd.build"] / ["analysis.bdd.redundancy"]
    spans and records [analysis.bdd.nodes],
    [analysis.bdd.cache_lookups] / [cache_hits] / [cache_hit_rate] and
    [analysis.bdd.budget_fallbacks] metrics. *)

type verdict =
  | Testable of float
      (** A test exists; the payload is the exact probability that one
          uniform random pattern detects the fault (always > 0). *)
  | Untestable  (** Proved redundant: no detecting vector exists. *)
  | Unknown     (** Node budget exceeded for this fault. *)

type t

val default_budget : int
(** {!Bdd.Robdd.default_budget}. *)

val analyze : ?budget:int -> ?sift:bool -> Circuit.Netlist.t -> t
(** Classify the full stuck-at universe ({!Faults.Universe.all}).
    [sift] (default false) runs one sifting pass over the DFS variable
    order before building — an ablation knob, not a default.  Never
    raises on budget exhaustion; affected faults come back
    {!Unknown}. *)

val circuit : t -> Circuit.Netlist.t
val node_budget : t -> int

val built : t -> bool
(** Did the good-machine BDDs fit in budget?  When [false], every
    verdict is {!Unknown} and {!signal_probability} is [None]. *)

val universe_size : t -> int
val unknown_count : t -> int

val complete : t -> bool
(** No {!Unknown} verdicts: the whole universe is exactly classified. *)

val verdict : t -> Faults.Fault.t -> verdict
(** {!Unknown} for faults outside the analyzed universe. *)

val untestable : t -> Faults.Fault.t array -> Faults.Fault.t list
(** The provably redundant subset, in the given order. *)

val signal_probability : t -> int -> float option
(** Exact probability that node [id]'s stem is 1 under a uniform
    random pattern, [None] when the good machine did not fit. *)

val detection : t -> Faults.Fault.t -> Signal_prob.interval option
(** The exact detection probability as a point interval, [None] on
    {!Unknown}. *)

val node_count : t -> int
(** Total nodes allocated in the manager (shared across the good
    machine and every per-fault difference). *)

val cache_hit_rate : t -> float
(** ITE computed-table hit rate over the whole analysis. *)

(** {2 Band refinement}

    Drop-in sharpenings of the {!Detectability} predictions: each
    fault uses its exact point probability where the verdict is known
    and the interval bound where it is {!Unknown}.  The result is
    always contained in the corresponding interval band, and equals it
    when nothing was classified. *)

val refine_detection :
  t -> Detectability.t -> Faults.Fault.t -> Signal_prob.interval

val coverage_band :
  t -> Detectability.t -> Faults.Fault.t array -> patterns:int ->
  Signal_prob.interval

val effective_coverage_band :
  t -> Detectability.t -> Faults.Fault.t array -> epsilon:float ->
  patterns:int -> Signal_prob.interval

val predicted_curve :
  t -> Detectability.t -> Faults.Fault.t array -> counts:int array ->
  (int * Signal_prob.interval) array
