(** Static signal probabilities under uniform random patterns
    (Parker–McCluskey 1975 exact rules on fanout-free regions,
    Savir–Ditlow–Bargh cutting-algorithm bounds at reconvergent
    fanout).

    Every primary input is an independent fair coin.  On a fanout-free
    cone the probability of each line is an exact product/parity
    expression of its fanin probabilities.  Reconvergent fanout breaks
    the independence those rules assume, so the classic fix applies:
    {e cut} every fanout branch of every reconvergent stem, treat the
    cut lines as free inputs with probability anywhere in [0,1], and
    propagate {e intervals} [\[p_lo, p_hi\]] through the same gate
    rules.  After cutting all branches of reconvergent stems, every
    remaining cone is a tree over variables whose true values are
    mutually independent, which is exactly what makes the interval
    propagation sound — the true probability always lies inside the
    computed interval (the exhaustive-enumeration oracle in
    [test/test_testability.ml] checks this on every line of every
    generator circuit with <= 16 inputs).

    Cutting {e all} branches (not all-but-one) is deliberate: keeping
    one branch at the stem's own probability is only sound through
    unate logic, and this netlist vocabulary has XOR/XNOR.  The
    counterexample is [s XOR s]: true probability 0, but with one
    branch kept at 1/2 the interval degenerates to [\[1/2, 1/2\]].
    With both branches cut it is [\[0, 1\]] — loose, but sound.

    When the circuit has no reconvergent stem nothing is cut, every
    interval is a point, and the analysis is exact ({!exact}). *)

type interval = { lo : float; hi : float }
(** A closed subinterval of [0,1]; invariant [0 <= lo <= hi <= 1]. *)

val point : float -> interval
val width : interval -> float
val complement : interval -> interval
(** Bounds on [P(not A)] from bounds on [P(A)]. *)

val conj_indep : interval -> interval -> interval
(** Bounds on [P(A and B)] when the events are {e independent}:
    endpoint products.  Only sound given real independence — use
    {!Support.disjoint} on true cone supports to establish it. *)

val conj_frechet : interval -> interval -> interval
(** Fréchet bounds on [P(A and B)] with {e no} independence
    assumption: [\[max 0 (lo_a + lo_b - 1), min hi_a hi_b\]].
    Always sound. *)

(** Primary-input cone supports, used to prove independence: two
    deterministic functions of disjoint sets of independent primary
    inputs are independent. *)
module Support : sig
  type set
  (** Bitset over primary-input positions. *)

  val disjoint : set -> set -> bool
  val union : set -> set -> set
  val is_empty : set -> bool
end

type t

val analyze : Circuit.Netlist.t -> t
(** Descendant-bitset reconvergence detection, branch cutting, one
    forward interval sweep in topological order.  Runs under the
    ["analysis.prob.signal"] span. *)

val circuit : t -> Circuit.Netlist.t

val probability : t -> int -> interval
(** Bounds on the probability that node [id]'s stem evaluates to 1
    under a uniform random input pattern. *)

val pin_probability : t -> gate:int -> pin:int -> interval
(** Bounds on the fanout-branch line feeding [pin] of [gate].  The
    marginal of a branch equals its stem's marginal, so this is
    {!probability} of the source — {e not} the cut line's [\[0,1\]],
    which only models the loss of correlation information inside
    downstream cones. *)

val reconvergent : t -> int -> bool
(** Was node [id] a reconvergent stem (two fanout branches whose cones
    share a node), i.e. were its branches cut? *)

val cut_count : t -> int
(** Number of reconvergent stems (every branch of each was cut). *)

val exact : t -> bool
(** No reconvergent stems: every interval is a point equal to the true
    signal probability. *)

val support : t -> int -> Support.set
(** True primary-input cone support of node [id] (computed on the
    {e uncut} netlist). *)

val branches : t -> int -> (int * int) array
(** The fanout branches of node [id] as [(gate, pin)] pairs, in
    deterministic (gate, pin) order.  A gate consuming the node on two
    pins contributes two entries. *)

val empty_support : t -> Support.set
(** The all-zero support (e.g. seed for folding side-pin supports). *)
