type interval = { lo : float; hi : float }

let clamp01 v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v

let make lo hi =
  let lo = clamp01 lo and hi = clamp01 hi in
  (* Guard against float round-off inverting a mathematically equal
     pair; never widen. *)
  if lo > hi then { lo = hi; hi = lo } else { lo; hi }

let point p = make p p
let width i = i.hi -. i.lo
let complement i = make (1.0 -. i.hi) (1.0 -. i.lo)
let conj_indep a b = make (a.lo *. b.lo) (a.hi *. b.hi)

let conj_frechet a b =
  make (Float.max 0.0 (a.lo +. b.lo -. 1.0)) (Float.min a.hi b.hi)

module Support = struct
  type set = int array

  let bits_per_word = Sys.int_size - 1

  let create words = Array.make words 0

  let add set pos =
    set.(pos / bits_per_word) <-
      set.(pos / bits_per_word) lor (1 lsl (pos mod bits_per_word))

  let disjoint a b =
    let ok = ref true in
    Array.iteri (fun w av -> if av land b.(w) <> 0 then ok := false) a;
    !ok

  let union a b = Array.mapi (fun w av -> av lor b.(w)) a
  let is_empty a = Array.for_all (fun w -> w = 0) a

  let union_into ~into b =
    Array.iteri (fun w bv -> into.(w) <- into.(w) lor bv) b
end

type t = {
  circuit : Circuit.Netlist.t;
  lo : float array;
  hi : float array;
  reconvergent : bool array;
  cut_count : int;
  supports : Support.set array;
  branches : (int * int) array array;
}

let circuit t = t.circuit
let probability t id = { lo = t.lo.(id); hi = t.hi.(id) }

let pin_probability t ~gate ~pin =
  probability t t.circuit.Circuit.Netlist.fanins.(gate).(pin)

let reconvergent t id = t.reconvergent.(id)
let cut_count t = t.cut_count
let exact t = t.cut_count = 0
let support t id = t.supports.(id)
let branches t id = t.branches.(id)

let empty_support t =
  match t.supports with
  | [||] -> Support.create 1
  | sups -> Array.map (fun _ -> 0) sups.(0)

(* Fanout branches as (gate, pin) edges, from the fanin side so a gate
   consuming a node on two pins yields two distinct edges. *)
let compute_branches (c : Circuit.Netlist.t) =
  let n = Circuit.Netlist.num_nodes c in
  let acc = Array.make n [] in
  for gate = n - 1 downto 0 do
    let srcs = c.Circuit.Netlist.fanins.(gate) in
    for pin = Array.length srcs - 1 downto 0 do
      acc.(srcs.(pin)) <- (gate, pin) :: acc.(srcs.(pin))
    done
  done;
  Array.map Array.of_list acc

(* Reconvergence: a stem is reconvergent when two of its fanout edges
   reach a common node.  Descendant bitsets over nodes, reverse
   topological order, O(N^2 / word_size). *)
let compute_reconvergent (c : Circuit.Netlist.t) branches =
  let n = Circuit.Netlist.num_nodes c in
  let words = (n + Support.bits_per_word - 1) / Support.bits_per_word in
  let words = max words 1 in
  let desc = Array.init n (fun _ -> Support.create words) in
  let reach_of (gate, _pin) =
    let r = Array.copy desc.(gate) in
    Support.add r gate;
    r
  in
  let reconv = Array.make n false in
  let topo = c.Circuit.Netlist.topo_order in
  for i = Array.length topo - 1 downto 0 do
    let id = topo.(i) in
    let edges = branches.(id) in
    (match Array.length edges with
    | 0 | 1 -> ()
    | _ ->
      (* Incremental overlap test: some pair of fanout edges shares a
         reachable node iff some edge overlaps the union of the
         previous ones. *)
      let seen = Support.create words in
      Array.iter
        (fun edge ->
          let r = reach_of edge in
          if not (Support.disjoint seen r) then reconv.(id) <- true;
          Support.union_into ~into:seen r)
        edges);
    Array.iter
      (fun (gate, _pin) ->
        Support.union_into ~into:desc.(id) desc.(gate);
        Support.add desc.(id) gate)
      edges
  done;
  reconv

let compute_supports (c : Circuit.Netlist.t) =
  let n = Circuit.Netlist.num_nodes c in
  let ninputs = Array.length c.Circuit.Netlist.inputs in
  let words = (ninputs + Support.bits_per_word - 1) / Support.bits_per_word in
  let words = max words 1 in
  let input_pos = Array.make n (-1) in
  Array.iteri (fun pos id -> input_pos.(id) <- pos) c.Circuit.Netlist.inputs;
  let supports = Array.init n (fun _ -> Support.create words) in
  Array.iter
    (fun id ->
      if input_pos.(id) >= 0 then Support.add supports.(id) input_pos.(id)
      else
        Array.iter
          (fun src -> Support.union_into ~into:supports.(id) supports.(src))
          c.Circuit.Netlist.fanins.(id))
    c.Circuit.Netlist.topo_order;
  supports

let xor_pair (a : interval) (b : interval) =
  (* P(A xor B) = p + q - 2pq for independent arguments: bilinear, so
     extremes over a box sit at the corners. *)
  let f p q = p +. q -. (2.0 *. p *. q) in
  let c1 = f a.lo b.lo and c2 = f a.lo b.hi in
  let c3 = f a.hi b.lo and c4 = f a.hi b.hi in
  make
    (Float.min (Float.min c1 c2) (Float.min c3 c4))
    (Float.max (Float.max c1 c2) (Float.max c3 c4))

let analyze (c : Circuit.Netlist.t) =
  Obs.Trace.with_span "analysis.prob.signal" @@ fun () ->
  let n = Circuit.Netlist.num_nodes c in
  let branches = compute_branches c in
  let reconvergent = compute_reconvergent c branches in
  let supports = compute_supports c in
  let lo = Array.make n 0.0 and hi = Array.make n 1.0 in
  let cut_count = ref 0 in
  Array.iter (fun r -> if r then incr cut_count) reconvergent;
  let pin src =
    (* A branch of a reconvergent stem is cut: downstream cones must
       not assume anything about its correlation, so it ranges over
       the whole of [0,1]. *)
    if reconvergent.(src) then { lo = 0.0; hi = 1.0 }
    else { lo = lo.(src); hi = hi.(src) }
  in
  Array.iter
    (fun id ->
      let srcs = c.Circuit.Netlist.fanins.(id) in
      let fold_and () =
        Array.fold_left
          (fun acc src -> conj_indep acc (pin src))
          (point 1.0) srcs
      in
      let fold_or () =
        complement
          (Array.fold_left
             (fun acc src -> conj_indep acc (complement (pin src)))
             (point 1.0) srcs)
      in
      let fold_xor () =
        let acc = ref (pin srcs.(0)) in
        for i = 1 to Array.length srcs - 1 do
          acc := xor_pair !acc (pin srcs.(i))
        done;
        !acc
      in
      let v =
        match c.Circuit.Netlist.kinds.(id) with
        | Circuit.Gate.Input -> point 0.5
        | Circuit.Gate.Const0 -> point 0.0
        | Circuit.Gate.Const1 -> point 1.0
        | Circuit.Gate.Buf -> pin srcs.(0)
        | Circuit.Gate.Not -> complement (pin srcs.(0))
        | Circuit.Gate.And -> fold_and ()
        | Circuit.Gate.Nand -> complement (fold_and ())
        | Circuit.Gate.Or -> fold_or ()
        | Circuit.Gate.Nor -> complement (fold_or ())
        | Circuit.Gate.Xor -> fold_xor ()
        | Circuit.Gate.Xnor -> complement (fold_xor ())
      in
      lo.(id) <- v.lo;
      hi.(id) <- v.hi)
    c.Circuit.Netlist.topo_order;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr ~by:(float_of_int !cut_count) "analysis.prob.cut_stems";
    Obs.Metrics.set "analysis.prob.nodes" (float_of_int n)
  end;
  Obs.Trace.add_int "cut_stems" !cut_count;
  { circuit = c; lo; hi; reconvergent; cut_count = !cut_count; supports;
    branches }
