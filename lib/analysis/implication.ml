module N = Circuit.Netlist
module G = Circuit.Gate

type t3 = Unknown | Zero | One

let t3_of_bool b = if b then One else Zero

exception Conflict

(* Literal encoding: node id * polarity in one int. *)
let lit node v = (node lsl 1) lor (if v then 1 else 0)
let lit_node l = l lsr 1
let lit_value l = l land 1 = 1
let lit_neg l = l lxor 1

type state = {
  circuit : N.t;
  values : t3 array;
  mutable trail : int list;   (* nodes assigned since the base mark *)
  queue : int Queue.t;
  in_queue : bool array;
  learned : int list array;   (* literal -> implied literals *)
  infeasible : bool array;    (* literal -> proven to never hold *)
}

let enqueue st gate =
  if not st.in_queue.(gate) then begin
    st.in_queue.(gate) <- true;
    Queue.add gate st.queue
  end

let rec set st node v =
  match st.values.(node) with
  | Unknown ->
    let vb = v = One in
    (* A literal learned infeasible contradicts any state assigning it. *)
    if st.infeasible.(lit node vb) then raise Conflict;
    st.values.(node) <- v;
    st.trail <- node :: st.trail;
    enqueue st node;
    Array.iter (fun dst -> enqueue st dst) st.circuit.N.fanouts.(node);
    (* Learned contrapositive edges fire like unit clauses. *)
    List.iter
      (fun target -> set st (lit_node target) (t3_of_bool (lit_value target)))
      st.learned.(lit node vb)
  | existing -> if existing <> v then raise Conflict

(* Three-valued forward evaluation (single plane, fault-free). *)
let eval3 kind inputs =
  let all_defined = Array.for_all (fun v -> v <> Unknown) inputs in
  let exists v = Array.exists (fun x -> x = v) inputs in
  match kind with
  | G.Const0 -> Zero
  | G.Const1 -> One
  | G.Buf -> inputs.(0)
  | G.Not -> (match inputs.(0) with Unknown -> Unknown | Zero -> One | One -> Zero)
  | G.And -> if exists Zero then Zero else if all_defined then One else Unknown
  | G.Nand -> if exists Zero then One else if all_defined then Zero else Unknown
  | G.Or -> if exists One then One else if all_defined then Zero else Unknown
  | G.Nor -> if exists One then Zero else if all_defined then One else Unknown
  | G.Xor | G.Xnor ->
    if not all_defined then Unknown
    else begin
      let parity = Array.fold_left (fun acc v -> acc <> (v = One)) false inputs in
      let parity = if kind = G.Xnor then not parity else parity in
      if parity then One else Zero
    end
  | G.Input -> Unknown

(* Backward justification of one gate from its (defined) output. *)
let imply_backward st gate =
  let c = st.circuit in
  let kind = c.N.kinds.(gate) in
  let out = st.values.(gate) in
  if out <> Unknown then begin
    let srcs = c.N.fanins.(gate) in
    let pin_values = Array.map (fun src -> st.values.(src)) srcs in
    match kind with
    | G.Input | G.Const0 | G.Const1 -> ()
    | G.Buf -> set st srcs.(0) out
    | G.Not -> set st srcs.(0) (if out = One then Zero else One)
    | G.And | G.Nand | G.Or | G.Nor ->
      let controlling =
        match G.controlling_value kind with
        | Some v -> t3_of_bool v
        | None -> assert false
      in
      let noncontrolling = if controlling = One then Zero else One in
      let controlled_output =
        let base = controlling = One in
        t3_of_bool (if G.inverts kind then not base else base)
      in
      if out <> controlled_output then
        Array.iteri
          (fun pin v -> if v = Unknown then set st srcs.(pin) noncontrolling)
          pin_values
      else begin
        let unknowns = ref [] and has_controlling = ref false in
        Array.iteri
          (fun pin v ->
            if v = Unknown then unknowns := pin :: !unknowns
            else if v = controlling then has_controlling := true)
          pin_values;
        if not !has_controlling then begin
          match !unknowns with
          | [] -> raise Conflict
          | [ pin ] -> set st srcs.(pin) controlling
          | _ :: _ :: _ -> ()
        end
      end
    | G.Xor | G.Xnor ->
      let unknowns = ref [] in
      let parity = ref (out = One) in
      if kind = G.Xnor then parity := not !parity;
      Array.iteri
        (fun pin v ->
          match v with
          | Unknown -> unknowns := pin :: !unknowns
          | One -> parity := not !parity
          | Zero -> ())
        pin_values;
      (match !unknowns with
      | [ pin ] -> set st srcs.(pin) (if !parity then One else Zero)
      | [] ->
        if !parity then raise Conflict
      | _ :: _ :: _ -> ())
  end

let imply_gate st gate =
  match st.circuit.N.kinds.(gate) with
  | G.Input -> ()
  | kind ->
    let pin_values = Array.map (fun src -> st.values.(src)) st.circuit.N.fanins.(gate) in
    let forward = eval3 kind pin_values in
    if forward <> Unknown then set st gate forward;
    imply_backward st gate

let run st =
  while not (Queue.is_empty st.queue) do
    let gate = Queue.pop st.queue in
    st.in_queue.(gate) <- false;
    imply_gate st gate
  done

let clear_queue st =
  Queue.clear st.queue;
  Array.fill st.in_queue 0 (Array.length st.in_queue) false

let undo_to_base st =
  List.iter (fun node -> st.values.(node) <- Unknown) st.trail;
  st.trail <- []

(* Re-derive the base state: circuit constants plus every learned
   constant, propagated to closure.  A conflict here would mean a sound
   engine proved a combinational circuit contradictory — impossible, so
   it is asserted away. *)
let rebase st =
  Array.fill st.values 0 (Array.length st.values) Unknown;
  st.trail <- [];
  clear_queue st;
  (try
     let n = N.num_nodes st.circuit in
     for node = 0 to n - 1 do
       (match st.circuit.N.kinds.(node) with
       | G.Const0 -> set st node Zero
       | G.Const1 -> set st node One
       | _ -> ());
       if st.infeasible.(lit node true) && st.values.(node) = Unknown then
         set st node Zero;
       if st.infeasible.(lit node false) && st.values.(node) = Unknown then
         set st node One
     done;
     run st
   with Conflict -> assert false);
  (* Assignments below the mark are permanent for the following runs. *)
  st.trail <- []

(* Closure of one seed literal on top of the base state.  Returns the
   consequences beyond the base ([None] on contradiction); always
   restores the base. *)
let try_literal st node v =
  match st.values.(node) with
  | Zero -> if v then None else Some []
  | One -> if v then Some [] else None
  | Unknown ->
    (match
       (try
          set st node (t3_of_bool v);
          run st;
          true
        with Conflict -> false)
     with
    | false ->
      clear_queue st;
      undo_to_base st;
      None
    | true ->
      let consequences =
        List.filter_map
          (fun m ->
            if m = node then None
            else Some (m, st.values.(m) = One))
          st.trail
        |> List.sort compare
      in
      undo_to_base st;
      Some consequences)

type t = {
  net : N.t;
  infeasible_tbl : bool array;
  base : t3 array;
  closures : (int * bool) list option array;  (* per literal, post-learning *)
  rounds : int;
  learned_total : int;
  direct_total : int;
}

let learn ?(depth = 1) (c : N.t) =
  Obs.Trace.with_span "analysis.implications" @@ fun () ->
  let n = N.num_nodes c in
  let st =
    { circuit = c;
      values = Array.make n Unknown;
      trail = [];
      queue = Queue.create ();
      in_queue = Array.make n false;
      learned = Array.make (2 * n) [];
      infeasible = Array.make (2 * n) false }
  in
  let learned_set = Hashtbl.create 256 in
  let learned_total = ref 0 in
  let mark_infeasible l =
    if not st.infeasible.(l) then begin
      st.infeasible.(l) <- true;
      true
    end
    else false
  in
  rebase st;
  let rounds = ref 0 in
  let continue = ref (depth > 0) in
  while !continue do
    incr rounds;
    let changed = ref false in
    for node = 0 to n - 1 do
      List.iter
        (fun v ->
          match try_literal st node v with
          | None ->
            if mark_infeasible (lit node v) then begin
              changed := true;
              rebase st
            end
          | Some consequences ->
            List.iter
              (fun (m, w) ->
                (* Learn the contrapositive: ¬(m = w) ⇒ ¬(node = v). *)
                let from = lit m (not w) and to_ = lit node (not v) in
                if not (Hashtbl.mem learned_set (from, to_)) then begin
                  Hashtbl.replace learned_set (from, to_) ();
                  st.learned.(from) <- to_ :: st.learned.(from);
                  incr learned_total;
                  changed := true
                end)
              consequences)
        [ false; true ]
    done;
    if (not !changed) || !rounds >= depth then continue := false
  done;
  (* Final materialising sweep: record every literal's closure for O(1)
     queries.  New contradictions discovered here (possible only when
     the depth bound cut learning short) are still recorded as
     constants — they are sound facts. *)
  let closures = Array.make (2 * n) None in
  let direct_total = ref 0 in
  for node = 0 to n - 1 do
    List.iter
      (fun v ->
        match try_literal st node v with
        | None ->
          if mark_infeasible (lit node v) then rebase st;
          closures.(lit node v) <- None
        | Some consequences ->
          direct_total := !direct_total + List.length consequences;
          closures.(lit node v) <- Some consequences)
      [ false; true ]
  done;
  Obs.Trace.add_int "rounds" !rounds;
  Obs.Trace.add_int "learned" !learned_total;
  Obs.Trace.add_int "implications" !direct_total;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr "analysis.implications.runs";
    Obs.Metrics.incr ~by:(float_of_int !learned_total) "analysis.implications.learned"
  end;
  { net = c;
    infeasible_tbl = st.infeasible;
    base = Array.copy st.values;
    closures;
    rounds = !rounds;
    learned_total = !learned_total;
    direct_total = !direct_total }

let circuit t = t.net

let infeasible t node v = t.infeasible_tbl.(lit node v)

let constant t node =
  match t.base.(node) with Zero -> Some false | One -> Some true | Unknown -> None

let consequences t node v =
  match t.base.(node) with
  | Zero -> if v then None else Some []
  | One -> if v then Some [] else None
  | Unknown -> t.closures.(lit node v)

let implies t (a, va) (b, vb) =
  (a = b && va = vb)
  || constant t b = Some vb
  ||
  match consequences t a va with
  | None -> true
  | Some closure -> List.mem (b, vb) closure

let constants t =
  let acc = ref [] in
  for node = N.num_nodes t.net - 1 downto 0 do
    match constant t node with
    | Some v -> acc := (node, v) :: !acc
    | None -> ()
  done;
  !acc

let contradictory t =
  let acc = ref [] in
  for node = N.num_nodes t.net - 1 downto 0 do
    if t.infeasible_tbl.(lit node false) && t.infeasible_tbl.(lit node true) then
      acc := node :: !acc
  done;
  !acc

let direct_count t = t.direct_total
let learned_count t = t.learned_total
let rounds t = t.rounds

let _ = lit_neg
