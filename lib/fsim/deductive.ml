module Int_set = Fault_lists.Int_set

let run (c : Circuit.Netlist.t) faults patterns =
  Instrument.engine_run ~engine:"deductive" ~faults:(Array.length faults)
    ~patterns:(Array.length patterns)
  @@ fun () ->
  let site = Fault_lists.index faults in
  let num_nodes = Circuit.Netlist.num_nodes c in
  let results = Array.make (Array.length faults) None in
  let alive = Array.make (Array.length faults) true in
  let alive_count = ref (Array.length faults) in
  let values = Array.make num_nodes false in
  let lists = Array.make num_nodes Int_set.empty in
  Array.iteri
    (fun pattern_index pattern ->
      if !alive_count > 0 then begin
        if Array.length pattern <> Array.length c.inputs then
          invalid_arg "Deductive.run: pattern width mismatch";
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"deductive" !alive_count;
        (* True-value simulation with in-step list deduction. *)
        Array.iteri
          (fun i id ->
            values.(id) <- pattern.(i);
            lists.(id) <-
              Fault_lists.adjust_for_site
                (Fault_lists.stem_faults site id)
                ~good:values.(id) ~alive Int_set.empty)
          c.inputs;
        Array.iter
          (fun id ->
            match c.kinds.(id) with
            | Circuit.Gate.Input -> ()
            | kind ->
              let srcs = c.fanins.(id) in
              let pin_values = Array.map (fun src -> values.(src)) srcs in
              let pin_lists =
                Array.mapi
                  (fun pin src ->
                    match Fault_lists.branch_faults site ~gate:id ~pin with
                    | [] -> lists.(src)
                    | own ->
                      Fault_lists.adjust_for_site own ~good:pin_values.(pin) ~alive
                        lists.(src))
                  srcs
              in
              values.(id) <- Circuit.Gate.eval kind pin_values;
              lists.(id) <-
                Fault_lists.adjust_for_site
                  (Fault_lists.stem_faults site id)
                  ~good:values.(id) ~alive
                  (Fault_lists.gate_flip_list kind ~pin_values ~pin_lists))
          c.topo_order;
        (* Detection: any fault reaching a primary output. *)
        let detected =
          Array.fold_left
            (fun acc out -> Int_set.union acc lists.(out))
            Int_set.empty c.outputs
        in
        Int_set.iter
          (fun fault_index ->
            if alive.(fault_index) then begin
              alive.(fault_index) <- false;
              decr alive_count;
              results.(fault_index) <- Some pattern_index
            end)
          detected
      end)
    patterns;
  results
