(** Statistical fault sampling.

    Grading a full LSI fault universe was expensive on 1981 hardware,
    so production flows graded a random {e sample} of faults and
    reported the sampled coverage with a confidence interval — the
    fault-coverage figure entering the paper's model is itself often a
    sample estimate.  Sampling without replacement from a universe of
    [N] faults makes the detected count hypergeometric; the interval
    below is a Wilson score interval with the finite-population
    correction folded in as an effective sample size.  (The Wald
    interval [p +/- z*se] used previously is degenerate at the
    endpoints — a sample that detects all or none of its faults got a
    zero-width interval, overstating certainty exactly where samples
    mislead most.) *)

type estimate = {
  coverage : float;        (** Sample fault coverage. *)
  std_error : float;       (** Wald standard error, with finite-population
                               correction (reported for reference). *)
  lower_95 : float;        (** Wilson score bound, in [0, 1]. *)
  upper_95 : float;
  sample_size : int;
  universe_size : int;
}

val estimate_coverage :
  ?engine:Coverage.engine ->
  ?exclude:Faults.Fault.t array ->
  ?collapse_dominance:bool ->
  ?n_detect:int ->
  Stats.Rng.t ->
  Circuit.Netlist.t ->
  Faults.Fault.t array ->
  sample_size:int ->
  bool array array ->
  estimate
(** Draw [sample_size] faults without replacement, fault-simulate only
    those (default engine {!Coverage.Parallel}; pass
    [~engine:(Coverage.Par { domains })] to grade the sample on several
    cores), and report the estimated coverage of the full universe.  If
    [sample_size >= Array.length universe] the answer is exact with a
    zero-width interval.  [exclude] (default empty) removes statically
    untestable faults from the universe {e before} sampling, so both the
    draw and the reported [universe_size] refer to the
    redundancy-corrected universe — sampling faults that no pattern can
    detect would bias the coverage estimate low.  [collapse_dominance]
    (default [false]) first replaces the universe by its
    dominance-collapsed representatives
    ({!Faults.Universe.collapse_dominance}), applied before [exclude]
    so the two corrections compose.  [n_detect] (default off) grades
    the sample with {!Coverage.detection_counts} instead: a fault
    counts as covered only when detected [n] times, so the estimate is
    the n-detect coverage with the same interval machinery. *)
