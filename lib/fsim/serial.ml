let forced_word polarity =
  match polarity with Faults.Fault.Stuck_at_0 -> 0L | Faults.Fault.Stuck_at_1 -> -1L

(* Evaluate gate [id] with input pin [pin] forced to [word]. *)
let eval_gate_with_pin_override (c : Circuit.Netlist.t) id ~pin ~word values =
  let srcs = c.fanins.(id) in
  let value_of i = if i = pin then word else values.(srcs.(i)) in
  let fold op =
    let acc = ref (value_of 0) in
    for i = 1 to Array.length srcs - 1 do
      acc := op !acc (value_of i)
    done;
    !acc
  in
  match c.kinds.(id) with
  | Circuit.Gate.Input -> values.(id)
  | Circuit.Gate.Const0 -> 0L
  | Circuit.Gate.Const1 -> -1L
  | Circuit.Gate.Buf -> value_of 0
  | Circuit.Gate.Not -> Int64.lognot (value_of 0)
  | Circuit.Gate.And -> fold Int64.logand
  | Circuit.Gate.Nand -> Int64.lognot (fold Int64.logand)
  | Circuit.Gate.Or -> fold Int64.logor
  | Circuit.Gate.Nor -> Int64.lognot (fold Int64.logor)
  | Circuit.Gate.Xor -> fold Int64.logxor
  | Circuit.Gate.Xnor -> Int64.lognot (fold Int64.logxor)

let eval_with_fault (c : Circuit.Netlist.t) fault block =
  let values = Array.make (Circuit.Netlist.num_nodes c) 0L in
  Array.iteri
    (fun i id -> values.(id) <- block.Logicsim.Packed.input_words.(i))
    c.inputs;
  (match fault.Faults.Fault.site with
  | Faults.Fault.Stem v ->
    Array.iter
      (fun id ->
        if id = v then values.(id) <- forced_word fault.Faults.Fault.polarity
        else
          match c.kinds.(id) with
          | Circuit.Gate.Input -> ()
          | _ -> values.(id) <- Logicsim.Packed.eval_node c id values)
      c.topo_order
  | Faults.Fault.Branch { gate; pin } ->
    let word = forced_word fault.Faults.Fault.polarity in
    Array.iter
      (fun id ->
        if id = gate then
          values.(id) <- eval_gate_with_pin_override c id ~pin ~word values
        else
          match c.kinds.(id) with
          | Circuit.Gate.Input -> ()
          | _ -> values.(id) <- Logicsim.Packed.eval_node c id values)
      c.topo_order);
  values

let detect_word c ~good_outputs fault block =
  let faulty = eval_with_fault c fault block in
  let mask = Logicsim.Packed.live_mask block in
  let diff = ref 0L in
  Array.iteri
    (fun i id ->
      diff := Int64.logor !diff (Int64.logxor good_outputs.(i) faulty.(id)))
    c.Circuit.Netlist.outputs;
  Int64.logand !diff mask

let lowest_set_bit w =
  if w = 0L then invalid_arg "lowest_set_bit: zero word";
  let rec loop i = if Logicsim.Packed.bit w i then i else loop (i + 1) in
  loop 0

let run ?(cancel = Robust.Cancel.none) c faults patterns =
  Instrument.engine_run ~engine:"serial" ~faults:(Array.length faults)
    ~patterns:(Array.length patterns)
  @@ fun () ->
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  let progress =
    Instrument.progress_start ~engine:"serial" ~patterns:(Array.length patterns)
  in
  let results = Array.make (Array.length faults) None in
  let alive = ref (List.init (Array.length faults) (fun i -> i)) in
  let block_start = ref 0 in
  List.iter
    (fun block ->
      if !alive <> [] && not (Robust.Cancel.stop_requested cancel) then begin
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"serial" (List.length !alive);
        let good = Logicsim.Packed.eval_block c block in
        let good_outputs = Logicsim.Packed.output_words c good in
        let survivors = ref [] in
        List.iter
          (fun fi ->
            let mask = detect_word c ~good_outputs faults.(fi) block in
            if mask = 0L then survivors := fi :: !survivors
            else results.(fi) <- Some (!block_start + lowest_set_bit mask))
          !alive;
        alive := List.rev !survivors
      end;
      block_start := !block_start + block.Logicsim.Packed.pattern_count;
      Obs.Progress.step progress block.Logicsim.Packed.pattern_count)
    blocks;
  Obs.Progress.finish progress;
  results

let run_counts ?(cancel = Robust.Cancel.none) ~n c faults patterns =
  if n < 1 then invalid_arg "Serial.run_counts: n must be >= 1";
  Instrument.engine_run ~engine:"ndetect.serial" ~faults:(Array.length faults)
    ~patterns:(Array.length patterns)
  @@ fun () ->
  Obs.Trace.add_int "n" n;
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  let progress =
    Instrument.progress_start ~engine:"ndetect.serial"
      ~patterns:(Array.length patterns)
  in
  let nf = Array.length faults in
  let detections = Array.make nf 0 in
  let nth = Array.make nf None in
  let alive = ref (List.init nf Fun.id) in
  let block_start = ref 0 in
  List.iter
    (fun block ->
      if !alive <> [] && not (Robust.Cancel.stop_requested cancel) then begin
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"ndetect.serial"
            (List.length !alive);
        let good = Logicsim.Packed.eval_block c block in
        let good_outputs = Logicsim.Packed.output_words c good in
        let survivors = ref [] in
        List.iter
          (fun fi ->
            let mask = detect_word c ~good_outputs faults.(fi) block in
            if Ppsfp.record_detections ~n ~block_start:!block_start ~detections
                 ~nth mask fi
            then survivors := fi :: !survivors)
          !alive;
        alive := List.rev !survivors
      end;
      block_start := !block_start + block.Logicsim.Packed.pattern_count;
      Obs.Progress.step progress block.Logicsim.Packed.pattern_count)
    blocks;
  Obs.Progress.finish progress;
  (detections, nth)

(* Multiple-fault injection: per-line AND/OR masks.  A stuck-at-0 clears
   the line's word (and_mask = 0), a stuck-at-1 sets it (or_mask = -1);
   applying AND first then OR makes sa1 win on a (physically impossible)
   polarity clash. *)
type fault_set_masks = {
  stem_and : (int, int64) Hashtbl.t;
  stem_or : (int, int64) Hashtbl.t;
  branch_and : (int * int, int64) Hashtbl.t;
  branch_or : (int * int, int64) Hashtbl.t;
}

let masks_of_fault_set faults =
  let m =
    { stem_and = Hashtbl.create 8; stem_or = Hashtbl.create 8;
      branch_and = Hashtbl.create 8; branch_or = Hashtbl.create 8 }
  in
  Array.iter
    (fun fault ->
      match (fault.Faults.Fault.site, fault.Faults.Fault.polarity) with
      | Faults.Fault.Stem v, Faults.Fault.Stuck_at_0 -> Hashtbl.replace m.stem_and v 0L
      | Faults.Fault.Stem v, Faults.Fault.Stuck_at_1 -> Hashtbl.replace m.stem_or v (-1L)
      | Faults.Fault.Branch { gate; pin }, Faults.Fault.Stuck_at_0 ->
        Hashtbl.replace m.branch_and (gate, pin) 0L
      | Faults.Fault.Branch { gate; pin }, Faults.Fault.Stuck_at_1 ->
        Hashtbl.replace m.branch_or (gate, pin) (-1L))
    faults;
  m

let apply_masks ~and_mask ~or_mask w =
  let w = match and_mask with Some a -> Int64.logand w a | None -> w in
  match or_mask with Some o -> Int64.logor w o | None -> w

let eval_gate_with_branch_masks (c : Circuit.Netlist.t) m id values =
  let srcs = c.fanins.(id) in
  let value_of i =
    apply_masks
      ~and_mask:(Hashtbl.find_opt m.branch_and (id, i))
      ~or_mask:(Hashtbl.find_opt m.branch_or (id, i))
      values.(srcs.(i))
  in
  let fold op =
    let acc = ref (value_of 0) in
    for i = 1 to Array.length srcs - 1 do
      acc := op !acc (value_of i)
    done;
    !acc
  in
  match c.kinds.(id) with
  | Circuit.Gate.Input -> values.(id)
  | Circuit.Gate.Const0 -> 0L
  | Circuit.Gate.Const1 -> -1L
  | Circuit.Gate.Buf -> value_of 0
  | Circuit.Gate.Not -> Int64.lognot (value_of 0)
  | Circuit.Gate.And -> fold Int64.logand
  | Circuit.Gate.Nand -> Int64.lognot (fold Int64.logand)
  | Circuit.Gate.Or -> fold Int64.logor
  | Circuit.Gate.Nor -> Int64.lognot (fold Int64.logor)
  | Circuit.Gate.Xor -> fold Int64.logxor
  | Circuit.Gate.Xnor -> Int64.lognot (fold Int64.logxor)

let eval_with_fault_set (c : Circuit.Netlist.t) faults block =
  let m = masks_of_fault_set faults in
  let values = Array.make (Circuit.Netlist.num_nodes c) 0L in
  Array.iteri
    (fun i id -> values.(id) <- block.Logicsim.Packed.input_words.(i))
    c.inputs;
  Array.iter
    (fun id ->
      let w =
        match c.kinds.(id) with
        | Circuit.Gate.Input -> values.(id)
        | _ -> eval_gate_with_branch_masks c m id values
      in
      values.(id) <-
        apply_masks ~and_mask:(Hashtbl.find_opt m.stem_and id)
          ~or_mask:(Hashtbl.find_opt m.stem_or id) w)
    c.topo_order;
  values

let first_fail_with_fault_set c faults patterns =
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  let rec scan block_start = function
    | [] -> None
    | block :: rest ->
      let good = Logicsim.Packed.eval_block c block in
      let good_outputs = Logicsim.Packed.output_words c good in
      let faulty = eval_with_fault_set c faults block in
      let mask = Logicsim.Packed.live_mask block in
      let diff = ref 0L in
      Array.iteri
        (fun i id ->
          diff := Int64.logor !diff (Int64.logxor good_outputs.(i) faulty.(id)))
        c.Circuit.Netlist.outputs;
      let diff = Int64.logand !diff mask in
      if diff = 0L then
        scan (block_start + block.Logicsim.Packed.pattern_count) rest
      else Some (block_start + lowest_set_bit diff)
  in
  scan 0 blocks
