let observing () = Obs.Trace.enabled () || Obs.Metrics.enabled ()

let engine_run ~engine ~faults ~patterns f =
  Obs.Trace.with_span ("fsim." ^ engine) (fun () ->
      Obs.Trace.add_int "faults" faults;
      Obs.Trace.add_int "patterns" patterns;
      let metrics = Obs.Metrics.enabled () in
      let t0 = if metrics then Obs.Trace.now_s () else 0.0 in
      let result = f () in
      if metrics then begin
        let wall = Obs.Trace.now_s () -. t0 in
        let prefix = "fsim." ^ engine in
        Obs.Metrics.incr (prefix ^ ".runs");
        Obs.Metrics.incr ~by:(float_of_int patterns) (prefix ^ ".patterns");
        if wall > 0.0 then
          Obs.Metrics.set (prefix ^ ".patterns_per_sec")
            (float_of_int patterns /. wall)
      end;
      result)

let progress_start ~engine ~patterns =
  Obs.Progress.start ~label:("fsim." ^ engine) ~total:patterns ()

let count_fault_evals ~engine n =
  if n > 0 then begin
    Obs.Trace.add_int "fault_evals" n;
    if Obs.Metrics.enabled () then
      Obs.Metrics.incr ~by:(float_of_int n) ("fsim." ^ engine ^ ".fault_evals")
  end
