(** Parallel-pattern single-fault propagation (PPSFP) fault simulation.

    For each 64-pattern block the good machine is simulated once; each
    live fault is then propagated only through its fanout cone, level by
    level, with copy-on-write faulty values.  A fault whose effect dies
    out is abandoned early, and detected faults are dropped.  Produces
    byte-identical results to {!Serial.run} (differential-tested), at a
    fraction of the cost on large circuits. *)

val run :
  ?cancel:Robust.Cancel.t ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> int option array
(** Same contract as {!Serial.run}: per fault, first detecting pattern
    index, with fault dropping.  [cancel] is polled per 64-pattern
    block; see {!Serial.run} for the partial-result contract. *)

(** {2 Propagation core}

    The single-fault propagation machinery is exposed so that {!Par}
    can run the identical copy-on-write cone walk from several domains,
    each with its own [state], over a shared read-only good-value
    block. *)

type state
(** Per-simulation scratch (copy-on-write faulty values, schedule
    buckets).  Not thread-safe: one [state] per domain. *)

val make_state : Circuit.Netlist.t -> state

val propagate :
  state -> int64 array -> live:int64 -> Faults.Fault.t -> int64
(** [propagate st good ~live fault] walks the fault's fanout cone over
    one 64-pattern block whose good-machine node values are [good], and
    returns the mask of patterns (within [live]) on which some primary
    output diverges. *)

val lowest_set_bit : int64 -> int
(** Index of the lowest set bit (constant time; raises
    [Invalid_argument] on zero).  Bit [i] is pattern [i] of a block. *)

val popcount : int64 -> int
(** Number of set bits (branch-free SWAR). *)

val nth_set_bit : int64 -> int -> int
(** [nth_set_bit w k] is the index of the [k]-th (1-based) set bit of
    [w]; [nth_set_bit w 1 = lowest_set_bit w].  Raises
    [Invalid_argument] when [w] has fewer than [k] set bits or
    [k < 1]. *)

val record_detections :
  n:int ->
  block_start:int ->
  detections:int array ->
  nth:int option array ->
  int64 -> int -> bool
(** Drop-after-n bookkeeping shared by the n-detection engines: fold
    the detection [mask] of fault [fi] on the block starting at pattern
    [block_start] into [detections.(fi)] (saturating at [n]), record
    the n-th detecting pattern index in [nth.(fi)] when the count
    reaches [n], and return whether the fault stays alive (i.e. still
    needs detections). *)

val run_curve :
  Circuit.Netlist.t ->
  Faults.Fault.t array ->
  bool array array ->
  int option array * (int * int) list
(** Like {!run} but also returns the cumulative detection counts as
    [(patterns_applied, faults_detected)] checkpoints after every block
    — the "cumulative fault coverage as a function of the number of test
    patterns" the paper's Section 5 procedure asks the fault simulator
    for. *)

val run_counts :
  ?cancel:Robust.Cancel.t ->
  n:int ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array ->
  int array * int option array
(** n-detection grading with the drop-after-n policy: per fault, count
    detecting patterns until [n] of them have been seen, then drop the
    fault.  Returns [(detections, nth)]: the per-fault detection count
    saturated at [n], and the index of the [n]-th detecting pattern
    ([None] when fewer than [n] patterns detect the fault).  With
    [n = 1] the result is bit-identical to {!run}: [nth] equals the
    first-detection array and [detections] is its indicator.  Raises
    [Invalid_argument] when [n < 1]. *)
