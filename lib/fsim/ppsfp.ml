type state = {
  circuit : Circuit.Netlist.t;
  is_output : bool array;
  (* Copy-on-write faulty values: fval.(u) is meaningful only when
     stamp.(u) = generation. *)
  fval : int64 array;
  stamp : int array;
  sched : int array;
  buckets : int list array;
  mutable generation : int;
}

let make_state (c : Circuit.Netlist.t) =
  let n = Circuit.Netlist.num_nodes c in
  let is_output = Array.make n false in
  Array.iter (fun id -> is_output.(id) <- true) c.outputs;
  { circuit = c; is_output; fval = Array.make n 0L; stamp = Array.make n (-1);
    sched = Array.make n (-1); buckets = Array.make (Circuit.Netlist.depth c + 1) [];
    generation = 0 }

let eval_faulty st good u =
  let c = st.circuit in
  let srcs = c.fanins.(u) in
  let value src = if st.stamp.(src) = st.generation then st.fval.(src) else good.(src) in
  let fold op =
    let acc = ref (value srcs.(0)) in
    for i = 1 to Array.length srcs - 1 do
      acc := op !acc (value srcs.(i))
    done;
    !acc
  in
  match c.kinds.(u) with
  | Circuit.Gate.Input -> good.(u)
  | Circuit.Gate.Const0 -> 0L
  | Circuit.Gate.Const1 -> -1L
  | Circuit.Gate.Buf -> value srcs.(0)
  | Circuit.Gate.Not -> Int64.lognot (value srcs.(0))
  | Circuit.Gate.And -> fold Int64.logand
  | Circuit.Gate.Nand -> Int64.lognot (fold Int64.logand)
  | Circuit.Gate.Or -> fold Int64.logor
  | Circuit.Gate.Nor -> Int64.lognot (fold Int64.logor)
  | Circuit.Gate.Xor -> fold Int64.logxor
  | Circuit.Gate.Xnor -> Int64.lognot (fold Int64.logxor)

let seed_word st good fault =
  let forced =
    match fault.Faults.Fault.polarity with Faults.Fault.Stuck_at_0 -> 0L | Faults.Fault.Stuck_at_1 -> -1L
  in
  match fault.Faults.Fault.site with
  | Faults.Fault.Stem v -> (v, forced)
  | Faults.Fault.Branch { gate; pin } ->
    let c = st.circuit in
    let srcs = c.fanins.(gate) in
    let value i = if i = pin then forced else good.(srcs.(i)) in
    let fold op =
      let acc = ref (value 0) in
      for i = 1 to Array.length srcs - 1 do
        acc := op !acc (value i)
      done;
      !acc
    in
    let w =
      match c.kinds.(gate) with
      | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1 ->
        invalid_arg "Ppsfp: branch fault on a node without input pins"
      | Circuit.Gate.Buf -> value 0
      | Circuit.Gate.Not -> Int64.lognot (value 0)
      | Circuit.Gate.And -> fold Int64.logand
      | Circuit.Gate.Nand -> Int64.lognot (fold Int64.logand)
      | Circuit.Gate.Or -> fold Int64.logor
      | Circuit.Gate.Nor -> Int64.lognot (fold Int64.logor)
      | Circuit.Gate.Xor -> fold Int64.logxor
      | Circuit.Gate.Xnor -> Int64.lognot (fold Int64.logxor)
    in
    (gate, w)

(* Propagate one fault through its cone; returns the mask of patterns
   (within [live]) on which some primary output diverges. *)
let propagate st good ~live fault =
  st.generation <- st.generation + 1;
  let c = st.circuit in
  let node, w = seed_word st good fault in
  if Int64.logand (Int64.logxor w good.(node)) live = 0L then 0L
  else begin
    st.fval.(node) <- w;
    st.stamp.(node) <- st.generation;
    let out_diff = ref 0L in
    if st.is_output.(node) then
      out_diff := Int64.logand (Int64.logxor w good.(node)) live;
    let max_level = ref c.levels.(node) in
    let schedule u =
      if st.sched.(u) <> st.generation then begin
        st.sched.(u) <- st.generation;
        let l = c.levels.(u) in
        st.buckets.(l) <- u :: st.buckets.(l);
        if l > !max_level then max_level := l
      end
    in
    Array.iter schedule c.fanouts.(node);
    let level = ref (c.levels.(node) + 1) in
    while !level <= !max_level do
      let bucket = st.buckets.(!level) in
      st.buckets.(!level) <- [];
      List.iter
        (fun u ->
          let fresh = eval_faulty st good u in
          if Int64.logand (Int64.logxor fresh good.(u)) live <> 0L then begin
            st.fval.(u) <- fresh;
            st.stamp.(u) <- st.generation;
            if st.is_output.(u) then
              out_diff :=
                Int64.logor !out_diff
                  (Int64.logand (Int64.logxor fresh good.(u)) live);
            Array.iter schedule c.fanouts.(u)
          end)
        bucket;
      incr level
    done;
    !out_diff
  end

(* Constant-time lowest-set-bit: isolate the bit with [w land (-w)],
   then perfect-hash the 64 single-bit words through a de Bruijn
   multiply.  The table is built from the same multiply, so it is
   correct for any valid de Bruijn constant. *)
let debruijn = 0x03F79D71B4CB0A89L

let debruijn_index =
  let table = Array.make 64 0 in
  for i = 0 to 63 do
    let hash =
      Int64.to_int
        (Int64.shift_right_logical (Int64.mul (Int64.shift_left 1L i) debruijn) 58)
    in
    table.(hash) <- i
  done;
  table

let lowest_set_bit w =
  if w = 0L then invalid_arg "lowest_set_bit: zero word";
  let isolated = Int64.logand w (Int64.neg w) in
  debruijn_index.(Int64.to_int
                    (Int64.shift_right_logical (Int64.mul isolated debruijn) 58))

(* Branch-free SWAR popcount: pairwise sums, then nibble sums, then one
   multiply to fold the byte counts into the top byte. *)
let popcount w =
  let open Int64 in
  let w = sub w (logand (shift_right_logical w 1) 0x5555555555555555L) in
  let w =
    add
      (logand w 0x3333333333333333L)
      (logand (shift_right_logical w 2) 0x3333333333333333L)
  in
  let w = logand (add w (shift_right_logical w 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul w 0x0101010101010101L) 56)

(* Index of the k-th (1-based) set bit: clear the k-1 lowest set bits
   with [w land (w - 1)], then take the lowest survivor. *)
let nth_set_bit w k =
  if k < 1 then invalid_arg "nth_set_bit: k must be >= 1";
  let w = ref w in
  for _ = 2 to k do
    if !w = 0L then invalid_arg "nth_set_bit: fewer than k set bits";
    w := Int64.logand !w (Int64.sub !w 1L)
  done;
  if !w = 0L then invalid_arg "nth_set_bit: fewer than k set bits";
  lowest_set_bit !w

(* Drop-after-n bookkeeping shared by all n-detection engines: fold the
   detection mask of fault [fi] on one block into its running count and
   report whether the fault stays alive.  The count saturates at [n]
   and the index of the n-th detecting pattern is recorded exactly
   once; with [n = 1] the recorded index is [lowest_set_bit mask], i.e.
   bit-identical to the first-detection engines. *)
let record_detections ~n ~block_start ~detections ~nth mask fi =
  if mask = 0L then true
  else begin
    let seen = detections.(fi) in
    let hits = popcount mask in
    if seen + hits >= n then begin
      detections.(fi) <- n;
      nth.(fi) <- Some (block_start + nth_set_bit mask (n - seen));
      false
    end
    else begin
      detections.(fi) <- seen + hits;
      true
    end
  end

let run_general ?(cancel = Robust.Cancel.none) c faults patterns ~on_block =
  Instrument.engine_run ~engine:"ppsfp" ~faults:(Array.length faults)
    ~patterns:(Array.length patterns)
  @@ fun () ->
  let st = make_state c in
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  let progress =
    Instrument.progress_start ~engine:"ppsfp" ~patterns:(Array.length patterns)
  in
  let results = Array.make (Array.length faults) None in
  let alive = ref (List.init (Array.length faults) (fun i -> i)) in
  let detected = ref 0 in
  let block_start = ref 0 in
  List.iter
    (fun block ->
      if !alive <> [] && not (Robust.Cancel.stop_requested cancel) then begin
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"ppsfp" (List.length !alive);
        let good = Logicsim.Packed.eval_block c block in
        let live = Logicsim.Packed.live_mask block in
        let survivors = ref [] in
        List.iter
          (fun fi ->
            let mask = propagate st good ~live faults.(fi) in
            if mask = 0L then survivors := fi :: !survivors
            else begin
              results.(fi) <- Some (!block_start + lowest_set_bit mask);
              incr detected
            end)
          !alive;
        alive := List.rev !survivors
      end;
      block_start := !block_start + block.Logicsim.Packed.pattern_count;
      Obs.Progress.step progress block.Logicsim.Packed.pattern_count;
      on_block ~patterns_applied:!block_start ~detected:!detected)
    blocks;
  Obs.Progress.finish progress;
  results

let run ?cancel c faults patterns =
  run_general ?cancel c faults patterns
    ~on_block:(fun ~patterns_applied:_ ~detected:_ -> ())

let run_curve c faults patterns =
  let checkpoints = ref [] in
  let results =
    run_general c faults patterns ~on_block:(fun ~patterns_applied ~detected ->
        checkpoints := (patterns_applied, detected) :: !checkpoints)
  in
  (results, List.rev !checkpoints)

let run_counts ?(cancel = Robust.Cancel.none) ~n c faults patterns =
  if n < 1 then invalid_arg "Ppsfp.run_counts: n must be >= 1";
  Instrument.engine_run ~engine:"ndetect.ppsfp" ~faults:(Array.length faults)
    ~patterns:(Array.length patterns)
  @@ fun () ->
  Obs.Trace.add_int "n" n;
  let st = make_state c in
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  let progress =
    Instrument.progress_start ~engine:"ndetect.ppsfp"
      ~patterns:(Array.length patterns)
  in
  let nf = Array.length faults in
  let detections = Array.make nf 0 in
  let nth = Array.make nf None in
  let alive = ref (List.init nf Fun.id) in
  let block_start = ref 0 in
  List.iter
    (fun block ->
      if !alive <> [] && not (Robust.Cancel.stop_requested cancel) then begin
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"ndetect.ppsfp"
            (List.length !alive);
        let good = Logicsim.Packed.eval_block c block in
        let live = Logicsim.Packed.live_mask block in
        let survivors = ref [] in
        List.iter
          (fun fi ->
            let mask = propagate st good ~live faults.(fi) in
            if record_detections ~n ~block_start:!block_start ~detections ~nth
                 mask fi
            then survivors := fi :: !survivors)
          !alive;
        alive := List.rev !survivors
      end;
      block_start := !block_start + block.Logicsim.Packed.pattern_count;
      Obs.Progress.step progress block.Logicsim.Packed.pattern_count)
    blocks;
  Obs.Progress.finish progress;
  (detections, nth)
