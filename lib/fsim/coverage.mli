(** Fault-coverage bookkeeping on top of the fault simulators.

    The paper's characterization procedure needs the cumulative fault
    coverage as a function of the number of applied patterns (its
    Section 5), and the per-fault first-detection index doubles as the
    virtual tester's lookup table (a chip containing fault [j] fails
    first at pattern [first_detection.(j)]). *)

type engine =
  | Serial
  | Parallel
  | Deductive
  | Concurrent
  | Par of { domains : int }
      (** Multicore PPSFP ({!Par.run}): fault universe sharded across
          [domains] OCaml domains, results bit-identical to
          {!Parallel}. *)

type profile = {
  universe_size : int;                (** Faults simulated. *)
  pattern_count : int;                (** Patterns applied. *)
  first_detection : int option array; (** Per fault, first detecting pattern. *)
}

val profile :
  ?engine:engine ->
  ?cancel:Robust.Cancel.t ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> profile
(** Run fault simulation (default {!Parallel}; {!Serial} and
    {!Deductive} give identical results at different costs) and package
    the result.  [cancel] reaches the block loops of {!Serial},
    {!Parallel} and {!Par} (the deductive/concurrent reference engines
    ignore it); a cancelled run returns the partial profile. *)

type counts = {
  require : int;
      (** The n of n-detect ([>= 1]). *)
  detections : int array;
      (** Per fault, detecting patterns seen, saturated at [require]. *)
  nth_profile : profile;
      (** The [require]-th detection viewed as a {!profile}:
          [first_detection.(j)] is the index of the [require]-th
          pattern detecting fault [j] ([None] when fewer than
          [require] patterns detect it). *)
}
(** n-detection profile: single-detection coverage overstates defect
    screening (Pomeranz & Reddy), so production flows grade how {e
    often} each fault is detected.  Computed with a drop-after-n
    policy: a fault leaves the simulation once [require] distinct
    patterns have detected it. *)

val detection_counts :
  ?engine:engine ->
  ?cancel:Robust.Cancel.t ->
  n:int ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> counts
(** Run n-detection fault simulation.  {!Serial}, {!Parallel} and
    {!Par} use their native drop-after-n kernels ({!Serial.run_counts},
    {!Ppsfp.run_counts}, {!Par.run_counts}); {!Deductive} and
    {!Concurrent} fall back to the PPSFP kernel (all engines agree on
    detection sets).  With [n = 1], [nth_detection] is bit-identical to
    the {!profile}'s [first_detection] on every engine.  Raises
    [Invalid_argument] when [n < 1]. *)

val n_detect_profile : counts -> profile
(** [nth_profile], as a function: the n-detection result as an
    ordinary {!profile} whose "first detection" is the [require]-th
    detection — every downstream consumer ({!coverage_after}, {!curve},
    {!undetected}, the virtual tester) then reports n-detect
    figures. *)

val n_detect_coverage : counts -> float
(** Fraction of faults detected at least [require] times. *)

val n_detect_coverage_after : counts -> int -> float
(** [n_detect_coverage_after cs k]: fraction of faults whose
    [require]-th detection happens within the first [k] patterns. *)

val detected_count : profile -> int
(** Number of detected faults. *)

val final_coverage : profile -> float
(** Detected / universe size after all patterns. *)

val coverage_after : profile -> int -> float
(** [coverage_after p k] is the coverage achieved by the first [k]
    patterns. *)

val curve : profile -> (int * float) array
(** [(k, coverage after k patterns)] for k = 1 .. pattern_count —
    exactly the simulator-supplied curve of the paper's Fig. 5 x-axis. *)

val excluding :
  profile ->
  universe:Faults.Fault.t array ->
  untestable:Faults.Fault.t array ->
  profile
(** Redundancy-corrected profile: drop the [untestable] faults (as
    proven by the lint subsystem) from both the detection array and the
    denominator.  [universe] must be the fault array the profile was
    computed over — it supplies the index-to-fault mapping.  On a
    complete test set, the corrected {!final_coverage} reaches 1.0
    where the raw figure saturates at
    [1 - untestable/universe_size]; feeding corrected curves to the
    [n0] estimators removes the bias the redundant faults introduce.
    Raises [Invalid_argument] when lengths disagree. *)

val restrict :
  profile ->
  universe:Faults.Fault.t array ->
  keep:Faults.Fault.t array ->
  profile
(** Dual of {!excluding}: keep {e only} the faults of [keep] (e.g. the
    dominance-collapsed representatives from
    [Faults.Universe.collapse_dominance]) in both the detection array
    and the denominator.  [universe] must be the fault array the
    profile was computed over.  Faults of [keep] absent from [universe]
    are ignored.  Raises [Invalid_argument] when lengths disagree. *)

val undetected : profile -> Faults.Fault.t array -> Faults.Fault.t list
(** Faults never detected by the pattern set (redundant or hard). *)
