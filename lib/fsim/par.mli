(** Multicore PPSFP fault simulation.

    Shards the fault universe across OCaml 5 domains; every domain runs
    the {!Ppsfp} copy-on-write propagation over its shard with a
    private state, against good-machine blocks evaluated once and
    shared read-only.  Sharding is deterministic (contiguous fault
    ranges) and per-fault results do not depend on the other faults in
    a shard, so the merged output is {e bit-identical} to {!Ppsfp.run}
    for every domain count. *)

val run :
  ?cancel:Robust.Cancel.t ->
  ?domains:int ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> int option array
(** Same contract as {!Ppsfp.run} / {!Serial.run}: per fault, first
    detecting pattern index.  [domains] defaults to
    [Domain.recommended_domain_count ()] and is clamped to the fault
    count; it must be >= 1.  [run ~domains:1] degenerates to the serial
    engine without spawning.  [cancel] is polled per block in every
    shard.

    Shards run supervised: a shard whose domain dies (including at the
    ["fsim.par.shard"] failpoint) has its result range wiped and is
    retried on a fresh domain, then recomputed serially in the calling
    domain as a deterministic fallback — the merged result stays
    bit-identical.  Retries and fallbacks are counted in the
    ["fsim.par.shard_retries"] / ["fsim.par.shard_fallbacks"]
    metrics. *)

val run_counts :
  ?cancel:Robust.Cancel.t ->
  ?domains:int ->
  n:int ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array ->
  int array * int option array
(** Multicore n-detection grading; same contract as
    {!Ppsfp.run_counts} (per-fault detection count saturated at [n] and
    the index of the [n]-th detecting pattern, drop-after-n policy).
    Each shard owns a contiguous fault range and writes disjoint slices
    of both result arrays, so the merged output is bit-identical to
    {!Ppsfp.run_counts} for every domain count.  Raises
    [Invalid_argument] when [n < 1] or [domains < 1]. *)
