(** Serial fault simulation.

    The straightforward algorithm: for every fault, re-simulate the
    whole circuit with the fault injected and compare primary outputs
    against the good machine.  Patterns are still processed 64 at a
    time through {!Logicsim.Packed}, so "serial" refers to faults, not
    patterns.  Used as the oracle for {!Ppsfp} and for small circuits. *)

val eval_with_fault :
  Circuit.Netlist.t -> Faults.Fault.t -> Logicsim.Packed.block -> int64 array
(** Full faulty-machine simulation of one block; result indexed by node. *)

val detect_word :
  Circuit.Netlist.t ->
  good_outputs:int64 array ->
  Faults.Fault.t ->
  Logicsim.Packed.block ->
  int64
(** Bit mask (within the block's live mask) of patterns on which at
    least one primary output of the faulty machine differs from
    [good_outputs]. *)

val run :
  ?cancel:Robust.Cancel.t ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> int option array
(** [run c faults patterns] returns, for each fault, the index of the
    first pattern that detects it ([None] = undetected).  Detected
    faults are dropped from later blocks.  [cancel] is polled at every
    64-pattern block boundary; after it fires the remaining blocks are
    skipped, leaving a well-defined partial result (every recorded
    detection is real; undetected may mean unsimulated). *)

val run_counts :
  ?cancel:Robust.Cancel.t ->
  n:int ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array ->
  int array * int option array
(** n-detection grading with the drop-after-n policy; same contract as
    {!Ppsfp.run_counts} (per-fault detection count saturated at [n],
    and the index of the [n]-th detecting pattern).  With [n = 1] the
    result is bit-identical to {!run}.  Raises [Invalid_argument] when
    [n < 1]. *)

val eval_with_fault_set :
  Circuit.Netlist.t -> Faults.Fault.t array -> Logicsim.Packed.block -> int64 array
(** Multiple-fault machine: all faults of the set injected at once.
    Used by the virtual tester to model a defective chip {e exactly},
    including masking between coexisting faults.  If the set contains
    both polarities on one line, stuck-at-1 wins (deterministic,
    documented arbitrariness — physical defects do not do this). *)

val first_fail_with_fault_set :
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> int option
(** First pattern on which the multiple-fault machine differs from the
    good machine at any primary output. *)
