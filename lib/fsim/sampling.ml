type estimate = {
  coverage : float;
  std_error : float;
  lower_95 : float;
  upper_95 : float;
  sample_size : int;
  universe_size : int;
}

let z_95 = 1.959963984540054

(* Wilson score interval at effective sample size [n_eff].  Unlike the
   Wald interval (p +/- z*se), the score interval stays non-degenerate
   at the endpoints: a sample coverage of exactly 0 or 1 still gets a
   positive-width interval (at p = 1 the lower bound is
   n/(n + z^2) < 1), because the uncertainty is evaluated under the
   hypothesised p rather than the observed one. *)
let wilson_95 ~p ~n_eff =
  let z2 = z_95 *. z_95 in
  let denom = 1.0 +. (z2 /. n_eff) in
  let center = (p +. (z2 /. (2.0 *. n_eff))) /. denom in
  let half =
    z_95 /. denom
    *. sqrt ((p *. (1.0 -. p) /. n_eff) +. (z2 /. (4.0 *. n_eff *. n_eff)))
  in
  (max 0.0 (center -. half), min 1.0 (center +. half))

let estimate_coverage ?(engine = Coverage.Parallel) ?(exclude = [||])
    ?(collapse_dominance = false) ?n_detect rng c universe ~sample_size patterns =
  let universe =
    if collapse_dominance then Faults.Universe.collapse_dominance c universe
    else universe
  in
  let universe = Faults.Universe.exclude_untestable universe ~untestable:exclude in
  let universe_size = Array.length universe in
  if universe_size = 0 then invalid_arg "Sampling.estimate_coverage: empty universe";
  if sample_size <= 0 then invalid_arg "Sampling.estimate_coverage: nonpositive sample";
  let sample_size = min sample_size universe_size in
  let sample =
    if sample_size = universe_size then universe
    else
      Stats.Rng.sample_without_replacement rng ~k:sample_size ~n:universe_size
      |> Array.map (fun i -> universe.(i))
  in
  let results =
    match n_detect with
    | None -> (Coverage.profile ~engine c sample patterns).Coverage.first_detection
    | Some n ->
      (Coverage.n_detect_profile (Coverage.detection_counts ~engine ~n c sample patterns))
        .Coverage.first_detection
  in
  let detected =
    Array.fold_left (fun acc d -> if d <> None then acc + 1 else acc) 0 results
  in
  let k = float_of_int sample_size in
  let coverage = float_of_int detected /. k in
  let fpc =
    if universe_size <= 1 then 0.0
    else
      float_of_int (universe_size - sample_size)
      /. float_of_int (universe_size - 1)
  in
  let std_error = sqrt (coverage *. (1.0 -. coverage) /. k *. fpc) in
  (* The finite-population correction shrinks the variance by fpc;
     folding it into the Wilson interval as an effective sample size
     n_eff = k / fpc keeps the score shape while matching the corrected
     variance.  A full sample (fpc = 0, n_eff infinite) is exact: the
     interval collapses to the point estimate. *)
  let lower_95, upper_95 =
    if fpc = 0.0 then (coverage, coverage)
    else wilson_95 ~p:coverage ~n_eff:(k /. fpc)
  in
  { coverage; std_error; lower_95; upper_95; sample_size; universe_size }
