type estimate = {
  coverage : float;
  std_error : float;
  lower_95 : float;
  upper_95 : float;
  sample_size : int;
  universe_size : int;
}

let estimate_coverage ?(engine = Coverage.Parallel) ?(exclude = [||])
    ?(collapse_dominance = false) rng c universe ~sample_size patterns =
  let universe =
    if collapse_dominance then Faults.Universe.collapse_dominance c universe
    else universe
  in
  let universe = Faults.Universe.exclude_untestable universe ~untestable:exclude in
  let universe_size = Array.length universe in
  if universe_size = 0 then invalid_arg "Sampling.estimate_coverage: empty universe";
  if sample_size <= 0 then invalid_arg "Sampling.estimate_coverage: nonpositive sample";
  let sample_size = min sample_size universe_size in
  let sample =
    if sample_size = universe_size then universe
    else
      Stats.Rng.sample_without_replacement rng ~k:sample_size ~n:universe_size
      |> Array.map (fun i -> universe.(i))
  in
  let results =
    (Coverage.profile ~engine c sample patterns).Coverage.first_detection
  in
  let detected =
    Array.fold_left (fun acc d -> if d <> None then acc + 1 else acc) 0 results
  in
  let k = float_of_int sample_size in
  let coverage = float_of_int detected /. k in
  let fpc =
    if universe_size <= 1 then 0.0
    else
      float_of_int (universe_size - sample_size)
      /. float_of_int (universe_size - 1)
  in
  let std_error = sqrt (coverage *. (1.0 -. coverage) /. k *. fpc) in
  let margin = 1.959963984540054 *. std_error in
  { coverage;
    std_error;
    lower_95 = max 0.0 (coverage -. margin);
    upper_95 = min 1.0 (coverage +. margin);
    sample_size;
    universe_size }
