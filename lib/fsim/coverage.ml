type engine = Serial | Parallel | Deductive | Concurrent | Par of { domains : int }

type profile = {
  universe_size : int;
  pattern_count : int;
  first_detection : int option array;
}

let profile ?(engine = Parallel) ?cancel c faults patterns =
  let first_detection =
    match engine with
    | Serial -> Serial.run ?cancel c faults patterns
    | Parallel -> Ppsfp.run ?cancel c faults patterns
    | Deductive -> Deductive.run c faults patterns
    | Concurrent -> Concurrent.run c faults patterns
    | Par { domains } -> Par.run ?cancel ~domains c faults patterns
  in
  { universe_size = Array.length faults;
    pattern_count = Array.length patterns;
    first_detection }

type counts = {
  require : int;
  detections : int array;
  nth_profile : profile;
}

let detection_counts ?(engine = Parallel) ?cancel ~n c faults patterns =
  let detections, nth_detection =
    match engine with
    | Serial -> Serial.run_counts ?cancel ~n c faults patterns
    | Parallel | Deductive | Concurrent ->
      (* The deductive and concurrent engines have no drop-after-n
         kernel; all engines produce identical detection sets, so they
         fall back to the PPSFP kernel. *)
      Ppsfp.run_counts ?cancel ~n c faults patterns
    | Par { domains } -> Par.run_counts ?cancel ~domains ~n c faults patterns
  in
  { require = n;
    detections;
    nth_profile =
      { universe_size = Array.length faults;
        pattern_count = Array.length patterns;
        first_detection = nth_detection } }

let n_detect_profile cs = cs.nth_profile

let detected_count p =
  Array.fold_left
    (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
    0 p.first_detection

let final_coverage p =
  if p.universe_size = 0 then 0.0
  else float_of_int (detected_count p) /. float_of_int p.universe_size

let coverage_after p k =
  if p.universe_size = 0 then 0.0
  else begin
    let detected =
      Array.fold_left
        (fun acc d -> match d with Some i when i < k -> acc + 1 | Some _ | None -> acc)
        0 p.first_detection
    in
    float_of_int detected /. float_of_int p.universe_size
  end

let curve p =
  (* Histogram of first detections, then a running sum: O(F + P). *)
  let new_detections = Array.make (p.pattern_count + 1) 0 in
  Array.iter
    (function
      | Some i -> new_detections.(i + 1) <- new_detections.(i + 1) + 1
      | None -> ())
    p.first_detection;
  let total = float_of_int (max 1 p.universe_size) in
  let running = ref 0 in
  Array.init p.pattern_count (fun k ->
      running := !running + new_detections.(k + 1);
      (k + 1, float_of_int !running /. total))

let n_detect_coverage cs = final_coverage cs.nth_profile

let n_detect_coverage_after cs k = coverage_after cs.nth_profile k

let excluding p ~universe ~untestable =
  if Array.length universe <> p.universe_size then
    invalid_arg "Coverage.excluding: universe does not match profile";
  if Array.length untestable = 0 then p
  else begin
    let dropped = Hashtbl.create (Array.length untestable) in
    Array.iter (fun fault -> Hashtbl.replace dropped fault ()) untestable;
    let kept = ref [] in
    Array.iteri
      (fun i fault ->
        if not (Hashtbl.mem dropped fault) then kept := p.first_detection.(i) :: !kept)
      universe;
    let first_detection = Array.of_list (List.rev !kept) in
    { universe_size = Array.length first_detection;
      pattern_count = p.pattern_count;
      first_detection }
  end

let restrict p ~universe ~keep =
  if Array.length universe <> p.universe_size then
    invalid_arg "Coverage.restrict: universe does not match profile";
  let kept_set = Hashtbl.create (Array.length keep) in
  Array.iter (fun fault -> Hashtbl.replace kept_set fault ()) keep;
  let kept = ref [] in
  Array.iteri
    (fun i fault ->
      if Hashtbl.mem kept_set fault then kept := p.first_detection.(i) :: !kept)
    universe;
  let first_detection = Array.of_list (List.rev !kept) in
  { universe_size = Array.length first_detection;
    pattern_count = p.pattern_count;
    first_detection }

let undetected p faults =
  let misses = ref [] in
  Array.iteri
    (fun i d -> if d = None then misses := faults.(i) :: !misses)
    p.first_detection;
  List.rev !misses
