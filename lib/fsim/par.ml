(* Multicore PPSFP: shard the fault universe across domains, each
   running the serial engine's copy-on-write propagation over its shard
   with a private Ppsfp.state.  The good-machine blocks are evaluated
   once up front and shared read-only.

   Per-fault results are independent of every other fault (dropping
   only skips already-detected faults), so any deterministic sharding
   merges to exactly the serial answer.  We use contiguous shards for
   cache locality; each worker writes its own disjoint slice of the
   shared results array, and Domain.join publishes the writes. *)

type slice = {
  block_start : int;   (* pattern index of bit 0 of this block *)
  patterns : int;      (* live pattern count of this block *)
  live : int64;
  good : int64 array;  (* read-only good-machine values, by node id *)
}

let prepare c patterns =
  let slices = ref [] in
  let start = ref 0 in
  List.iter
    (fun block ->
      slices :=
        { block_start = !start;
          patterns = block.Logicsim.Packed.pattern_count;
          live = Logicsim.Packed.live_mask block;
          good = Logicsim.Packed.eval_block c block }
        :: !slices;
      start := !start + block.Logicsim.Packed.pattern_count)
    (Logicsim.Packed.blocks_of_patterns c patterns);
  List.rev !slices

(* Grade faults [lo, hi) of [faults] against every slice, with fault
   dropping, writing first detections into the shard's own slice of
   [results].  Mirrors Ppsfp.run_general's block loop exactly.
   Returns the number of detections this shard made. *)
let run_shard c ~cancel ~progress slices faults results lo hi =
  let st = Ppsfp.make_state c in
  let alive = ref (List.init (hi - lo) (fun i -> lo + i)) in
  let detected = ref 0 in
  List.iter
    (fun { block_start; patterns; live; good } ->
      if !alive <> [] && not (Robust.Cancel.stop_requested cancel) then begin
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"par" (List.length !alive);
        let survivors = ref [] in
        List.iter
          (fun fi ->
            let mask = Ppsfp.propagate st good ~live faults.(fi) in
            if mask = 0L then survivors := fi :: !survivors
            else begin
              results.(fi) <- Some (block_start + Ppsfp.lowest_set_bit mask);
              incr detected
            end)
          !alive;
        alive := List.rev !survivors
      end;
      Obs.Progress.step progress patterns)
    slices;
  !detected

(* Shared domain-spawning driver for both first-detection and
   n-detection grading: shard faults [0, n) into contiguous ranges, run
   [grade ~progress slices lo hi] (returning the shard's detection
   count) on one domain per shard, and record per-shard wall/imbalance
   observability under [engine] ("par" or "ndetect.par").  [annotate]
   adds engine-specific span attributes inside the top-level span.

   Shard supervision: each shard runs under per-domain exception
   capture (a domain that dies would otherwise take the whole run down
   at [Domain.join]).  A failed shard's result range is wiped via
   [reset] and the shard re-run on a fresh domain up to
   [max_shard_retries] times; if every retry fails it is recomputed
   serially in the calling domain as a deterministic last resort.
   Because per-fault results are independent and each shard owns a
   disjoint range, recompute-after-reset merges bit-identically with
   the untouched shards.  The ["fsim.par.shard"] failpoint sits in
   front of every supervised attempt (never the serial fallback), so
   recovery is testable end to end. *)
let shard_failpoint = "fsim.par.shard"

let drive ~engine ?(annotate = fun () -> ()) ?(max_shard_retries = 1) ?domains
    c faults patterns ~reset grade =
  let n = Array.length faults in
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  if requested < 1 then invalid_arg "Par: need at least one domain";
  let domains = max 1 (min requested n) in
  Instrument.engine_run ~engine ~faults:n
    ~patterns:(Array.length patterns)
  @@ fun () ->
  Obs.Trace.add_int "domains" domains;
  annotate ();
  if n > 0 then begin
    let slices =
      Obs.Trace.with_span ("fsim." ^ engine ^ ".prepare") (fun () ->
          prepare c patterns)
    in
    (* One shared task; every shard walks every slice, so the atomic
       counter ends at patterns x domains whatever the interleaving. *)
    let progress =
      Instrument.progress_start ~engine
        ~patterns:(Array.length patterns * domains)
    in
    let bounds d = d * n / domains in
    let observing = Instrument.observing () in
    (* Per-shard wall time and detection counts; each worker writes only
       its own slot, Domain.join publishes the writes (same discipline
       as the result arrays). *)
    let shard_wall = Array.make domains 0.0 in
    let shard_detected = Array.make domains 0 in
    let graded_shard i lo hi () =
      Obs.Trace.with_span (Printf.sprintf "fsim.%s.shard[%d]" engine i)
        (fun () ->
          let t0 = if observing then Obs.Trace.now_s () else 0.0 in
          let detected = grade ~progress slices lo hi in
          if observing then begin
            shard_wall.(i) <- Obs.Trace.now_s () -. t0;
            shard_detected.(i) <- detected;
            Obs.Trace.add_int "faults" (hi - lo);
            Obs.Trace.add_int "detected" detected
          end)
    in
    let attempt_shard i lo hi () =
      Robust.Inject.hit shard_failpoint;
      graded_shard i lo hi ()
    in
    let failures = Array.make domains None in
    let captured i lo hi () =
      try attempt_shard i lo hi ()
      with e -> failures.(i) <- Some e
    in
    let workers =
      Array.init (domains - 1) (fun i ->
          let lo = bounds (i + 1) and hi = bounds (i + 2) in
          Domain.spawn (captured (i + 1) lo hi))
    in
    captured 0 0 (bounds 1) ();
    Array.iter Domain.join workers;
    let prefix = "fsim." ^ engine in
    Array.iteri
      (fun i failure ->
        match failure with
        | None -> ()
        | Some _ ->
          let lo = bounds i and hi = bounds (i + 1) in
          let rec retry attempt =
            if attempt > max_shard_retries then begin
              (* Serial last resort in the calling domain, without the
                 failpoint: deterministic by construction. *)
              reset lo hi;
              Obs.Metrics.incr (prefix ^ ".shard_fallbacks");
              graded_shard i lo hi ()
            end
            else begin
              reset lo hi;
              Obs.Metrics.incr (prefix ^ ".shard_retries");
              match Domain.join (Domain.spawn (attempt_shard i lo hi)) with
              | () -> ()
              | exception _ -> retry (attempt + 1)
            end
          in
          retry 1)
      failures;
    Obs.Progress.finish progress;
    if Obs.Metrics.enabled () then begin
      let prefix = "fsim." ^ engine in
      Array.iteri
        (fun i wall ->
          Obs.Metrics.observe (prefix ^ ".shard_wall_s") wall;
          Obs.Metrics.observe (prefix ^ ".shard_detected")
            (float_of_int shard_detected.(i)))
        shard_wall;
      let total = Array.fold_left ( +. ) 0.0 shard_wall in
      let mean = total /. float_of_int domains in
      let slowest = Array.fold_left max 0.0 shard_wall in
      if mean > 0.0 then
        Obs.Metrics.set (prefix ^ ".shard_imbalance") (slowest /. mean)
    end
  end

let run ?(cancel = Robust.Cancel.none) ?domains c faults patterns =
  let results = Array.make (Array.length faults) None in
  drive ~engine:"par" ?domains c faults patterns
    ~reset:(fun lo hi -> Array.fill results lo (hi - lo) None)
    (fun ~progress slices lo hi ->
      run_shard c ~cancel ~progress slices faults results lo hi);
  results

(* n-detection shard: the Ppsfp drop-after-n policy over [lo, hi),
   writing counts and n-th-detection indices into the shard's disjoint
   slices of [detections]/[nth].  Per-fault state never crosses shard
   boundaries, so the merge (array concatenation by construction) is
   deterministic for every domain count. *)
let run_shard_counts ~n c ~cancel ~progress slices faults detections nth lo hi =
  let st = Ppsfp.make_state c in
  let alive = ref (List.init (hi - lo) (fun i -> lo + i)) in
  let detected = ref 0 in
  List.iter
    (fun { block_start; patterns; live; good } ->
      if !alive <> [] && not (Robust.Cancel.stop_requested cancel) then begin
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"ndetect.par"
            (List.length !alive);
        let survivors = ref [] in
        List.iter
          (fun fi ->
            let mask = Ppsfp.propagate st good ~live faults.(fi) in
            if Ppsfp.record_detections ~n ~block_start ~detections ~nth mask fi
            then survivors := fi :: !survivors
            else incr detected)
          !alive;
        alive := List.rev !survivors
      end;
      Obs.Progress.step progress patterns)
    slices;
  !detected

let run_counts ?(cancel = Robust.Cancel.none) ?domains ~n c faults patterns =
  if n < 1 then invalid_arg "Par.run_counts: n must be >= 1";
  let nf = Array.length faults in
  let detections = Array.make nf 0 in
  let nth = Array.make nf None in
  drive ~engine:"ndetect.par"
    ~annotate:(fun () -> Obs.Trace.add_int "n" n)
    ?domains c faults patterns
    ~reset:(fun lo hi ->
      Array.fill detections lo (hi - lo) 0;
      Array.fill nth lo (hi - lo) None)
    (fun ~progress slices lo hi ->
      run_shard_counts ~n c ~cancel ~progress slices faults detections nth lo hi);
  (detections, nth)
