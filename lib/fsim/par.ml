(* Multicore PPSFP: shard the fault universe across domains, each
   running the serial engine's copy-on-write propagation over its shard
   with a private Ppsfp.state.  The good-machine blocks are evaluated
   once up front and shared read-only.

   Per-fault results are independent of every other fault (dropping
   only skips already-detected faults), so any deterministic sharding
   merges to exactly the serial answer.  We use contiguous shards for
   cache locality; each worker writes its own disjoint slice of the
   shared results array, and Domain.join publishes the writes. *)

type slice = {
  block_start : int;   (* pattern index of bit 0 of this block *)
  live : int64;
  good : int64 array;  (* read-only good-machine values, by node id *)
}

let prepare c patterns =
  let slices = ref [] in
  let start = ref 0 in
  List.iter
    (fun block ->
      slices :=
        { block_start = !start;
          live = Logicsim.Packed.live_mask block;
          good = Logicsim.Packed.eval_block c block }
        :: !slices;
      start := !start + block.Logicsim.Packed.pattern_count)
    (Logicsim.Packed.blocks_of_patterns c patterns);
  List.rev !slices

(* Grade faults [lo, hi) of [faults] against every slice, with fault
   dropping, writing first detections into the shard's own slice of
   [results].  Mirrors Ppsfp.run_general's block loop exactly.
   Returns the number of detections this shard made. *)
let run_shard c slices faults results lo hi =
  let st = Ppsfp.make_state c in
  let alive = ref (List.init (hi - lo) (fun i -> lo + i)) in
  let detected = ref 0 in
  List.iter
    (fun { block_start; live; good } ->
      if !alive <> [] then begin
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"par" (List.length !alive);
        let survivors = ref [] in
        List.iter
          (fun fi ->
            let mask = Ppsfp.propagate st good ~live faults.(fi) in
            if mask = 0L then survivors := fi :: !survivors
            else begin
              results.(fi) <- Some (block_start + Ppsfp.lowest_set_bit mask);
              incr detected
            end)
          !alive;
        alive := List.rev !survivors
      end)
    slices;
  !detected

let run ?domains c faults patterns =
  let n = Array.length faults in
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  if requested < 1 then invalid_arg "Par.run: need at least one domain";
  let domains = max 1 (min requested n) in
  Instrument.engine_run ~engine:"par" ~faults:n
    ~patterns:(Array.length patterns)
  @@ fun () ->
  Obs.Trace.add_int "domains" domains;
  let results = Array.make n None in
  if n > 0 then begin
    let slices =
      Obs.Trace.with_span "fsim.par.prepare" (fun () -> prepare c patterns)
    in
    let bounds d = d * n / domains in
    let observing = Instrument.observing () in
    (* Per-shard wall time and detection counts; each worker writes only
       its own slot, Domain.join publishes the writes (same discipline
       as [results]). *)
    let shard_wall = Array.make domains 0.0 in
    let shard_detected = Array.make domains 0 in
    let graded_shard i lo hi () =
      Obs.Trace.with_span (Printf.sprintf "fsim.par.shard[%d]" i) (fun () ->
          let t0 = if observing then Obs.Trace.now_s () else 0.0 in
          let detected = run_shard c slices faults results lo hi in
          if observing then begin
            shard_wall.(i) <- Obs.Trace.now_s () -. t0;
            shard_detected.(i) <- detected;
            Obs.Trace.add_int "faults" (hi - lo);
            Obs.Trace.add_int "detected" detected
          end)
    in
    let workers =
      Array.init (domains - 1) (fun i ->
          let lo = bounds (i + 1) and hi = bounds (i + 2) in
          Domain.spawn (graded_shard (i + 1) lo hi))
    in
    graded_shard 0 0 (bounds 1) ();
    Array.iter Domain.join workers;
    if Obs.Metrics.enabled () then begin
      Array.iteri
        (fun i wall ->
          Obs.Metrics.observe "fsim.par.shard_wall_s" wall;
          Obs.Metrics.observe "fsim.par.shard_detected"
            (float_of_int shard_detected.(i)))
        shard_wall;
      let total = Array.fold_left ( +. ) 0.0 shard_wall in
      let mean = total /. float_of_int domains in
      let slowest = Array.fold_left max 0.0 shard_wall in
      if mean > 0.0 then
        Obs.Metrics.set "fsim.par.shard_imbalance" (slowest /. mean)
    end
  end;
  results
