type t = {
  circuit : Circuit.Netlist.t;
  pattern_count : int;
  ones : int array;            (* per node: patterns with value 1 *)
  b_stem : float array;        (* per node: stem observability *)
  b_pin : float array array;   (* per gate, per pin *)
}

let popcount word =
  let rec loop w acc = if w = 0L then acc else loop (Int64.logand w (Int64.sub w 1L)) (acc + 1) in
  loop word 0

(* Mask of patterns on which [pin] of gate [id] is sensitized to the
   output: toggling the pin's value would toggle the gate output. *)
let sensitization_mask (c : Circuit.Netlist.t) values id pin =
  let srcs = c.Circuit.Netlist.fanins.(id) in
  let fold_others op identity =
    let acc = ref identity in
    Array.iteri (fun j src -> if j <> pin then acc := op !acc values.(src)) srcs;
    !acc
  in
  match c.Circuit.Netlist.kinds.(id) with
  | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> 0L
  | Circuit.Gate.Buf | Circuit.Gate.Not -> -1L
  | Circuit.Gate.Xor | Circuit.Gate.Xnor -> -1L
  | Circuit.Gate.And | Circuit.Gate.Nand -> fold_others Int64.logand (-1L)
  | Circuit.Gate.Or | Circuit.Gate.Nor ->
    Int64.lognot (fold_others Int64.logor 0L)

let analyze (c : Circuit.Netlist.t) patterns =
  let pattern_count = Array.length patterns in
  if pattern_count = 0 then invalid_arg "Stafan.analyze: no patterns";
  let n = Circuit.Netlist.num_nodes c in
  let ones = Array.make n 0 in
  let sensitized = Array.map (fun fanins -> Array.make (Array.length fanins) 0) c.fanins in
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  List.iter
    (fun block ->
      let values = Logicsim.Packed.eval_block c block in
      let live = Logicsim.Packed.live_mask block in
      for id = 0 to n - 1 do
        ones.(id) <- ones.(id) + popcount (Int64.logand values.(id) live);
        Array.iteri
          (fun pin _src ->
            let mask = Int64.logand (sensitization_mask c values id pin) live in
            sensitized.(id).(pin) <- sensitized.(id).(pin) + popcount mask)
          c.fanins.(id)
      done)
    blocks;
  (* Backward observability sweep. *)
  let b_stem = Array.make n 0.0 in
  let b_pin = Array.map (fun fanins -> Array.make (Array.length fanins) 0.0) c.fanins in
  let total = float_of_int pattern_count in
  for i = Array.length c.topo_order - 1 downto 0 do
    let id = c.topo_order.(i) in
    (* Stem observability: direct PO observation or the best branch. *)
    let from_branches =
      Array.fold_left
        (fun acc dst ->
          let best_pin = ref acc in
          Array.iteri
            (fun pin src -> if src = id then best_pin := max !best_pin b_pin.(dst).(pin))
            c.fanins.(dst);
          !best_pin)
        0.0 c.fanouts.(id)
    in
    b_stem.(id) <- (if Circuit.Netlist.is_output c id then 1.0 else from_branches);
    (* Pin observabilities of this gate's inputs hang off the stem value
       of the gate itself, which is already final (reverse topo). *)
    Array.iteri
      (fun pin _src ->
        b_pin.(id).(pin) <-
          b_stem.(id) *. (float_of_int sensitized.(id).(pin) /. total))
      c.fanins.(id)
  done;
  { circuit = c; pattern_count; ones; b_stem; b_pin }

let controllability_one t id =
  float_of_int t.ones.(id) /. float_of_int t.pattern_count

let observability t id = t.b_stem.(id)

let detection_probability t fault =
  let c = t.circuit in
  let line_node, line_b =
    match fault.Faults.Fault.site with
    | Faults.Fault.Stem v -> (v, t.b_stem.(v))
    | Faults.Fault.Branch { gate; pin } ->
      (c.Circuit.Netlist.fanins.(gate).(pin), t.b_pin.(gate).(pin))
  in
  let c1 = controllability_one t line_node in
  let activation =
    match fault.Faults.Fault.polarity with
    | Faults.Fault.Stuck_at_0 -> c1
    | Faults.Fault.Stuck_at_1 -> 1.0 -. c1
  in
  (* Independence approximation: P(activated and observed).  Clamped
     at the source: both factors are empirical fractions, but float
     round-off (and any future weighting of the factors) must never
     leak a probability outside [0,1] to consumers that use it raw. *)
  Float.min 1.0 (Float.max 0.0 (activation *. line_b))

let expected_coverage t universe ~pattern_count =
  if pattern_count < 0 then invalid_arg "Stafan.expected_coverage: negative count";
  let n = float_of_int pattern_count in
  let acc = ref 0.0 in
  Array.iter
    (fun fault ->
      let d = min 1.0 (max 0.0 (detection_probability t fault)) in
      acc := !acc +. (1.0 -. ((1.0 -. d) ** n)))
    universe;
  !acc /. float_of_int (max 1 (Array.length universe))

let predicted_curve t universe ~counts =
  Array.map (fun n -> (n, expected_coverage t universe ~pattern_count:n)) counts
