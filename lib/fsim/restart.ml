(* Checkpointable fault simulation: run the pattern set in segments,
   snapshotting the per-fault first-detection state after each one.

   Bit-identity of a resumed run rests on two engine properties:
   per-fault results are independent of the other faults in the array
   (dropping only skips the already-detected fault itself), so grading
   the still-undetected subset is exact; and segment boundaries are
   multiples of 64, so {!Logicsim.Packed} packs the remaining patterns
   into the same words a full run would.  Cancellation is checked only
   between segments — a checkpoint therefore always describes a prefix
   of whole segments, never a torn block loop. *)

type outcome = {
  profile : Coverage.profile;
  patterns_done : int;
  resumed_from : int;
  completed : bool;
}

let kind = "fsim"
let segment_failpoint = "fsim.restart.segment"

let engine_tag = function
  | Coverage.Serial -> "serial"
  | Coverage.Parallel -> "ppsfp"
  | Coverage.Deductive -> "deductive"
  | Coverage.Concurrent -> "concurrent"
  (* Par results are bit-identical for every domain count, so the
     domain count is not part of the checkpoint identity: a run may be
     resumed with a different [--domains]. *)
  | Coverage.Par _ -> "par"

let meta_fields ~engine ~seed c faults patterns =
  [ ("circuit", Report.Json.String c.Circuit.Netlist.name);
    ("nodes", Report.Json.Int (Circuit.Netlist.num_nodes c));
    ("engine", Report.Json.String (engine_tag engine));
    ("seed", Report.Json.Int seed);
    ("faults", Report.Json.Int (Array.length faults));
    ("patterns", Report.Json.Int (Array.length patterns)) ]

let detection_to_json = function
  | Some i -> Report.Json.Int i
  | None -> Report.Json.Int (-1)

let payload_of ~patterns_done first_detection =
  [ Report.Json.Obj
      [ ("patterns_done", Report.Json.Int patterns_done);
        ("first_detection",
         Report.Json.List
           (Array.to_list (Array.map detection_to_json first_detection))) ] ]

let restore_payload ~nf payload =
  match payload with
  | [ (Report.Json.Obj _ as state) ] ->
    let field name =
      match state with
      | Report.Json.Obj kvs -> List.assoc_opt name kvs
      | _ -> None
    in
    (match (field "patterns_done", field "first_detection") with
    | Some (Report.Json.Int patterns_done), Some (Report.Json.List dets) ->
      if List.length dets <> nf then
        Error "checkpoint first_detection length does not match fault count"
      else begin
        let first_detection = Array.make nf None in
        let ok = ref true in
        List.iteri
          (fun i d ->
            match d with
            | Report.Json.Int v when v >= 0 -> first_detection.(i) <- Some v
            | Report.Json.Int _ -> ()
            | _ -> ok := false)
          dets;
        if not !ok then Error "checkpoint first_detection has non-int entries"
        else Ok (patterns_done, first_detection)
      end
    | _ -> Error "checkpoint payload is missing patterns_done/first_detection")
  | _ -> Error "checkpoint payload must be exactly one state line"

let run ?(engine = Coverage.Parallel) ?(cancel = Robust.Cancel.none)
    ?(every = 1024) ?(resume = false) ~checkpoint ~seed c faults patterns =
  if every < 1 then invalid_arg "Restart.run: every must be >= 1";
  (* Round the cadence up to whole 64-pattern blocks so every segment
     starts on a block boundary. *)
  let every = 64 * ((every + 63) / 64) in
  let nf = Array.length faults in
  let np = Array.length patterns in
  let meta =
    Robust.Checkpoint.meta ~kind
      ~fields:(meta_fields ~engine ~seed c faults patterns)
  in
  let start_state =
    if not resume then Ok (0, Array.make nf None)
    else
      match Robust.Checkpoint.load ~path:checkpoint with
      | Error msg -> Error (Printf.sprintf "cannot resume: %s" msg)
      | Ok (file_meta, payload) ->
        (match
           Robust.Checkpoint.validate ~kind
             ~expect:(meta_fields ~engine ~seed c faults patterns)
             file_meta
         with
        | Error msg -> Error msg
        | Ok () -> restore_payload ~nf payload)
  in
  match start_state with
  | Error _ as e -> e
  | Ok (resumed_from, first_detection) ->
    Obs.Trace.with_span "fsim.restart" @@ fun () ->
    Obs.Trace.add_int "resumed_from" resumed_from;
    let save patterns_done =
      Robust.Checkpoint.save ~path:checkpoint ~meta
        ~payload:(payload_of ~patterns_done first_detection)
    in
    let pos = ref resumed_from in
    let segments = ref 0 in
    if resumed_from = 0 then save 0;
    while !pos < np && not (Robust.Cancel.stop_requested cancel) do
      let len = min every (np - !pos) in
      let segment = Array.sub patterns !pos len in
      let alive = ref [] in
      for i = nf - 1 downto 0 do
        if first_detection.(i) = None then alive := i :: !alive
      done;
      let alive = Array.of_list !alive in
      let segment_profile =
        Coverage.profile ~engine c
          (Array.map (fun i -> faults.(i)) alive)
          segment
      in
      Array.iteri
        (fun k d ->
          match d with
          | Some local -> first_detection.(alive.(k)) <- Some (!pos + local)
          | None -> ())
        segment_profile.Coverage.first_detection;
      pos := !pos + len;
      incr segments;
      save !pos;
      (* The crash drill kills here: state for [0, pos) is durable. *)
      Robust.Inject.hit segment_failpoint
    done;
    Obs.Trace.add_int "segments" !segments;
    if Obs.Metrics.enabled () then
      Obs.Metrics.incr ~by:(float_of_int !segments) "fsim.restart.segments";
    Ok
      { profile = { Coverage.universe_size = nf; pattern_count = np;
                    first_detection };
        patterns_done = !pos;
        resumed_from;
        completed = !pos >= np }
