(** Checkpointable fault simulation with crash-safe resume.

    Runs any {!Coverage.engine} over the pattern set in segments of
    [every] patterns (rounded up to whole 64-pattern blocks), writing a
    {!Robust.Checkpoint} of the per-fault first-detection state after
    each segment.  A run killed at any instant — including mid-write —
    resumes from the last complete segment and produces a result
    bit-identical to an uninterrupted run: per-fault results do not
    depend on the other faults in the array, and block-aligned segment
    boundaries preserve the 64-bit pattern packing.

    Cancellation ([deadline], SIGINT) is honoured between segments
    only, so the on-disk checkpoint always describes a whole-segment
    prefix.  The ["fsim.restart.segment"] failpoint fires after each
    checkpoint write — the crash-recovery smoke kills there. *)

type outcome = {
  profile : Coverage.profile;
      (** [pattern_count] is the full request; when [completed] is
          false only the first [patterns_done] patterns were graded. *)
  patterns_done : int;
  resumed_from : int;  (** 0 on a fresh run *)
  completed : bool;
}

val run :
  ?engine:Coverage.engine ->
  ?cancel:Robust.Cancel.t ->
  ?every:int ->
  ?resume:bool ->
  checkpoint:string ->
  seed:int ->
  Circuit.Netlist.t ->
  Faults.Fault.t array ->
  bool array array ->
  (outcome, string) result
(** [Error] carries an unreadable/mismatched-checkpoint message (the
    meta header records circuit, engine family, seed and sizes; all
    must match the resuming invocation — except the {!Coverage.Par}
    domain count, which never affects results).  Raises
    [Invalid_argument] when [every < 1]. *)
