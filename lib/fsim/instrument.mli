(** Shared observability shims for the fault-simulation engines.

    All engines report through the same span/metric vocabulary so
    traces of different engines line up: a ["fsim.<engine>"] span with
    [faults]/[patterns] counters, and ["fsim.<engine>.runs"],
    [".patterns"], [".patterns_per_sec"] and [".fault_evals"] metrics.
    Everything is a no-op (one atomic load) while both {!Obs.Trace}
    and {!Obs.Metrics} are disabled. *)

val observing : unit -> bool
(** True when either tracing or metrics are enabled — the gate for
    bookkeeping (e.g. [List.length] of a work list) that would cost
    something even at batch granularity. *)

val engine_run :
  engine:string -> faults:int -> patterns:int -> (unit -> 'a) -> 'a
(** [engine_run ~engine ~faults ~patterns f] runs [f] inside the
    engine's span and records the run-level metrics. *)

val progress_start : engine:string -> patterns:int -> Obs.Progress.t
(** Progress task labelled ["fsim.<engine>"] over [patterns] items;
    the engines step it once per 64-pattern block (per shard for the
    Par engine, whose total is patterns times domains).  Returns the
    no-op dummy while {!Obs.Progress} is disabled. *)

val count_fault_evals : engine:string -> int -> unit
(** Record [n] fault-propagation evaluations (one fault graded against
    one pattern block, or one live fault carried through one pattern)
    onto the current span and the engine's metric counter.  Call at
    batch granularity, gated on {!observing}. *)
