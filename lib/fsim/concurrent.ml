module Int_set = Fault_lists.Int_set

type state = {
  circuit : Circuit.Netlist.t;
  site : Fault_lists.site_index;
  values : bool array;
  lists : Int_set.t array;
  alive : bool array;
  (* Level-ordered event wheel with per-node dedup. *)
  wheel : int list array;
  queued : bool array;
}

let schedule st id =
  if not st.queued.(id) then begin
    st.queued.(id) <- true;
    let level = st.circuit.Circuit.Netlist.levels.(id) in
    st.wheel.(level) <- id :: st.wheel.(level)
  end

(* Recompute one gate's (value, list); returns whether either changed. *)
let refresh st id =
  let c = st.circuit in
  match c.Circuit.Netlist.kinds.(id) with
  | Circuit.Gate.Input -> false
  | kind ->
    let srcs = c.Circuit.Netlist.fanins.(id) in
    let pin_values = Array.map (fun src -> st.values.(src)) srcs in
    let pin_lists =
      Array.mapi
        (fun pin src ->
          match Fault_lists.branch_faults st.site ~gate:id ~pin with
          | [] -> st.lists.(src)
          | own ->
            Fault_lists.adjust_for_site own ~good:pin_values.(pin) ~alive:st.alive
              st.lists.(src))
        srcs
    in
    let value = Circuit.Gate.eval kind pin_values in
    let list =
      Fault_lists.adjust_for_site
        (Fault_lists.stem_faults st.site id)
        ~good:value ~alive:st.alive
        (Fault_lists.gate_flip_list kind ~pin_values ~pin_lists)
    in
    let changed = value <> st.values.(id) || not (Int_set.equal list st.lists.(id)) in
    if changed then begin
      st.values.(id) <- value;
      st.lists.(id) <- list
    end;
    changed

let propagate st =
  let c = st.circuit in
  for level = 0 to Array.length st.wheel - 1 do
    let bucket = st.wheel.(level) in
    st.wheel.(level) <- [];
    List.iter
      (fun id ->
        st.queued.(id) <- false;
        if refresh st id then
          Array.iter (fun dst -> schedule st dst) c.Circuit.Netlist.fanouts.(id))
      bucket
  done

let run (c : Circuit.Netlist.t) faults patterns =
  Instrument.engine_run ~engine:"concurrent" ~faults:(Array.length faults)
    ~patterns:(Array.length patterns)
  @@ fun () ->
  let num_nodes = Circuit.Netlist.num_nodes c in
  let st =
    { circuit = c;
      site = Fault_lists.index faults;
      values = Array.make num_nodes false;
      lists = Array.make num_nodes Int_set.empty;
      alive = Array.make (Array.length faults) true;
      wheel = Array.make (Circuit.Netlist.depth c + 1) [];
      queued = Array.make num_nodes false }
  in
  let results = Array.make (Array.length faults) None in
  let alive_count = ref (Array.length faults) in
  let first = ref true in
  Array.iteri
    (fun pattern_index pattern ->
      if !alive_count > 0 then begin
        if Array.length pattern <> Array.length c.inputs then
          invalid_arg "Concurrent.run: pattern width mismatch";
        if Instrument.observing () then
          Instrument.count_fault_evals ~engine:"concurrent" !alive_count;
        (* Apply input events (the first pattern seeds everything). *)
        Array.iteri
          (fun i id ->
            let list =
              Fault_lists.adjust_for_site
                (Fault_lists.stem_faults st.site id)
                ~good:pattern.(i) ~alive:st.alive Int_set.empty
            in
            if
              !first
              || st.values.(id) <> pattern.(i)
              || not (Int_set.equal list st.lists.(id))
            then begin
              st.values.(id) <- pattern.(i);
              st.lists.(id) <- list;
              Array.iter (fun dst -> schedule st dst) c.fanouts.(id)
            end)
          c.inputs;
        if !first then begin
          (* Seed every gate once so constants and untouched cones settle. *)
          Array.iter
            (fun id -> if c.kinds.(id) <> Circuit.Gate.Input then schedule st id)
            c.topo_order;
          first := false
        end;
        propagate st;
        (* Detection at the primary outputs (live faults only). *)
        Array.iter
          (fun out ->
            Int_set.iter
              (fun fault_index ->
                if st.alive.(fault_index) then begin
                  st.alive.(fault_index) <- false;
                  decr alive_count;
                  results.(fault_index) <- Some pattern_index
                end)
              st.lists.(out))
          c.outputs
      end)
    patterns;
  results
