(** STAFAN-style statistical fault analysis (Jain & Agrawal 1985 — the
    follow-up line of work by this paper's own authors).

    Estimates per-fault detection probabilities and the expected fault
    coverage of a pattern set {e without simulating any fault}: one
    good-machine simulation of the patterns collects per-line signal
    statistics, from which

    - controllabilities [C1(l), C0(l)] — observed fraction of patterns
      with the line at 1 / 0;
    - observabilities [B(l)] — estimated fraction of patterns on which
      a change at the line would reach a primary output, propagated
      backwards with the standard STAFAN sensitization ratios;
    - per-fault detection probability per pattern
      [d(sa0) = C1·B, d(sa1) = C0·B];
    - expected coverage of [n] patterns: mean of [1 - (1-d)^n].

    The estimate is approximate (reconvergent fanout breaks the
    independence assumptions), which is precisely what makes it cheap;
    the ablation tests quantify the gap against exact fault
    simulation. *)

type t

val analyze : Circuit.Netlist.t -> bool array array -> t
(** One pass of good-machine simulation over the patterns plus a
    backward observability sweep. *)

val controllability_one : t -> int -> float
(** C1 of a node's stem: fraction of analyzed patterns with value 1. *)

val observability : t -> int -> float
(** B of a node's stem. *)

val detection_probability : t -> Faults.Fault.t -> float
(** Estimated per-pattern detection probability of a stuck-at fault.
    Clamped to [0,1] at the source. *)

val expected_coverage :
  t -> Faults.Fault.t array -> pattern_count:int -> float
(** Predicted coverage of [pattern_count] patterns drawn like the
    analyzed ones, over the given universe. *)

val predicted_curve :
  t -> Faults.Fault.t array -> counts:int array -> (int * float) array
(** [(n, predicted coverage)] rows — comparable to
    {!Coverage.curve} from real fault simulation. *)
