(** Experimental determination of [n0] (Section 5).

    The input is what a test floor actually produces: a list of
    checkpoints [(f_j, w_j)] — cumulative fault coverage after some
    pattern prefix, and the cumulative fraction of lot chips that have
    failed by then.  Three estimators:

    - {!fit_n0}: least-squares fit of the Eq. 9 family P(f) over a grid
      of candidate [n0] (the paper's graphical overlay, automated);
    - {!slope_n0}: the initial-slope shortcut of Eq. 10,
      [n0 = P'(0)/(1-y)], taken from the earliest checkpoints;
    - {!fit_n0_and_yield}: joint fit when the process yield is unknown
      (2-d nested grid search). *)

type point = { coverage : float; fraction_failed : float }

val fit_n0 :
  ?n0_max:float -> yield_:float -> point list -> float * float
(** Returns (n0 estimate, residual sum of squares).  Requires at least
    one point with positive coverage. *)

val slope_n0 : ?points_used:int -> yield_:float -> point list -> float
(** Eq. 10 estimator: regression through the origin on the first
    [points_used] (default 1) checkpoints gives [P'(0) = nav];
    dividing by [1-y] gives n0.  With one point this reproduces the
    paper's hand computation 0.41/0.05 = 8.2 → 8.2/0.93 = 8.8. *)

val slope_nav : ?points_used:int -> point list -> float
(** The raw slope [P'(0)] itself — the paper notes it can stand in for
    [n0] when the yield is unknown (a pessimistic but safe estimate,
    since [P'(0) = (1-y) n0 < n0]). *)

val fit_n0_and_yield :
  ?n0_max:float -> point list -> float * float * float
(** (n0, yield, residual) when neither parameter is known.  The yield
    is searched on a grid clamped inside [1e-4, min (1 - max
    fraction-failed) 0.999], so a saturated curve (some point failing
    near 100 %) degrades to a narrow-but-sane search instead of
    pinning the yield at 0.  Identifiability is poor when the data stop
    at low coverage — the test suite documents this honestly. *)

val predicted_curve :
  yield_:float -> n0:float -> coverages:float array -> point list
(** The analytic P(f) checkpoints for plotting against data (Fig. 5). *)
