(** Field reject rate and test-rejection probability
    (Sections 4–5, Eq. 6–10).

    All functions take the two model parameters — yield [y] and the
    defective-chip fault mean [n0] — explicitly, so the module is a set
    of pure formulas; {!Fault_distribution.t} holds the same pair when
    a packaged value is more convenient. *)

val ybg : yield_:float -> n0:float -> float -> float
(** Eq. 7 closed form: probability that a manufactured chip is bad yet
    passes tests of coverage [f]:
    [(1-f)(1-y) e^{-(n0-1) f}]. *)

val ybg_exact : ?terms:int -> total:int -> yield_:float -> n0:float -> float -> float
(** Eq. 6 evaluated by direct summation with the {e exact}
    hypergeometric escape probability (A.1) over a finite fault
    universe of [total] sites: Σ_{n>=1} q0(n)·p(n).  [terms] (default
    400) truncates the sum; the tail is negligible because p(n) decays
    factorially.  Used to validate the closed form. *)

val reject_rate : yield_:float -> n0:float -> float -> float
(** Eq. 8: field reject rate [r(f) = Ybg / (y + Ybg)] — the fraction of
    chips shipped as good that are actually defective. *)

val reject_band : yield_:float -> n0:float -> float * float -> float * float
(** [reject_band ~yield_ ~n0 (f_lo, f_hi)] maps a fault-coverage band
    to the implied field-reject-rate band [(r_lo, r_hi)].  [r(f)] is
    decreasing in [f], so [r_lo = r(f_hi)] and [r_hi = r(f_lo)].  Used
    with the static coverage bands of {!Analysis.Detectability} (and
    their n-detection effective-coverage variant) to predict a reject
    band before any pattern exists.  Raises [Invalid_argument] on an
    inverted band. *)

val p_reject : yield_:float -> n0:float -> float -> float
(** Eq. 9: probability that a chip fails a test program of coverage
    [f]; equals the expected cumulative fraction of chips rejected by
    the time coverage [f] has been applied. *)

val p_reject_slope : yield_:float -> n0:float -> float -> float
(** dP/df at coverage [f]. *)

val initial_slope : yield_:float -> n0:float -> float
(** Eq. 10: [P'(0) = (1-y)·n0 = nav]. *)

val yield_for : reject:float -> n0:float -> float -> float
(** Eq. 11: the yield at which coverage [f] gives field reject rate
    [reject] — the closed form behind Figs. 2–4. *)
