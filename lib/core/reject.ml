let check ~yield_ ~n0 f =
  if yield_ < 0.0 || yield_ > 1.0 then invalid_arg "Reject: yield outside [0,1]";
  if n0 < 1.0 then invalid_arg "Reject: n0 must be >= 1";
  if f < 0.0 || f > 1.0 then invalid_arg "Reject: coverage outside [0,1]"

let ybg ~yield_ ~n0 f =
  check ~yield_ ~n0 f;
  (1.0 -. f) *. (1.0 -. yield_) *. exp (-.(n0 -. 1.0) *. f)

let ybg_exact ?(terms = 400) ~total ~yield_ ~n0 f =
  check ~yield_ ~n0 f;
  let conditional = Stats.Dist.Shifted_poisson.create n0 in
  let acc = ref 0.0 in
  for n = 1 to terms do
    let pn = (1.0 -. yield_) *. Stats.Dist.Shifted_poisson.pmf conditional n in
    if pn > 0.0 && n <= total then
      acc := !acc +. (pn *. Escape.q0_exact ~total ~faulty:n ~coverage:f)
  done;
  !acc

let reject_rate ~yield_ ~n0 f =
  let bad_passing = ybg ~yield_ ~n0 f in
  if yield_ +. bad_passing = 0.0 then 0.0
  else bad_passing /. (yield_ +. bad_passing)

let reject_band ~yield_ ~n0 (f_lo, f_hi) =
  if f_lo > f_hi then invalid_arg "Reject.reject_band: inverted coverage band";
  (* r(f) is strictly decreasing in f, so the coverage band's upper
     edge gives the reject band's lower edge and vice versa. *)
  (reject_rate ~yield_ ~n0 f_hi, reject_rate ~yield_ ~n0 f_lo)

let p_reject ~yield_ ~n0 f =
  check ~yield_ ~n0 f;
  (1.0 -. yield_) *. (1.0 -. ((1.0 -. f) *. exp (-.(n0 -. 1.0) *. f)))

let p_reject_slope ~yield_ ~n0 f =
  check ~yield_ ~n0 f;
  (1.0 -. yield_)
  *. (1.0 +. ((1.0 -. f) *. (n0 -. 1.0)))
  *. exp (-.(n0 -. 1.0) *. f)

let initial_slope ~yield_ ~n0 = (1.0 -. yield_) *. n0

let yield_for ~reject ~n0 f =
  if reject <= 0.0 || reject >= 1.0 then
    invalid_arg "Reject.yield_for: reject rate outside (0,1)";
  if n0 < 1.0 then invalid_arg "Reject.yield_for: n0 must be >= 1";
  if f < 0.0 || f > 1.0 then invalid_arg "Reject.yield_for: coverage outside [0,1]";
  let escaped = (1.0 -. f) *. exp (-.(n0 -. 1.0) *. f) in
  let numerator = (1.0 -. reject) *. escaped in
  numerator /. (reject +. numerator)
