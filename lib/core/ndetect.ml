let check_epsilon epsilon =
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Ndetect: epsilon outside [0,1]"

let fault_escape ~epsilon k =
  check_epsilon epsilon;
  if k < 0 then invalid_arg "Ndetect.fault_escape: negative detection count";
  if k = 0 then 1.0 else epsilon ** float_of_int k

let effective_coverage ~epsilon counts =
  check_epsilon epsilon;
  let total = Array.length counts in
  if total = 0 then 0.0
  else begin
    let screened = ref 0.0 in
    Array.iter
      (fun k -> screened := !screened +. (1.0 -. fault_escape ~epsilon k))
      counts;
    !screened /. float_of_int total
  end

let q0 ~epsilon ~faulty counts =
  Escape.q0_simple ~faulty ~coverage:(effective_coverage ~epsilon counts)

let ybg ~epsilon ~yield_ ~n0 counts =
  Reject.ybg ~yield_ ~n0 (effective_coverage ~epsilon counts)

let reject_rate ~epsilon ~yield_ ~n0 counts =
  Reject.reject_rate ~yield_ ~n0 (effective_coverage ~epsilon counts)
