(** n-detection generalization of the paper's escape model.

    The paper treats a fault site as {e screened} the moment one test
    pattern detects it (Eq. 4–5 count only covered/uncovered sites).
    That is exact for the single-stuck-at model, but the defects the
    model stands in for are not all stuck-ats: a site detected once may
    still host a defect the detecting pattern happens to miss.  The
    n-detection literature (Ma et al., McCluskey) models this with a {e
    residual escape probability} [epsilon] per detection: a fault
    detected [k] times escapes with probability [epsilon^k]
    (independent detection opportunities), so repeated detections decay
    the escape geometrically instead of zeroing it.

    Folding the per-fault decay into a single number gives the {e
    effective coverage}

    {[ f_eff = (1/F) . sum_j (1 - epsilon^{k_j}) ]}

    over the [F] faults with detection counts [k_j] — each fault
    contributes its screening probability rather than a 0/1 covered
    bit.  [f_eff] then replaces [f] in the paper's Eq. 5/7/8
    unchanged.

    {b Deviation from the paper:} this module is an extension, not a
    reproduction — the paper has no [epsilon].  At [epsilon = 0] a
    single detection screens perfectly, [f_eff] is exactly the paper's
    coverage [f], and every function below collapses to its Eq. 5/7/8
    counterpart.  Detection counts come from
    [Fsim.Coverage.detection_counts] (the drop-after-n kernels saturate
    counts at [n], which {e under}-states [f_eff]; use [n] large enough
    that [epsilon^n] is negligible). *)

val fault_escape : epsilon:float -> int -> float
(** [fault_escape ~epsilon k]: probability that a fault detected by
    [k] patterns still escapes — [epsilon^k], with [k = 0] giving 1
    (an undetected fault always escapes, for any [epsilon], including
    0).  Raises [Invalid_argument] when [epsilon] is outside [0,1] or
    [k < 0]. *)

val effective_coverage : epsilon:float -> int array -> float
(** [effective_coverage ~epsilon counts]: mean screening probability
    [(1/F) . sum (1 - epsilon^k)] over the per-fault detection counts.
    Empty [counts] gives 0 (matching [Fsim.Coverage.final_coverage] on
    an empty universe).  At [epsilon = 0] this is the ordinary fault
    coverage: the fraction of faults with [k >= 1]. *)

val q0 : epsilon:float -> faulty:int -> int array -> float
(** Eq. 5 / A.3 at effective coverage: [(1 - f_eff)^faulty], the
    probability that a chip with [faulty] faults passes the tests.  At
    [epsilon = 0] equals [Escape.q0_simple] at the 1-detect
    coverage. *)

val ybg : epsilon:float -> yield_:float -> n0:float -> int array -> float
(** Eq. 7 at effective coverage:
    [(1 - f_eff)(1 - y) e^{-(n0-1) f_eff}].  At [epsilon = 0] equals
    [Reject.ybg]. *)

val reject_rate :
  epsilon:float -> yield_:float -> n0:float -> int array -> float
(** Eq. 8 at effective coverage: [r = Ybg / (y + Ybg)].  At
    [epsilon = 0] equals [Reject.reject_rate] — the paper's field
    reject rate.  For [epsilon > 0] the predicted reject rate is
    higher at equal 1-detect coverage, quantifying the quality gain of
    n-detection test sets. *)
