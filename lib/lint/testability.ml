module N = Circuit.Netlist
module F = Faults.Fault

type reason = Unexcitable | Unobservable | Equivalent | Redundant

let reason_to_string = function
  | Unexcitable -> "unexcitable"
  | Unobservable -> "unobservable"
  | Equivalent -> "equivalent"
  | Redundant -> "redundant"

let not_const ternary id =
  match Ternary.const_value ternary id with Some _ -> false | None -> true

(* Sound per-fault unobservability proof: cut the fault line, then
   forward-propagate "these two machines could differ here".  A net can
   differ only if some fanin differs and the net is not provably
   constant under the cut (cut constants hold in both machines). *)
let prove_unobservable (c : N.t) site =
  let tf = Ternary.analyze_with_cut c site in
  let n = N.num_nodes c in
  let diff = Array.make n false in
  (match site with
  | F.Stem s -> diff.(s) <- not_const tf s
  | F.Branch { gate; pin = _ } -> diff.(gate) <- not_const tf gate);
  Array.iter
    (fun id ->
      if (not diff.(id)) && not_const tf id then
        diff.(id) <- Array.exists (fun src -> diff.(src)) c.N.fanins.(id))
    c.N.topo_order;
  not (Array.exists (fun o -> diff.(o)) c.N.outputs)

(* Fanout cone of a fault site: the nodes whose value can differ
   between the fault-free and the faulty machine.  Facts about nodes
   outside the cone transfer to the faulty machine verbatim. *)
let fanout_cone (c : N.t) site =
  let cone = Array.make (N.num_nodes c) false in
  let rec go id =
    if not cone.(id) then begin
      cone.(id) <- true;
      Array.iter go c.N.fanouts.(id)
    end
  in
  go (F.site_node { F.site; polarity = F.Stuck_at_0 });
  cone

(* Dominator-blocking proof: every propagation path from the site
   crosses each of its absolute dominators; if some dominator has a
   side input held at the controlling value by a learned constant whose
   node lies outside the fault's fanout cone (so the constant holds in
   the faulty machine too), the dominator's output is equal in both
   machines and nothing ever reaches an output.  For a branch fault the
   faulted gate itself is the first "dominator" — any {e other} pin
   constant at the controlling value blocks it. *)
let prove_blocked_dominators (c : N.t) analysis site =
  match Analysis.Engine.implication analysis with
  | None -> false
  | Some imp ->
    let dom = Analysis.Engine.dominators analysis in
    let cone = lazy (fanout_cone c site) in
    let blocked ?exclude_pin d =
      match Circuit.Gate.controlling_value c.N.kinds.(d) with
      | None -> false
      | Some controlling ->
        let hit = ref false in
        Array.iteri
          (fun pin src ->
            if
              (not !hit)
              && Some pin <> exclude_pin
              && (not (Lazy.force cone).(src))
              && Analysis.Implication.constant imp src = Some controlling
            then hit := true)
          c.N.fanins.(d);
        !hit
    in
    (match site with
    | F.Stem s -> List.exists (fun d -> blocked d) (Analysis.Dominators.dominators dom s)
    | F.Branch { gate; pin } ->
      blocked ~exclude_pin:pin gate
      || List.exists (fun d -> blocked d) (Analysis.Dominators.dominators dom gate))

let analyze ?classes ?analysis ?exact (c : N.t) universe =
  let t0 = Ternary.analyze c in
  let implication = Option.bind analysis Analysis.Engine.implication in
  (* Global filter: a stem is worth a per-fault proof only if no
     all-nonconstant path links it to an output.  The cut analysis
     derives a subset of the intact circuit's constants, so it blocks
     strictly less; any fault passing this filter would pass the cut
     proof too, making the filter lossless. *)
  let n = N.num_nodes c in
  let obs = Array.make n false in
  for i = Array.length c.N.topo_order - 1 downto 0 do
    let id = c.N.topo_order.(i) in
    obs.(id) <-
      N.is_output c id
      || Array.exists (fun g -> obs.(g) && not_const t0 g) c.N.fanouts.(id)
  done;
  let verdict fault =
    let stuck = F.polarity_bit fault.F.polarity in
    let line_value =
      match fault.F.site with
      | F.Stem s -> Ternary.value t0 s
      | F.Branch { gate; pin } -> Ternary.pin_value c t0 ~gate ~pin
    in
    match line_value with
    | Ternary.Const v when v = stuck -> Some Unexcitable
    | Ternary.Const _ | Ternary.Lit _ ->
      let unexcitable_by_implication =
        match implication with
        | None -> false
        | Some imp ->
          (* The learned closure proves the activation value infeasible
             on the fault-free line: the line always sits at the stuck
             value, so the faulty machine is the fault-free machine.
             Strictly stronger than the ternary constant check above —
             backward justification and learned edges participate. *)
          let driver =
            match fault.F.site with
            | F.Stem s -> s
            | F.Branch { gate; pin } -> c.N.fanins.(gate).(pin)
          in
          Analysis.Implication.infeasible imp driver (not stuck)
      in
      if unexcitable_by_implication then Some Unexcitable
      else begin
        let globally_observable =
          match fault.F.site with
          | F.Stem s -> obs.(s)
          | F.Branch { gate; pin = _ } -> obs.(gate) && not_const t0 gate
        in
        if (not globally_observable) && prove_unobservable c fault.F.site then
          Some Unobservable
        else
          match analysis with
          | Some a when prove_blocked_dominators c a fault.F.site ->
            Some Unobservable
          | Some _ | None -> None
      end
  in
  let verdicts = Array.map verdict universe in
  (match exact with
  | None -> ()
  | Some exact ->
    (* The ROBDD engine's verdicts are exact, not heuristic: wherever
       the node budget held, Untestable means the Boolean difference
       is the constant-zero function.  Runs after the structural
       proofs so the cheaper reasons keep their names; the class
       expansion below still widens these like any other proof. *)
    Array.iteri
      (fun i fault ->
        if
          verdicts.(i) = None
          && Analysis.Exact.verdict exact fault = Analysis.Exact.Untestable
        then verdicts.(i) <- Some Redundant)
      universe);
  (match classes with
  | None -> ()
  | Some classes ->
    (* Equivalent faults have identical detection sets, so one member's
       untestability proof covers the whole class. *)
    let flagged_class = Hashtbl.create 16 in
    Array.iteri
      (fun i fault ->
        if verdicts.(i) <> None then
          match Faults.Collapse.class_of classes fault with
          | cls -> Hashtbl.replace flagged_class cls ()
          | exception Not_found -> ())
      universe;
    Array.iteri
      (fun i fault ->
        if verdicts.(i) = None then
          match Faults.Collapse.class_of classes fault with
          | cls -> if Hashtbl.mem flagged_class cls then verdicts.(i) <- Some Equivalent
          | exception Not_found -> ())
      universe);
  verdicts

let untestable ?classes ?analysis ?exact c universe =
  let verdicts = analyze ?classes ?analysis ?exact c universe in
  let flagged = ref [] in
  Array.iteri
    (fun i fault ->
      match verdicts.(i) with
      | Some reason -> flagged := (fault, reason) :: !flagged
      | None -> ())
    universe;
  Array.of_list (List.rev !flagged)

let untestable_faults ?classes ?analysis ?exact c universe =
  Array.map fst (untestable ?classes ?analysis ?exact c universe)
