module N = Circuit.Netlist
module F = Faults.Fault

type reason = Unexcitable | Unobservable | Equivalent

let reason_to_string = function
  | Unexcitable -> "unexcitable"
  | Unobservable -> "unobservable"
  | Equivalent -> "equivalent"

let not_const ternary id =
  match Ternary.const_value ternary id with Some _ -> false | None -> true

(* Sound per-fault unobservability proof: cut the fault line, then
   forward-propagate "these two machines could differ here".  A net can
   differ only if some fanin differs and the net is not provably
   constant under the cut (cut constants hold in both machines). *)
let prove_unobservable (c : N.t) site =
  let tf = Ternary.analyze_with_cut c site in
  let n = N.num_nodes c in
  let diff = Array.make n false in
  (match site with
  | F.Stem s -> diff.(s) <- not_const tf s
  | F.Branch { gate; pin = _ } -> diff.(gate) <- not_const tf gate);
  Array.iter
    (fun id ->
      if (not diff.(id)) && not_const tf id then
        diff.(id) <- Array.exists (fun src -> diff.(src)) c.N.fanins.(id))
    c.N.topo_order;
  not (Array.exists (fun o -> diff.(o)) c.N.outputs)

let analyze ?classes (c : N.t) universe =
  let t0 = Ternary.analyze c in
  (* Global filter: a stem is worth a per-fault proof only if no
     all-nonconstant path links it to an output.  The cut analysis
     derives a subset of the intact circuit's constants, so it blocks
     strictly less; any fault passing this filter would pass the cut
     proof too, making the filter lossless. *)
  let n = N.num_nodes c in
  let obs = Array.make n false in
  for i = Array.length c.N.topo_order - 1 downto 0 do
    let id = c.N.topo_order.(i) in
    obs.(id) <-
      N.is_output c id
      || Array.exists (fun g -> obs.(g) && not_const t0 g) c.N.fanouts.(id)
  done;
  let verdict fault =
    let stuck = F.polarity_bit fault.F.polarity in
    let line_value =
      match fault.F.site with
      | F.Stem s -> Ternary.value t0 s
      | F.Branch { gate; pin } -> Ternary.pin_value c t0 ~gate ~pin
    in
    match line_value with
    | Ternary.Const v when v = stuck -> Some Unexcitable
    | Ternary.Const _ | Ternary.Lit _ ->
      let globally_observable =
        match fault.F.site with
        | F.Stem s -> obs.(s)
        | F.Branch { gate; pin = _ } -> obs.(gate) && not_const t0 gate
      in
      if globally_observable then None
      else if prove_unobservable c fault.F.site then Some Unobservable
      else None
  in
  let verdicts = Array.map verdict universe in
  (match classes with
  | None -> ()
  | Some classes ->
    (* Equivalent faults have identical detection sets, so one member's
       untestability proof covers the whole class. *)
    let flagged_class = Hashtbl.create 16 in
    Array.iteri
      (fun i fault ->
        if verdicts.(i) <> None then
          match Faults.Collapse.class_of classes fault with
          | cls -> Hashtbl.replace flagged_class cls ()
          | exception Not_found -> ())
      universe;
    Array.iteri
      (fun i fault ->
        if verdicts.(i) = None then
          match Faults.Collapse.class_of classes fault with
          | cls -> if Hashtbl.mem flagged_class cls then verdicts.(i) <- Some Equivalent
          | exception Not_found -> ())
      universe);
  verdicts

let untestable ?classes c universe =
  let verdicts = analyze ?classes c universe in
  let flagged = ref [] in
  Array.iteri
    (fun i fault ->
      match verdicts.(i) with
      | Some reason -> flagged := (fault, reason) :: !flagged
      | None -> ())
    universe;
  Array.of_list (List.rev !flagged)

let untestable_faults ?classes c universe =
  Array.map fst (untestable ?classes c universe)
