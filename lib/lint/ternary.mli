(** Ternary constant propagation with literal tracking.

    Assigns every net an abstract value: provably constant ([Const]),
    provably equal to another net up to inversion ([Lit]), or opaque
    (represented as a literal of the node itself).  Beyond plain
    0/1/X propagation, tracking literals proves the degenerate-structure
    identities — [XOR(x, x) = 0], [AND(x, NOT x) = 0], [OR(x, x) = x] —
    that real netlists acquire through careless synthesis, which is
    where most statically provable redundancy comes from.

    All proofs are implied by gate semantics plus literal sharing alone,
    so they hold for {e every} input vector; "provably constant" here
    means constant over the whole input space, not just over some test
    set. *)

type value =
  | Const of bool
  | Lit of { src : int; inv : bool }
      (** Equal to net [src] (inverted when [inv]).  A node that cannot
          be reduced is its own literal: [Lit { src = id; inv = false }].
          The cut line of {!analyze_with_cut} uses [src = -1], a fresh
          variable equal to no net. *)

type t

val analyze : Circuit.Netlist.t -> t
(** Abstract values of the intact circuit, in one topological pass. *)

val analyze_with_cut : Circuit.Netlist.t -> Faults.Fault.site -> t
(** Same propagation with one line {e freed}: the cut line is treated
    as a fresh unconstrained variable, so every constant derived is
    valid regardless of the value carried by that line — in particular
    it is valid in both the fault-free machine and any machine with a
    stuck-at fault on the cut line.  This is what makes the
    unobservability proofs in {!Testability} sound under reconvergent
    fanout. *)

val value : t -> int -> value
(** Abstract value of node [id]'s output stem. *)

val const_value : t -> int -> bool option
(** [Some b] when the stem is provably constant. *)

val pin_value : Circuit.Netlist.t -> t -> gate:int -> pin:int -> value
(** Fault-free abstract value carried by one gate input pin (the value
    of its driver's stem). *)
