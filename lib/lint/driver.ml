module N = Circuit.Netlist
module F = Faults.Fault

type config = {
  fanout_threshold : int;
  testability : bool;
  crosscheck : bool;
  hard_fault_count : int;
  hard_fault_threshold : int;
  learn_depth : int option;
  exact_budget : int option;
  resistant_threshold : float;
  resistant_count : int;
}

let default_config =
  { fanout_threshold = 16;
    testability = true;
    crosscheck = true;
    hard_fault_count = 10;
    hard_fault_threshold = 100;
    learn_depth = None;
    exact_budget = None;
    resistant_threshold = 0.01;
    resistant_count = 10 }

type report = {
  circuit : N.t;
  diagnostics : Diagnostic.t list;
  untestable : (F.t * Testability.reason) array;
  universe_size : int;
  errors : int;
  warnings : int;
  infos : int;
}

let run ?(config = default_config) (c : N.t) =
  Obs.Trace.with_span "lint.run" @@ fun () ->
  Obs.Trace.add_int "gates" (N.num_gates c);
  let ternary = Obs.Trace.with_span "lint.ternary" (fun () -> Ternary.analyze c) in
  let structural =
    Obs.Trace.with_span "lint.structural" (fun () ->
        Structure.diagnostics ~fanout_threshold:config.fanout_threshold c ternary)
  in
  let universe = Faults.Universe.all c in
  let untestable, hard_diags =
    if not config.testability then ([||], [])
    else
      Obs.Trace.with_span "lint.testability" @@ fun () ->
      let classes =
        if config.crosscheck then Some (Faults.Collapse.equivalence c universe)
        else None
      in
      let analysis =
        match config.learn_depth with
        | None -> None
        | Some depth ->
          Some
            (Obs.Trace.with_span "lint.analysis" (fun () ->
                 Analysis.Engine.build ~learn_depth:(Some depth) c))
      in
      let exact =
        match config.exact_budget with
        | None -> None
        | Some budget ->
          Some
            (Obs.Trace.with_span "lint.exact" (fun () ->
                 Analysis.Exact.analyze ~budget c))
      in
      let untestable = Testability.untestable ?classes ?analysis ?exact c universe in
      (* SCOAP hard-to-detect warnings over collapsed representatives,
         skipping faults already proven untestable (those are not hard,
         they are impossible). *)
      let flagged = Hashtbl.create (Array.length untestable) in
      Array.iter (fun (fault, _) -> Hashtbl.replace flagged fault ()) untestable;
      let reps =
        match classes with
        | Some classes -> Faults.Collapse.representatives classes
        | None -> universe
      in
      let scoap = Tpg.Scoap.analyze c in
      let hard =
        Tpg.Scoap.hardest_faults scoap c reps ~count:config.hard_fault_count
        |> List.filter (fun (fault, difficulty) ->
               difficulty >= config.hard_fault_threshold
               && difficulty < Tpg.Scoap.infinite
               && not (Hashtbl.mem flagged fault))
        |> List.map (fun (fault, difficulty) ->
               Diagnostic.make ~node:(F.site_node fault) c ~rule:"hard-fault"
                 ~severity:Diagnostic.Warning
                 (Printf.sprintf "fault %s is hard to detect (SCOAP difficulty %d)"
                    (F.to_string c fault) difficulty))
      in
      (* Random-pattern-resistant warnings: faults whose statically
         bounded detection probability stays below the threshold under
         uniform random patterns.  Unlike hard-fault this is a sound
         bound, not a heuristic cost; d_hi = 0 faults are excluded
         here (they are untestable, not resistant). *)
      let resistant =
        if config.resistant_count = 0 then []
        else begin
          let det =
            match analysis with
            | Some a -> Analysis.Engine.detectability a
            | None ->
              Analysis.Detectability.analyze (Analysis.Signal_prob.analyze c)
          in
          Analysis.Detectability.resistant det reps
            ~threshold:config.resistant_threshold
          |> List.filter (fun (fault, _) -> not (Hashtbl.mem flagged fault))
          |> List.filteri (fun i _ -> i < config.resistant_count)
          |> List.map (fun (fault, d) ->
                 Diagnostic.make ~node:(F.site_node fault) c
                   ~rule:"resistant-fault" ~severity:Diagnostic.Warning
                   (Printf.sprintf
                      "fault %s is random-pattern-resistant (detection \
                       probability < %g per uniform pattern)"
                      (F.to_string c fault)
                      d.Analysis.Signal_prob.hi))
        end
      in
      (* Exact-analysis coverage: wherever the BDD node budget held,
         the untestable list above is complete.  A blown budget is
         worth a warning — the user asked for exactness and did not
         fully get it, and --fail-on warning should notice. *)
      let budget_diags =
        match exact with
        | Some exact when not (Analysis.Exact.complete exact) ->
          [ Diagnostic.make c ~rule:"bdd-budget" ~severity:Diagnostic.Warning
              (Printf.sprintf
                 "exact BDD analysis incomplete: %d of %d faults unclassified \
                  (node budget %d)"
                 (Analysis.Exact.unknown_count exact)
                 (Analysis.Exact.universe_size exact)
                 (Analysis.Exact.node_budget exact)) ]
        | Some _ | None -> []
      in
      (untestable, hard @ resistant @ budget_diags)
  in
  let untestable_diags =
    Array.to_list untestable
    |> List.map (fun (fault, reason) ->
           Diagnostic.make ~node:(F.site_node fault) c ~rule:"untestable-fault"
             ~severity:Diagnostic.Warning
             (Printf.sprintf "stuck-at fault %s is statically untestable (%s)"
                (F.to_string c fault)
                (Testability.reason_to_string reason)))
  in
  let diagnostics =
    List.sort Diagnostic.compare (structural @ untestable_diags @ hard_diags)
  in
  let errors, warnings, infos = Diagnostic.counts diagnostics in
  { circuit = c;
    diagnostics;
    untestable;
    universe_size = Array.length universe;
    errors;
    warnings;
    infos }

let untestable_faults report = Array.map fst report.untestable

let worst_severity report =
  if report.errors > 0 then Some Diagnostic.Error
  else if report.warnings > 0 then Some Diagnostic.Warning
  else if report.infos > 0 then Some Diagnostic.Info
  else None

let render_text report =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "lint: %s\n" (Format.asprintf "%a" N.pp_summary report.circuit);
  (match report.diagnostics with
  | [] -> ()
  | diagnostics ->
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Diagnostic.render_table diagnostics));
  addf "\n%d error%s, %d warning%s, %d info\n" report.errors
    (if report.errors = 1 then "" else "s")
    report.warnings
    (if report.warnings = 1 then "" else "s")
    report.infos;
  addf "untestable faults: %d of %d (universe correctable to %d)\n"
    (Array.length report.untestable)
    report.universe_size
    (report.universe_size - Array.length report.untestable);
  Buffer.contents buf

let fault_json (c : N.t) (fault, reason) =
  let site_fields =
    match fault.F.site with
    | F.Stem id -> [ ("site", Report.Json.String "stem"); ("node", Report.Json.Int id) ]
    | F.Branch { gate; pin } ->
      [ ("site", Report.Json.String "branch");
        ("node", Report.Json.Int gate);
        ("pin", Report.Json.Int pin) ]
  in
  Report.Json.Obj
    ([ ("fault", Report.Json.String (F.to_string c fault)) ]
    @ site_fields
    @ [ ("polarity", Report.Json.Int (if F.polarity_bit fault.F.polarity then 1 else 0));
        ("reason", Report.Json.String (Testability.reason_to_string reason)) ])

let render_json report =
  let c = report.circuit in
  Report.Json.Obj
    [ ("circuit",
       Report.Json.Obj
         [ ("name", Report.Json.String c.N.name);
           ("inputs", Report.Json.Int (N.num_inputs c));
           ("outputs", Report.Json.Int (N.num_outputs c));
           ("gates", Report.Json.Int (N.num_gates c));
           ("depth", Report.Json.Int (N.depth c)) ]);
      ("diagnostics",
       Report.Json.List (List.map Diagnostic.to_json report.diagnostics));
      ("untestable",
       Report.Json.List
         (Array.to_list report.untestable |> List.map (fault_json c)));
      ("summary",
       Report.Json.Obj
         [ ("errors", Report.Json.Int report.errors);
           ("warnings", Report.Json.Int report.warnings);
           ("infos", Report.Json.Int report.infos);
           ("universe", Report.Json.Int report.universe_size);
           ("untestable", Report.Json.Int (Array.length report.untestable));
           ("corrected_universe",
            Report.Json.Int
              (report.universe_size - Array.length report.untestable)) ]) ]
