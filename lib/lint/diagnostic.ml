type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  node : int option;
  node_name : string;
  message : string;
}

let make ?node (c : Circuit.Netlist.t) ~rule ~severity message =
  let node_name =
    match node with
    | Some id -> c.Circuit.Netlist.node_names.(id)
    | None -> ""
  in
  { rule; severity; node; node_name; message }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = Option.compare Int.compare a.node b.node in
      if c <> 0 then c else String.compare a.message b.message

let counts diagnostics =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) diagnostics

let render_table = function
  | [] -> ""
  | diagnostics ->
    let rows =
      List.map
        (fun d -> [ severity_to_string d.severity; d.rule; d.node_name; d.message ])
        diagnostics
    in
    Report.Table.render
      ~aligns:[ Report.Table.Left; Report.Table.Left; Report.Table.Left;
                Report.Table.Left ]
      ~headers:[ "severity"; "rule"; "node"; "message" ]
      rows

let to_json d =
  Report.Json.Obj
    [ ("severity", Report.Json.String (severity_to_string d.severity));
      ("rule", Report.Json.String d.rule);
      ("node",
       match d.node with
       | Some id -> Report.Json.Int id
       | None -> Report.Json.Null);
      ("name",
       if d.node_name = "" then Report.Json.Null
       else Report.Json.String d.node_name);
      ("message", Report.Json.String d.message) ]
