module N = Circuit.Netlist

let reachable_to_output (c : N.t) =
  let n = N.num_nodes c in
  let reach = Array.make n false in
  Array.iter (fun o -> reach.(o) <- true) c.N.outputs;
  (* Reverse topological order: a node reaches an output when any of
     its fanouts does. *)
  for i = Array.length c.N.topo_order - 1 downto 0 do
    let id = c.N.topo_order.(i) in
    if not reach.(id) then
      reach.(id) <- Array.exists (fun g -> reach.(g)) c.N.fanouts.(id)
  done;
  reach

let reconvergent_stems (c : N.t) ?(budget_bits = 64_000_000) () =
  let n = N.num_nodes c in
  let stems =
    Array.to_list c.N.topo_order
    |> List.filter (fun id -> Array.length c.N.fanouts.(id) > 1)
    |> Array.of_list
  in
  let nstems = Array.length stems in
  if nstems = 0 then Some []
  else if n * nstems > budget_bits then None
  else begin
    let stem_index = Hashtbl.create nstems in
    Array.iteri (fun i s -> Hashtbl.replace stem_index s i) stems;
    let words = (nstems + 62) / 63 in
    (* cone.(id) = bitset of fanout stems in id's fanin cone. *)
    let cone = Array.make_matrix n words 0 in
    let reconverges = Array.make nstems false in
    Array.iter
      (fun id ->
        let mine = cone.(id) in
        let fanins = c.N.fanins.(id) in
        (* A stem present in two different pin cones reconverges here. *)
        Array.iteri
          (fun pin src ->
            let src_cone = cone.(src) in
            if pin > 0 then
              for w = 0 to words - 1 do
                let overlap = mine.(w) land src_cone.(w) in
                if overlap <> 0 then
                  for b = 0 to 62 do
                    if overlap land (1 lsl b) <> 0 then
                      reconverges.((w * 63) + b) <- true
                  done
              done;
            for w = 0 to words - 1 do
              mine.(w) <- mine.(w) lor src_cone.(w)
            done;
            (* The driver itself, if a fanout stem, enters the cone at
               its branch — a duplicated fanin thus reconverges too. *)
            match Hashtbl.find_opt stem_index src with
            | Some i ->
              let w = i / 63 and b = i mod 63 in
              if pin > 0 && mine.(w) land (1 lsl b) <> 0 then
                reconverges.(i) <- true;
              mine.(w) <- mine.(w) lor (1 lsl b)
            | None -> ())
          fanins)
      c.N.topo_order;
    Some
      (Array.to_list stems
      |> List.filteri (fun i _ -> reconverges.(i))
      |> List.sort compare)
  end

let diagnostics ?(fanout_threshold = 16) (c : N.t) ternary =
  let n = N.num_nodes c in
  let diag = ref [] in
  let add ?node ~rule ~severity message =
    diag := Diagnostic.make ?node c ~rule ~severity message :: !diag
  in
  let name id = c.N.node_names.(id) in
  (* Constant nets: logic nodes whose stem is provably fixed.  Nodes
     that are constants by construction (Const0/Const1 kinds) are
     intentional and skipped. *)
  for id = 0 to n - 1 do
    match c.N.kinds.(id) with
    | Circuit.Gate.Const0 | Circuit.Gate.Const1 -> ()
    | Circuit.Gate.Input | Circuit.Gate.Buf | Circuit.Gate.Not
    | Circuit.Gate.And | Circuit.Gate.Nand | Circuit.Gate.Or
    | Circuit.Gate.Nor | Circuit.Gate.Xor | Circuit.Gate.Xnor ->
      (match Ternary.const_value ternary id with
      | Some bit ->
        let value = if bit then 1 else 0 in
        if N.is_output c id then
          add ~node:id ~rule:"constant-output" ~severity:Diagnostic.Error
            (Printf.sprintf
               "primary output %s is provably stuck at %d for every input vector"
               (name id) value)
        else
          add ~node:id ~rule:"constant-net" ~severity:Diagnostic.Warning
            (Printf.sprintf "net %s is provably stuck at %d (constant propagation)"
               (name id) value)
      | None -> ())
  done;
  (* Dead logic and floating inputs, off one reachability pass. *)
  let reach = reachable_to_output c in
  for id = 0 to n - 1 do
    if not reach.(id) then
      match c.N.kinds.(id) with
      | Circuit.Gate.Input ->
        if Array.length c.N.fanouts.(id) = 0 then
          add ~node:id ~rule:"floating-input" ~severity:Diagnostic.Warning
            (Printf.sprintf "primary input %s drives nothing" (name id))
        else
          add ~node:id ~rule:"floating-input" ~severity:Diagnostic.Warning
            (Printf.sprintf "primary input %s feeds only dead logic" (name id))
      | Circuit.Gate.Const0 | Circuit.Gate.Const1 | Circuit.Gate.Buf
      | Circuit.Gate.Not | Circuit.Gate.And | Circuit.Gate.Nand
      | Circuit.Gate.Or | Circuit.Gate.Nor | Circuit.Gate.Xor
      | Circuit.Gate.Xnor ->
        add ~node:id ~rule:"dead-logic" ~severity:Diagnostic.Warning
          (Printf.sprintf "%s reaches no primary output" (name id))
  done;
  (* Duplicated fanins. *)
  for id = 0 to n - 1 do
    let fanins = c.N.fanins.(id) in
    let seen = Hashtbl.create 4 in
    Array.iteri
      (fun pin src ->
        match Hashtbl.find_opt seen src with
        | Some first_pin ->
          add ~node:id ~rule:"duplicate-fanin" ~severity:Diagnostic.Warning
            (Printf.sprintf "gate %s reads %s on both pin %d and pin %d"
               (name id) (name src) first_pin pin)
        | None -> Hashtbl.add seen src pin)
      fanins
  done;
  (* Fanout extremes plus a circuit-level statistics line. *)
  let max_fanout = ref 0 and max_node = ref (-1) in
  let fanout_sum = ref 0 and stems = ref 0 in
  for id = 0 to n - 1 do
    let f = Array.length c.N.fanouts.(id) in
    fanout_sum := !fanout_sum + f;
    if f > 1 then incr stems;
    if f > !max_fanout then begin
      max_fanout := f;
      max_node := id
    end;
    if f > fanout_threshold then
      add ~node:id ~rule:"excessive-fanout" ~severity:Diagnostic.Warning
        (Printf.sprintf "%s drives %d gates (threshold %d)" (name id) f
           fanout_threshold)
  done;
  if n > 0 then
    add ~rule:"fanout-stats" ~severity:Diagnostic.Info
      (Printf.sprintf
         "max fanout %d%s; %d stems with fanout > 1; mean fanout %.2f"
         !max_fanout
         (if !max_node >= 0 && !max_fanout > 0 then
            Printf.sprintf " at %s" (name !max_node)
          else "")
         !stems
         (float_of_int !fanout_sum /. float_of_int n));
  (match reconvergent_stems c () with
  | Some [] when !stems = 0 -> ()
  | Some recon ->
    add ~rule:"reconvergence" ~severity:Diagnostic.Info
      (Printf.sprintf "%d of %d fanout stems reconverge" (List.length recon)
         !stems)
  | None ->
    add ~rule:"reconvergence" ~severity:Diagnostic.Info
      "reconvergence analysis skipped (circuit above bitset budget)");
  List.rev !diag
