(** Lint diagnostics: one finding of one rule on one netlist.

    Every rule in the subsystem reports through this type so the CLI
    can render all findings uniformly (as an aligned table or as JSON)
    and gate its exit code on the worst severity present. *)

type severity =
  | Error    (** Almost certainly a design bug (e.g. a constant primary output). *)
  | Warning  (** Structural or testability defect worth fixing. *)
  | Info     (** Statistics and advisory findings. *)

type t = {
  rule : string;          (** Rule identifier, kebab-case (e.g. ["dead-logic"]). *)
  severity : severity;
  node : int option;      (** Offending node id, when the finding is local. *)
  node_name : string;     (** Name of [node]; [""] for circuit-level findings. *)
  message : string;
}

val make :
  ?node:int -> Circuit.Netlist.t -> rule:string -> severity:severity ->
  string -> t
(** Build a diagnostic, resolving [node]'s name from the netlist. *)

val severity_to_string : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val severity_rank : severity -> int
(** Error = 0, Warning = 1, Info = 2 — ascending = decreasing urgency. *)

val compare : t -> t -> int
(** Severity first, then rule id, then node id — the rendering order. *)

val counts : t list -> int * int * int
(** (errors, warnings, infos). *)

val render_table : t list -> string
(** Aligned text table via {!Report.Table}; empty string for no
    diagnostics. *)

val to_json : t -> Report.Json.t
