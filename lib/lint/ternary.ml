type value = Const of bool | Lit of { src : int; inv : bool }

type t = value array

(* The freed line of [analyze_with_cut]: a literal equal to no net. *)
let free_src = -1

let negate = function
  | Const b -> Const (not b)
  | Lit { src; inv } -> Lit { src; inv = not inv }

(* AND-reduction of abstract values; [None] = not reducible.  The dual
   gates go through De Morgan below so the absorption logic lives in one
   place. *)
let and_fold values =
  let exception Annihilated in
  try
    (* Keep one entry per literal source; a source seen with both
       inversions is x AND (NOT x) = 0. *)
    let literals = Hashtbl.create 4 in
    let order = ref [] in
    Array.iter
      (fun v ->
        match v with
        | Const false -> raise Annihilated
        | Const true -> ()
        | Lit { src; inv } ->
          (match Hashtbl.find_opt literals src with
          | None ->
            Hashtbl.add literals src inv;
            order := (src, inv) :: !order
          | Some prior -> if prior <> inv then raise Annihilated))
      values;
    match !order with
    | [] -> Some (Const true)
    | [ (src, inv) ] -> Some (Lit { src; inv })
    | _ :: _ :: _ -> None
  with Annihilated -> Some (Const false)

let or_fold values =
  Option.map negate (and_fold (Array.map negate values))

(* XOR-reduction: each literal is src XOR inv, so pairs of equal
   sources cancel and the inversions fold into the constant bit. *)
let xor_fold values =
  let bit = ref false in
  let parity = Hashtbl.create 4 in
  let order = ref [] in
  Array.iter
    (fun v ->
      match v with
      | Const b -> if b then bit := not !bit
      | Lit { src; inv } ->
        if inv then bit := not !bit;
        (match Hashtbl.find_opt parity src with
        | None ->
          Hashtbl.add parity src true;
          order := src :: !order
        | Some odd -> Hashtbl.replace parity src (not odd)))
    values;
  let odd_srcs =
    List.rev !order |> List.filter (fun src -> Hashtbl.find parity src)
  in
  match odd_srcs with
  | [] -> Some (Const !bit)
  | [ src ] -> Some (Lit { src; inv = !bit })
  | _ :: _ :: _ -> None

let analyze_internal (c : Circuit.Netlist.t) ~cut =
  let n = Circuit.Netlist.num_nodes c in
  let values = Array.make n (Const false) in
  let cut_stem, cut_gate, cut_pin =
    match cut with
    | None -> (-1, -1, -1)
    | Some (Faults.Fault.Stem s) -> (s, -1, -1)
    | Some (Faults.Fault.Branch { gate; pin }) -> (-1, gate, pin)
  in
  Array.iter
    (fun id ->
      let pin_val pin =
        if id = cut_gate && pin = cut_pin then
          Lit { src = free_src; inv = false }
        else values.(c.Circuit.Netlist.fanins.(id).(pin))
      in
      let all_pins () =
        Array.init (Array.length c.Circuit.Netlist.fanins.(id)) pin_val
      in
      let reduced =
        if id = cut_stem then None
        else
          match c.Circuit.Netlist.kinds.(id) with
          | Circuit.Gate.Input -> None
          | Circuit.Gate.Const0 -> Some (Const false)
          | Circuit.Gate.Const1 -> Some (Const true)
          | Circuit.Gate.Buf -> Some (pin_val 0)
          | Circuit.Gate.Not -> Some (negate (pin_val 0))
          | Circuit.Gate.And -> and_fold (all_pins ())
          | Circuit.Gate.Nand -> Option.map negate (and_fold (all_pins ()))
          | Circuit.Gate.Or -> or_fold (all_pins ())
          | Circuit.Gate.Nor -> Option.map negate (or_fold (all_pins ()))
          | Circuit.Gate.Xor -> xor_fold (all_pins ())
          | Circuit.Gate.Xnor -> Option.map negate (xor_fold (all_pins ()))
      in
      values.(id) <-
        (match reduced with
        | Some v -> v
        | None -> Lit { src = id; inv = false }))
    c.Circuit.Netlist.topo_order;
  values

let analyze c = analyze_internal c ~cut:None

let analyze_with_cut c site = analyze_internal c ~cut:(Some site)

let value t id = t.(id)

let const_value t id = match t.(id) with Const b -> Some b | Lit _ -> None

let pin_value (c : Circuit.Netlist.t) t ~gate ~pin =
  t.(c.Circuit.Netlist.fanins.(gate).(pin))
