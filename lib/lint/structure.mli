(** Structural lint rules over a netlist.

    Pure graph/valuation checks, no fault machinery: constant nets (and
    the worse case of constant primary outputs), logic that reaches no
    output, floating inputs, duplicated fanins, fanout extremes and
    reconvergence statistics.  {!Testability} builds on the same
    reachability pass for its unobservability proofs. *)

val reachable_to_output : Circuit.Netlist.t -> bool array
(** Per node: does some primary output lie in its fanout cone?  (An
    output node is trivially reachable to itself.) *)

val reconvergent_stems : Circuit.Netlist.t -> ?budget_bits:int -> unit -> int list option
(** Fanout stems (fanout > 1) some two branches of which meet again at
    a later gate — the structures that break fanout-free-region
    arguments and make fault effects mask each other.  Computed with
    per-node stem bitsets; [None] when [nodes * stems] exceeds
    [budget_bits] (default 64M) and the analysis is skipped. *)

val diagnostics :
  ?fanout_threshold:int ->
  Circuit.Netlist.t -> Ternary.t -> Diagnostic.t list
(** Run every structural rule.  [fanout_threshold] (default 16) bounds
    the [excessive-fanout] rule.  Rules emitted: [constant-net]
    (Warning), [constant-output] (Error), [dead-logic] (Warning),
    [floating-input] (Warning), [duplicate-fanin] (Warning),
    [excessive-fanout] (Warning), [fanout-stats] (Info),
    [reconvergence] (Info). *)
