(** Lint driver: run every rule family over a netlist and package the
    findings for the CLI, the test suite and the experiment pipeline.

    Cyclic netlists never reach this layer — {!Circuit.Netlist.Builder}
    and the .bench parser reject them at construction time, reporting
    the full loop path through {!Circuit.Netlist.Cycle}. *)

type config = {
  fanout_threshold : int;   (** [excessive-fanout] bound (default 16). *)
  testability : bool;       (** Run the untestable-fault proofs (default true). *)
  crosscheck : bool;        (** Expand proofs through {!Faults.Collapse}
                                equivalence classes (default true). *)
  hard_fault_count : int;   (** Max [hard-fault] findings (default 10). *)
  hard_fault_threshold : int;
      (** Minimum SCOAP difficulty for a [hard-fault] warning
          (default 100). *)
  learn_depth : int option;
      (** When [Some d], build the static analysis engine (dominators +
          implication learning at depth [d]) and enable the
          learned-implication and blocked-dominator untestability
          proofs.  Default [None]: the quadratic-ish learning sweep is
          opt-in ([lsiq lint --learn-depth], or the analyze command). *)
  exact_budget : int option;
      (** When [Some budget], run the {!Analysis.Exact} ROBDD pass
          under that node budget: complete redundancy identification
          (reason [Redundant]) wherever the budget holds, plus a
          [bdd-budget] warning when it does not.  Default [None] —
          BDDs can be exponential, so exactness is opt-in
          ([lsiq lint --exact]). *)
  resistant_threshold : float;
      (** Detection-probability bound below which
          {!Analysis.Detectability} flags a fault as
          random-pattern-resistant (default 0.01 — an expected
          hundred-plus uniform patterns per fault). *)
  resistant_count : int;
      (** Max [resistant-fault] findings (default 10); [0] disables
          the rule. *)
}

val default_config : config

type report = {
  circuit : Circuit.Netlist.t;
  diagnostics : Diagnostic.t list;  (** Sorted: severity, rule, node. *)
  untestable : (Faults.Fault.t * Testability.reason) array;
      (** Statically proven untestable faults of {!Faults.Universe.all},
          in universe order. *)
  universe_size : int;              (** [|Universe.all|] for context. *)
  errors : int;
  warnings : int;
  infos : int;
}

val run : ?config:config -> Circuit.Netlist.t -> report

val untestable_faults : report -> Faults.Fault.t array
(** The proven-untestable faults alone — ready for
    {!Faults.Universe.exclude_untestable}. *)

val render_text : report -> string
(** Human-readable report: circuit summary, findings table, totals. *)

val render_json : report -> Report.Json.t
(** Machine-readable report with the same content plus fault details. *)

val worst_severity : report -> Diagnostic.severity option
(** Most urgent severity present, [None] for a clean report. *)
