(** Static untestability proofs for stuck-at faults.

    A stuck-at fault is {e untestable} (redundant) when no input vector
    both excites it and propagates its effect to a primary output.
    Untestable faults inflate the fault universe [N] of the paper's
    coverage fraction [f = m/N] (Eq. 4): no test set can ever reach
    [f = 1] on a universe containing them, which biases the escape
    model [(1-f)^n] (Eq. 5) and every reject-rate figure and [n0] fit
    built on it.  This module proves faults untestable {e before}
    simulation so the universe can be corrected.

    Everything flagged is a {e proof}, not a heuristic:

    - {b Unexcitable}: the line is provably constant (by
      {!Ternary.analyze} on the intact circuit) at the stuck value, so
      the faulty machine is the fault-free machine.
    - {b Unobservable}: with the fault line cut ({!Ternary.analyze_with_cut}
      — every derived constant then holds regardless of the line's
      value, faulted or not), no difference can reach a primary output:
      a net can only differ between the two machines if some fanin
      differs and the net is not provably constant under the cut.
      The cut is what keeps the proof sound under reconvergent fanout —
      a constant whose derivation passes through the fault site is
      never used to block the fault's own propagation.
    - {b Equivalent}: the fault shares a {!Faults.Collapse} equivalence
      class (identical detection sets by construction) with a fault
      proved untestable above.

    With an [analysis] engine supplied, two stronger proofs join in:

    - {b Unexcitable} (learned): the implication closure proves the
      activation value infeasible on the fault-free line — backward
      justification and contrapositive learning find constants plain
      forward ternary propagation cannot.
    - {b Unobservable} (blocked dominators): some absolute dominator of
      the site has a side input held at its controlling value by a
      learned constant whose node lies {e outside} the fault's fanout
      cone.  Out-of-cone constants hold identically in the faulty
      machine, so the dominator's output never differs and no
      propagation path survives (every path crosses every dominator).

    The analysis is deliberately one-sided: a [None] verdict means
    "not provably untestable", never "testable".  The test suite
    cross-checks soundness by exhaustive simulation on small
    circuits. *)

type reason = Unexcitable | Unobservable | Equivalent | Redundant

val reason_to_string : reason -> string
(** ["unexcitable"], ["unobservable"], ["equivalent"] or
    ["redundant"]. *)

val analyze :
  ?classes:Faults.Collapse.t ->
  ?analysis:Analysis.Engine.t ->
  ?exact:Analysis.Exact.t ->
  Circuit.Netlist.t -> Faults.Fault.t array -> reason option array
(** Per-fault verdicts, indexed like the universe.  When [classes]
    (equivalence classes over the {e same} universe) is supplied, every
    class containing a proven-untestable fault has its remaining
    members flagged [Equivalent].  [analysis] (built over the {e same}
    netlist) enables the learned-implication and blocked-dominator
    proofs described above.  [exact] (an {!Analysis.Exact} bundle over
    the same netlist) adds the [Redundant] verdict: the per-fault
    Boolean-difference BDD is the constant-zero function, a complete
    proof wherever the node budget held.  The structural proofs run
    first so their more descriptive reasons win on overlap. *)

val untestable :
  ?classes:Faults.Collapse.t ->
  ?analysis:Analysis.Engine.t ->
  ?exact:Analysis.Exact.t ->
  Circuit.Netlist.t -> Faults.Fault.t array ->
  (Faults.Fault.t * reason) array
(** The flagged subset of the universe, in universe order. *)

val untestable_faults :
  ?classes:Faults.Collapse.t ->
  ?analysis:Analysis.Engine.t ->
  ?exact:Analysis.Exact.t ->
  Circuit.Netlist.t -> Faults.Fault.t array -> Faults.Fault.t array
(** {!untestable} without the reasons — the argument
    {!Faults.Universe.exclude_untestable} expects. *)
