type chip = { chip_id : int; fault_indices : int array }

type t = { chips : chip array; universe_size : int }

let record_lot_stats t =
  Obs.Trace.add_int "chips" (Array.length t.chips);
  let defective =
    Array.fold_left
      (fun acc chip -> if Array.length chip.fault_indices > 0 then acc + 1 else acc)
      0 t.chips
  in
  Obs.Trace.add_int "defective" defective;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr ~by:(float_of_int (Array.length t.chips)) "fab.lot.chips";
    Obs.Metrics.incr ~by:(float_of_int defective) "fab.lot.defective"
  end;
  t

let manufacture defect rng ~count =
  if count <= 0 then invalid_arg "Lot.manufacture: nonpositive lot size";
  Obs.Trace.with_span "fab.lot.manufacture" @@ fun () ->
  let progress = Obs.Progress.start ~label:"fab.lot" ~total:count () in
  let chips =
    Array.init count (fun chip_id ->
        let chip = { chip_id; fault_indices = Defect.sample_chip defect rng } in
        Obs.Progress.step progress 1;
        chip)
  in
  Obs.Progress.finish progress;
  record_lot_stats { chips; universe_size = Defect.universe_size defect }

let manufacture_ideal ~yield_ ~n0 ~universe_size rng ~count =
  if count <= 0 then invalid_arg "Lot.manufacture_ideal: nonpositive lot size";
  if yield_ < 0.0 || yield_ > 1.0 then
    invalid_arg "Lot.manufacture_ideal: yield outside [0,1]";
  if n0 < 1.0 then invalid_arg "Lot.manufacture_ideal: n0 must be >= 1";
  if universe_size <= 0 then invalid_arg "Lot.manufacture_ideal: empty universe";
  Obs.Trace.with_span "fab.lot.manufacture_ideal" @@ fun () ->
  let progress = Obs.Progress.start ~label:"fab.lot" ~total:count () in
  let chips =
    Array.init count (fun chip_id ->
        let fault_indices =
          if Stats.Rng.uniform rng < yield_ then [||]
          else begin
            let n = min universe_size (1 + Stats.Rng.poisson rng (n0 -. 1.0)) in
            let faults = Stats.Rng.sample_without_replacement rng ~k:n ~n:universe_size in
            Array.sort compare faults;
            faults
          end
        in
        Obs.Progress.step progress 1;
        { chip_id; fault_indices })
  in
  Obs.Progress.finish progress;
  record_lot_stats { chips; universe_size }

let size t = Array.length t.chips

let good_count t =
  Array.fold_left
    (fun acc chip -> if Array.length chip.fault_indices = 0 then acc + 1 else acc)
    0 t.chips

let empirical_yield t = float_of_int (good_count t) /. float_of_int (size t)

let defective_fault_counts t =
  Array.to_list t.chips
  |> List.filter_map (fun chip ->
         let n = Array.length chip.fault_indices in
         if n > 0 then Some n else None)
  |> Array.of_list

let mean_faults_on_defective t =
  let counts = defective_fault_counts t in
  if Array.length counts = 0 then
    invalid_arg "Lot.mean_faults_on_defective: no defective chips";
  Stats.Summary.mean_int counts

let mean_faults_per_chip t =
  let total =
    Array.fold_left (fun acc chip -> acc + Array.length chip.fault_indices) 0 t.chips
  in
  float_of_int total /. float_of_int (size t)

let fault_count_histogram t ~max_faults =
  let h = Array.make (max_faults + 1) 0 in
  Array.iter
    (fun chip ->
      let n = min max_faults (Array.length chip.fault_indices) in
      h.(n) <- h.(n) + 1)
    t.chips;
  h
