type t = {
  patterns : bool array array;
  profile : Fsim.Coverage.profile;
  n_detect : Fsim.Coverage.counts option;
}

let make patterns profile =
  if Array.length patterns <> profile.Fsim.Coverage.pattern_count then
    invalid_arg "Pattern_set.make: profile does not match pattern count";
  { patterns; profile; n_detect = None }

let of_simulation ?engine c faults patterns =
  { patterns;
    profile = Fsim.Coverage.profile ?engine c faults patterns;
    n_detect = None }

let pattern_count t = Array.length t.patterns

let coverage_after t k = Fsim.Coverage.coverage_after t.profile k

let final_coverage t = Fsim.Coverage.final_coverage t.profile

let grade_n_detect ?engine ~n c faults t =
  if Array.length faults
     <> Array.length t.profile.Fsim.Coverage.first_detection
  then
    invalid_arg
      "Pattern_set.grade_n_detect: fault universe does not match profile";
  { t with
    n_detect = Some (Fsim.Coverage.detection_counts ?engine ~n c faults t.patterns) }

let n_detect t = t.n_detect

let n_detect_coverage_after t k =
  Option.map
    (fun cs -> Fsim.Coverage.n_detect_coverage_after cs k)
    t.n_detect

let n_detect_final_coverage t =
  Option.map Fsim.Coverage.n_detect_coverage t.n_detect

let first_fail t chip_faults =
  Array.fold_left
    (fun acc fault_index ->
      match t.profile.Fsim.Coverage.first_detection.(fault_index) with
      | None -> acc
      | Some k ->
        (match acc with Some best when best <= k -> acc | Some _ | None -> Some k))
    None chip_faults
