(** The virtual wafer test system (the reproduction's Sentry 600).

    Runs an ordered test program against every chip of a manufactured
    lot, records the first failing pattern of each chip, and reduces
    the outcomes to the paper's Table-1 presentation: cumulative
    fraction of chips failed as a function of fault coverage.

    Two tester fidelities:
    - {!Table_lookup}: a chip fails at the earliest first-detection
      pattern of any of its faults (single-fault superposition — the
      assumption behind the paper's urn model).  O(1) per chip fault.
    - {!Exact_multifault}: the chip's complete fault set is injected
      simultaneously and simulated, so masking between coexisting
      faults is honoured.  The ablation bench compares the two. *)

type mode = Table_lookup | Exact_multifault

type outcome = {
  chip_id : int;
  fault_count : int;
  first_fail : int option;  (** Pattern index, [None] = passed. *)
}

type result = {
  outcomes : outcome array;
  pattern_count : int;
  lot_size : int;
}

val test_lot :
  ?mode:mode ->
  Circuit.Netlist.t ->
  Faults.Fault.t array ->
  Pattern_set.t ->
  Fab.Lot.t ->
  result
(** [test_lot c universe program lot]: the universe must be the one the
    lot's fault indices refer to and the program was simulated
    against.  Raises [Invalid_argument] on an empty lot — every
    fraction below divides by the lot size, and an empty lot would
    silently turn them all into NaN. *)

type lot_run = {
  tested : outcome array;  (** Prefix of the lot, length [dies_done]. *)
  dies_done : int;
  resumed_from : int;      (** 0 on a fresh run. *)
  completed : bool;
}

val test_lot_restart :
  ?mode:mode ->
  ?cancel:Robust.Cancel.t ->
  ?every:int ->
  ?resume:bool ->
  checkpoint:string ->
  Circuit.Netlist.t ->
  Faults.Fault.t array ->
  Pattern_set.t ->
  Fab.Lot.t ->
  (lot_run, string) Stdlib.result
(** {!test_lot} with a die-granular checkpoint: per-die outcomes are
    snapshotted crash-safely every [every] dies (default 64) and once
    more at exit, and [cancel] stops between dies with the tested
    prefix durable.  Dies are independent, so a resumed run is
    bit-identical to an uninterrupted one.  The ["tester.lot.segment"]
    failpoint fires after each periodic save — the crash-recovery smoke
    kills there.  [Error] carries an unreadable/mismatched-checkpoint
    message (the meta header fingerprints circuit, universe and lot
    sizes, total injected faults, pattern count and tester mode).
    Raises [Invalid_argument] as {!test_lot}, or when [every < 1]. *)

val result_of_run : Pattern_set.t -> Fab.Lot.t -> lot_run -> result
(** Package a {e completed} run for the reduction helpers below.
    Raises [Invalid_argument] when [completed] is false — partial
    outcomes would silently skew every fraction. *)

val failed_by : result -> int -> int
(** Chips failed within the first [k] patterns.  [first_fail] indices
    are 0-based, so this counts outcomes with [first_fail < k]: a chip
    with [first_fail = Some 0] fails the very first applied pattern
    and is already counted by [failed_by result 1], while
    [failed_by result 0] (no patterns applied yet) is always 0. *)

val fraction_failed_by : result -> int -> float
(** [failed_by] over the lot size (never NaN: lots are non-empty). *)

val apparent_yield : result -> float
(** Fraction of chips passing the whole program — what the line sees,
    as opposed to the true yield. *)

val test_escapes : result -> int
(** Defective chips that passed: the bad-chips-tested-good count whose
    expectation is the paper's Ybg (Eq. 6/7). *)

type row = {
  coverage : float;         (** Fault coverage at the checkpoint. *)
  patterns_applied : int;
  cumulative_failed : int;
  fraction_failed : float;
}

val rows_at_patterns : result -> Pattern_set.t -> checkpoints:int list -> row list
(** Table-1-style rows at explicit pattern counts. *)

val rows_at_coverages : result -> Pattern_set.t -> coverages:float list -> row list
(** Table-1-style rows at the first pattern reaching each coverage
    level (levels the program never reaches are skipped).  Checkpoint
    lookup binary-searches the monotone cumulative-coverage curve —
    O(log patterns) per level. *)

val rows_at_n_detect_coverages :
  result -> Pattern_set.t -> coverages:float list -> row list
(** {!rows_at_coverages} against the program's {e n-detect} coverage
    curve: each row sits at the first pattern count whose n-detect
    coverage reaches the target, and the row's [coverage] field
    reports the n-detect figure.  The same lot fails later on the
    n-detect axis than on the 1-detect axis — reaching coverage [f]
    n-times-over takes more patterns.  Raises [Invalid_argument] when
    the program carries no n-detect grading
    ({!Pattern_set.grade_n_detect}). *)
