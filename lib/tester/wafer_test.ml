type mode = Table_lookup | Exact_multifault

type outcome = { chip_id : int; fault_count : int; first_fail : int option }

type result = { outcomes : outcome array; pattern_count : int; lot_size : int }

let test_chip mode c universe program (chip : Fab.Lot.chip) =
  let fault_count = Array.length chip.Fab.Lot.fault_indices in
  let first_fail =
    if fault_count = 0 then None
    else
      match mode with
      | Table_lookup -> Pattern_set.first_fail program chip.Fab.Lot.fault_indices
      | Exact_multifault ->
        let faults = Array.map (fun i -> universe.(i)) chip.Fab.Lot.fault_indices in
        Fsim.Serial.first_fail_with_fault_set c faults program.Pattern_set.patterns
  in
  { chip_id = chip.Fab.Lot.chip_id; fault_count; first_fail }

let test_lot ?(mode = Table_lookup) c universe program (lot : Fab.Lot.t) =
  if lot.Fab.Lot.universe_size <> Array.length universe then
    invalid_arg "Wafer_test.test_lot: lot was manufactured against a different universe";
  if Array.length lot.Fab.Lot.chips = 0 then
    invalid_arg "Wafer_test.test_lot: empty lot (yield and fail fractions are undefined)";
  { outcomes = Array.map (test_chip mode c universe program) lot.Fab.Lot.chips;
    pattern_count = Pattern_set.pattern_count program;
    lot_size = Array.length lot.Fab.Lot.chips }

(* ---- checkpointed lot testing -------------------------------------- *)

type lot_run = {
  tested : outcome array;
  dies_done : int;
  resumed_from : int;
  completed : bool;
}

let lot_kind = "lot"
let segment_failpoint = "tester.lot.segment"

let mode_tag = function Table_lookup -> "table" | Exact_multifault -> "exact"

(* The lot itself is re-derived from its seed by the caller, so the
   meta header fingerprints it with sizes plus the total injected
   fault-instance count — cheap, and any seed/scale drift changes it. *)
let lot_meta_fields ~mode c universe program (lot : Fab.Lot.t) =
  let lot_faults =
    Array.fold_left
      (fun acc ch -> acc + Array.length ch.Fab.Lot.fault_indices)
      0 lot.Fab.Lot.chips
  in
  [ ("circuit", Report.Json.String c.Circuit.Netlist.name);
    ("universe", Report.Json.Int (Array.length universe));
    ("patterns", Report.Json.Int (Pattern_set.pattern_count program));
    ("lot_size", Report.Json.Int (Array.length lot.Fab.Lot.chips));
    ("lot_faults", Report.Json.Int lot_faults);
    ("mode", Report.Json.String (mode_tag mode)) ]

let outcome_to_json o =
  Report.Json.List
    [ Report.Json.Int o.chip_id;
      Report.Json.Int o.fault_count;
      Report.Json.Int (match o.first_fail with Some i -> i | None -> -1) ]

let outcome_of_json = function
  | Report.Json.List
      [ Report.Json.Int chip_id;
        Report.Json.Int fault_count;
        Report.Json.Int ff ] ->
    Ok { chip_id; fault_count; first_fail = (if ff >= 0 then Some ff else None) }
  | _ -> Error "checkpoint outcomes must be [chip_id; faults; first_fail] ints"

let lot_payload ~dies_done tested_rev =
  [ Report.Json.Obj
      [ ("dies_done", Report.Json.Int dies_done);
        ("outcomes", Report.Json.List (List.rev_map outcome_to_json tested_rev))
      ] ]

(* Returns (dies_done, outcomes newest-first). *)
let lot_restore payload =
  match payload with
  | [ Report.Json.Obj kvs ] ->
    (match
       (List.assoc_opt "dies_done" kvs, List.assoc_opt "outcomes" kvs)
     with
    | Some (Report.Json.Int dies_done), Some (Report.Json.List outs)
      when List.length outs = dies_done ->
      List.fold_left
        (fun acc o ->
          match acc with
          | Error _ as e -> e
          | Ok rev ->
            (match outcome_of_json o with
            | Ok o -> Ok (o :: rev)
            | Error _ as e -> e))
        (Ok []) outs
      |> Result.map (fun rev -> (dies_done, rev))
    | Some (Report.Json.Int _), Some (Report.Json.List _) ->
      Error "checkpoint outcome count does not match dies_done"
    | _ -> Error "checkpoint payload is missing dies_done/outcomes")
  | _ -> Error "checkpoint payload must be exactly one state line"

let test_lot_restart ?(mode = Table_lookup) ?(cancel = Robust.Cancel.none)
    ?(every = 64) ?(resume = false) ~checkpoint c universe program
    (lot : Fab.Lot.t) =
  if every < 1 then invalid_arg "Wafer_test.test_lot_restart: every must be >= 1";
  if lot.Fab.Lot.universe_size <> Array.length universe then
    invalid_arg
      "Wafer_test.test_lot_restart: lot was manufactured against a different \
       universe";
  if Array.length lot.Fab.Lot.chips = 0 then
    invalid_arg "Wafer_test.test_lot_restart: empty lot";
  let n = Array.length lot.Fab.Lot.chips in
  let fields = lot_meta_fields ~mode c universe program lot in
  let start =
    if not resume then Ok (0, [])
    else
      match Robust.Checkpoint.load ~path:checkpoint with
      | Error msg -> Error (Printf.sprintf "cannot resume: %s" msg)
      | Ok (file_meta, payload) ->
        (match
           Robust.Checkpoint.validate ~kind:lot_kind ~expect:fields file_meta
         with
        | Error _ as e -> e
        | Ok () -> lot_restore payload)
  in
  match start with
  | Error _ as e -> e
  | Ok (resumed_from, tested_rev0) ->
    Obs.Trace.with_span "tester.lot.restart" @@ fun () ->
    Obs.Trace.add_int "resumed_from" resumed_from;
    let tested_rev = ref tested_rev0 in
    let pos = ref resumed_from in
    let save () =
      Robust.Checkpoint.save ~path:checkpoint
        ~meta:(Robust.Checkpoint.meta ~kind:lot_kind ~fields)
        ~payload:(lot_payload ~dies_done:!pos !tested_rev)
    in
    if resumed_from = 0 then save ();
    let since = ref 0 in
    while !pos < n && not (Robust.Cancel.stop_requested cancel) do
      tested_rev :=
        test_chip mode c universe program lot.Fab.Lot.chips.(!pos) :: !tested_rev;
      incr pos;
      incr since;
      if !since >= every then begin
        since := 0;
        save ();
        (* The crash drill kills here: the first [pos] dies are durable. *)
        Robust.Inject.hit segment_failpoint
      end
    done;
    if !since > 0 then save ();
    Obs.Trace.add_int "dies_done" !pos;
    if Obs.Metrics.enabled () then
      Obs.Metrics.incr
        ~by:(float_of_int (!pos - resumed_from))
        "tester.lot.dies";
    Ok
      { tested = Array.of_list (List.rev !tested_rev);
        dies_done = !pos;
        resumed_from;
        completed = !pos >= n }

let result_of_run program (lot : Fab.Lot.t) run =
  if not run.completed then
    invalid_arg "Wafer_test.result_of_run: lot run is incomplete";
  { outcomes = run.tested;
    pattern_count = Pattern_set.pattern_count program;
    lot_size = Array.length lot.Fab.Lot.chips }

let failed_by result k =
  Array.fold_left
    (fun acc o ->
      match o.first_fail with Some i when i < k -> acc + 1 | Some _ | None -> acc)
    0 result.outcomes

let fraction_failed_by result k =
  float_of_int (failed_by result k) /. float_of_int result.lot_size

let apparent_yield result =
  let passed =
    Array.fold_left
      (fun acc o -> if o.first_fail = None then acc + 1 else acc)
      0 result.outcomes
  in
  float_of_int passed /. float_of_int result.lot_size

let test_escapes result =
  Array.fold_left
    (fun acc o ->
      if o.first_fail = None && o.fault_count > 0 then acc + 1 else acc)
    0 result.outcomes

type row = {
  coverage : float;
  patterns_applied : int;
  cumulative_failed : int;
  fraction_failed : float;
}

let row_at result program k =
  { coverage = Pattern_set.coverage_after program k;
    patterns_applied = k;
    cumulative_failed = failed_by result k;
    fraction_failed = fraction_failed_by result k }

let rows_at_patterns result program ~checkpoints =
  List.map (row_at result program) checkpoints

(* First k in [1, total] with coverage_at k >= target, None when even
   the full program falls short.  coverage_at must be monotone
   non-decreasing in k (cumulative coverage is), which makes the
   predicate [coverage_at k >= target] monotone and binary-searchable:
   O(log total) instead of the former linear scan. *)
let first_reaching ~total coverage_at target =
  if total < 1 || coverage_at total < target then None
  else begin
    (* Invariant: coverage_at !hi >= target; !lo is below target
       (lo = 0 stands for the empty prefix, coverage 0 <= any target
       reachable here). *)
    let lo = ref 0 and hi = ref total in
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if coverage_at mid >= target then hi := mid else lo := mid
    done;
    Some !hi
  end

let rows_at_coverages result program ~coverages =
  let total = result.pattern_count in
  List.filter_map
    (fun target ->
      Option.map (row_at result program)
        (first_reaching ~total
           (fun k -> Pattern_set.coverage_after program k)
           target))
    coverages

let rows_at_n_detect_coverages result program ~coverages =
  match Pattern_set.n_detect program with
  | None ->
    invalid_arg
      "Wafer_test.rows_at_n_detect_coverages: pattern set carries no \
       n-detect grading (run Pattern_set.grade_n_detect first)"
  | Some cs ->
    let coverage_at k = Fsim.Coverage.n_detect_coverage_after cs k in
    let total = result.pattern_count in
    List.filter_map
      (fun target ->
        Option.map
          (fun k -> { (row_at result program k) with coverage = coverage_at k })
          (first_reaching ~total coverage_at target))
      coverages
