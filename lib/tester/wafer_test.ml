type mode = Table_lookup | Exact_multifault

type outcome = { chip_id : int; fault_count : int; first_fail : int option }

type result = { outcomes : outcome array; pattern_count : int; lot_size : int }

let test_chip mode c universe program (chip : Fab.Lot.chip) =
  let fault_count = Array.length chip.Fab.Lot.fault_indices in
  let first_fail =
    if fault_count = 0 then None
    else
      match mode with
      | Table_lookup -> Pattern_set.first_fail program chip.Fab.Lot.fault_indices
      | Exact_multifault ->
        let faults = Array.map (fun i -> universe.(i)) chip.Fab.Lot.fault_indices in
        Fsim.Serial.first_fail_with_fault_set c faults program.Pattern_set.patterns
  in
  { chip_id = chip.Fab.Lot.chip_id; fault_count; first_fail }

let test_lot ?(mode = Table_lookup) c universe program (lot : Fab.Lot.t) =
  if lot.Fab.Lot.universe_size <> Array.length universe then
    invalid_arg "Wafer_test.test_lot: lot was manufactured against a different universe";
  if Array.length lot.Fab.Lot.chips = 0 then
    invalid_arg "Wafer_test.test_lot: empty lot (yield and fail fractions are undefined)";
  { outcomes = Array.map (test_chip mode c universe program) lot.Fab.Lot.chips;
    pattern_count = Pattern_set.pattern_count program;
    lot_size = Array.length lot.Fab.Lot.chips }

let failed_by result k =
  Array.fold_left
    (fun acc o ->
      match o.first_fail with Some i when i < k -> acc + 1 | Some _ | None -> acc)
    0 result.outcomes

let fraction_failed_by result k =
  float_of_int (failed_by result k) /. float_of_int result.lot_size

let apparent_yield result =
  let passed =
    Array.fold_left
      (fun acc o -> if o.first_fail = None then acc + 1 else acc)
      0 result.outcomes
  in
  float_of_int passed /. float_of_int result.lot_size

let test_escapes result =
  Array.fold_left
    (fun acc o ->
      if o.first_fail = None && o.fault_count > 0 then acc + 1 else acc)
    0 result.outcomes

type row = {
  coverage : float;
  patterns_applied : int;
  cumulative_failed : int;
  fraction_failed : float;
}

let row_at result program k =
  { coverage = Pattern_set.coverage_after program k;
    patterns_applied = k;
    cumulative_failed = failed_by result k;
    fraction_failed = fraction_failed_by result k }

let rows_at_patterns result program ~checkpoints =
  List.map (row_at result program) checkpoints

(* First k in [1, total] with coverage_at k >= target, None when even
   the full program falls short.  coverage_at must be monotone
   non-decreasing in k (cumulative coverage is), which makes the
   predicate [coverage_at k >= target] monotone and binary-searchable:
   O(log total) instead of the former linear scan. *)
let first_reaching ~total coverage_at target =
  if total < 1 || coverage_at total < target then None
  else begin
    (* Invariant: coverage_at !hi >= target; !lo is below target
       (lo = 0 stands for the empty prefix, coverage 0 <= any target
       reachable here). *)
    let lo = ref 0 and hi = ref total in
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if coverage_at mid >= target then hi := mid else lo := mid
    done;
    Some !hi
  end

let rows_at_coverages result program ~coverages =
  let total = result.pattern_count in
  List.filter_map
    (fun target ->
      Option.map (row_at result program)
        (first_reaching ~total
           (fun k -> Pattern_set.coverage_after program k)
           target))
    coverages

let rows_at_n_detect_coverages result program ~coverages =
  match Pattern_set.n_detect program with
  | None ->
    invalid_arg
      "Wafer_test.rows_at_n_detect_coverages: pattern set carries no \
       n-detect grading (run Pattern_set.grade_n_detect first)"
  | Some cs ->
    let coverage_at k = Fsim.Coverage.n_detect_coverage_after cs k in
    let total = result.pattern_count in
    List.filter_map
      (fun target ->
        Option.map
          (fun k -> { (row_at result program k) with coverage = coverage_at k })
          (first_reaching ~total coverage_at target))
      coverages
