(** An ordered production test program.

    Bundles the pattern sequence with its fault-simulation results: the
    cumulative coverage curve (what the paper's Section 5 reads off the
    fault simulator) and the per-fault first-detection index (what lets
    the virtual tester find a defective chip's first failing pattern in
    O(faults-on-chip) instead of re-simulating it).

    A program may additionally carry an n-detection grading
    ({!grade_n_detect}): the per-fault detection counts and the
    n-detect coverage curve, for rows and quality models that score
    patterns by detection multiplicity rather than first detection. *)

type t = {
  patterns : bool array array;
  profile : Fsim.Coverage.profile;
  n_detect : Fsim.Coverage.counts option;
      (** n-detection grading, when {!grade_n_detect} has run. *)
}

val make : bool array array -> Fsim.Coverage.profile -> t
(** The resulting program carries no n-detection grading. *)

val of_simulation :
  ?engine:Fsim.Coverage.engine ->
  Circuit.Netlist.t -> Faults.Fault.t array -> bool array array -> t
(** Fault-simulate the given ordered patterns and bundle the result
    (default engine {!Fsim.Coverage.Parallel}; all engines produce
    identical profiles). *)

val pattern_count : t -> int

val coverage_after : t -> int -> float
(** Cumulative fault coverage after the first [k] patterns. *)

val final_coverage : t -> float

val grade_n_detect :
  ?engine:Fsim.Coverage.engine ->
  n:int ->
  Circuit.Netlist.t -> Faults.Fault.t array -> t -> t
(** Re-grade the program with {!Fsim.Coverage.detection_counts} and
    attach the result.  [faults] must be the universe the profile was
    built from (checked by length).  Raises [Invalid_argument] on a
    universe mismatch or [n < 1]. *)

val n_detect : t -> Fsim.Coverage.counts option

val n_detect_coverage_after : t -> int -> float option
(** Cumulative n-detect coverage after the first [k] patterns —
    fraction of faults detected [n] times within them.  [None] when
    the program was never graded with {!grade_n_detect}. *)

val n_detect_final_coverage : t -> float option

val first_fail : t -> int array -> int option
(** [first_fail t chip_faults] is the index of the first pattern that
    detects any of the chip's faults — the pattern at which the tester
    rejects the chip — or [None] if the chip passes the whole program.
    Fault indices refer to the universe the profile was built from. *)
