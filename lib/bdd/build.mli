(** Netlist-to-ROBDD compilation and per-fault Boolean differences.

    [build] evaluates a {!Circuit.Netlist.t} symbolically, one
    {!Robdd.node} per netlist stem, in topological order.  Primary
    inputs map to BDD levels through a {e variable order}: position
    [order.(l)] is the primary-input index placed at level [l].  The
    default is {!dfs_order} — a depth-first walk from the primary
    outputs, which keeps cone-sharing inputs adjacent and is the
    classic cheap static order; {!sift_order} optionally improves it
    by sifting (here implemented as sifting-by-rebuild: each variable
    is tried at every position and the placement minimizing the shared
    output size is kept — quadratic in inputs, intended for bench
    ablations and small circuits, not the hot path).

    Fault machinery: {!detection_function} returns the Boolean
    difference [D_f = OR over outputs o of (good_o XOR faulty_o)],
    where the faulty machine re-evaluates only the fault site's fanout
    cone (a [Stem] fault overrides the node's function with a
    constant; a [Branch] fault re-evaluates just that gate with the
    faulted pin tied off, leaving sibling branches healthy).  By
    canonicity, [D_f = Robdd.zero] iff no input vector detects the
    fault — an exact untestability proof — and
    [Robdd.probability D_f] is the exact per-pattern detection
    probability under uniform random patterns.

    Everything here raises {!Robdd.Exceeded} when the manager's node
    budget runs out; the partially built state remains valid. *)

type t = {
  man : Robdd.t;
  circuit : Circuit.Netlist.t;
  order : int array;         (** [order.(level)] = primary-input position. *)
  level_of_pos : int array;  (** Inverse of [order]. *)
  stems : Robdd.node array;  (** Good-machine function of each node id. *)
}

val dfs_order : Circuit.Netlist.t -> int array
(** Depth-first from the primary outputs (in output order, fanins
    visited in pin order); inputs unreachable from any output are
    appended in declaration order.  A permutation of
    [0 .. num_inputs-1]. *)

val sift_order : ?budget:int -> Circuit.Netlist.t -> int array -> int array
(** One sifting pass over [init]: for each variable in turn, try every
    position in the current best order (rebuilding the circuit BDDs
    under the candidate order) and keep the cheapest by shared output
    node count.  Orders whose build exceeds [budget] are treated as
    infinitely bad, so the result never builds worse than [init] when
    [init] itself fits.  Returns [init] unchanged (copied) for
    circuits with more than 24 inputs — quadratic rebuilds are a bench
    ablation tool, not a production ordering engine. *)

val eval_netlist :
  Robdd.t -> Circuit.Netlist.t -> level_of_pos:int array -> Robdd.node array
(** Evaluate every stem of the netlist in an existing manager, the
    primary input at position [p] becoming the variable at
    [level_of_pos.(p)].  Building block for {!build} and for
    {!Equiv.check}'s shared-manager comparison.  May raise
    {!Robdd.Exceeded}. *)

val build : ?budget:int -> ?order:int array -> Circuit.Netlist.t -> t
(** Symbolic evaluation of every stem under [order] (default
    {!dfs_order}).  Raises {!Robdd.Exceeded} past the node budget and
    [Invalid_argument] if [order] is not a permutation of the input
    positions. *)

val output_nodes : t -> Robdd.node array
(** Per primary output, in output order. *)

val total_nodes : t -> int
(** Shared node count of the primary-output functions. *)

val detection_function : t -> Faults.Fault.t -> Robdd.node
(** The Boolean difference [D_f] described above.  May raise
    {!Robdd.Exceeded}. *)

val pattern_of_sat : t -> (int * bool) list -> bool array
(** Expand a satisfying path ({!Robdd.any_sat}) into a full input
    pattern in primary-input position order; don't-care positions
    default to 0. *)
