module Netlist = Circuit.Netlist
module Gate = Circuit.Gate

type t = {
  man : Robdd.t;
  circuit : Netlist.t;
  order : int array;
  level_of_pos : int array;
  stems : Robdd.node array;
}

(* Primary-input position of each node id, -1 on non-inputs. *)
let input_positions (c : Netlist.t) =
  let pos = Array.make (Netlist.num_nodes c) (-1) in
  Array.iteri (fun p id -> pos.(id) <- p) c.inputs;
  pos

let dfs_order (c : Netlist.t) =
  let pos = input_positions c in
  let visited = Array.make (Netlist.num_nodes c) false in
  let acc = ref [] in
  let rec visit id =
    if not visited.(id) then begin
      visited.(id) <- true;
      Array.iter visit c.fanins.(id);
      if pos.(id) >= 0 then acc := pos.(id) :: !acc
    end
  in
  Array.iter visit c.outputs;
  Array.iter (fun id -> if not visited.(id) then acc := pos.(id) :: !acc) c.inputs;
  Array.of_list (List.rev !acc)

let check_order (c : Netlist.t) order =
  let k = Netlist.num_inputs c in
  if Array.length order <> k then
    invalid_arg "Bdd.Build: order length mismatch";
  let seen = Array.make k false in
  Array.iter
    (fun p ->
      if p < 0 || p >= k || seen.(p) then
        invalid_arg "Bdd.Build: order is not a permutation";
      seen.(p) <- true)
    order

let eval_gate man kind (fns : Robdd.node array) =
  let fold f init = Array.fold_left (f man) init fns in
  match (kind : Gate.kind) with
  | Input -> invalid_arg "Bdd.Build: Input has no logic function"
  | Const0 -> Robdd.zero
  | Const1 -> Robdd.one
  | Buf -> fns.(0)
  | Not -> Robdd.not_ man fns.(0)
  | And -> fold Robdd.and_ Robdd.one
  | Nand -> Robdd.not_ man (fold Robdd.and_ Robdd.one)
  | Or -> fold Robdd.or_ Robdd.zero
  | Nor -> Robdd.not_ man (fold Robdd.or_ Robdd.zero)
  | Xor -> fold Robdd.xor Robdd.zero
  | Xnor -> Robdd.not_ man (fold Robdd.xor Robdd.zero)

(* Shared with Equiv: evaluate every stem of [c] in [man], primary
   input at position [p] becoming the variable at [level_of_pos.(p)]. *)
let eval_netlist man (c : Netlist.t) ~level_of_pos =
  let pos = input_positions c in
  let stems = Array.make (Netlist.num_nodes c) Robdd.zero in
  Array.iter
    (fun id ->
      stems.(id) <-
        (match c.kinds.(id) with
        | Gate.Input -> Robdd.var man level_of_pos.(pos.(id))
        | k -> eval_gate man k (Array.map (fun s -> stems.(s)) c.fanins.(id))))
    c.topo_order;
  stems

let build ?(budget = Robdd.default_budget) ?order (c : Netlist.t) =
  let order = match order with Some o -> o | None -> dfs_order c in
  check_order c order;
  let k = Netlist.num_inputs c in
  let level_of_pos = Array.make k 0 in
  Array.iteri (fun lvl p -> level_of_pos.(p) <- lvl) order;
  let man = Robdd.create ~budget ~num_vars:k () in
  let stems = eval_netlist man c ~level_of_pos in
  { man; circuit = c; order; level_of_pos; stems }

let output_nodes t = Array.map (fun o -> t.stems.(o)) t.circuit.Netlist.outputs

let total_nodes t =
  Robdd.shared_count t.man (Array.to_list (output_nodes t))

let sift_order ?(budget = Robdd.default_budget) (c : Netlist.t) init =
  check_order c init;
  let k = Array.length init in
  if k > 24 then Array.copy init
  else begin
    let cost order =
      match build ~budget ~order c with
      | b -> total_nodes b
      | exception Robdd.Exceeded -> max_int
    in
    let move order from_ to_ =
      let o = Array.to_list (Array.copy order) in
      let v = List.nth o from_ in
      let rest = List.filteri (fun i _ -> i <> from_) o in
      let rec insert i = function
        | l when i = to_ -> v :: l
        | [] -> [ v ]
        | x :: l -> x :: insert (i + 1) l
      in
      Array.of_list (insert 0 rest)
    in
    let best = ref (Array.copy init) in
    let best_cost = ref (cost !best) in
    Array.iter
      (fun p ->
        (* Current index of variable [p] in the best order so far. *)
        let from_ = ref 0 in
        Array.iteri (fun i q -> if q = p then from_ := i) !best;
        for to_ = 0 to k - 1 do
          if to_ <> !from_ then begin
            let candidate = move !best !from_ to_ in
            let c' = cost candidate in
            if c' < !best_cost then begin
              best := candidate;
              best_cost := c';
              from_ := to_
            end
          end
        done)
      init;
    !best
  end

let fault_value polarity =
  if Faults.Fault.polarity_bit polarity then Robdd.one else Robdd.zero

let detection_function t (fault : Faults.Fault.t) =
  let c = t.circuit in
  let n = Netlist.num_nodes c in
  let faulty = Array.copy t.stems in
  (* Override the fault site, then re-evaluate only its fanout cone. *)
  let start =
    match fault.site with
    | Faults.Fault.Stem s ->
      faulty.(s) <- fault_value fault.polarity;
      s
    | Faults.Fault.Branch { gate; pin } ->
      let fns =
        Array.mapi
          (fun i src ->
            if i = pin then fault_value fault.polarity else t.stems.(src))
          c.fanins.(gate)
      in
      faulty.(gate) <- eval_gate t.man c.kinds.(gate) fns;
      gate
  in
  let in_cone = Array.make n false in
  in_cone.(start) <- true;
  Array.iter
    (fun id ->
      if
        id <> start
        && Array.exists (fun s -> in_cone.(s)) c.fanins.(id)
      then begin
        in_cone.(id) <- true;
        faulty.(id) <-
          eval_gate t.man c.kinds.(id)
            (Array.map (fun s -> faulty.(s)) c.fanins.(id))
      end)
    c.topo_order;
  Array.fold_left
    (fun acc o ->
      if in_cone.(o) then
        Robdd.or_ t.man acc (Robdd.xor t.man t.stems.(o) faulty.(o))
      else acc)
    Robdd.zero c.outputs

let pattern_of_sat t sat =
  let pattern = Array.make (Netlist.num_inputs t.circuit) false in
  List.iter (fun (lvl, v) -> pattern.(t.order.(lvl)) <- v) sat;
  pattern
