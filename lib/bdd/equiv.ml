module Netlist = Circuit.Netlist

type verdict =
  | Equivalent
  | Mismatch of { output : string; pattern : (string * bool) list }
  | Inconclusive of { nodes : int }

type error =
  | Inputs_differ of { only_a : string list; only_b : string list }
  | Outputs_differ of { only_a : string list; only_b : string list }

let names_of (c : Netlist.t) ids =
  Array.to_list (Array.map (fun id -> c.Netlist.node_names.(id)) ids)

let set_diff xs ys = List.filter (fun x -> not (List.mem x ys)) xs

let error_to_string = function
  | Inputs_differ { only_a; only_b } ->
    Printf.sprintf "primary inputs differ (only in A: %s; only in B: %s)"
      (String.concat "," only_a) (String.concat "," only_b)
  | Outputs_differ { only_a; only_b } ->
    Printf.sprintf "primary outputs differ (only in A: %s; only in B: %s)"
      (String.concat "," only_a) (String.concat "," only_b)

let interface_check (a : Netlist.t) (b : Netlist.t) =
  let ia = List.sort compare (names_of a a.Netlist.inputs) in
  let ib = List.sort compare (names_of b b.Netlist.inputs) in
  if ia <> ib then
    Error (Inputs_differ { only_a = set_diff ia ib; only_b = set_diff ib ia })
  else
    let oa = List.sort compare (names_of a a.Netlist.outputs) in
    let ob = List.sort compare (names_of b b.Netlist.outputs) in
    if oa <> ob then
      Error
        (Outputs_differ { only_a = set_diff oa ob; only_b = set_diff ob oa })
    else Ok ()

let check ?(budget = Robdd.default_budget) (a : Netlist.t) (b : Netlist.t) =
  match interface_check a b with
  | Error e -> Error e
  | Ok () ->
    Obs.Trace.with_span "analysis.bdd.equiv" (fun () ->
        let k = Netlist.num_inputs a in
        (* Variable order: DFS over A; B's inputs adopt the level of
           the same-named A input. *)
        let order = Build.dfs_order a in
        let level_of_pos_a = Array.make k 0 in
        Array.iteri (fun lvl p -> level_of_pos_a.(p) <- lvl) order;
        let level_of_name = Hashtbl.create 16 in
        Array.iteri
          (fun p id ->
            Hashtbl.replace level_of_name a.Netlist.node_names.(id)
              level_of_pos_a.(p))
          a.Netlist.inputs;
        let level_of_pos_b =
          Array.map
            (fun id -> Hashtbl.find level_of_name b.Netlist.node_names.(id))
            b.Netlist.inputs
        in
        let man = Robdd.create ~budget ~num_vars:k () in
        let result =
          match
            let stems_a = Build.eval_netlist man a ~level_of_pos:level_of_pos_a in
            let stems_b = Build.eval_netlist man b ~level_of_pos:level_of_pos_b in
            let out_b = Hashtbl.create 16 in
            Array.iter
              (fun id ->
                Hashtbl.replace out_b b.Netlist.node_names.(id) stems_b.(id))
              b.Netlist.outputs;
            let mismatch = ref None in
            Array.iter
              (fun oa ->
                if !mismatch = None then begin
                  let name = a.Netlist.node_names.(oa) in
                  let fa = stems_a.(oa) in
                  let fb = Hashtbl.find out_b name in
                  if fa <> fb then begin
                    let diff = Robdd.xor man fa fb in
                    let sat =
                      match Robdd.any_sat man diff with
                      | Some s -> s
                      | None -> assert false (* fa <> fb so diff <> zero *)
                    in
                    let assigned = Array.make k false in
                    List.iter (fun (lvl, v) -> assigned.(lvl) <- v) sat;
                    let pattern =
                      Array.to_list
                        (Array.mapi
                           (fun p id ->
                             ( a.Netlist.node_names.(id),
                               assigned.(level_of_pos_a.(p)) ))
                           a.Netlist.inputs)
                    in
                    mismatch := Some (Mismatch { output = name; pattern })
                  end
                end)
              a.Netlist.outputs;
            match !mismatch with Some m -> m | None -> Equivalent
          with
          | v -> v
          | exception Robdd.Exceeded ->
            Obs.Metrics.incr "analysis.bdd.budget_fallbacks";
            Inconclusive { nodes = Robdd.size man }
        in
        Obs.Trace.add_int "nodes" (Robdd.size man);
        Obs.Trace.add_int "cache_hits" (Robdd.cache_hits man);
        Obs.Metrics.set "analysis.bdd.nodes" (float_of_int (Robdd.size man));
        Obs.Metrics.incr ~by:(float_of_int (Robdd.cache_lookups man))
          "analysis.bdd.cache_lookups";
        Obs.Metrics.incr ~by:(float_of_int (Robdd.cache_hits man))
          "analysis.bdd.cache_hits";
        Obs.Metrics.set "analysis.bdd.cache_hit_rate" (Robdd.cache_hit_rate man);
        Ok result)
