(** Combinational equivalence checking with counterexample extraction.

    Two netlists are compared {e by interface name}: primary inputs
    are matched by signal name, primary outputs likewise, and both
    circuits are compiled into one shared {!Robdd} manager under a
    common variable order (the DFS order of the first circuit).  By
    canonicity, an output pair is equivalent iff its two BDD roots are
    the same node id; on the first mismatching pair a satisfying path
    of the XOR yields a concrete distinguishing input pattern.

    Interface disagreements (different input or output name sets) are
    reported as errors, not as inequivalence — a caller who meant to
    compare them has a usage problem, and [lsiq equiv] maps this to
    exit code 2.  A blown node budget yields {!Inconclusive}: the
    circuits were too big to decide within budget, which is a warning,
    not a verdict.

    Runs under the ["analysis.bdd.equiv"] span with node-count and
    cache counters, and feeds the [analysis.bdd.*] metrics. *)

type verdict =
  | Equivalent
  | Mismatch of {
      output : string;  (** Name of the first differing primary output. *)
      pattern : (string * bool) list;
          (** Distinguishing assignment, one entry per primary input in
              the first circuit's declaration order. *)
    }
  | Inconclusive of { nodes : int }
      (** Node budget exceeded after allocating [nodes] nodes; no
          verdict. *)

type error =
  | Inputs_differ of { only_a : string list; only_b : string list }
  | Outputs_differ of { only_a : string list; only_b : string list }

val check :
  ?budget:int -> Circuit.Netlist.t -> Circuit.Netlist.t ->
  (verdict, error) result
(** [check a b] — budget defaults to {!Robdd.default_budget} and
    bounds the {e shared} manager holding both circuits. *)

val error_to_string : error -> string
