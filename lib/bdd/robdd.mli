(** Hash-consed reduced ordered binary decision diagrams.

    One manager owns every node: a node is a dense integer id into the
    manager's arrays, terminals are the fixed ids {!zero} and {!one},
    and construction goes through a {e unique table}, so two
    structurally equal (level, low, high) triples are always the same
    id.  Together with the reduction rule (never allocate a node whose
    branches coincide) this gives the canonical-form property the
    analyses rely on: {e within one manager, two nodes denote the same
    Boolean function iff they are the same integer}.  Equivalence
    checking is [=], tautology/unsatisfiability is comparison against
    a terminal.

    All connectives are derived from a single memoized {!ite}
    (if-then-else) operator with the classic computed table; repeated
    subproblems cost one hash lookup.  Complement edges are
    deliberately {e not} used — they buy a constant factor at the cost
    of every traversal carrying parity state, and nothing downstream
    needs that factor.

    Allocation is bounded by a {e node budget}: when the unique table
    would grow past it, the triggering operation raises {!Exceeded}.
    The manager stays consistent (every node and cached result remains
    valid), so callers may catch the exception, fall back to interval
    analyses, and keep using the functions built so far.  Variable
    ordering is fixed per manager; callers choose it at creation
    (see {!Build.dfs_order} / {!Build.sift_order}).

    The probability view treats each variable as an independent fair
    coin: {!probability} is the weighted path count
    [p(0) = 0, p(1) = 1, p(n) = (p(low) + p(high)) / 2], which is
    {e exact} — a node skipping a level marginalizes that variable out
    with total weight 1, so no skip correction is needed.  All values
    are dyadic rationals with denominator at most [2^num_vars]; for
    [num_vars <= 53] every intermediate is exactly representable in an
    IEEE double, so results are bit-for-bit equal to exhaustive
    enumeration. *)

type t
(** A manager: unique table, computed table, node store, budget. *)

type node = int
(** A function handle, valid only with the manager that produced it. *)

exception Exceeded
(** Raised when an operation would allocate past the node budget.  The
    manager remains usable; only the triggering result is lost. *)

val default_budget : int
(** 1,000,000 nodes. *)

val create : ?budget:int -> num_vars:int -> unit -> t
(** Fresh manager for functions over [num_vars] variables, identified
    by {e level} [0 .. num_vars-1] (level 0 is tested first, i.e. is
    topmost).  [budget] (default {!default_budget}) caps the total
    node count including terminals; raises [Invalid_argument] when
    [num_vars < 0] or [budget < 2]. *)

val num_vars : t -> int
val budget : t -> int

val size : t -> int
(** Total nodes ever allocated in this manager (terminals included) —
    the figure the budget bounds. *)

val zero : node
val one : node

val var : t -> int -> node
(** The projection function of the variable at [level]. *)

val not_ : t -> node -> node
val and_ : t -> node -> node -> node
val or_ : t -> node -> node -> node
val xor : t -> node -> node -> node
val xnor : t -> node -> node -> node

val ite : t -> node -> node -> node -> node
(** [ite t f g h] is the function [if f then g else h]; all other
    connectives are instances of it. *)

val eval : t -> node -> bool array -> bool
(** [eval t n assignment] — the function's value under [assignment]
    indexed by level.  Used by tests and counterexample validation. *)

val probability : t -> node -> float
(** Probability that the function is 1 under independent fair-coin
    variables.  Exact (see the module preamble); [O(nodes)] with
    memoization per call. *)

val sat_count : t -> node -> float
(** Number of satisfying assignments over all [num_vars] variables,
    i.e. [probability * 2^num_vars]. *)

val any_sat : t -> node -> (int * bool) list option
(** One satisfying path as [(level, value)] pairs in increasing level
    order, [None] for {!zero}.  Levels absent from the list are don't
    cares.  In a reduced diagram every non-terminal reaches {!one}, so
    this never backtracks. *)

val node_count : t -> node -> int
(** Non-terminal nodes reachable from one root — the usual "BDD size"
    of a single function. *)

val shared_count : t -> node list -> int
(** Non-terminal nodes reachable from any root, counted once — the
    size of a shared multi-rooted diagram (e.g. all primary outputs). *)

val cache_lookups : t -> int
val cache_hits : t -> int

val cache_hit_rate : t -> float
(** [hits / lookups] of the ITE computed table, 0 when no lookups. *)
