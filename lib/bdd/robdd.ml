exception Exceeded

type node = int

type t = {
  num_vars : int;
  budget : int;
  mutable cap : int;
  mutable level : int array;   (* level.(id); terminals sit at num_vars *)
  mutable low : int array;
  mutable high : int array;
  mutable next : int;          (* next free id = nodes allocated so far *)
  unique : (int * int * int, int) Hashtbl.t;
  computed : (int * int * int, int) Hashtbl.t;  (* ITE cache *)
  mutable lookups : int;
  mutable hits : int;
}

let zero = 0
let one = 1

let default_budget = 1_000_000

let create ?(budget = default_budget) ~num_vars () =
  if num_vars < 0 then invalid_arg "Robdd.create: num_vars < 0";
  if budget < 2 then invalid_arg "Robdd.create: budget < 2";
  let cap = 1024 in
  let t =
    {
      num_vars;
      budget;
      cap;
      level = Array.make cap num_vars;
      low = Array.make cap (-1);
      high = Array.make cap (-1);
      next = 2;
      unique = Hashtbl.create 1024;
      computed = Hashtbl.create 1024;
      lookups = 0;
      hits = 0;
    }
  in
  t.level.(zero) <- num_vars;
  t.level.(one) <- num_vars;
  t

let num_vars t = t.num_vars
let budget t = t.budget
let size t = t.next
let cache_lookups t = t.lookups
let cache_hits t = t.hits

let cache_hit_rate t =
  if t.lookups = 0 then 0.0 else float_of_int t.hits /. float_of_int t.lookups

let grow t =
  let cap' = 2 * t.cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  t.level <- extend t.level t.num_vars;
  t.low <- extend t.low (-1);
  t.high <- extend t.high (-1);
  t.cap <- cap'

(* The one allocation point: reduction (low = high) and hash-consing
   happen here, so node ids are canonical by construction. *)
let mk t lvl lo hi =
  if lo = hi then lo
  else
    let key = (lvl, lo, hi) in
    match Hashtbl.find_opt t.unique key with
    | Some id -> id
    | None ->
      if t.next >= t.budget then raise Exceeded;
      if t.next >= t.cap then grow t;
      let id = t.next in
      t.next <- id + 1;
      t.level.(id) <- lvl;
      t.low.(id) <- lo;
      t.high.(id) <- hi;
      Hashtbl.add t.unique key id;
      id

let var t lvl =
  if lvl < 0 || lvl >= t.num_vars then invalid_arg "Robdd.var: level out of range";
  mk t lvl zero one

(* Cofactor of [n] w.r.t. the variable at [lvl]: a node above that
   level does not depend on it. *)
let cof t n lvl side =
  if t.level.(n) = lvl then (if side then t.high.(n) else t.low.(n)) else n

let rec ite t f g h =
  (* ite(f, f, h) = ite(f, 1, h) and ite(f, g, f) = ite(f, g, 0):
     normalizing first improves cache sharing. *)
  let g = if g = f then one else g in
  let h = if h = f then zero else h in
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else begin
    let key = (f, g, h) in
    t.lookups <- t.lookups + 1;
    match Hashtbl.find_opt t.computed key with
    | Some r ->
      t.hits <- t.hits + 1;
      r
    | None ->
      let top = min t.level.(f) (min t.level.(g) t.level.(h)) in
      let r0 = ite t (cof t f top false) (cof t g top false) (cof t h top false) in
      let r1 = ite t (cof t f top true) (cof t g top true) (cof t h top true) in
      let r = mk t top r0 r1 in
      Hashtbl.add t.computed key r;
      r
  end

let not_ t f = ite t f zero one
let and_ t f g = ite t f g zero
let or_ t f g = ite t f one g
let xor t f g = ite t f (ite t g zero one) g
let xnor t f g = ite t f g (ite t g zero one)

let eval t n assignment =
  if Array.length assignment <> t.num_vars then
    invalid_arg "Robdd.eval: assignment length mismatch";
  let cur = ref n in
  while !cur > one do
    cur := if assignment.(t.level.(!cur)) then t.high.(!cur) else t.low.(!cur)
  done;
  !cur = one

let probability t root =
  let memo = Hashtbl.create 64 in
  (* Path depth is bounded by num_vars (levels strictly increase), so
     recursion is safe even on budget-sized diagrams. *)
  let rec p n =
    if n = zero then 0.0
    else if n = one then 1.0
    else
      match Hashtbl.find_opt memo n with
      | Some v -> v
      | None ->
        let v = 0.5 *. (p t.low.(n) +. p t.high.(n)) in
        Hashtbl.add memo n v;
        v
  in
  p root

let sat_count t root =
  probability t root *. (2.0 ** float_of_int t.num_vars)

let any_sat t root =
  if root = zero then None
  else
    (* Reduction guarantees every non-terminal reaches [one]: a node
       whose cone only reached [zero] would itself have been reduced
       to [zero].  Prefer the high branch when it is live. *)
    let rec go n acc =
      if n = one then List.rev acc
      else if t.high.(n) <> zero then go t.high.(n) ((t.level.(n), true) :: acc)
      else go t.low.(n) ((t.level.(n), false) :: acc)
    in
    Some (go root [])

let shared_count t roots =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec visit n =
    if n > one && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      incr count;
      visit t.low.(n);
      visit t.high.(n)
    end
  in
  List.iter visit roots;
  !count

let node_count t root = shared_count t [ root ]
