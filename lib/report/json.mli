(** Minimal JSON emitter for machine-readable tool output.

    The toolkit deliberately carries no third-party JSON dependency;
    this covers the subset the reporting layers need: building a value
    and serialising it with correct string escaping and round-trippable
    numbers.  There is no parser — consumers of our output are external
    tools. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line serialisation.  Strings are escaped per RFC
    8259; non-finite floats serialise as [null]; finite floats always
    contain a ['.'] or exponent so they parse back as doubles. *)

val to_string_pretty : t -> string
(** Two-space indented serialisation, for human consumption. *)
