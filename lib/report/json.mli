(** Minimal JSON emitter and parser for machine-readable tool output.

    The toolkit deliberately carries no third-party JSON dependency;
    this covers the subset the reporting layers need: building a value,
    serialising it with correct string escaping and round-trippable
    numbers, and parsing it back (used by the bench-smoke validation of
    emitted trace files and by the round-trip tests). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line serialisation.  Strings are escaped per RFC
    8259; non-finite floats serialise as [null]; finite floats always
    contain a ['.'] or exponent so they parse back as doubles. *)

val to_string_pretty : t -> string
(** Two-space indented serialisation, for human consumption. *)

val parse : string -> (t, string) result
(** Parse one JSON document (RFC 8259 subset: no duplicate-key checks;
    [\uXXXX] escapes decode to UTF-8, surrogate pairs unsupported).
    Numbers without ['.'], ['e'] or ['E'] that fit in an OCaml [int]
    parse as [Int], everything else as [Float] — the inverse of
    {!to_string}.  Trailing non-whitespace is an error.  Errors report
    a byte offset. *)
