type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_into buf f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> Buffer.add_string buf "null"
  | Float.FP_zero | Float.FP_normal | Float.FP_subnormal ->
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* "%.12g" prints integral doubles without a '.'; restore it so the
       value parses back as a double, not an int. *)
    if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
      Buffer.add_string buf ".0"

let serialize ~indent value =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to 2 * depth do Buffer.add_char buf ' ' done
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> float_into buf f
    | String s -> escape_into buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, item) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (depth + 1);
          escape_into buf key;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          emit (depth + 1) item)
        fields;
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 value;
  Buffer.contents buf

let to_string value = serialize ~indent:false value
let to_string_pretty value = serialize ~indent:true value

(* ------------------------------ parser ------------------------------ *)

exception Parse_error of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error (Printf.sprintf "expected %C, found %C" c d)
    | None -> error (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub text !pos len = word then begin
      pos := !pos + len;
      value
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> error "invalid \\u escape"
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then error "unterminated escape";
         let e = text.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then error "truncated \\u escape";
           let code =
             (hex_digit text.[!pos] lsl 12)
             lor (hex_digit text.[!pos + 1] lsl 8)
             lor (hex_digit text.[!pos + 2] lsl 4)
             lor hex_digit text.[!pos + 3]
           in
           pos := !pos + 4;
           add_utf8 buf code
         | _ -> error "invalid escape character");
        loop ()
      | c when Char.code c < 0x20 -> error "unescaped control character"
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let before = !pos in
      while !pos < n && (match text.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = before then error "malformed number"
    in
    digits ();
    let fractional = peek () = Some '.' in
    if fractional then begin
      advance ();
      digits ()
    end;
    let exponent = match peek () with Some ('e' | 'E') -> true | _ -> false in
    if exponent then begin
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    end;
    let token = String.sub text start (!pos - start) in
    if (not fractional) && not exponent then
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> Float (float_of_string token)
    else Float (float_of_string token)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (key, value)
        in
        let fields = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := member () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing characters after document";
    value
  with
  | value -> Ok value
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)
