type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_into buf f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> Buffer.add_string buf "null"
  | Float.FP_zero | Float.FP_normal | Float.FP_subnormal ->
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* "%.12g" prints integral doubles without a '.'; restore it so the
       value parses back as a double, not an int. *)
    if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
      Buffer.add_string buf ".0"

let serialize ~indent value =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to 2 * depth do Buffer.add_char buf ' ' done
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> float_into buf f
    | String s -> escape_into buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, item) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (depth + 1);
          escape_into buf key;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          emit (depth + 1) item)
        fields;
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 value;
  Buffer.contents buf

let to_string value = serialize ~indent:false value
let to_string_pretty value = serialize ~indent:true value
