type kind = Time | Exact

type metric = { block : string; name : string; kind : kind; value : float }

type verdict = Same | Faster | Slower | Changed | Added | Removed

type row = {
  r_block : string;
  r_name : string;
  r_kind : kind;
  r_base : float option;
  r_cur : float option;
  r_verdict : verdict;
}

let field name = function
  | Report.Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let as_number = function
  | Some (Report.Json.Float f) -> Some f
  | Some (Report.Json.Int n) -> Some (float_of_int n)
  | _ -> None

let as_int = function
  | Some (Report.Json.Int n) -> Some n
  | _ -> None

let as_string = function Some (Report.Json.String s) -> Some s | _ -> None

let as_list = function Some (Report.Json.List l) -> l | _ -> []

let host_key doc =
  match field "host" doc with
  | Some host ->
    let int name = Option.value ~default:0 (as_int (field name host)) in
    Printf.sprintf "cores=%d ocaml=%s word=%d" (int "cores")
      (Option.value ~default:"?" (as_string (field "ocaml_version" host)))
      (int "word_size")
  | None -> "unknown-host"

(* Flatten the comparable metrics of one BENCH_fsim.json document.
   Times are compared with slack; counts and coverages are exact. *)
let metrics_of_doc doc =
  let out = ref [] in
  let push block name kind value = out := { block; name; kind; value } :: !out in
  let number json name = as_number (field name json) in
  let time block json name =
    match number json name with Some v -> push block name Time v | None -> ()
  in
  let exact block json name =
    match number json name with Some v -> push block name Exact v | None -> ()
  in
  List.iter
    (fun run ->
      match (as_string (field "engine" run), as_int (field "domains" run)) with
      | Some engine, Some domains ->
        let block = Printf.sprintf "runs/%s@d%d" engine domains in
        time block run "min_s";
        exact block run "faults";
        exact block run "patterns"
      | _ -> ())
    (as_list (field "runs" doc));
  List.iter
    (fun row ->
      match as_int (field "n" row) with
      | Some n ->
        let block = Printf.sprintf "ndetect/n=%d" n in
        time block row "min_s";
        exact block row "coverage"
      | None -> ())
    (as_list (field "ndetect" doc));
  (match field "analysis" doc with
  | Some analysis ->
    (match field "dominators" analysis with
    | Some dom -> time "analysis/dominators" dom "min_s"
    | None -> ());
    List.iter
      (fun imp ->
        match as_int (field "depth" imp) with
        | Some depth ->
          time (Printf.sprintf "analysis/implications@d%d" depth) imp "min_s"
        | None -> ())
      (as_list (field "implications" analysis));
    (match field "podem_ablation" analysis with
    | Some ablation ->
      exact "analysis/podem" ablation "hard_faults";
      exact "analysis/podem" ablation "verdict_conflicts"
    | None -> ())
  | None -> ());
  (match field "testability" doc with
  | Some testability ->
    List.iter
      (fun curve ->
        match
          (as_string (field "circuit" curve), as_int (field "patterns" curve))
        with
        | Some circuit, Some patterns ->
          let block = Printf.sprintf "testability/%s@n%d" circuit patterns in
          exact block curve "predicted_lo";
          exact block curve "predicted_hi";
          exact block curve "exact"
        | _ -> ())
      (as_list (field "curves" testability));
    (match field "hybrid" testability with
    | Some hybrid ->
      exact "testability/hybrid" hybrid "hybrid_coverage";
      exact "testability/hybrid" hybrid "hybrid_patterns"
    | None -> ())
  | None -> ());
  (match field "bdd" doc with
  | Some bdd ->
    List.iter
      (fun row ->
        match as_string (field "circuit" row) with
        | Some circuit ->
          let block = Printf.sprintf "bdd/%s" circuit in
          exact block row "dfs_nodes";
          exact block row "sifted_nodes";
          exact block row "untestable";
          exact block row "exact_width";
          exact block row "interval_width"
        | None -> ())
      (as_list (field "circuits" bdd));
    (match field "equiv" bdd with
    | Some equiv -> exact "bdd/equiv" equiv "counterexample_inputs"
    | None -> ())
  | None -> ());
  List.rev !out

let entry ~time_unix doc =
  Report.Json.Obj
    [ ("time_unix", Report.Json.Float time_unix); ("bench", doc) ]

let doc_of_entry line = field "bench" line

let append ~path line =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Report.Json.to_string line);
  output_char oc '\n';
  close_out oc

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    In_channel.with_open_text path (fun ic ->
        let rec loop lineno acc =
          match In_channel.input_line ic with
          | None -> Ok (List.rev acc)
          | Some line when String.trim line = "" -> loop (lineno + 1) acc
          | Some line ->
            (match Report.Json.parse line with
            | Ok json -> loop (lineno + 1) (json :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
        in
        loop 1 [])

let compare_docs ?(time_ratio = 1.5) ?(time_floor_s = 0.002) ~baseline
    ~current () =
  let base_metrics = metrics_of_doc baseline in
  let cur_metrics = metrics_of_doc current in
  let key m = (m.block, m.name) in
  let find metrics k = List.find_opt (fun m -> key m = k) metrics in
  let keys =
    List.map key base_metrics
    @ List.filter
        (fun k -> not (List.exists (fun m -> key m = k) base_metrics))
        (List.map key cur_metrics)
  in
  List.map
    (fun ((block, name) as k) ->
      let base = find base_metrics k and cur = find cur_metrics k in
      let kind =
        match (base, cur) with
        | Some m, _ | None, Some m -> m.kind
        | None, None -> Exact
      in
      let verdict =
        match (base, cur) with
        | None, Some _ -> Added
        | Some _, None -> Removed
        | None, None -> Same
        | Some b, Some c -> (
          match kind with
          | Exact -> if b.value = c.value then Same else Changed
          | Time ->
            if
              c.value > b.value *. time_ratio
              && c.value -. b.value > time_floor_s
            then Slower
            else if
              b.value > c.value *. time_ratio
              && b.value -. c.value > time_floor_s
            then Faster
            else Same)
      in
      { r_block = block; r_name = name; r_kind = kind;
        r_base = Option.map (fun m -> m.value) base;
        r_cur = Option.map (fun m -> m.value) cur;
        r_verdict = verdict })
    keys

let regressions rows =
  List.filter
    (fun r -> match r.r_verdict with Slower | Changed -> true | _ -> false)
    rows

let verdict_name = function
  | Same -> "same"
  | Faster -> "faster"
  | Slower -> "SLOWER"
  | Changed -> "CHANGED"
  | Added -> "added"
  | Removed -> "removed"

let render rows =
  let cell = function
    | Some v -> Printf.sprintf "%.6g" v
    | None -> "-"
  in
  let delta r =
    match (r.r_base, r.r_cur) with
    | Some b, Some c when r.r_kind = Time && b > 0.0 ->
      Printf.sprintf "%+.1f%%" (100.0 *. ((c /. b) -. 1.0))
    | Some b, Some c when b <> c -> Printf.sprintf "%+.6g" (c -. b)
    | _ -> ""
  in
  Report.Table.render
    ~aligns:[ Report.Table.Left; Left; Right; Right; Right; Left ]
    ~headers:[ "block"; "metric"; "baseline"; "current"; "delta"; "verdict" ]
    (List.map
       (fun r ->
         [ r.r_block; r.r_name; cell r.r_base; cell r.r_cur; delta r;
           verdict_name r.r_verdict ])
       rows)
