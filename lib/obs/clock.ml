(* CLOCK_MONOTONIC via bechamel's noalloc stub; the stub yields raw
   nanoseconds and returns 0 on platforms where no monotonic source was
   compiled in — a reading a real clock can never produce once the
   machine has been up a nanosecond, which is what [monotonic] probes. *)

let ns_to_s = 1e-9

let monotonic = Monotonic_clock.now () <> 0L

(* Fallback path: gettimeofday can step backwards (NTP, manual clock
   changes); clamp through a CAS'd high-water mark so callers still see
   a non-decreasing sequence. *)
let high_water = Atomic.make neg_infinity

let rec monotonize t =
  let seen = Atomic.get high_water in
  if t <= seen then seen
  else if Atomic.compare_and_set high_water seen t then t
  else monotonize t

let now_s () =
  if monotonic then Int64.to_float (Monotonic_clock.now ()) *. ns_to_s
  else monotonize (Unix.gettimeofday ())
