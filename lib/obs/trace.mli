(** Span tracer: nested, named spans with wall-clock duration and
    per-span counters, recorded into lock-free per-domain buffers.

    Tracing is disabled by default and the disabled path is a single
    atomic load, so instrumented hot paths pay (almost) nothing when
    off.  When enabled, every domain that traces gets its own private
    buffer (domain-local storage, registered once under a mutex), so
    recording a span never contends with other domains — the invariant
    the multicore fault simulator needs.

    The recorded stream exports three ways: Chrome trace-event JSON
    (load it in [chrome://tracing] or Perfetto), an ASCII summary tree
    with durations and counters, and a timestamp-free [tree_shape]
    used by the determinism tests (span names and nesting must be
    reproducible at a fixed seed; wall-clock readings are not).

    Spans opened and closed on a domain must nest properly; [with_span]
    guarantees this even on exceptions.  Export functions must only be
    called when no spans are open elsewhere (e.g. after [Domain.join]
    on all workers). *)

val set_enabled : bool -> unit
(** Turn recording on or off.  Turning it on does not clear previously
    recorded spans; call {!reset} for a fresh trace. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans and re-zero the trace clock.  Buffers held
    by live domains are lazily re-created on their next span. *)

val now_s : unit -> float
(** Wall-clock seconds (the tracer's own clock source), usable by
    instrumentation that wants timing without a second clock. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span named [name] on the
    calling domain.  When tracing is disabled this is just [f ()]. *)

val add : string -> float -> unit
(** [add key v] accumulates [v] onto counter [key] of the innermost
    open span of the calling domain.  No-op when disabled or when no
    span is open. *)

val add_int : string -> int -> unit

(** One closed span, as exported.  [tid] is a dense per-trace domain
    index (domains sorted by creation order), [seq] the preorder index
    within that domain, [parent] the [seq] of the enclosing span or
    [-1] at the root, [t0]/[t1] seconds relative to the trace origin. *)
type span = {
  name : string;
  tid : int;
  seq : int;
  depth : int;
  parent : int;
  t0 : float;
  t1 : float;
  counters : (string * float) list;  (** insertion order *)
}

val spans : unit -> span list
(** All closed spans, sorted by [(tid, seq)] — i.e. per-domain
    preorder. *)

val to_chrome_json : unit -> Report.Json.t
(** The trace as a Chrome trace-event object:
    [{"traceEvents": [{"name";"ph":"X";"ts";"dur";"pid";"tid";"args"}],
      "displayTimeUnit": "ms"}] with microsecond timestamps.  Counters
    become ["args"]. *)

val summary_tree : unit -> string
(** ASCII rendering: one indented tree per domain, with per-span
    durations and counters. *)

val tree_shape : unit -> string
(** Timestamp-free shape: one line per span, ["d<tid> <indent><name>"],
    in per-domain preorder.  Two runs of the same seeded workload must
    produce equal shapes. *)
