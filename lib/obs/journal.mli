(** Structured run journal: typed events appended as JSONL.

    The journal is the durable record of one [lsiq]/[bench] run: a
    [run_start] header (argv, seed, circuit, host, git revision), then
    throttled [progress] events from the hot loops, optional
    [metrics_snapshot]s, and a closing [run_end] carrying the outcome
    and headline results registered along the way.

    Events go to an optional file sink (one JSON object per line,
    flushed per event so the file can be tailed) and always to a small
    in-memory ring buffer readable via {!tail} — tests and smoke
    targets can assert on the ring without touching the filesystem.

    Like {!Trace} and {!Metrics}, the journal is off by default and the
    disabled path of every emitter is a single atomic load. *)

type host = { hostname : string; cores : int; ocaml_version : string }

type outcome = Finished | Failed of string | Interrupted

type event =
  | Run_start of {
      time_unix : float;  (** wall-clock start, seconds since epoch *)
      argv : string list;
      seed : int option;
      circuit : string option;
      git_rev : string option;
      host : host;
    }
  | Progress of {
      t_s : float;  (** seconds since the journal was attached *)
      label : string;  (** hot-loop identity, e.g. ["fsim.ppsfp"] *)
      stage : string option;  (** pipeline stage name, if a stage tick *)
      task : int;  (** task instance id; items are monotone per task *)
      items : int;
      total : int option;
      rate : float;  (** EWMA items/s; 0 when unknown *)
      eta_s : float option;
    }
  | Metrics_snapshot of { t_s : float; metrics : Report.Json.t }
  | Run_end of {
      t_s : float;
      outcome : outcome;
      results : (string * Report.Json.t) list;  (** headlines, in order *)
    }

val set_enabled : bool -> unit
val enabled : unit -> bool

val attach : path:string -> unit
(** Open (truncate) [path] as the file sink and zero the run clock,
    ring buffer and headline set.  Does not enable emission. *)

val detach : unit -> unit
(** Flush and close the file sink, if any. *)

val reset : unit -> unit
(** Zero the run clock, ring buffer and headlines without touching the
    file sink — ring-only runs (tests) start here. *)

val emit : event -> unit
(** Append a pre-built event.  No-op when disabled. *)

val set_sink_hook : (unit -> unit) -> unit
(** Install a hook run immediately before each file-sink write.  The
    CLI points it at the ["journal.sink"] failpoint so the
    fault-injection harness can fail journal IO; an exception from the
    hook propagates out of the emitting call, but the event is already
    in the in-memory ring ({!tail} still sees it). *)

val run_start :
  argv:string array -> ?seed:int -> ?circuit:string -> unit -> unit
(** Emit [Run_start], gathering host context and a best-effort git
    revision ([LSIQ_GIT_REV] env, else [.git/HEAD] found by walking up
    from the current directory). *)

val progress :
  label:string ->
  ?stage:string ->
  task:int ->
  items:int ->
  ?total:int ->
  rate:float ->
  ?eta_s:float ->
  unit ->
  unit
(** Emit [Progress].  Throttling is the caller's job ({!Progress}
    owns the wall-clock gate); the journal records what it is given. *)

val metrics_snapshot : Report.Json.t -> unit

val headline : string -> Report.Json.t -> unit
(** Register a headline result for the eventual [Run_end]; a repeated
    key replaces the earlier value in place. *)

val run_end : outcome:outcome -> unit
(** Emit [Run_end] carrying the accumulated headlines. *)

val tail : unit -> event list
(** The most recent events (bounded ring), oldest first. *)

val event_to_json : event -> Report.Json.t

val event_of_json : Report.Json.t -> (event, string) result

val read_file : string -> (event list, string) result
(** Parse a journal file back into events; fails on the first
    malformed line, reporting its 1-based line number. *)

val render_summary : event list -> string
(** Human-readable digest of one journal: command line, host, outcome,
    headlines, per-task progress totals and an event census — what
    [lsiq report] prints. *)
