(** Shared time source for the observability subsystem.

    Backed by [CLOCK_MONOTONIC] (via the bechamel stub) whenever the
    platform provides it, so readings are immune to wall-clock steps
    (NTP adjustments, manual changes).  On platforms where the stub
    reports no monotonic clock we fall back to [Unix.gettimeofday]
    monotonised through an atomic high-water mark — readings then may
    stall during a backwards wall-clock step but never decrease.

    Either way the guarantee instrumentation relies on holds:
    successive [now_s] calls never go backwards. *)

val monotonic : bool
(** True when the platform monotonic clock backs [now_s]; false on the
    monotonised [Unix.gettimeofday] fallback. *)

val now_s : unit -> float
(** Seconds since an arbitrary fixed origin (the boot instant under
    [CLOCK_MONOTONIC], the Unix epoch on the fallback).  Only
    differences are meaningful.  Never decreases. *)
