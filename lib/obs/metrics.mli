(** Process-wide metrics registry: counters, gauges and histograms with
    snapshot export.

    Like {!Trace}, recording is disabled by default and the disabled
    path is one atomic load.  When enabled, updates take a single
    global mutex — instrumentation therefore records at batch
    granularity (per block, per shard, per stage), never per event.

    Naming convention: dotted lowercase paths, e.g.
    ["fsim.par.shard_wall_s"].  A name is permanently bound to the
    kind of its first use; mixing kinds raises [Invalid_argument]. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Forget every metric. *)

val incr : ?by:float -> string -> unit
(** Counter: add [by] (default 1.0) to a monotonically growing total. *)

val set : string -> float -> unit
(** Gauge: record the latest value. *)

val observe : string -> float -> unit
(** Histogram: record one observation (count/sum/min/max and quantiles
    over a capped sample reservoir). *)

val with_gc_delta : string -> (unit -> 'a) -> 'a
(** [with_gc_delta prefix f] runs [f] and records the [Gc.quick_stat]
    deltas it caused as counters [prefix ^ ".minor_words"],
    [".major_words"], [".promoted_words"], [".minor_collections"] and
    [".major_collections"].  Repeated calls with the same prefix
    {e accumulate}: the counters sum GC churn across every wrapped
    section, so a prefix reports total pressure for the run rather
    than the last call's delta.  When disabled, just runs [f]. *)

val value : string -> float option
(** Current value of a counter or gauge, [None] if absent. *)

val quantile : string -> float -> float option
(** [quantile name q] for a histogram, [q] in [0,1]; [None] if the
    histogram is absent or empty. *)

val snapshot : unit -> Report.Json.t
(** All metrics as a JSON object keyed by name (sorted), each value an
    object: counters/gauges [{"kind";"value"}], histograms
    [{"kind";"count";"sum";"min";"max";"p50";"p90";"p99";"reservoir"}]
    where ["reservoir"] is how many of ["count"] samples back the
    quantiles (they diverge once the capped reservoir fills). *)

val render_text : unit -> string
(** Human-readable dump, one line per metric, sorted by name. *)
