type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type metric = {
  m_kind : kind;
  mutable m_value : float;  (* counter running total / gauge last value *)
  mutable m_count : int;
  mutable m_sum : float;
  mutable m_min : float;
  mutable m_max : float;
  mutable m_samples : float list;  (* newest first, capped *)
  mutable m_stored : int;
}

let sample_cap = 4096

let enabled_flag = Atomic.make false
let mutex = Mutex.create ()
let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  Mutex.unlock mutex

(* Must be called with [mutex] held. *)
let find_or_create name kind =
  match Hashtbl.find_opt table name with
  | Some m when m.m_kind = kind -> m
  | Some m ->
    Mutex.unlock mutex;
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s is a %s, used as a %s" name
         (kind_name m.m_kind) (kind_name kind))
  | None ->
    let m =
      { m_kind = kind; m_value = 0.0; m_count = 0; m_sum = 0.0;
        m_min = infinity; m_max = neg_infinity; m_samples = []; m_stored = 0 }
    in
    Hashtbl.replace table name m;
    m

let incr ?(by = 1.0) name =
  if Atomic.get enabled_flag then begin
    Mutex.lock mutex;
    let m = find_or_create name Counter in
    m.m_value <- m.m_value +. by;
    Mutex.unlock mutex
  end

let set name v =
  if Atomic.get enabled_flag then begin
    Mutex.lock mutex;
    let m = find_or_create name Gauge in
    m.m_value <- v;
    Mutex.unlock mutex
  end

let observe name v =
  if Atomic.get enabled_flag then begin
    Mutex.lock mutex;
    let m = find_or_create name Histogram in
    m.m_count <- m.m_count + 1;
    m.m_sum <- m.m_sum +. v;
    if v < m.m_min then m.m_min <- v;
    if v > m.m_max then m.m_max <- v;
    if m.m_stored < sample_cap then begin
      m.m_samples <- v :: m.m_samples;
      m.m_stored <- m.m_stored + 1
    end;
    Mutex.unlock mutex
  end

(* GC deltas accumulate as counters: repeated calls with the same
   prefix sum their churn, so a prefix reports total GC pressure across
   the whole run rather than whichever call happened last. *)
let with_gc_delta prefix f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let before = Gc.quick_stat () in
    let finish () =
      let after = Gc.quick_stat () in
      incr ~by:(after.minor_words -. before.minor_words)
        (prefix ^ ".minor_words");
      incr ~by:(after.major_words -. before.major_words)
        (prefix ^ ".major_words");
      incr
        ~by:(after.promoted_words -. before.promoted_words)
        (prefix ^ ".promoted_words");
      incr
        ~by:(float_of_int (after.minor_collections - before.minor_collections))
        (prefix ^ ".minor_collections");
      incr
        ~by:(float_of_int (after.major_collections - before.major_collections))
        (prefix ^ ".major_collections")
    in
    Fun.protect ~finally:finish f
  end

let value name =
  Mutex.lock mutex;
  let v =
    match Hashtbl.find_opt table name with
    | Some { m_kind = Counter | Gauge; m_value; _ } -> Some m_value
    | Some { m_kind = Histogram; _ } | None -> None
  in
  Mutex.unlock mutex;
  v

let sorted_samples m = List.sort compare m.m_samples

let quantile_of_sorted sorted q =
  match sorted with
  | [] -> None
  | _ ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let idx =
      int_of_float (Float.round (q *. float_of_int (n - 1)))
      |> max 0 |> min (n - 1)
    in
    Some arr.(idx)

let quantile name q =
  Mutex.lock mutex;
  let result =
    match Hashtbl.find_opt table name with
    | Some ({ m_kind = Histogram; _ } as m) ->
      quantile_of_sorted (sorted_samples m) q
    | Some _ | None -> None
  in
  Mutex.unlock mutex;
  result

let entries () =
  Mutex.lock mutex;
  let l = Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [] in
  Mutex.unlock mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let snapshot () =
  let field m =
    match m.m_kind with
    | Counter | Gauge ->
      Report.Json.Obj
        [ ("kind", Report.Json.String (kind_name m.m_kind));
          ("value", Report.Json.Float m.m_value) ]
    | Histogram ->
      let sorted = sorted_samples m in
      let q p =
        match quantile_of_sorted sorted p with
        | Some v -> Report.Json.Float v
        | None -> Report.Json.Null
      in
      Report.Json.Obj
        [ ("kind", Report.Json.String "histogram");
          ("count", Report.Json.Int m.m_count);
          ("sum", Report.Json.Float m.m_sum);
          ("min",
           if m.m_count = 0 then Report.Json.Null else Report.Json.Float m.m_min);
          ("max",
           if m.m_count = 0 then Report.Json.Null else Report.Json.Float m.m_max);
          ("p50", q 0.5);
          ("p90", q 0.9);
          ("p99", q 0.99);
          (* quantiles come from a capped reservoir: honest labeling
             requires saying how many of [count] samples back them *)
          ("reservoir", Report.Json.Int m.m_stored) ]
  in
  Report.Json.Obj (List.map (fun (name, m) -> (name, field m)) (entries ()))

let render_text () =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, m) ->
      match m.m_kind with
      | Counter -> addf "%-44s counter   %g\n" name m.m_value
      | Gauge -> addf "%-44s gauge     %g\n" name m.m_value
      | Histogram ->
        let sorted = sorted_samples m in
        let q p =
          match quantile_of_sorted sorted p with Some v -> v | None -> nan
        in
        let reservoir =
          if m.m_stored < m.m_count then
            Printf.sprintf " (quantiles over %d/%d samples)" m.m_stored
              m.m_count
          else ""
        in
        addf "%-44s histogram n=%d sum=%g min=%g p50=%g p90=%g p99=%g max=%g%s\n"
          name m.m_count m.m_sum
          (if m.m_count = 0 then nan else m.m_min)
          (q 0.5) (q 0.9) (q 0.99)
          (if m.m_count = 0 then nan else m.m_max)
          reservoir)
    (entries ());
  Buffer.contents buf
