type host = { hostname : string; cores : int; ocaml_version : string }

type outcome = Finished | Failed of string | Interrupted

type event =
  | Run_start of {
      time_unix : float;
      argv : string list;
      seed : int option;
      circuit : string option;
      git_rev : string option;
      host : host;
    }
  | Progress of {
      t_s : float;
      label : string;
      stage : string option;
      task : int;
      items : int;
      total : int option;
      rate : float;
      eta_s : float option;
    }
  | Metrics_snapshot of { t_s : float; metrics : Report.Json.t }
  | Run_end of {
      t_s : float;
      outcome : outcome;
      results : (string * Report.Json.t) list;
    }

let ring_cap = 256

type state = {
  mutable oc : out_channel option;
  ring : event option array;
  mutable ring_next : int;  (* next write slot; count = min written cap *)
  mutable ring_count : int;
  mutable headlines : (string * Report.Json.t) list;  (* newest first *)
  mutable t0 : float;
}

let enabled_flag = Atomic.make false
let mutex = Mutex.create ()

let st =
  { oc = None; ring = Array.make ring_cap None; ring_next = 0; ring_count = 0;
    headlines = []; t0 = Clock.now_s () }

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Must be called with [mutex] held. *)
let clear_run_state () =
  Array.fill st.ring 0 ring_cap None;
  st.ring_next <- 0;
  st.ring_count <- 0;
  st.headlines <- [];
  st.t0 <- Clock.now_s ()

let reset () =
  Mutex.lock mutex;
  clear_run_state ();
  Mutex.unlock mutex

let detach () =
  Mutex.lock mutex;
  (match st.oc with
  | Some oc ->
    st.oc <- None;
    Mutex.unlock mutex;
    close_out oc
  | None -> Mutex.unlock mutex)

let attach ~path =
  detach ();
  let oc = open_out path in
  Mutex.lock mutex;
  st.oc <- Some oc;
  clear_run_state ();
  Mutex.unlock mutex

(* ---- JSON encoding ------------------------------------------------- *)

let opt f = function Some v -> f v | None -> Report.Json.Null

let host_to_json h =
  Report.Json.Obj
    [ ("hostname", Report.Json.String h.hostname);
      ("cores", Report.Json.Int h.cores);
      ("ocaml_version", Report.Json.String h.ocaml_version) ]

let event_to_json = function
  | Run_start { time_unix; argv; seed; circuit; git_rev; host } ->
    Report.Json.Obj
      [ ("ev", Report.Json.String "run_start");
        ("time_unix", Report.Json.Float time_unix);
        ("argv",
         Report.Json.List (List.map (fun a -> Report.Json.String a) argv));
        ("seed", opt (fun s -> Report.Json.Int s) seed);
        ("circuit", opt (fun c -> Report.Json.String c) circuit);
        ("git_rev", opt (fun r -> Report.Json.String r) git_rev);
        ("host", host_to_json host) ]
  | Progress { t_s; label; stage; task; items; total; rate; eta_s } ->
    Report.Json.Obj
      ([ ("ev", Report.Json.String "progress");
         ("t", Report.Json.Float t_s);
         ("label", Report.Json.String label) ]
      @ (match stage with
        | Some s -> [ ("stage", Report.Json.String s) ]
        | None -> [])
      @ [ ("task", Report.Json.Int task);
          ("items", Report.Json.Int items);
          ("total", opt (fun t -> Report.Json.Int t) total);
          ("rate", Report.Json.Float rate);
          ("eta_s", opt (fun e -> Report.Json.Float e) eta_s) ])
  | Metrics_snapshot { t_s; metrics } ->
    Report.Json.Obj
      [ ("ev", Report.Json.String "metrics_snapshot");
        ("t", Report.Json.Float t_s);
        ("metrics", metrics) ]
  | Run_end { t_s; outcome; results } ->
    Report.Json.Obj
      [ ("ev", Report.Json.String "run_end");
        ("t", Report.Json.Float t_s);
        ("outcome",
         (match outcome with
         | Finished -> Report.Json.String "ok"
         | Interrupted -> Report.Json.String "interrupted"
         | Failed msg ->
           Report.Json.Obj [ ("error", Report.Json.String msg) ]));
        ("results", Report.Json.Obj results) ]

(* ---- JSON decoding ------------------------------------------------- *)

let field name = function
  | Report.Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let as_string = function Some (Report.Json.String s) -> Some s | _ -> None

let as_int = function
  | Some (Report.Json.Int n) -> Some n
  | Some (Report.Json.Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let as_float = function
  | Some (Report.Json.Float f) -> Some f
  | Some (Report.Json.Int n) -> Some (float_of_int n)
  | _ -> None

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require what = function Some v -> Ok v | None -> Error ("missing " ^ what)

let event_of_json json =
  let* ev = require "ev" (as_string (field "ev" json)) in
  match ev with
  | "run_start" ->
    let* time_unix = require "time_unix" (as_float (field "time_unix" json)) in
    let* argv =
      match field "argv" json with
      | Some (Report.Json.List l) ->
        let rec strings acc = function
          | [] -> Ok (List.rev acc)
          | Report.Json.String s :: rest -> strings (s :: acc) rest
          | _ -> Error "argv: non-string element"
        in
        strings [] l
      | _ -> Error "missing argv"
    in
    let* host_json = require "host" (field "host" json) in
    let* hostname = require "hostname" (as_string (field "hostname" host_json)) in
    let* cores = require "cores" (as_int (field "cores" host_json)) in
    let* ocaml_version =
      require "ocaml_version" (as_string (field "ocaml_version" host_json))
    in
    Ok
      (Run_start
         { time_unix; argv;
           seed = as_int (field "seed" json);
           circuit = as_string (field "circuit" json);
           git_rev = as_string (field "git_rev" json);
           host = { hostname; cores; ocaml_version } })
  | "progress" ->
    let* t_s = require "t" (as_float (field "t" json)) in
    let* label = require "label" (as_string (field "label" json)) in
    let* task = require "task" (as_int (field "task" json)) in
    let* items = require "items" (as_int (field "items" json)) in
    let* rate = require "rate" (as_float (field "rate" json)) in
    Ok
      (Progress
         { t_s; label;
           stage = as_string (field "stage" json);
           task; items;
           total = as_int (field "total" json);
           rate;
           eta_s = as_float (field "eta_s" json) })
  | "metrics_snapshot" ->
    let* t_s = require "t" (as_float (field "t" json)) in
    let* metrics = require "metrics" (field "metrics" json) in
    Ok (Metrics_snapshot { t_s; metrics })
  | "run_end" ->
    let* t_s = require "t" (as_float (field "t" json)) in
    let* outcome =
      match field "outcome" json with
      | Some (Report.Json.String "ok") -> Ok Finished
      | Some (Report.Json.String "interrupted") -> Ok Interrupted
      | Some (Report.Json.Obj [ ("error", Report.Json.String msg) ]) ->
        Ok (Failed msg)
      | _ -> Error "bad outcome"
    in
    let* results =
      match field "results" json with
      | Some (Report.Json.Obj kvs) -> Ok kvs
      | _ -> Error "missing results"
    in
    Ok (Run_end { t_s; outcome; results })
  | other -> Error ("unknown event type " ^ other)

(* ---- emission ------------------------------------------------------ *)

(* Pre-write hook on the file sink; the fault-injection harness points
   it at a failpoint.  It may raise, so the write path must release the
   mutex on the way out — the in-memory ring keeps the event either
   way. *)
let sink_hook = Atomic.make (fun () -> ())
let set_sink_hook f = Atomic.set sink_hook f

let emit event =
  if Atomic.get enabled_flag then begin
    Mutex.lock mutex;
    match
      st.ring.(st.ring_next) <- Some event;
      st.ring_next <- (st.ring_next + 1) mod ring_cap;
      if st.ring_count < ring_cap then st.ring_count <- st.ring_count + 1;
      match st.oc with
      | Some oc ->
        (Atomic.get sink_hook) ();
        output_string oc (Report.Json.to_string (event_to_json event));
        output_char oc '\n';
        flush oc
      | None -> ()
    with
    | () -> Mutex.unlock mutex
    | exception e ->
      Mutex.unlock mutex;
      raise e
  end

let tail () =
  Mutex.lock mutex;
  let out = ref [] in
  for i = 1 to st.ring_count do
    let slot = (st.ring_next - i + (2 * ring_cap)) mod ring_cap in
    match st.ring.(slot) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  let events = !out in
  Mutex.unlock mutex;
  events

let t_now () = Clock.now_s () -. st.t0

(* Best-effort git revision without spawning a subprocess: env
   override first, then walk up from the cwd for .git/HEAD and chase
   one level of symbolic ref (loose ref file or packed-refs). *)
let git_rev () =
  match Sys.getenv_opt "LSIQ_GIT_REV" with
  | Some rev when rev <> "" -> Some rev
  | _ ->
    let read_first_line path =
      if Sys.file_exists path then
        In_channel.with_open_text path In_channel.input_line
      else None
    in
    let rec find_git_dir dir depth =
      if depth > 16 then None
      else
        let candidate = Filename.concat dir ".git" in
        if Sys.file_exists candidate && Sys.is_directory candidate then
          Some candidate
        else
          let parent = Filename.dirname dir in
          if String.equal parent dir then None
          else find_git_dir parent (depth + 1)
    in
    (match find_git_dir (Sys.getcwd ()) 0 with
    | None -> None
    | Some git_dir ->
      (match read_first_line (Filename.concat git_dir "HEAD") with
      | None -> None
      | Some head ->
        let prefix = "ref: " in
        if String.length head > String.length prefix
           && String.starts_with ~prefix head
        then begin
          let refname =
            String.sub head (String.length prefix)
              (String.length head - String.length prefix)
            |> String.trim
          in
          match read_first_line (Filename.concat git_dir refname) with
          | Some hash -> Some (String.trim hash)
          | None ->
            (* loose ref absent: scan packed-refs for "<hash> <refname>" *)
            let packed = Filename.concat git_dir "packed-refs" in
            if not (Sys.file_exists packed) then None
            else
              In_channel.with_open_text packed (fun ic ->
                  let rec scan () =
                    match In_channel.input_line ic with
                    | None -> None
                    | Some line ->
                      (match String.index_opt line ' ' with
                      | Some i
                        when String.equal
                               (String.sub line (i + 1)
                                  (String.length line - i - 1))
                               refname ->
                        Some (String.sub line 0 i)
                      | _ -> scan ())
                  in
                  scan ())
        end
        else Some (String.trim head)))

let run_start ~argv ?seed ?circuit () =
  if Atomic.get enabled_flag then
    emit
      (Run_start
         { time_unix = Unix.gettimeofday ();
           argv = Array.to_list argv;
           seed; circuit;
           git_rev = git_rev ();
           host =
             { hostname = Unix.gethostname ();
               cores = Domain.recommended_domain_count ();
               ocaml_version = Sys.ocaml_version } })

let progress ~label ?stage ~task ~items ?total ~rate ?eta_s () =
  if Atomic.get enabled_flag then
    emit (Progress { t_s = t_now (); label; stage; task; items; total; rate;
                     eta_s })

let metrics_snapshot metrics =
  if Atomic.get enabled_flag then
    emit (Metrics_snapshot { t_s = t_now (); metrics })

let headline key json =
  if Atomic.get enabled_flag then begin
    Mutex.lock mutex;
    let replaced = ref false in
    let updated =
      List.map
        (fun (k, v) ->
          if String.equal k key then begin
            replaced := true;
            (k, json)
          end
          else (k, v))
        st.headlines
    in
    st.headlines <- (if !replaced then updated else (key, json) :: updated);
    Mutex.unlock mutex
  end

let run_end ~outcome =
  if Atomic.get enabled_flag then begin
    Mutex.lock mutex;
    let results = List.rev st.headlines in
    Mutex.unlock mutex;
    emit (Run_end { t_s = t_now (); outcome; results })
  end

(* ---- reading back -------------------------------------------------- *)

let read_file path =
  match
    In_channel.with_open_text path (fun ic ->
        let rec loop lineno acc =
          match In_channel.input_line ic with
          | None -> Ok (List.rev acc)
          | Some line when String.trim line = "" -> loop (lineno + 1) acc
          | Some line ->
            (match Report.Json.parse line with
            | Error msg ->
              Error (Printf.sprintf "line %d: %s" lineno msg)
            | Ok json ->
              (match event_of_json json with
              | Error msg ->
                Error (Printf.sprintf "line %d: %s" lineno msg)
              | Ok event -> loop (lineno + 1) (event :: acc)))
        in
        loop 1 [])
  with
  | result -> result
  | exception Sys_error msg -> Error msg

(* ---- rendering ----------------------------------------------------- *)

let render_summary events =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_start = ref 0 and n_progress = ref 0 in
  let n_metrics = ref 0 and n_end = ref 0 in
  (* last progress event per (label, task), insertion-ordered *)
  let tasks : ((string * int) * (int * int option * float)) list ref =
    ref []
  in
  List.iter
    (fun event ->
      match event with
      | Run_start { time_unix; argv; seed; circuit; git_rev; host } ->
        Stdlib.incr n_start;
        addf "run: %s\n" (String.concat " " argv);
        let describe label = function
          | Some s -> addf "%s: %s\n" label s
          | None -> ()
        in
        describe "circuit" circuit;
        (match seed with Some s -> addf "seed: %d\n" s | None -> ());
        let t = Unix.gmtime time_unix in
        addf "started: %04d-%02d-%02dT%02d:%02d:%02dZ on %s (%d core%s, OCaml %s)\n"
          (t.tm_year + 1900) (t.tm_mon + 1) t.tm_mday t.tm_hour t.tm_min
          t.tm_sec host.hostname host.cores
          (if host.cores = 1 then "" else "s")
          host.ocaml_version;
        describe "git" git_rev
      | Progress { label; task; items; total; rate; _ } ->
        Stdlib.incr n_progress;
        let key = (label, task) in
        if List.mem_assoc key !tasks then
          tasks :=
            List.map
              (fun (k, v) ->
                if k = key then (k, (items, total, rate)) else (k, v))
              !tasks
        else tasks := !tasks @ [ (key, (items, total, rate)) ]
      | Metrics_snapshot _ -> Stdlib.incr n_metrics
      | Run_end { t_s; outcome; results } ->
        Stdlib.incr n_end;
        (match outcome with
        | Finished -> addf "outcome: ok after %.3f s\n" t_s
        | Interrupted -> addf "outcome: INTERRUPTED after %.3f s\n" t_s
        | Failed msg -> addf "outcome: FAILED after %.3f s: %s\n" t_s msg);
        if results <> [] then begin
          addf "headline:\n";
          List.iter
            (fun (k, v) -> addf "  %-24s %s\n" k (Report.Json.to_string v))
            results
        end)
    events;
  if !tasks <> [] then begin
    addf "progress:\n";
    (* aggregate task instances per label: total items and final state *)
    let by_label : (string * (int * int)) list ref = ref [] in
    List.iter
      (fun ((label, _), (items, _, _)) ->
        match List.assoc_opt label !by_label with
        | Some (n, sum) ->
          by_label :=
            List.map
              (fun (l, v) ->
                if String.equal l label then (l, (n + 1, sum + items))
                else (l, v))
              !by_label
        | None -> by_label := !by_label @ [ (label, (1, items)) ])
      !tasks;
    List.iter
      (fun (label, (n, sum)) ->
        if n = 1 then addf "  %-24s %d items\n" label sum
        else addf "  %-24s %d items across %d tasks\n" label sum n)
      !by_label
  end;
  addf "events: %d (%d run_start, %d progress, %d metrics_snapshot, %d run_end)\n"
    (!n_start + !n_progress + !n_metrics + !n_end)
    !n_start !n_progress !n_metrics !n_end;
  Buffer.contents buf
