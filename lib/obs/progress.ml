type t = {
  label : string;
  total : int option;
  id : int;
  items : int Atomic.t;
  created_s : float;
  (* emission state; mutated under [emit_mutex] only *)
  mutable last_emit_s : float;
  mutable last_emit_items : int;
  mutable ewma_rate : float;
  mutable emitted : int;
  mutable finished : bool;
}

let enabled_flag = Atomic.make false
let emit_mutex = Mutex.create ()
let interval = Atomic.make 0.5
let printer : (string -> unit) option ref = ref None  (* under emit_mutex *)
let next_id = Atomic.make 1

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let configure ?interval_s ?printer:p () =
  (match interval_s with
  | Some s -> Atomic.set interval (Float.max 0.0 s)
  | None -> ());
  match p with
  | Some p ->
    Mutex.lock emit_mutex;
    printer := p;
    Mutex.unlock emit_mutex
  | None -> ()

let dummy =
  { label = ""; total = None; id = 0; items = Atomic.make 0; created_s = 0.0;
    last_emit_s = 0.0; last_emit_items = 0; ewma_rate = 0.0; emitted = 0;
    finished = true }

let start ~label ?total () =
  if not (Atomic.get enabled_flag) then dummy
  else
    let now = Clock.now_s () in
    { label; total; id = Atomic.fetch_and_add next_id 1;
      items = Atomic.make 0; created_s = now; last_emit_s = now;
      last_emit_items = 0; ewma_rate = 0.0; emitted = 0; finished = false }

(* EWMA weight for the newest inter-emission rate: heavy enough to
   track ramp-up/slow-down, light enough to damp per-block jitter. *)
let ewma_alpha = 0.3

let percent items total = 100.0 *. float_of_int items /. float_of_int total

(* Must be called with [emit_mutex] held. *)
let do_emit t items ~now =
  let dt = now -. t.last_emit_s in
  let delta = items - t.last_emit_items in
  let inst = if dt > 0.0 then float_of_int delta /. dt else t.ewma_rate in
  let rate =
    if t.emitted = 0 then inst
    else (ewma_alpha *. inst) +. ((1.0 -. ewma_alpha) *. t.ewma_rate)
  in
  let eta_s =
    match t.total with
    | Some total when rate > 0.0 ->
      Some (float_of_int (max 0 (total - items)) /. rate)
    | Some _ | None -> None
  in
  t.ewma_rate <- rate;
  t.last_emit_s <- now;
  t.last_emit_items <- items;
  t.emitted <- t.emitted + 1;
  Journal.progress ~label:t.label ~task:t.id ~items ?total:t.total ~rate
    ?eta_s ();
  match !printer with
  | None -> ()
  | Some print ->
    let line =
      match t.total with
      | Some total ->
        Printf.sprintf "progress: %-24s %d/%d (%5.1f%%) %.0f/s%s\n" t.label
          items total (percent items total) rate
          (match eta_s with
          | Some e -> Printf.sprintf " eta %.1fs" e
          | None -> "")
      | None -> Printf.sprintf "progress: %-24s %d %.0f/s\n" t.label items rate
    in
    print line

let step t n =
  if Atomic.get enabled_flag && t != dummy && n > 0 then begin
    let items = n + Atomic.fetch_and_add t.items n in
    (* unsynchronized throttle pre-check: a stale [last_emit_s] can only
       delay an emission by one step, never corrupt state *)
    let now = Clock.now_s () in
    if now -. t.last_emit_s >= Atomic.get interval then begin
      Mutex.lock emit_mutex;
      (* recheck under the lock: another shard may have just emitted,
         and the monotone guard drops counts older than the last emit *)
      if
        (not t.finished)
        && items > t.last_emit_items
        && now -. t.last_emit_s >= Atomic.get interval
      then do_emit t items ~now;
      Mutex.unlock emit_mutex
    end
  end

let finish t =
  if Atomic.get enabled_flag && t != dummy then begin
    Mutex.lock emit_mutex;
    if not t.finished then begin
      t.finished <- true;
      (* close out loudly only if the task ever spoke or throttling is
         off — a sub-interval micro-run (e.g. a single-pattern fsim
         call inside PODEM) stays silent instead of spamming *)
      if t.emitted > 0 || Atomic.get interval = 0.0 then
        do_emit t (Atomic.get t.items) ~now:(Clock.now_s ())
    end;
    Mutex.unlock emit_mutex
  end

let stage ~label ~stage ~index ~total =
  if Atomic.get enabled_flag then begin
    Mutex.lock emit_mutex;
    Journal.progress ~label ~stage ~task:0 ~items:index ~total ~rate:0.0 ();
    (match !printer with
    | Some print ->
      print (Printf.sprintf "progress: %-24s [%d/%d] %s\n" label index total
               stage)
    | None -> ());
    Mutex.unlock emit_mutex
  end
