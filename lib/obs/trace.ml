(* Lock-free-on-the-hot-path span tracer.

   Each domain records into a private buffer reached through
   domain-local storage; the only cross-domain synchronization is a
   mutex taken once per (domain, trace-epoch) to register the buffer,
   and an atomic flag read on every call.  Disabled tracing therefore
   costs one atomic load per instrumentation point. *)

type rec_span = {
  r_name : string;
  r_seq : int;
  r_depth : int;
  r_parent : int;
  mutable r_t0 : float;
  mutable r_t1 : float;
  mutable r_counters : (string * float) list;  (* newest first *)
}

type dbuf = {
  d_id : int;      (* raw Domain.self id, for stable cross-run ordering *)
  d_epoch : int;   (* trace epoch this buffer belongs to *)
  mutable d_spans : rec_span array;
  mutable d_len : int;
  mutable d_stack : int list;  (* indices of open spans, innermost first *)
}

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0
let origin = Atomic.make (Clock.now_s ())
let registry_mutex = Mutex.create ()
let registry : dbuf list ref = ref []

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag
let now_s () = Clock.now_s () -. Atomic.get origin

let reset () =
  Mutex.lock registry_mutex;
  registry := [];
  Mutex.unlock registry_mutex;
  Atomic.incr epoch;
  Atomic.set origin (Clock.now_s ())

let dummy =
  { r_name = ""; r_seq = -1; r_depth = 0; r_parent = -1; r_t0 = 0.0;
    r_t1 = 0.0; r_counters = [] }

let dls_key : dbuf option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let buffer () =
  let cell = Domain.DLS.get dls_key in
  let ep = Atomic.get epoch in
  match !cell with
  | Some b when b.d_epoch = ep -> b
  | _ ->
    let b =
      { d_id = (Domain.self () :> int); d_epoch = ep;
        d_spans = Array.make 32 dummy; d_len = 0; d_stack = [] }
    in
    Mutex.lock registry_mutex;
    registry := b :: !registry;
    Mutex.unlock registry_mutex;
    cell := Some b;
    b

let push b name =
  let depth, parent =
    match b.d_stack with
    | [] -> (0, -1)
    | p :: _ -> (b.d_spans.(p).r_depth + 1, p)
  in
  if b.d_len = Array.length b.d_spans then begin
    let bigger = Array.make (2 * b.d_len) dummy in
    Array.blit b.d_spans 0 bigger 0 b.d_len;
    b.d_spans <- bigger
  end;
  let s =
    { r_name = name; r_seq = b.d_len; r_depth = depth; r_parent = parent;
      r_t0 = 0.0; r_t1 = neg_infinity; r_counters = [] }
  in
  b.d_spans.(b.d_len) <- s;
  b.d_stack <- b.d_len :: b.d_stack;
  b.d_len <- b.d_len + 1;
  s.r_t0 <- now_s ()

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = buffer () in
    push b name;
    let finish () =
      match b.d_stack with
      | i :: rest ->
        b.d_spans.(i).r_t1 <- now_s ();
        b.d_stack <- rest
      | [] -> ()
    in
    Fun.protect ~finally:finish f
  end

let add key v =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    match b.d_stack with
    | [] -> ()
    | i :: _ ->
      let s = b.d_spans.(i) in
      let rec bump = function
        | [] -> None
        | (k, x) :: rest when String.equal k key -> Some ((k, x +. v) :: rest)
        | kv :: rest ->
          (match bump rest with Some r -> Some (kv :: r) | None -> None)
      in
      (match bump s.r_counters with
      | Some updated -> s.r_counters <- updated
      | None -> s.r_counters <- (key, v) :: s.r_counters)
  end

let add_int key n = add key (float_of_int n)

type span = {
  name : string;
  tid : int;
  seq : int;
  depth : int;
  parent : int;
  t0 : float;
  t1 : float;
  counters : (string * float) list;
}

let spans () =
  let bufs =
    Mutex.lock registry_mutex;
    let l = !registry in
    Mutex.unlock registry_mutex;
    List.sort (fun a b -> compare a.d_id b.d_id) l
  in
  List.concat
    (List.mapi
       (fun tid b ->
         let out = ref [] in
         for i = b.d_len - 1 downto 0 do
           let r = b.d_spans.(i) in
           if r.r_t1 > neg_infinity then
             out :=
               { name = r.r_name; tid; seq = r.r_seq; depth = r.r_depth;
                 parent = r.r_parent; t0 = r.r_t0; t1 = r.r_t1;
                 counters = List.rev r.r_counters }
               :: !out
         done;
         !out)
       bufs)

let to_chrome_json () =
  let event s =
    let base =
      [ ("name", Report.Json.String s.name);
        ("cat", Report.Json.String "lsiq");
        ("ph", Report.Json.String "X");
        ("ts", Report.Json.Float (s.t0 *. 1e6));
        ("dur", Report.Json.Float (max 0.0 (s.t1 -. s.t0) *. 1e6));
        ("pid", Report.Json.Int 1);
        ("tid", Report.Json.Int s.tid) ]
    in
    let args =
      match s.counters with
      | [] -> []
      | counters ->
        [ ("args",
           Report.Json.Obj
             (List.map (fun (k, v) -> (k, Report.Json.Float v)) counters)) ]
    in
    Report.Json.Obj (base @ args)
  in
  Report.Json.Obj
    [ ("traceEvents", Report.Json.List (List.map event (spans ())));
      ("displayTimeUnit", Report.Json.String "ms") ]

let format_counter v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let summary_tree () =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let last_tid = ref (-1) in
  List.iter
    (fun s ->
      if s.tid <> !last_tid then begin
        addf "domain %d\n" s.tid;
        last_tid := s.tid
      end;
      let label = String.make (2 * (s.depth + 1)) ' ' ^ s.name in
      addf "%-44s %10.3f ms" label (1e3 *. (s.t1 -. s.t0));
      List.iter (fun (k, v) -> addf "  %s=%s" k (format_counter v)) s.counters;
      Buffer.add_char buf '\n')
    (spans ());
  Buffer.contents buf

let tree_shape () =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "d%d %s%s\n" s.tid (String.make (2 * s.depth) ' ')
           s.name))
    (spans ());
  Buffer.contents buf
