(** Rate/ETA progress tracker for the hot loops.

    A task is created per instrumented loop ([start]), stepped at batch
    granularity — per 64-pattern block, per fault target, per die —
    and closed with [finish].  Steps update an atomic item counter, so
    concurrent shards (the Par engine) merge deterministically: the
    count is exact regardless of interleaving, and emission happens
    under a mutex with a monotonicity guard so observers never see
    items-done go backwards within a task.

    Emission is wall-clock throttled: at most one event per task per
    [interval_s] (0 means every step), plus an unthrottled final event
    at [finish] when anything was emitted before or the interval is 0.
    Each emission carries an EWMA throughput and, when the total is
    known, an ETA.  Events go to the {!Journal} (when enabled) and,
    when configured, as lines to a printer (stderr by default).

    [stage] is the one-shot variant for pipeline stage boundaries: it
    bypasses throttling (stages are rare) and tags the event with the
    stage name.

    Disabled, [step] costs one atomic load plus a physical-equality
    check and allocates nothing; [start] returns a shared dummy task
    without allocating. *)

type t

val set_enabled : bool -> unit
val enabled : unit -> bool

val configure : ?interval_s:float -> ?printer:(string -> unit) option -> unit -> unit
(** [interval_s] is the minimum wall-clock gap between emissions per
    task (default 0.5; 0 emits on every step).  [printer] is where
    human-readable lines (newline-terminated) go: [Some f] routes them
    to [f], [None] silences them (journal events still flow).  Omitting
    a parameter leaves its current setting untouched. *)

val start : label:string -> ?total:int -> unit -> t
(** New task.  Returns the no-op dummy when disabled. *)

val step : t -> int -> unit
(** Record [n] more items done.  Hot-path safe: one atomic load when
    disabled. *)

val finish : t -> unit
(** Emit the final state (unthrottled) and retire the task. *)

val stage : label:string -> stage:string -> index:int -> total:int -> unit
(** One-shot stage-boundary tick, e.g.
    [stage ~label:"pipeline" ~stage:"atpg" ~index:4 ~total:9]. *)
