(** Bench history: durable JSONL of BENCH_fsim.json documents plus a
    noise-aware comparison between two documents.

    Each history line is [{"time_unix": t, "bench": doc}] where [doc]
    is the full BENCH_fsim.json object.  Entries are keyed by host
    context ({!host_key}) so a laptop run is never compared against a
    CI-container baseline.

    Comparison extracts a flat metric list from the known blocks
    ([runs], [ndetect], [analysis], [testability]) and classifies each
    pair:

    - [Time] metrics use min-of-repeats (the least-perturbed sample)
      and regress only when the current min exceeds the baseline by
      both a ratio and an absolute floor — timing noise on sub-ms
      blocks must not fail CI.
    - [Exact] metrics (coverage, fault/pattern counts) are
      deterministic at fixed seed, so any change is flagged. *)

type kind = Time | Exact

type metric = { block : string; name : string; kind : kind; value : float }

type verdict = Same | Faster | Slower | Changed | Added | Removed

type row = {
  r_block : string;
  r_name : string;
  r_kind : kind;
  r_base : float option;
  r_cur : float option;
  r_verdict : verdict;
}

val host_key : Report.Json.t -> string
(** Comparison key of a bench document: cores, OCaml version and word
    size from its ["host"] block (["unknown-host"] if absent). *)

val metrics_of_doc : Report.Json.t -> metric list
(** Flatten the comparable metrics out of a BENCH_fsim.json document.
    Unknown blocks are ignored, so old histories stay readable. *)

val entry : time_unix:float -> Report.Json.t -> Report.Json.t
(** Wrap a bench document as one history line. *)

val doc_of_entry : Report.Json.t -> Report.Json.t option
(** The bench document inside a history line. *)

val append : path:string -> Report.Json.t -> unit
(** Append one history line (a value built by {!entry}) to [path],
    creating the file when missing. *)

val load : string -> (Report.Json.t list, string) result
(** All history lines, oldest first; error names the first bad line.
    A missing file is an empty history, not an error. *)

val compare_docs :
  ?time_ratio:float ->
  ?time_floor_s:float ->
  baseline:Report.Json.t ->
  current:Report.Json.t ->
  unit ->
  row list
(** Classify every metric present in either document.  A [Time] metric
    is [Slower] when [cur > base *. time_ratio] (default 1.5) {e and}
    [cur -. base > time_floor_s] (default 2ms); [Faster] symmetric;
    an [Exact] mismatch is [Changed]. *)

val regressions : row list -> row list
(** The rows CI should fail on: [Slower] and [Changed]. *)

val render : row list -> string
(** Comparison table, one row per metric. *)
