let both_polarities site =
  [ { Fault.site; polarity = Fault.Stuck_at_0 };
    { Fault.site; polarity = Fault.Stuck_at_1 } ]

let all (c : Circuit.Netlist.t) =
  let faults = ref [] in
  let n = Circuit.Netlist.num_nodes c in
  for id = n - 1 downto 0 do
    Array.iteri
      (fun pin _src ->
        faults := both_polarities (Fault.Branch { gate = id; pin }) @ !faults)
      c.fanins.(id);
    faults := both_polarities (Fault.Stem id) @ !faults
  done;
  Array.of_list !faults

let checkpoint (c : Circuit.Netlist.t) =
  let faults = ref [] in
  let n = Circuit.Netlist.num_nodes c in
  for id = n - 1 downto 0 do
    Array.iteri
      (fun pin src ->
        if Array.length c.fanouts.(src) > 1 then
          faults := both_polarities (Fault.Branch { gate = id; pin }) @ !faults)
      c.fanins.(id);
    if c.kinds.(id) = Circuit.Gate.Input then
      faults := both_polarities (Fault.Stem id) @ !faults
  done;
  Array.of_list !faults

let stems_only (c : Circuit.Netlist.t) =
  let n = Circuit.Netlist.num_nodes c in
  let faults = ref [] in
  for id = n - 1 downto 0 do
    faults := both_polarities (Fault.Stem id) @ !faults
  done;
  Array.of_list !faults

let count c = 2 * Circuit.Netlist.line_count c

let collapse_dominance (c : Circuit.Netlist.t) universe =
  Collapse.dominance c (Collapse.equivalence c universe)

let exclude_untestable universe ~untestable =
  if Array.length untestable = 0 then universe
  else begin
    let dropped = Hashtbl.create (Array.length untestable) in
    Array.iter (fun fault -> Hashtbl.replace dropped fault ()) untestable;
    let kept =
      Array.to_list universe
      |> List.filter (fun fault -> not (Hashtbl.mem dropped fault))
    in
    Array.of_list kept
  end
