type t = {
  universe : Fault.t array;
  class_index : (Fault.t, int) Hashtbl.t;  (* fault -> class id *)
  reps : Fault.t array;                    (* class id -> representative *)
  members : Fault.t list array;            (* class id -> members *)
}

(* Union-find with path compression. *)
let find parent i =
  let rec chase i =
    if parent.(i) = i then i
    else begin
      parent.(i) <- parent.(parent.(i));
      chase parent.(i)
    end
  in
  chase i

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

let equivalence (c : Circuit.Netlist.t) universe =
  let index = Hashtbl.create (Array.length universe) in
  Array.iteri (fun i fault -> Hashtbl.replace index fault i) universe;
  let parent = Array.init (Array.length universe) (fun i -> i) in
  let merge fa fb =
    match (Hashtbl.find_opt index fa, Hashtbl.find_opt index fb) with
    | Some a, Some b -> union parent a b
    | None, _ | _, None -> ()
    (* A reduced universe (e.g. checkpoint) may omit one side; the rule
       then simply does not apply. *)
  in
  let n = Circuit.Netlist.num_nodes c in
  for gate = 0 to n - 1 do
    let fanins = c.fanins.(gate) in
    (* Branch = stem of a fanout-1 driver.  The driver must not itself
       be a primary output: a stem fault on a PO is directly observable
       while the branch fault is not, so they are not equivalent. *)
    Array.iteri
      (fun pin src ->
        if Array.length c.fanouts.(src) = 1 && not (Circuit.Netlist.is_output c src)
        then begin
          merge
            { Fault.site = Branch { gate; pin }; polarity = Stuck_at_0 }
            { Fault.site = Stem src; polarity = Stuck_at_0 };
          merge
            { Fault.site = Branch { gate; pin }; polarity = Stuck_at_1 }
            { Fault.site = Stem src; polarity = Stuck_at_1 }
        end)
      fanins;
    (* Gate-local controlling-value equivalences. *)
    let merge_all_pins input_polarity output_polarity =
      Array.iteri
        (fun pin _src ->
          merge
            { Fault.site = Branch { gate; pin }; polarity = input_polarity }
            { Fault.site = Stem gate; polarity = output_polarity })
        fanins
    in
    (match c.kinds.(gate) with
    | Circuit.Gate.And -> merge_all_pins Fault.Stuck_at_0 Fault.Stuck_at_0
    | Circuit.Gate.Nand -> merge_all_pins Fault.Stuck_at_0 Fault.Stuck_at_1
    | Circuit.Gate.Or -> merge_all_pins Fault.Stuck_at_1 Fault.Stuck_at_1
    | Circuit.Gate.Nor -> merge_all_pins Fault.Stuck_at_1 Fault.Stuck_at_0
    | Circuit.Gate.Buf ->
      merge_all_pins Fault.Stuck_at_0 Fault.Stuck_at_0;
      merge_all_pins Fault.Stuck_at_1 Fault.Stuck_at_1
    | Circuit.Gate.Not ->
      merge_all_pins Fault.Stuck_at_0 Fault.Stuck_at_1;
      merge_all_pins Fault.Stuck_at_1 Fault.Stuck_at_0
    | Circuit.Gate.Input | Circuit.Gate.Const0 | Circuit.Gate.Const1
    | Circuit.Gate.Xor | Circuit.Gate.Xnor -> ())
  done;
  (* Number the classes in first-member order. *)
  let class_of_root = Hashtbl.create 64 in
  let class_index = Hashtbl.create (Array.length universe) in
  let reps = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun i fault ->
      let root = find parent i in
      let cls =
        match Hashtbl.find_opt class_of_root root with
        | Some cls -> cls
        | None ->
          let cls = !count in
          incr count;
          Hashtbl.add class_of_root root cls;
          reps := fault :: !reps;
          cls
      in
      Hashtbl.replace class_index fault cls)
    universe;
  let reps = Array.of_list (List.rev !reps) in
  let members = Array.make (Array.length reps) [] in
  (* Collect members in reverse universe order, then restore order. *)
  for i = Array.length universe - 1 downto 0 do
    let fault = universe.(i) in
    let cls = Hashtbl.find class_index fault in
    members.(cls) <- fault :: members.(cls)
  done;
  { universe; class_index; reps; members }

let representatives t = t.reps

let class_count t = Array.length t.reps

let class_of t fault =
  match Hashtbl.find_opt t.class_index fault with
  | Some cls -> cls
  | None -> raise Not_found

let class_members t cls = t.members.(cls)

let collapse_ratio t =
  float_of_int (Array.length t.reps) /. float_of_int (Array.length t.universe)

(* A test for input pin j stuck-at-(not controlling) must put the
   controlling value on pin j alone; the good output is then
   [controlling XOR inverts] and the fault flips it — exactly the
   condition that detects the output stuck at the complement of that
   value.  Hence that output fault is dominated by every such input
   fault and its whole equivalence class can be dropped. *)
let iter_dominated (c : Circuit.Netlist.t) t f =
  let n = Circuit.Netlist.num_nodes c in
  for gate = 0 to n - 1 do
    if Array.length c.fanins.(gate) >= 2 then begin
      match Circuit.Gate.controlling_value c.kinds.(gate) with
      | None -> ()
      | Some controlling ->
        let forced_output = controlling <> Circuit.Gate.inverts c.kinds.(gate) in
        let dominated =
          { Fault.site = Fault.Stem gate;
            polarity =
              (if forced_output then Fault.Stuck_at_0 else Fault.Stuck_at_1) }
        in
        (match Hashtbl.find_opt t.class_index dominated with
        | Some cls ->
          let dominators =
            Array.to_list c.fanins.(gate)
            |> List.mapi (fun pin _src ->
                   { Fault.site = Fault.Branch { gate; pin };
                     polarity =
                       (if controlling then Fault.Stuck_at_0
                        else Fault.Stuck_at_1) })
          in
          f cls dominators
        | None -> ())
    end
  done

let dominance (c : Circuit.Netlist.t) t =
  let dropped = Array.make (Array.length t.reps) false in
  iter_dominated c t (fun cls _dominators -> dropped.(cls) <- true);
  Array.to_list t.reps
  |> List.filteri (fun cls _ -> not dropped.(cls))
  |> Array.of_list

let dominance_drops (c : Circuit.Netlist.t) t =
  let acc = ref [] in
  let seen = Array.make (Array.length t.reps) false in
  iter_dominated c t (fun cls dominators ->
      if not seen.(cls) then begin
        seen.(cls) <- true;
        acc := (t.reps.(cls), dominators) :: !acc
      end);
  List.rev !acc
