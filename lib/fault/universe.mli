(** Enumeration of the stuck-at fault universe.

    [all] is the classical uncollapsed universe — two faults per line,
    one line per node stem plus one per gate input pin — whose size is
    [2 * Netlist.line_count].  [checkpoint] is the reduced set justified
    by the checkpoint theorem (primary inputs and fanout branches
    suffice for fanout-free-region coverage in irredundant circuits). *)

val all : Circuit.Netlist.t -> Fault.t array
(** Every line, both polarities.  Order is deterministic: stems in node
    order, then branches in (gate, pin) order; sa0 before sa1. *)

val checkpoint : Circuit.Netlist.t -> Fault.t array
(** Faults on primary-input stems and on fanout branches (input pins
    whose driver has fanout > 1), both polarities. *)

val stems_only : Circuit.Netlist.t -> Fault.t array
(** Faults on node outputs only — the coarse universe some early fault
    simulators used; kept for ablation comparisons. *)

val count : Circuit.Netlist.t -> int
(** [Array.length (all c)], without allocating the array. *)

val collapse_dominance : Circuit.Netlist.t -> Fault.t array -> Fault.t array
(** Equivalence then dominance collapsing in one step: the surviving
    class representatives of [Collapse.dominance].  This is the
    smallest universe the simulator needs to target for full detection
    credit on irredundant circuits; like [exclude_untestable] it
    shrinks the Eq. 4 denominator, but by provable detection
    containment rather than by untestability proofs — the two knobs
    compose. *)

val exclude_untestable : Fault.t array -> untestable:Fault.t array -> Fault.t array
(** Remove the (statically proven untestable) faults from a universe,
    preserving order.  Redundant faults cap measured coverage below 1
    and inflate the denominator of the paper's [f = m/N] (Eq. 4);
    excluding them yields the corrected universe that coverage,
    sampling and the reject-rate/[n0] fits should run on.  Faults in
    [untestable] absent from [universe] are ignored, so the same
    untestable set works for the full and the collapsed universe. *)
