(** Structural equivalence fault collapsing.

    Two faults are equivalent when every test detecting one detects the
    other; simulating one representative per equivalence class is then
    enough.  The classical local rules implemented here:

    - AND: any input sa0 ≡ output sa0; NAND: input sa0 ≡ output sa1;
      OR: any input sa1 ≡ output sa1; NOR: input sa1 ≡ output sa0;
      BUF/NOT: both input faults map through to the output.
    - An input pin whose driver has fanout 1 is the same electrical line
      as the driver's stem, so branch faults merge with stem faults.

    Equivalences compose transitively; the implementation is a
    union-find over the fault universe. *)

type t

val equivalence : Circuit.Netlist.t -> Fault.t array -> t
(** Compute equivalence classes of the given universe. *)

val representatives : t -> Fault.t array
(** One canonical fault per class (the first member in universe order). *)

val class_count : t -> int

val class_of : t -> Fault.t -> int
(** Class index of a fault.  Raises [Not_found] for a fault outside the
    universe that was collapsed. *)

val class_members : t -> int -> Fault.t list
(** All faults of one class. *)

val collapse_ratio : t -> float
(** |classes| / |universe|; typically 0.5–0.7 for random logic. *)

val dominance : Circuit.Netlist.t -> t -> Fault.t array
(** Dominance collapsing on top of the equivalence classes: for every
    gate with a controlling value, the output fault produced by an
    input at its controlling value complemented — out/sa1 for AND,
    out/sa0 for NAND and OR, out/sa1 for NOR — is detected by {e any}
    test for one of the gate's corresponding input faults, so its whole
    equivalence class is dropped.  Returns the representatives of the
    remaining classes.

    Valid for fault {e detection} only (never diagnosis), and — as in
    the textbooks — exact only for irredundant circuits: if every
    dominator of a dropped fault is redundant, a test set complete for
    the collapsed set may miss it.  Property-tested on irredundant
    circuits: a pattern set detecting all dominance representatives
    detects every detectable fault of the full universe. *)

val dominance_drops : Circuit.Netlist.t -> t -> (Fault.t * Fault.t list) list
(** The evidence behind [dominance]: every class representative it
    drops, paired with the gate-input faults that dominate it (any test
    for one of those inputs detects the dropped fault).  Property tests
    check exactly this pairing pattern-by-pattern. *)
