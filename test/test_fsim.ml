(* Tests for the fault simulators: serial, PPSFP, coverage bookkeeping,
   and the multiple-fault machine. *)

module F = Faults.Fault
module N = Circuit.Netlist

let exhaustive_patterns width =
  Array.init (1 lsl width) (fun v ->
      Array.init width (fun i -> (v lsr i) land 1 = 1))

let random_patterns ~seed ~count c =
  let rng = Stats.Rng.create ~seed () in
  Tpg.Random_tpg.uniform rng c ~count

(* Brute-force oracle for a stem fault: per-pattern faulty simulation
   via the reference simulator with an override. *)
let stem_detected_oracle c node polarity pattern =
  let forced = F.polarity_bit polarity in
  let good = Logicsim.Refsim.eval c pattern in
  let faulty = Logicsim.Refsim.eval_with_overrides c ~overrides:[ (node, forced) ] pattern in
  Array.exists (fun out -> good.(out) <> faulty.(out)) c.N.outputs

let test_serial_matches_oracle_on_stems () =
  let c = Circuit.Generators.c17 () in
  let patterns = exhaustive_patterns 5 in
  for node = 0 to N.num_nodes c - 1 do
    List.iter
      (fun polarity ->
        let fault = { F.site = F.Stem node; polarity } in
        let results = Fsim.Serial.run c [| fault |] patterns in
        let expected =
          Array.to_list patterns
          |> List.mapi (fun i p -> (i, stem_detected_oracle c node polarity p))
          |> List.find_opt (fun (_, d) -> d)
          |> Option.map fst
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s first detection" (F.to_string c fault))
          true
          (results.(0) = expected))
      [ F.Stuck_at_0; F.Stuck_at_1 ]
  done

let test_ppsfp_equals_serial_c17 () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns 5 in
  Alcotest.(check bool) "identical results" true
    (Fsim.Serial.run c universe patterns = Fsim.Ppsfp.run c universe patterns)

let test_ppsfp_equals_serial_random () =
  List.iter
    (fun seed ->
      let c = Circuit.Generators.random_circuit ~inputs:10 ~gates:150 ~outputs:8 ~seed in
      let universe = Faults.Universe.all c in
      let patterns = random_patterns ~seed:(seed * 11) ~count:100 c in
      let serial = Fsim.Serial.run c universe patterns in
      let ppsfp = Fsim.Ppsfp.run c universe patterns in
      Array.iteri
        (fun i a ->
          if a <> ppsfp.(i) then
            Alcotest.failf "disagreement on %s" (F.to_string c universe.(i)))
        serial)
    [ 1; 2; 3; 4 ]

let test_ppsfp_equals_serial_arithmetic () =
  let c = Circuit.Generators.array_multiplier ~bits:4 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:9 ~count:96 c in
  Alcotest.(check bool) "mul4 identical" true
    (Fsim.Serial.run c universe patterns = Fsim.Ppsfp.run c universe patterns)

let test_c17_full_coverage_exhaustive () =
  (* c17 is irredundant: exhaustive patterns detect everything. *)
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let profile = Fsim.Coverage.profile c universe (exhaustive_patterns 5) in
  Alcotest.(check int) "all detected" (Array.length universe)
    (Fsim.Coverage.detected_count profile);
  Alcotest.(check (float 1e-12)) "coverage 1" 1.0 (Fsim.Coverage.final_coverage profile)

let test_first_detection_is_minimal () =
  (* The reported index must be the first detecting pattern: re-running
     with the pattern prefix up to (but excluding) it finds nothing. *)
  let c = Circuit.Generators.ripple_carry_adder ~bits:3 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:3 ~count:40 c in
  let results = Fsim.Ppsfp.run c universe patterns in
  Array.iteri
    (fun i result ->
      match result with
      | None -> ()
      | Some k ->
        if k > 0 && i mod 7 = 0 then begin
          let prefix = Array.sub patterns 0 k in
          let again = Fsim.Ppsfp.run c [| universe.(i) |] prefix in
          Alcotest.(check bool) "undetected by prefix" true (again.(0) = None);
          let upto = Array.sub patterns 0 (k + 1) in
          let again = Fsim.Ppsfp.run c [| universe.(i) |] upto in
          Alcotest.(check bool) "detected at k" true (again.(0) = Some k)
        end)
    results

let test_coverage_curve_monotone () =
  let c = Circuit.Generators.alu ~bits:4 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:21 ~count:80 c in
  let profile = Fsim.Coverage.profile c universe patterns in
  let curve = Fsim.Coverage.curve profile in
  Alcotest.(check int) "one point per pattern" 80 (Array.length curve);
  Array.iteri
    (fun i (k, f) ->
      Alcotest.(check int) "pattern index" (i + 1) k;
      Alcotest.(check bool) "coverage in [0,1]" true (f >= 0.0 && f <= 1.0);
      if i > 0 then
        Alcotest.(check bool) "monotone" true (snd curve.(i - 1) <= f))
    curve;
  Alcotest.(check (float 1e-12)) "curve end = final coverage"
    (Fsim.Coverage.final_coverage profile)
    (snd curve.(79))

let test_coverage_after_consistent () =
  let c = Circuit.Generators.parity_tree ~bits:8 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:5 ~count:50 c in
  let profile = Fsim.Coverage.profile c universe patterns in
  let curve = Fsim.Coverage.curve profile in
  Array.iter
    (fun (k, f) ->
      Alcotest.(check (float 1e-12)) "coverage_after agrees" f
        (Fsim.Coverage.coverage_after profile k))
    curve

let test_run_curve_checkpoints () =
  let c = Circuit.Generators.comparator ~bits:4 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:6 ~count:130 c in
  let results, checkpoints = Fsim.Ppsfp.run_curve c universe patterns in
  Alcotest.(check int) "3 blocks" 3 (List.length checkpoints);
  let detected =
    Array.fold_left (fun acc d -> if d <> None then acc + 1 else acc) 0 results
  in
  (match List.rev checkpoints with
  | (patterns_applied, total) :: _ ->
    Alcotest.(check int) "final total" detected total;
    Alcotest.(check int) "all patterns applied" 130 patterns_applied
  | [] -> Alcotest.fail "no checkpoints");
  (* Checkpoints are cumulative and non-decreasing. *)
  let rec check_monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) "monotone" true (a <= b);
      check_monotone rest
    | [ _ ] | [] -> ()
  in
  check_monotone checkpoints

let test_undetected_listing () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  (* One constant pattern cannot detect everything. *)
  let profile = Fsim.Coverage.profile c universe [| Array.make 5 false |] in
  let missing = Fsim.Coverage.undetected profile universe in
  Alcotest.(check int) "count consistent"
    (Array.length universe - Fsim.Coverage.detected_count profile)
    (List.length missing)

(* ----------------------------- deductive ---------------------------- *)

let test_deductive_equals_serial_c17 () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns 5 in
  Alcotest.(check bool) "identical results" true
    (Fsim.Serial.run c universe patterns = Fsim.Deductive.run c universe patterns)

let test_deductive_equals_serial_random () =
  List.iter
    (fun seed ->
      let c = Circuit.Generators.random_circuit ~inputs:9 ~gates:120 ~outputs:6 ~seed in
      let universe = Faults.Universe.all c in
      let patterns = random_patterns ~seed:(seed * 3) ~count:80 c in
      let serial = Fsim.Serial.run c universe patterns in
      let deductive = Fsim.Deductive.run c universe patterns in
      Array.iteri
        (fun i a ->
          if a <> deductive.(i) then
            Alcotest.failf "deductive disagrees on %s (serial %s, deductive %s)"
              (F.to_string c universe.(i))
              (match a with Some k -> string_of_int k | None -> "-")
              (match deductive.(i) with Some k -> string_of_int k | None -> "-"))
        serial)
    [ 5; 6; 7 ]

let test_deductive_equals_serial_arithmetic () =
  let c = Circuit.Generators.alu ~bits:3 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:17 ~count:64 c in
  Alcotest.(check bool) "alu identical" true
    (Fsim.Serial.run c universe patterns = Fsim.Deductive.run c universe patterns)

let test_concurrent_equals_serial () =
  List.iter
    (fun seed ->
      let c = Circuit.Generators.random_circuit ~inputs:9 ~gates:120 ~outputs:6 ~seed in
      let universe = Faults.Universe.all c in
      let rng = Stats.Rng.create ~seed:(seed * 5) () in
      let rand = Tpg.Random_tpg.uniform rng c ~count:70 in
      let walk = Tpg.Random_tpg.random_walk rng c ~count:70 () in
      List.iter
        (fun patterns ->
          Alcotest.(check bool) "concurrent = serial" true
            (Fsim.Serial.run c universe patterns
            = Fsim.Concurrent.run c universe patterns))
        [ rand; walk ])
    [ 8; 9; 10 ]

let test_concurrent_dropping_across_patterns () =
  (* Faults detected early must not be re-reported nor disturb later
     detections, even though dead entries linger in unchanged cones. *)
  let c = Circuit.Generators.alu ~bits:3 in
  let universe = Faults.Universe.all c in
  let rng = Stats.Rng.create ~seed:12 () in
  let walk = Tpg.Random_tpg.random_walk rng c ~count:120 () in
  let serial = Fsim.Serial.run c universe walk in
  let concurrent = Fsim.Concurrent.run c universe walk in
  Alcotest.(check bool) "identical with dropping" true (serial = concurrent)

let test_deductive_via_coverage_engine () =
  let c = Circuit.Generators.parity_tree ~bits:6 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:23 ~count:32 c in
  let a = Fsim.Coverage.profile ~engine:Fsim.Coverage.Deductive c universe patterns in
  let b = Fsim.Coverage.profile ~engine:Fsim.Coverage.Serial c universe patterns in
  Alcotest.(check bool) "profiles equal" true
    (a.Fsim.Coverage.first_detection = b.Fsim.Coverage.first_detection)

(* ----------------------------- multicore ---------------------------- *)

let test_par_equals_ppsfp_c17 () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns 5 in
  let reference = Fsim.Ppsfp.run c universe patterns in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "%d domains" domains)
        true
        (Fsim.Par.run ~domains c universe patterns = reference))
    [ 1; 2; 3; 8 ]

let test_par_equals_ppsfp_odd_pattern_counts () =
  (* Pattern counts off the 64 boundary exercise the partial-block live
     mask; domain counts above the shard-able fault count exercise the
     clamp. *)
  List.iter
    (fun count ->
      let c =
        Circuit.Generators.random_circuit ~inputs:10 ~gates:180 ~outputs:8
          ~seed:(count + 1)
      in
      let universe = Faults.Universe.all c in
      let patterns = random_patterns ~seed:(count * 7 + 1) ~count c in
      let reference = Fsim.Ppsfp.run c universe patterns in
      List.iter
        (fun domains ->
          if Fsim.Par.run ~domains c universe patterns <> reference then
            Alcotest.failf "divergence at %d patterns, %d domains" count domains)
        [ 1; 2; 4; 5; 8 ])
    [ 1; 63; 65; 100; 130 ]

let test_par_collapsed_universe_bit_identical () =
  let c = Circuit.Generators.random_circuit ~inputs:32 ~gates:2000 ~outputs:24 ~seed:3 in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  let universe = Faults.Collapse.representatives classes in
  let patterns = random_patterns ~seed:8 ~count:130 c in
  Alcotest.(check bool) "bit-identical on 2k gates / 4 domains" true
    (Fsim.Par.run ~domains:4 c universe patterns = Fsim.Ppsfp.run c universe patterns)

let test_par_via_coverage_engine () =
  let c = Circuit.Generators.parity_tree ~bits:6 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:23 ~count:50 c in
  let a =
    Fsim.Coverage.profile ~engine:(Fsim.Coverage.Par { domains = 3 }) c universe
      patterns
  in
  let b = Fsim.Coverage.profile ~engine:Fsim.Coverage.Serial c universe patterns in
  Alcotest.(check bool) "profiles equal" true
    (a.Fsim.Coverage.first_detection = b.Fsim.Coverage.first_detection)

let test_par_empty_universe () =
  let c = Circuit.Generators.c17 () in
  Alcotest.(check int) "no faults, no results" 0
    (Array.length (Fsim.Par.run ~domains:4 c [||] (exhaustive_patterns 5)))

let test_lowest_set_bit_matches_naive () =
  let naive w =
    let rec loop i = if Logicsim.Packed.bit w i then i else loop (i + 1) in
    loop 0
  in
  for i = 0 to 63 do
    let w = Int64.shift_left 1L i in
    Alcotest.(check int) "single bit" i (Fsim.Ppsfp.lowest_set_bit w)
  done;
  let rng = Stats.Rng.create ~seed:77 () in
  for _ = 1 to 10_000 do
    let w = Stats.Rng.bits64 rng in
    if w <> 0L then
      Alcotest.(check int) "random word" (naive w) (Fsim.Ppsfp.lowest_set_bit w)
  done;
  Alcotest.(check bool) "zero word rejected" true
    (try
       ignore (Fsim.Ppsfp.lowest_set_bit 0L);
       false
     with Invalid_argument _ -> true)

(* ------------------------------ n-detect ----------------------------- *)

let test_popcount_matches_naive () =
  let naive w =
    let count = ref 0 in
    for i = 0 to 63 do
      if Logicsim.Packed.bit w i then incr count
    done;
    !count
  in
  Alcotest.(check int) "zero word" 0 (Fsim.Ppsfp.popcount 0L);
  Alcotest.(check int) "all ones" 64 (Fsim.Ppsfp.popcount (-1L));
  for i = 0 to 63 do
    Alcotest.(check int) "single bit" 1 (Fsim.Ppsfp.popcount (Int64.shift_left 1L i))
  done;
  let rng = Stats.Rng.create ~seed:78 () in
  for _ = 1 to 10_000 do
    let w = Stats.Rng.bits64 rng in
    Alcotest.(check int) "random word" (naive w) (Fsim.Ppsfp.popcount w)
  done

let test_nth_set_bit_matches_naive () =
  let naive w k =
    let found = ref 0 and answer = ref (-1) in
    for i = 0 to 63 do
      if !answer < 0 && Logicsim.Packed.bit w i then begin
        incr found;
        if !found = k then answer := i
      end
    done;
    !answer
  in
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check int) "nth 1 = lowest" 0 (Fsim.Ppsfp.nth_set_bit 1L 1);
  Alcotest.(check bool) "k = 0 rejected" true
    (rejects (fun () -> Fsim.Ppsfp.nth_set_bit (-1L) 0));
  let rng = Stats.Rng.create ~seed:79 () in
  for _ = 1 to 2_000 do
    let w = Stats.Rng.bits64 rng in
    let total = Fsim.Ppsfp.popcount w in
    for k = 1 to min total 5 do
      Alcotest.(check int) "random word" (naive w k) (Fsim.Ppsfp.nth_set_bit w k)
    done;
    (* Asking past the population must be rejected, not wrap. *)
    Alcotest.(check bool) "too few set bits rejected" true
      (rejects (fun () -> Fsim.Ppsfp.nth_set_bit w (total + 1)))
  done

let test_ndetect_n1_equals_first_detection () =
  (* The n = 1 drop-after-n run must be bit-identical to the ordinary
     first-detection run: same indices, counts saturated at one. *)
  List.iter
    (fun seed ->
      let c = Circuit.Generators.random_circuit ~inputs:10 ~gates:150 ~outputs:8 ~seed in
      let universe = Faults.Universe.all c in
      let patterns = random_patterns ~seed:(seed * 13) ~count:100 c in
      let reference = Fsim.Ppsfp.run c universe patterns in
      let detections, nth = Fsim.Ppsfp.run_counts ~n:1 c universe patterns in
      Alcotest.(check bool) "indices bit-identical" true (nth = reference);
      Array.iteri
        (fun i d ->
          Alcotest.(check int) "count saturates at 1"
            (if reference.(i) = None then 0 else 1)
            d)
        detections)
    [ 1; 2; 3 ]

let test_ndetect_engines_bit_identical () =
  List.iter
    (fun seed ->
      let c = Circuit.Generators.random_circuit ~inputs:10 ~gates:150 ~outputs:8 ~seed in
      let universe = Faults.Universe.all c in
      let patterns = random_patterns ~seed:(seed * 17) ~count:100 c in
      List.iter
        (fun n ->
          let reference = Fsim.Ppsfp.run_counts ~n c universe patterns in
          if Fsim.Serial.run_counts ~n c universe patterns <> reference then
            Alcotest.failf "serial diverges at n=%d seed=%d" n seed;
          List.iter
            (fun domains ->
              if Fsim.Par.run_counts ~domains ~n c universe patterns <> reference
              then Alcotest.failf "par(%d) diverges at n=%d seed=%d" domains n seed)
            [ 1; 2; 3; 8 ])
        [ 1; 2; 4 ])
    [ 4; 5 ]

let test_ndetect_exhaustive_oracle () =
  (* c17 exhaustively: per fault, collect every detecting pattern by
     single-pattern simulation; the saturated count and the n-th
     detection index then follow by definition. *)
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns 5 in
  let detecting fault =
    Array.to_list patterns
    |> List.mapi (fun i p -> (i, (Fsim.Serial.run c [| fault |] [| p |]).(0) = Some 0))
    |> List.filter_map (fun (i, d) -> if d then Some i else None)
  in
  let oracle = Array.map detecting universe in
  List.iter
    (fun n ->
      let detections, nth = Fsim.Ppsfp.run_counts ~n c universe patterns in
      Array.iteri
        (fun j fault ->
          let dets = oracle.(j) in
          Alcotest.(check int)
            (Printf.sprintf "%s count at n=%d" (F.to_string c fault) n)
            (min n (List.length dets))
            detections.(j);
          Alcotest.(check bool)
            (Printf.sprintf "%s index at n=%d" (F.to_string c fault) n)
            true
            (nth.(j) = List.nth_opt dets (n - 1)))
        universe)
    [ 1; 2; 3; 4 ]

let test_ndetect_coverage_monotone_in_n () =
  let c = Circuit.Generators.alu ~bits:3 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:61 ~count:96 c in
  let css =
    List.map (fun n -> Fsim.Coverage.detection_counts ~n c universe patterns) [ 1; 2; 4; 8 ]
  in
  (* Demanding more detections can only push coverage down, at every
     point of the curve. *)
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
      for k = 0 to Array.length patterns do
        Alcotest.(check bool) "curve non-increasing in n" true
          (Fsim.Coverage.n_detect_coverage_after b k
          <= Fsim.Coverage.n_detect_coverage_after a k +. 1e-12)
      done;
      pairwise rest
    | [ _ ] | [] -> ()
  in
  pairwise css;
  (* At n = 1 the counts view is the ordinary profile. *)
  let profile = Fsim.Coverage.profile c universe patterns in
  let cs1 = List.hd css in
  Alcotest.(check bool) "n=1 profile equal" true
    ((Fsim.Coverage.n_detect_profile cs1).Fsim.Coverage.first_detection
    = profile.Fsim.Coverage.first_detection);
  Alcotest.(check (float 1e-12)) "n=1 coverage equal"
    (Fsim.Coverage.final_coverage profile)
    (Fsim.Coverage.n_detect_coverage cs1)

let test_ndetect_via_coverage_engine () =
  (* Every engine choice must agree through the detection_counts
     dispatcher, including the fall-back engines. *)
  let c = Circuit.Generators.parity_tree ~bits:6 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:23 ~count:50 c in
  let reference = Fsim.Coverage.detection_counts ~n:3 c universe patterns in
  List.iter
    (fun engine ->
      Alcotest.(check bool) "counts equal" true
        (Fsim.Coverage.detection_counts ~engine ~n:3 c universe patterns = reference))
    [ Fsim.Coverage.Serial; Fsim.Coverage.Parallel; Fsim.Coverage.Deductive;
      Fsim.Coverage.Concurrent; Fsim.Coverage.Par { domains = 3 } ]

let test_ndetect_invalid_n_rejected () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns 5 in
  List.iter
    (fun f ->
      Alcotest.(check bool) "n < 1 rejected" true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))
    [ (fun () -> ignore (Fsim.Ppsfp.run_counts ~n:0 c universe patterns));
      (fun () -> ignore (Fsim.Serial.run_counts ~n:0 c universe patterns));
      (fun () -> ignore (Fsim.Par.run_counts ~n:0 c universe patterns));
      (fun () -> ignore (Fsim.Coverage.detection_counts ~n:(-2) c universe patterns)) ]

(* ------------------------------- stafan ------------------------------ *)

let test_stafan_controllabilities () =
  (* On exhaustive patterns of c17, input C1 is exactly 1/2. *)
  let c = Circuit.Generators.c17 () in
  let st = Fsim.Stafan.analyze c (exhaustive_patterns 5) in
  Array.iter
    (fun id ->
      Alcotest.(check (float 1e-9)) "C1(PI) = 0.5" 0.5
        (Fsim.Stafan.controllability_one st id))
    c.N.inputs

let test_stafan_po_observability () =
  let c = Circuit.Generators.c17 () in
  let st = Fsim.Stafan.analyze c (exhaustive_patterns 5) in
  Array.iter
    (fun out ->
      Alcotest.(check (float 1e-9)) "B(PO) = 1" 1.0 (Fsim.Stafan.observability st out))
    c.N.outputs

let test_stafan_detection_probability_bounds () =
  let c = Circuit.Generators.alu ~bits:3 in
  let rng = Stats.Rng.create ~seed:5 () in
  let patterns = Tpg.Random_tpg.uniform rng c ~count:64 in
  let st = Fsim.Stafan.analyze c patterns in
  Array.iter
    (fun fault ->
      let d = Fsim.Stafan.detection_probability st fault in
      Alcotest.(check bool) "d in [0,1]" true (d >= -1e-9 && d <= 1.0 +. 1e-9))
    (Faults.Universe.all c)

let test_stafan_predicts_coverage () =
  (* The estimate should land within ~10 points of real fault
     simulation at moderate pattern counts. *)
  List.iter
    (fun (c, seed) ->
      let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
      let universe = Faults.Collapse.representatives classes in
      let rng = Stats.Rng.create ~seed () in
      let patterns = Tpg.Random_tpg.uniform rng c ~count:128 in
      let st = Fsim.Stafan.analyze c patterns in
      let profile = Fsim.Coverage.profile c universe patterns in
      List.iter
        (fun k ->
          let actual = Fsim.Coverage.coverage_after profile k in
          let predicted = Fsim.Stafan.expected_coverage st universe ~pattern_count:k in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d actual=%.3f predicted=%.3f" k actual predicted)
            true
            (abs_float (actual -. predicted) < 0.12))
        [ 32; 64; 128 ])
    [ (Circuit.Generators.array_multiplier ~bits:4, 3);
      (Circuit.Generators.random_circuit ~inputs:12 ~gates:300 ~outputs:8 ~seed:5, 4) ]

let test_stafan_curve_monotone () =
  let c = Circuit.Generators.parity_tree ~bits:8 in
  let rng = Stats.Rng.create ~seed:6 () in
  let patterns = Tpg.Random_tpg.uniform rng c ~count:64 in
  let st = Fsim.Stafan.analyze c patterns in
  let universe = Faults.Universe.all c in
  let curve = Fsim.Stafan.predicted_curve st universe ~counts:[| 1; 4; 16; 64 |] in
  Array.iteri
    (fun i (_, f) ->
      if i > 0 then Alcotest.(check bool) "monotone" true (snd curve.(i - 1) <= f +. 1e-12))
    curve

let test_stafan_rejects_empty_pattern_set () =
  (* Zero patterns would divide by zero in every estimate; refuse at
     construction rather than return NaN-laced controllabilities. *)
  let c = Circuit.Generators.c17 () in
  Alcotest.(check bool) "no patterns raises" true
    (try
       ignore (Fsim.Stafan.analyze c [||]);
       false
     with Invalid_argument _ -> true)

let test_stafan_empty_universe () =
  (* An empty fault universe has nothing to cover: 0, not 0/0. *)
  let c = Circuit.Generators.c17 () in
  let st = Fsim.Stafan.analyze c (exhaustive_patterns 5) in
  Alcotest.(check (float 1e-12)) "empty universe coverage" 0.0
    (Fsim.Stafan.expected_coverage st [||] ~pattern_count:64)

let test_stafan_detection_probability_strict_clamp () =
  (* The clamp lives at the source: no tolerance slack needed. *)
  List.iter
    (fun (c, seed, count) ->
      let rng = Stats.Rng.create ~seed () in
      let patterns = Tpg.Random_tpg.uniform rng c ~count in
      let st = Fsim.Stafan.analyze c patterns in
      Array.iter
        (fun fault ->
          let d = Fsim.Stafan.detection_probability st fault in
          Alcotest.(check bool) "d in [0,1] exactly" true (d >= 0.0 && d <= 1.0))
        (Faults.Universe.all c))
    [ (Circuit.Generators.c17 (), 9, 3);
      (Circuit.Generators.alu ~bits:3, 10, 1);
      (Circuit.Generators.random_circuit ~inputs:10 ~gates:80 ~outputs:4 ~seed:12,
       11, 17) ]

(* ------------------------------ sampling ----------------------------- *)

let test_sampling_full_sample_is_exact () =
  let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:44 ~count:64 c in
  let rng = Stats.Rng.create ~seed:44 () in
  let est =
    Fsim.Sampling.estimate_coverage rng c universe
      ~sample_size:(Array.length universe) patterns
  in
  let profile = Fsim.Coverage.profile c universe patterns in
  Alcotest.(check (float 1e-12)) "exact" (Fsim.Coverage.final_coverage profile)
    est.Fsim.Sampling.coverage;
  Alcotest.(check (float 1e-12)) "zero error" 0.0 est.Fsim.Sampling.std_error

let test_sampling_estimate_near_truth () =
  let c = Circuit.Generators.lsi_chip ~scale:4 () in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:45 ~count:64 c in
  let profile = Fsim.Coverage.profile c universe patterns in
  let truth = Fsim.Coverage.final_coverage profile in
  let rng = Stats.Rng.create ~seed:46 () in
  let hits = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    let est = Fsim.Sampling.estimate_coverage rng c universe ~sample_size:300 patterns in
    if est.Fsim.Sampling.lower_95 <= truth && truth <= est.Fsim.Sampling.upper_95 then
      incr hits
  done;
  (* 95% interval: allow a couple of misses in 20 trials. *)
  Alcotest.(check bool)
    (Printf.sprintf "interval covers truth in %d/%d trials" !hits trials)
    true (!hits >= 16)

let test_sampling_engine_invariant () =
  (* Same seed, same sample — the engine choice cannot change the
     estimate. *)
  let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:44 ~count:64 c in
  let estimate engine =
    Fsim.Sampling.estimate_coverage ?engine
      (Stats.Rng.create ~seed:9 ())
      c universe ~sample_size:60 patterns
  in
  let reference = estimate None in
  List.iter
    (fun engine ->
      Alcotest.(check (float 1e-12)) "same estimate"
        reference.Fsim.Sampling.coverage
        (estimate (Some engine)).Fsim.Sampling.coverage)
    [ Fsim.Coverage.Serial; Fsim.Coverage.Par { domains = 2 } ]

let test_sampling_interval_bounds () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns 5 in
  let rng = Stats.Rng.create ~seed:47 () in
  let est = Fsim.Sampling.estimate_coverage rng c universe ~sample_size:10 patterns in
  Alcotest.(check bool) "bounds ordered" true
    (0.0 <= est.Fsim.Sampling.lower_95
    && est.Fsim.Sampling.lower_95 <= est.Fsim.Sampling.coverage
    && est.Fsim.Sampling.coverage <= est.Fsim.Sampling.upper_95
    && est.Fsim.Sampling.upper_95 <= 1.0)

let test_sampling_wilson_endpoints () =
  (* The Wald interval was degenerate at the endpoints: a partial
     sample that detects all (or none) of its faults got a zero-width
     interval.  The Wilson interval must stay open there. *)
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let full = exhaustive_patterns 5 in
  let est =
    Fsim.Sampling.estimate_coverage
      (Stats.Rng.create ~seed:48 ())
      c universe ~sample_size:10 full
  in
  Alcotest.(check (float 1e-12)) "sample coverage 1" 1.0 est.Fsim.Sampling.coverage;
  Alcotest.(check (float 1e-12)) "upper clamps to 1" 1.0 est.Fsim.Sampling.upper_95;
  Alcotest.(check bool) "lower strictly below 1" true (est.Fsim.Sampling.lower_95 < 1.0);
  Alcotest.(check bool) "lower well above 0" true (est.Fsim.Sampling.lower_95 > 0.5);
  (* No patterns detect nothing: the other endpoint. *)
  let est0 =
    Fsim.Sampling.estimate_coverage
      (Stats.Rng.create ~seed:49 ())
      c universe ~sample_size:10 [||]
  in
  Alcotest.(check (float 1e-12)) "sample coverage 0" 0.0 est0.Fsim.Sampling.coverage;
  Alcotest.(check (float 1e-12)) "lower clamps to 0" 0.0 est0.Fsim.Sampling.lower_95;
  Alcotest.(check bool) "upper strictly above 0" true (est0.Fsim.Sampling.upper_95 > 0.0);
  (* A full sample stays exact: the interval collapses to the point. *)
  let exact =
    Fsim.Sampling.estimate_coverage
      (Stats.Rng.create ~seed:50 ())
      c universe ~sample_size:(Array.length universe) full
  in
  Alcotest.(check (float 1e-12)) "full sample lower" exact.Fsim.Sampling.coverage
    exact.Fsim.Sampling.lower_95;
  Alcotest.(check (float 1e-12)) "full sample upper" exact.Fsim.Sampling.coverage
    exact.Fsim.Sampling.upper_95

let test_sampling_n_detect () =
  let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
  let universe = Faults.Universe.all c in
  let patterns = random_patterns ~seed:44 ~count:64 c in
  let estimate ?n_detect ~sample_size seed =
    Fsim.Sampling.estimate_coverage ?n_detect
      (Stats.Rng.create ~seed ())
      c universe ~sample_size patterns
  in
  (* Same seed, same sample: n_detect = 1 is the default estimator. *)
  let base = estimate ~sample_size:60 9 in
  let n1 = estimate ~n_detect:1 ~sample_size:60 9 in
  Alcotest.(check (float 1e-12)) "n_detect 1 = default" base.Fsim.Sampling.coverage
    n1.Fsim.Sampling.coverage;
  (* Demanding four detections cannot raise the estimate. *)
  let n4 = estimate ~n_detect:4 ~sample_size:60 9 in
  Alcotest.(check bool) "n=4 <= n=1" true
    (n4.Fsim.Sampling.coverage <= n1.Fsim.Sampling.coverage);
  (* A full sample reports the exact n-detect coverage. *)
  let full = Array.length universe in
  let exact =
    Fsim.Coverage.n_detect_coverage
      (Fsim.Coverage.detection_counts ~n:4 c universe patterns)
  in
  Alcotest.(check (float 1e-12)) "full sample exact"
    exact
    (estimate ~n_detect:4 ~sample_size:full 9).Fsim.Sampling.coverage

(* ----------------------- multiple-fault machine --------------------- *)

let test_multifault_single_matches () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns 5 in
  let single = Fsim.Serial.run c universe patterns in
  Array.iteri
    (fun i fault ->
      let multi = Fsim.Serial.first_fail_with_fault_set c [| fault |] patterns in
      Alcotest.(check bool)
        (Printf.sprintf "%s singleton set" (F.to_string c fault))
        true (multi = single.(i)))
    universe

let test_multifault_masking_example () =
  (* Two inverters in a chain: y = NOT(NOT a).  a/sa0 alone flips y;
     stuck faults on both inverter outputs... instead build the classic
     masking pair: g = AND(a,b); faults a-pin/sa1 AND output sa1: the
     output fault dominates, the pair behaves like output sa1. *)
  let b = N.Builder.create ~name:"mask" in
  let a = N.Builder.add_input b "a" in
  let bb = N.Builder.add_input b "b" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.And [ a; bb ] in
  N.Builder.mark_output b g;
  let c = N.Builder.build b in
  let pin_fault = { F.site = F.Branch { gate = g; pin = 0 }; polarity = F.Stuck_at_1 } in
  let out_fault = { F.site = F.Stem g; polarity = F.Stuck_at_1 } in
  let patterns = exhaustive_patterns 2 in
  let pair = Fsim.Serial.first_fail_with_fault_set c [| pin_fault; out_fault |] patterns in
  let alone = Fsim.Serial.first_fail_with_fault_set c [| out_fault |] patterns in
  Alcotest.(check bool) "pair behaves as dominating fault" true (pair = alone)

let test_multifault_polarity_clash_deterministic () =
  let c = Circuit.Generators.c17 () in
  let g10 = match N.find_node c "G10" with Some id -> id | None -> assert false in
  let sa0 = { F.site = F.Stem g10; polarity = F.Stuck_at_0 } in
  let sa1 = { F.site = F.Stem g10; polarity = F.Stuck_at_1 } in
  let patterns = exhaustive_patterns 5 in
  (* Documented rule: sa1 wins. *)
  let clash = Fsim.Serial.first_fail_with_fault_set c [| sa0; sa1 |] patterns in
  let sa1_only = Fsim.Serial.first_fail_with_fault_set c [| sa1 |] patterns in
  Alcotest.(check bool) "sa1 wins" true (clash = sa1_only)

let test_multifault_empty_set_passes () =
  let c = Circuit.Generators.c17 () in
  Alcotest.(check bool) "no faults, no fail" true
    (Fsim.Serial.first_fail_with_fault_set c [||] (exhaustive_patterns 5) = None)

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:15 ~name:"ppsfp = serial on random circuits"
      (pair (int_range 4 10) (int_range 20 120))
      (fun (inputs, gates) ->
        let c =
          Circuit.Generators.random_circuit ~inputs ~gates ~outputs:4
            ~seed:(inputs + (gates * 13))
        in
        let universe = Faults.Universe.all c in
        let patterns = random_patterns ~seed:(gates + 2) ~count:70 c in
        let serial = Fsim.Serial.run c universe patterns in
        serial = Fsim.Ppsfp.run c universe patterns
        && serial = Fsim.Deductive.run c universe patterns
        && serial = Fsim.Concurrent.run c universe patterns);
    Test.make ~count:15 ~name:"multi-fault first fail <= each member's (on chains it can differ)"
      (int_range 1 1000)
      (fun seed ->
        (* Not a theorem in general (masking), but for a singleton the
           multi-fault machine must agree with the single-fault one. *)
        let c = Circuit.Generators.random_circuit ~inputs:6 ~gates:60 ~outputs:4 ~seed in
        let universe = Faults.Universe.all c in
        let fault = universe.(seed mod Array.length universe) in
        let patterns = random_patterns ~seed ~count:32 c in
        let single = (Fsim.Serial.run c [| fault |] patterns).(0) in
        let multi = Fsim.Serial.first_fail_with_fault_set c [| fault |] patterns in
        single = multi);
    Test.make ~count:12
      ~name:"par = ppsfp for any circuit, pattern count and domain count"
      (triple (int_range 4 10) (int_range 20 120) (int_range 1 8))
      (fun (inputs, gates, domains) ->
        let c =
          Circuit.Generators.random_circuit ~inputs ~gates ~outputs:4
            ~seed:((inputs * 7) + gates)
        in
        let universe = Faults.Universe.all c in
        let count = 1 + (gates * 5 mod 130) in
        let patterns = random_patterns ~seed:(gates + domains) ~count c in
        Fsim.Par.run ~domains c universe patterns = Fsim.Ppsfp.run c universe patterns) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "fsim.engines",
      [ tc "serial matches brute-force oracle" test_serial_matches_oracle_on_stems;
        tc "ppsfp = serial (c17 exhaustive)" test_ppsfp_equals_serial_c17;
        tc "ppsfp = serial (random circuits)" test_ppsfp_equals_serial_random;
        tc "ppsfp = serial (multiplier)" test_ppsfp_equals_serial_arithmetic;
        tc "c17 exhaustive coverage = 100%" test_c17_full_coverage_exhaustive;
        tc "first detection is minimal" test_first_detection_is_minimal ] );
    ( "fsim.coverage",
      [ tc "curve is monotone" test_coverage_curve_monotone;
        tc "coverage_after = curve" test_coverage_after_consistent;
        tc "run_curve checkpoints" test_run_curve_checkpoints;
        tc "undetected listing" test_undetected_listing ] );
    ( "fsim.deductive",
      [ tc "deductive = serial (c17 exhaustive)" test_deductive_equals_serial_c17;
        tc "deductive = serial (random)" test_deductive_equals_serial_random;
        tc "deductive = serial (alu)" test_deductive_equals_serial_arithmetic;
        tc "coverage engine plumbing" test_deductive_via_coverage_engine;
        tc "concurrent = serial (rand + walk)" test_concurrent_equals_serial;
        tc "concurrent dropping across patterns" test_concurrent_dropping_across_patterns ] );
    ( "fsim.par",
      [ tc "par = ppsfp (c17 exhaustive)" test_par_equals_ppsfp_c17;
        tc "par = ppsfp (odd pattern counts)" test_par_equals_ppsfp_odd_pattern_counts;
        tc "par = ppsfp (2k gates, 4 domains)" test_par_collapsed_universe_bit_identical;
        tc "coverage engine plumbing" test_par_via_coverage_engine;
        tc "empty universe" test_par_empty_universe;
        tc "lowest_set_bit = naive scan" test_lowest_set_bit_matches_naive ] );
    ( "fsim.ndetect",
      [ tc "popcount = naive scan" test_popcount_matches_naive;
        tc "nth_set_bit = naive scan" test_nth_set_bit_matches_naive;
        tc "n=1 bit-identical to first detection" test_ndetect_n1_equals_first_detection;
        tc "serial = ppsfp = par (n in 1,2,4)" test_ndetect_engines_bit_identical;
        tc "exhaustive nth-index oracle (c17)" test_ndetect_exhaustive_oracle;
        tc "coverage non-increasing in n" test_ndetect_coverage_monotone_in_n;
        tc "coverage engine plumbing" test_ndetect_via_coverage_engine;
        tc "n < 1 rejected" test_ndetect_invalid_n_rejected ] );
    ( "fsim.stafan",
      [ tc "controllabilities" test_stafan_controllabilities;
        tc "PO observability" test_stafan_po_observability;
        tc "detection probability bounds" test_stafan_detection_probability_bounds;
        tc "predicts real coverage" test_stafan_predicts_coverage;
        tc "predicted curve monotone" test_stafan_curve_monotone;
        tc "rejects empty pattern set" test_stafan_rejects_empty_pattern_set;
        tc "empty universe" test_stafan_empty_universe;
        tc "detection probability strict clamp" test_stafan_detection_probability_strict_clamp ] );
    ( "fsim.sampling",
      [ tc "full sample exact" test_sampling_full_sample_is_exact;
        tc "engine choice invariant" test_sampling_engine_invariant;
        tc "interval covers truth" test_sampling_estimate_near_truth;
        tc "interval bounds" test_sampling_interval_bounds;
        tc "Wilson interval open at endpoints" test_sampling_wilson_endpoints;
        tc "n-detect sampling" test_sampling_n_detect ] );
    ( "fsim.multifault",
      [ tc "singleton set = single fault" test_multifault_single_matches;
        tc "dominating pair" test_multifault_masking_example;
        tc "polarity clash is deterministic" test_multifault_polarity_clash_deterministic;
        tc "empty set passes" test_multifault_empty_set_passes ] );
    ( "fsim.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
